# Sanitizer and static-analysis wiring. Included from the top-level
# CMakeLists; everything here is opt-in via cache variables so that the
# default `cmake -B build` remains a plain optimized build.
#
#   SPAMMASS_SANITIZE   semicolon/comma-separated sanitizer list, e.g.
#                       -DSPAMMASS_SANITIZE=address;undefined   (ASan+UBSan)
#                       -DSPAMMASS_SANITIZE=thread              (TSan)
#   SPAMMASS_ANALYZE    ON runs clang-tidy over every compiled TU via
#                       CMAKE_CXX_CLANG_TIDY (skipped with a warning when
#                       clang-tidy is not installed).
#   SPAMMASS_WERROR     ON escalates warnings to errors (CI uses this; kept
#                       opt-in locally so new-compiler noise never blocks a
#                       checkout from building).
#   SPAMMASS_THREAD_SAFETY
#                       ON compiles with Clang's thread-safety analysis
#                       (-Wthread-safety) escalated to errors, checking the
#                       SPAMMASS_GUARDED_BY/REQUIRES/EXCLUDES annotations
#                       from util/thread_annotations.h. Clang-only: GCC has
#                       no equivalent analysis, so non-Clang builds warn and
#                       proceed without it (the annotation macros expand to
#                       nothing there).

set(SPAMMASS_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with: any of address, undefined, leak, thread")
option(SPAMMASS_ANALYZE "Run clang-tidy alongside compilation" OFF)
option(SPAMMASS_WERROR "Treat compiler warnings as errors" OFF)
option(SPAMMASS_THREAD_SAFETY
    "Enable Clang thread-safety analysis as errors (no-op under GCC)" OFF)

if(SPAMMASS_SANITIZE)
  # Accept both list ("address;undefined") and comma ("address,undefined")
  # spellings.
  string(REPLACE "," ";" _spammass_san_list "${SPAMMASS_SANITIZE}")

  set(_spammass_san_allowed address undefined leak thread)
  foreach(_san IN LISTS _spammass_san_list)
    if(NOT _san IN_LIST _spammass_san_allowed)
      message(FATAL_ERROR
          "SPAMMASS_SANITIZE: unknown sanitizer '${_san}' "
          "(allowed: ${_spammass_san_allowed})")
    endif()
  endforeach()

  # TSan maintains its own shadow state and cannot coexist with ASan/LSan.
  if("thread" IN_LIST _spammass_san_list AND
     ("address" IN_LIST _spammass_san_list OR
      "leak" IN_LIST _spammass_san_list))
    message(FATAL_ERROR
        "SPAMMASS_SANITIZE: 'thread' cannot be combined with "
        "'address'/'leak'")
  endif()

  string(REPLACE ";" "," _spammass_san_flag "${_spammass_san_list}")
  message(STATUS "Sanitizers enabled: ${_spammass_san_flag}")
  add_compile_options(-fsanitize=${_spammass_san_flag} -fno-omit-frame-pointer
                      -g)
  add_link_options(-fsanitize=${_spammass_san_flag})
  if("undefined" IN_LIST _spammass_san_list)
    # Keep UBSan failures loud: abort instead of printing and continuing.
    add_compile_options(-fno-sanitize-recover=all)
    add_link_options(-fno-sanitize-recover=all)
  endif()
endif()

# Located unconditionally (not just under SPAMMASS_ANALYZE): the aggregate
# `spammass_check` target in the top-level CMakeLists runs a tidy pass when
# the tool is installed, whatever the configure flags.
find_program(SPAMMASS_CLANG_TIDY_EXE clang-tidy)
find_program(SPAMMASS_RUN_CLANG_TIDY_EXE
             run-clang-tidy run-clang-tidy-18 run-clang-tidy-17
             run-clang-tidy-16 run-clang-tidy-15 run-clang-tidy-14)

if(SPAMMASS_ANALYZE)
  if(SPAMMASS_CLANG_TIDY_EXE)
    message(STATUS "clang-tidy enabled: ${SPAMMASS_CLANG_TIDY_EXE}")
    # Configuration lives in .clang-tidy at the repo root.
    set(CMAKE_CXX_CLANG_TIDY "${SPAMMASS_CLANG_TIDY_EXE}")
  else()
    message(WARNING
        "SPAMMASS_ANALYZE=ON but clang-tidy was not found; building "
        "without analysis")
  endif()
endif()

if(SPAMMASS_THREAD_SAFETY)
  if(CMAKE_CXX_COMPILER_ID MATCHES "Clang")
    message(STATUS "Thread-safety analysis enabled (-Werror=thread-safety)")
    add_compile_options(-Wthread-safety -Werror=thread-safety)
  else()
    message(WARNING
        "SPAMMASS_THREAD_SAFETY=ON needs Clang; ${CMAKE_CXX_COMPILER_ID} "
        "has no thread-safety analysis, so this build checks nothing. "
        "Configure with -DCMAKE_CXX_COMPILER=clang++ (the CI analyze job "
        "does) to run the analysis.")
  endif()
endif()

if(SPAMMASS_WERROR)
  add_compile_options(-Werror)
endif()
