# Sanitizer and static-analysis wiring. Included from the top-level
# CMakeLists; everything here is opt-in via cache variables so that the
# default `cmake -B build` remains a plain optimized build.
#
#   SPAMMASS_SANITIZE   semicolon/comma-separated sanitizer list, e.g.
#                       -DSPAMMASS_SANITIZE=address;undefined   (ASan+UBSan)
#                       -DSPAMMASS_SANITIZE=thread              (TSan)
#   SPAMMASS_ANALYZE    ON runs clang-tidy over every compiled TU via
#                       CMAKE_CXX_CLANG_TIDY (skipped with a warning when
#                       clang-tidy is not installed).
#   SPAMMASS_WERROR     ON escalates warnings to errors (CI uses this; kept
#                       opt-in locally so new-compiler noise never blocks a
#                       checkout from building).

set(SPAMMASS_SANITIZE "" CACHE STRING
    "Sanitizers to instrument with: any of address, undefined, leak, thread")
option(SPAMMASS_ANALYZE "Run clang-tidy alongside compilation" OFF)
option(SPAMMASS_WERROR "Treat compiler warnings as errors" OFF)

if(SPAMMASS_SANITIZE)
  # Accept both list ("address;undefined") and comma ("address,undefined")
  # spellings.
  string(REPLACE "," ";" _spammass_san_list "${SPAMMASS_SANITIZE}")

  set(_spammass_san_allowed address undefined leak thread)
  foreach(_san IN LISTS _spammass_san_list)
    if(NOT _san IN_LIST _spammass_san_allowed)
      message(FATAL_ERROR
          "SPAMMASS_SANITIZE: unknown sanitizer '${_san}' "
          "(allowed: ${_spammass_san_allowed})")
    endif()
  endforeach()

  # TSan maintains its own shadow state and cannot coexist with ASan/LSan.
  if("thread" IN_LIST _spammass_san_list AND
     ("address" IN_LIST _spammass_san_list OR
      "leak" IN_LIST _spammass_san_list))
    message(FATAL_ERROR
        "SPAMMASS_SANITIZE: 'thread' cannot be combined with "
        "'address'/'leak'")
  endif()

  string(REPLACE ";" "," _spammass_san_flag "${_spammass_san_list}")
  message(STATUS "Sanitizers enabled: ${_spammass_san_flag}")
  add_compile_options(-fsanitize=${_spammass_san_flag} -fno-omit-frame-pointer
                      -g)
  add_link_options(-fsanitize=${_spammass_san_flag})
  if("undefined" IN_LIST _spammass_san_list)
    # Keep UBSan failures loud: abort instead of printing and continuing.
    add_compile_options(-fno-sanitize-recover=all)
    add_link_options(-fno-sanitize-recover=all)
  endif()
endif()

if(SPAMMASS_ANALYZE)
  find_program(SPAMMASS_CLANG_TIDY_EXE clang-tidy)
  if(SPAMMASS_CLANG_TIDY_EXE)
    message(STATUS "clang-tidy enabled: ${SPAMMASS_CLANG_TIDY_EXE}")
    # Configuration lives in .clang-tidy at the repo root.
    set(CMAKE_CXX_CLANG_TIDY "${SPAMMASS_CLANG_TIDY_EXE}")
    set(CMAKE_EXPORT_COMPILE_COMMANDS ON)
  else()
    message(WARNING
        "SPAMMASS_ANALYZE=ON but clang-tidy was not found; building "
        "without analysis")
  endif()
endif()

if(SPAMMASS_WERROR)
  add_compile_options(-Werror)
endif()
