// Anatomy of a spam farm (Section 2.3 of the paper): how boosting nodes,
// recirculation and alliances amplify the target's PageRank, and how the
// target's spam mass exposes the boost regardless of the farm's shape.
//
//   $ ./spam_farm_anatomy

#include <cstdio>

#include "graph/graph_builder.h"
#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/graph_source.h"
#include "synth/spam_farm.h"
#include "util/random.h"
#include "util/table.h"

using namespace spammass;

namespace {

constexpr double kDamping = 0.85;

pagerank::SolverOptions Solver() {
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-13;
  opt.max_iterations = 3000;
  return opt;
}

/// Builds an isolated farm with k boosters inside an otherwise empty web of
/// background hosts and reports the target's scaled PageRank and relative
/// mass (estimated against a good core of background hosts).
void FarmRow(uint32_t k, bool links_back, util::TextTable* table) {
  util::Rng rng(k);
  graph::GraphBuilder builder;
  // Background good web: a modest ring so the good core reaches something.
  const uint32_t background = 200;
  for (uint32_t i = 0; i < background; ++i) {
    builder.AddNode("good" + std::to_string(i) + ".example.org");
  }
  for (uint32_t i = 0; i < background; ++i) {
    builder.AddEdge(i, (i + 1) % background);
    builder.AddEdge(i, (i + 17) % background);
  }
  synth::FarmSpec spec;
  spec.num_boosters = k;
  spec.target_links_back = links_back;
  synth::FarmInfo farm =
      synth::BuildSpamFarm(&builder, spec, "target.spam.biz", "booster",
                           &rng);
  graph::WebGraph web = builder.Build();
  const uint32_t num_nodes = web.num_nodes();

  std::vector<graph::NodeId> good_core;
  for (graph::NodeId i = 0; i < 20; ++i) good_core.push_back(i);
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(std::move(web), "spam farm");
  source.WithGoodCore(good_core);
  auto loaded = source.Load();
  if (!loaded.ok()) return;

  pipeline::PipelineConfig config;
  config.solver = Solver();
  config.gamma = static_cast<double>(background) / num_nodes;
  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  util::Status status = context.Prepare(needs);
  if (!status.ok()) {
    std::fprintf(stderr, "estimation failed: %s\n",
                 status.ToString().c_str());
    return;
  }
  const core::MassEstimates& est = context.MassEstimates();
  auto scaled = pagerank::ScaledScores(est.pagerank, kDamping);
  double predicted =
      synth::PredictedTargetScaledPageRank(k, kDamping, links_back);
  table->AddRow({std::to_string(k), links_back ? "yes" : "no",
                 util::FormatDouble(predicted, 2),
                 util::FormatDouble(scaled[farm.target], 2),
                 util::FormatDouble(est.relative_mass[farm.target], 3)});
}

}  // namespace

int main() {
  std::printf(
      "How farm size and structure drive the target's PageRank\n"
      "(predicted = closed form for an isolated farm; relative mass is\n"
      "estimated from a good core that excludes the farm):\n\n");
  util::TextTable table;
  table.SetHeader({"boosters", "recirculates", "predicted p^", "measured p^",
                   "relative mass"});
  for (bool links_back : {false, true}) {
    for (uint32_t k : {5u, 20u, 100u, 500u}) {
      FarmRow(k, links_back, &table);
    }
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Recirculating the target's PageRank back through the boosters\n"
      "multiplies the boost by 1/(1-c^2) = %.3f — the optimal farm of the\n"
      "paper's reference [8]. In every configuration the target's relative\n"
      "mass is ~1: the farm cannot hide from mass estimation.\n\n",
      1.0 / (1.0 - kDamping * kDamping));

  // Alliances: rings of farms exchanging target links.
  std::printf("Alliances of 20-booster farms (targets linked in a ring):\n\n");
  util::TextTable alliance_table;
  alliance_table.SetHeader(
      {"farms allied", "target p^ (each)", "vs isolated"});
  double isolated = 0;
  for (uint32_t farms : {1u, 2u, 4u, 8u}) {
    util::Rng rng(7);
    graph::GraphBuilder builder;
    std::vector<synth::FarmInfo> infos;
    std::vector<graph::NodeId> targets;
    for (uint32_t f = 0; f < farms; ++f) {
      synth::FarmSpec spec;
      spec.num_boosters = 20;
      infos.push_back(synth::BuildSpamFarm(
          &builder, spec, "t" + std::to_string(f), "b" + std::to_string(f),
          &rng));
      targets.push_back(infos.back().target);
    }
    synth::LinkAllianceTargets(&builder, targets);
    pipeline::GraphSource source = pipeline::GraphSource::FromGraph(
        builder.Build(), "farm alliance");
    auto loaded = source.Load();
    if (!loaded.ok()) return 1;
    pipeline::PipelineConfig config;
    config.solver = Solver();
    pipeline::PipelineContext context(loaded.value(), config);
    pipeline::ArtifactNeeds needs;
    needs.base_pagerank = true;
    if (!context.Prepare(needs).ok()) return 1;
    auto scaled =
        pagerank::ScaledScores(context.BasePageRank().scores, kDamping);
    double t0 = scaled[infos[0].target];
    if (farms == 1) isolated = t0;
    alliance_table.AddRow({std::to_string(farms),
                           util::FormatDouble(t0, 2),
                           util::FormatDouble(t0 / isolated, 3)});
  }
  std::printf("%s\n", alliance_table.ToString().c_str());
  std::printf(
      "Collaboration pays: every allied target out-ranks the isolated\n"
      "configuration, which is why the paper models alliances explicitly.\n");
  return 0;
}
