// TrustRank vs. spam mass (Section 5): TrustRank *demotes* spam by ranking
// trusted pages first but never labels anything; spam mass *detects* spam
// explicitly. This example runs both on the same synthetic web, plus the
// two naive schemes of Section 3.1, and compares their verdicts against
// ground truth on the high-PageRank population.
//
//   $ ./trustrank_vs_mass [scale] [seed]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/detector.h"
#include "core/naive_schemes.h"
#include "core/trustrank.h"
#include "eval/experiment.h"
#include "util/table.h"

using namespace spammass;

namespace {

struct Verdicts {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t false_negative = 0;

  double Precision() const {
    uint64_t flagged = true_positive + false_positive;
    return flagged ? static_cast<double>(true_positive) / flagged : 0;
  }
  double Recall() const {
    uint64_t spam = true_positive + false_negative;
    return spam ? static_cast<double>(true_positive) / spam : 0;
  }
};

Verdicts Score(const std::vector<graph::NodeId>& population,
               const std::vector<bool>& flagged,
               const core::LabelStore& labels) {
  Verdicts v;
  for (graph::NodeId x : population) {
    bool spam = labels.IsSpam(x);
    if (flagged[x] && spam) ++v.true_positive;
    if (flagged[x] && !spam) ++v.false_positive;
    if (!flagged[x] && spam) ++v.false_negative;
  }
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  eval::PipelineOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  auto result = eval::RunPipeline(options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const eval::PipelineResult& r = result.value();
  const graph::WebGraph& web = r.web.graph;
  const std::vector<graph::NodeId>& population = r.filtered;
  std::printf("population: %zu hosts with scaled PageRank >= 10\n\n",
              population.size());

  // --- Spam mass detection (Algorithm 2). ---------------------------------
  core::DetectorConfig config;
  auto candidates = core::DetectSpamCandidates(r.estimates, config);
  std::vector<bool> mass_flagged(web.num_nodes(), false);
  for (const auto& c : candidates) mass_flagged[c.node] = true;

  // --- TrustRank demotion. --------------------------------------------------
  // Trust flows from the good core; hosts whose trust is small relative to
  // their PageRank would be demoted. To force a *detection* out of
  // TrustRank we flag the population's lowest-trust-to-PageRank quartile —
  // the kind of retrofit the paper argues is not TrustRank's purpose.
  auto trust = core::ComputeTrustRank(web, r.good_core, options.mass.solver);
  if (!trust.ok()) {
    std::fprintf(stderr, "trustrank failed: %s\n",
                 trust.status().ToString().c_str());
    return 1;
  }
  std::vector<double> trust_ratio(web.num_nodes(), 0);
  for (graph::NodeId x : population) {
    trust_ratio[x] = trust.value()[x] / r.estimates.pagerank[x];
  }
  std::vector<graph::NodeId> by_ratio = population;
  std::sort(by_ratio.begin(), by_ratio.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return trust_ratio[a] < trust_ratio[b];
            });
  std::vector<bool> trust_flagged(web.num_nodes(), false);
  for (size_t i = 0; i < by_ratio.size() / 4; ++i) {
    trust_flagged[by_ratio[i]] = true;
  }

  // --- Naive schemes (Section 3.1), with oracle neighbor labels. -----------
  auto first = core::FirstLabelingSchemeAll(web, r.web.labels);
  auto second =
      core::SecondLabelingSchemeAll(web, r.web.labels, options.mass.solver);
  if (!second.ok()) return 1;

  util::TextTable table;
  table.SetHeader({"method", "precision", "recall", "notes"});
  auto add = [&](const char* name, const Verdicts& v, const char* notes) {
    table.AddRow({name, util::FormatDouble(v.Precision(), 3),
                  util::FormatDouble(v.Recall(), 3), notes});
  };
  add("spam mass (tau=0.98)", Score(population, mass_flagged, r.web.labels),
      "detection; no oracle labels needed");
  add("trustrank lowest-quartile", Score(population, trust_flagged, r.web.labels),
      "demotion retrofitted as detection");
  add("naive scheme 1", Score(population, first, r.web.labels),
      "needs oracle labels of all in-neighbors");
  add("naive scheme 2", Score(population, second.value(), r.web.labels),
      "needs oracle labels of all in-neighbors");
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Spam mass achieves high precision without any per-neighbor oracle;\n"
      "TrustRank's low-trust bucket mixes spam with merely-unpopular good\n"
      "hosts; the naive schemes inspect only direct in-neighbors and miss\n"
      "indirectly boosted targets (Figures 1-2 of the paper).\n");
  return 0;
}
