// TrustRank vs. spam mass (Section 5): TrustRank *demotes* spam by ranking
// trusted pages first but never labels anything; spam mass *detects* spam
// explicitly. This example runs both — plus the two naive schemes of
// Section 3.1 — as registered detectors over one shared pipeline context,
// so the base PageRank is solved once and every method sees identical
// artifacts.
//
//   $ ./trustrank_vs_mass [scale] [seed]

#include <cstdio>
#include <cstdlib>

#include "pipeline/graph_source.h"
#include "pipeline/pipeline.h"
#include "util/table.h"

using namespace spammass;

namespace {

double Metric(const pipeline::DetectorOutput& output, const char* name) {
  for (const auto& [key, value] : output.metrics) {
    if (key == name) return value;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  pipeline::GraphSource source = pipeline::GraphSource::Scenario(scale, seed);
  pipeline::PipelineConfig config;  // τ = 0.98, ρ = 10, quartile demotion

  // One call: load, prepare the union of the detectors' artifact needs
  // (base PageRank + mass estimates + trust scores, fused into a single
  // multi-RHS solver stream), run every detector, assemble the manifest.
  auto run = pipeline::RunDetectors(
      source, config,
      {"spam_mass", "trustrank", "naive_scheme1", "naive_scheme2"});
  if (!run.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 run.status().ToString().c_str());
    return 1;
  }
  const pipeline::PipelineRun& r = run.value();
  std::printf(
      "%s: %u hosts; %llu base PageRank solve(s) shared by %zu detectors\n\n",
      r.source.description.c_str(), r.source.graph().num_nodes(),
      static_cast<unsigned long long>(r.base_pagerank_solves),
      r.detectors.size());

  util::TextTable table;
  table.SetHeader({"detector", "flagged", "precision", "recall", "notes"});
  const char* notes[] = {
      "detection; no oracle labels needed",
      "demotion retrofitted as detection",
      "needs oracle labels of all in-neighbors",
      "needs oracle labels of all in-neighbors",
  };
  for (size_t i = 0; i < r.detectors.size(); ++i) {
    const pipeline::DetectorOutput& d = r.detectors[i];
    table.AddRow({d.detector, std::to_string(d.flagged_count),
                  util::FormatDouble(Metric(d, "precision"), 3),
                  util::FormatDouble(Metric(d, "recall"), 3), notes[i]});
  }
  std::printf("%s\n", table.ToString().c_str());

  std::printf(
      "Spam mass achieves high precision without any per-neighbor oracle;\n"
      "TrustRank's low-trust bucket mixes spam with merely-unpopular good\n"
      "hosts; the naive schemes inspect only direct in-neighbors and miss\n"
      "indirectly boosted targets (Figures 1-2 of the paper).\n");
  return 0;
}
