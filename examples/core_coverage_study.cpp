// Good-core size and coverage study (Sections 4.4.2 and 4.5): shrink the
// core uniformly, restrict it to one region, and apply the paper's
// anomaly fix (adding a community's hub hosts to the core) — watching how
// each choice moves detection precision and the anomalous hosts' mass.
//
//   $ ./core_coverage_study [scale] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/good_core.h"
#include "eval/experiment.h"
#include "eval/precision.h"
#include "util/table.h"

using namespace spammass;

namespace {

double PrecisionAt(const eval::EvaluationSample& sample, double tau) {
  auto curve = eval::ComputePrecisionCurve(sample, {tau});
  return curve[0].precision_including_anomalous;
}

}  // namespace

int main(int argc, char** argv) {
  eval::PipelineOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  auto result = eval::RunPipeline(options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const eval::PipelineResult& r = result.value();
  util::Rng rng(options.seed + 1);

  std::printf("full core: %zu hosts; sample: %zu judged hosts\n\n",
              r.good_core.size(), r.sample.hosts.size());

  // --- Core size sweep (Figure 5's 100% / 10% / 1% / 0.1% cores). ---------
  util::TextTable table;
  table.SetHeader({"core", "hosts", "prec@0.98", "prec@0.5", "prec@0"});
  struct Variant {
    std::string name;
    std::vector<graph::NodeId> core;
  };
  std::vector<Variant> variants;
  variants.push_back({"100%", r.good_core});
  variants.push_back({"10%", core::SubsampleCore(r.good_core, 0.1, &rng)});
  variants.push_back({"1%", core::SubsampleCore(r.good_core, 0.01, &rng)});
  variants.push_back({"0.1%", core::SubsampleCore(r.good_core, 0.001, &rng)});
  uint32_t it_region = r.web.RegionIndex("it");
  variants.push_back({"it-only", core::FilterCoreByRegion(
                                     r.good_core, r.web.region_of_node,
                                     it_region)});
  for (const auto& variant : variants) {
    if (variant.core.empty()) continue;
    auto reestimate = eval::ReestimateWithCore(r, variant.core, options);
    if (!reestimate.ok()) {
      std::fprintf(stderr, "core '%s' failed: %s\n", variant.name.c_str(),
                   reestimate.status().ToString().c_str());
      continue;
    }
    const eval::EvaluationSample& sample = reestimate.value().sample;
    table.AddRow({variant.name, std::to_string(variant.core.size()),
                  util::FormatDouble(PrecisionAt(sample, 0.98), 3),
                  util::FormatDouble(PrecisionAt(sample, 0.5), 3),
                  util::FormatDouble(PrecisionAt(sample, 0.0), 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Shrinking the core degrades precision gradually; the single-region\n"
      "core does worse than a uniform core many times smaller — breadth of\n"
      "coverage matters more than size (Section 4.5).\n\n");

  // --- Anomaly fix (Section 4.4.2): add the mall community's hub hosts. ---
  uint32_t mall = r.web.RegionIndex("cn-mall");
  std::vector<graph::NodeId> hubs;
  for (graph::NodeId x = 0; x < r.web.graph.num_nodes(); ++x) {
    if (r.web.region_of_node[x] == mall && r.web.is_hub[x]) hubs.push_back(x);
  }
  auto fixed = eval::ReestimateWithCore(
      r, core::ExpandCore(r.good_core, hubs), options);
  if (!fixed.ok()) return 1;
  const core::MassEstimates& fixed_estimates = fixed.value().estimates;

  double before_mean = 0, after_mean = 0;
  uint64_t mall_hosts = 0;
  for (graph::NodeId x : r.filtered) {
    if (r.web.region_of_node[x] == mall) {
      before_mean += r.estimates.relative_mass[x];
      after_mean += fixed_estimates.relative_mass[x];
      ++mall_hosts;
    }
  }
  if (mall_hosts > 0) {
    before_mean /= mall_hosts;
    after_mean /= mall_hosts;
  }
  std::printf(
      "anomaly fix: adding the %zu identifiable 'cn-mall' hub hosts to the\n"
      "core moves the community's mean relative mass (over high-PageRank\n"
      "hosts) from %.3f to %.3f — the paper saw 0.99 -> ~0.35 for Alibaba\n"
      "after adding 12 hub hosts (Section 4.4.2).\n",
      hubs.size(), before_mean, after_mean);
  return 0;
}
