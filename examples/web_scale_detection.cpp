// Full detection pipeline on a synthetic web-scale crawl: generate a
// Yahoo-2004-like host graph, assemble the good core, estimate spam mass,
// and report the top detected spam hosts (Sections 3.6 and 4 end to end).
//
//   $ ./web_scale_detection [scale] [seed]
//
// scale defaults to 0.25 (~45k hosts); scale 1.0 reproduces the full
// benchmark scenario (~170k hosts).

#include <cstdio>
#include <cstdlib>

#include "core/detector.h"
#include "eval/experiment.h"
#include "graph/graph_stats.h"
#include "pipeline/manifest.h"
#include "util/string_util.h"
#include "util/table.h"
#include "util/timer.h"

using namespace spammass;

int main(int argc, char** argv) {
  eval::PipelineOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.25;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  util::WallTimer timer;
  std::printf("generating synthetic web (scale %.2f, seed %llu)...\n",
              options.scale, static_cast<unsigned long long>(options.seed));
  auto result = eval::RunPipeline(options);
  if (!result.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  const eval::PipelineResult& r = result.value();
  auto stats = graph::ComputeGraphStats(r.web.graph);
  std::printf(
      "  %s hosts, %s links; %.1f%% without outlinks, %.1f%% without\n"
      "  inlinks, %.1f%% isolated (paper: 66.4%% / 35%% / 25.8%%)\n",
      util::FormatWithCommas(stats.num_nodes).c_str(),
      util::FormatWithCommas(stats.num_edges).c_str(),
      100 * stats.FractionNoOutlinks(), 100 * stats.FractionNoInlinks(),
      100 * stats.FractionIsolated());
  std::printf("  good core: %s hosts; gamma estimated from a judged sample: %.3f\n",
              util::FormatWithCommas(r.good_core.size()).c_str(),
              r.gamma_used);
  std::printf("  pipeline wall time: %.1fs\n\n", timer.Seconds());

  core::DetectorConfig config;  // τ = 0.98, ρ = 10 (the paper's settings)
  auto candidates = core::DetectSpamCandidates(r.estimates, config);

  uint64_t true_spam = 0;
  for (const auto& c : candidates) {
    if (r.web.labels.IsSpam(c.node)) ++true_spam;
  }
  std::printf(
      "detector (tau=%.2f, rho=%.0f): %s candidates, %s are true spam "
      "(precision %.1f%%)\n\n",
      config.relative_mass_threshold, config.scaled_pagerank_threshold,
      util::FormatWithCommas(candidates.size()).c_str(),
      util::FormatWithCommas(true_spam).c_str(),
      candidates.empty() ? 0.0 : 100.0 * true_spam / candidates.size());

  util::TextTable table;
  table.SetHeader(
      {"rank", "host", "scaled PR", "rel. mass", "ground truth"});
  for (size_t i = 0; i < candidates.size() && i < 20; ++i) {
    const auto& c = candidates[i];
    table.AddRow({std::to_string(i + 1),
                  std::string(r.web.graph.HostName(c.node)),
                  util::FormatDouble(c.scaled_pagerank, 1),
                  util::FormatDouble(c.relative_mass, 4),
                  core::NodeLabelToString(r.web.labels.Get(c.node))});
  }
  std::printf("top candidates:\n%s\n", table.ToString().c_str());

  // The documented blind spot: expired-domain spam keeps a low mass.
  double expired_max = -1e9;
  for (graph::NodeId t : r.web.expired_domain_targets) {
    expired_max = std::max(expired_max, r.estimates.relative_mass[t]);
  }
  std::printf(
      "expired-domain spam hosts: %zu, max relative mass %.3f — all below\n"
      "tau, exactly the false-negative class of Section 4.4.3 (their\n"
      "PageRank is donated by good hosts, so mass estimation cannot see\n"
      "them).\n",
      r.web.expired_domain_targets.size(), expired_max);

  // Every pipeline run carries its manifest: config echo, stage timings,
  // solver iteration counts. Drop it next to the run for provenance.
  util::Status status = pipeline::WriteManifestFile(
      r.manifest_json, "web_scale_manifest.json");
  if (status.ok()) {
    std::printf("\nrun manifest -> web_scale_manifest.json\n");
  }
  return 0;
}
