// Quickstart: build a tiny host graph, run the spam-mass detector through
// the pipeline, and inspect the per-host mass estimates (Algorithm 2).
//
//   $ ./quickstart
//
// The graph is the paper's Figure 2 example, so the numbers printed here
// match Table 1 of the paper exactly.

#include <cstdio>

#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "synth/paper_graphs.h"
#include "util/table.h"

using namespace spammass;

int main() {
  // 1. A web graph wrapped in a GraphSource. MakeFigure2Graph wires the
  //    12-node example of the paper; in a real deployment you would point
  //    GraphSource::FromFile at an edge list or SMWG binary (the format is
  //    sniffed automatically).
  synth::Figure2Graph fig = synth::MakeFigure2Graph();
  pipeline::GraphSource source =
      pipeline::GraphSource::FromGraph(std::move(fig.graph), "figure 2");
  // 2. A good core: nodes known to be reputable. The paper assembles one
  //    from a trusted directory plus governmental and educational hosts;
  //    here we use the example's core {g0, g1, g3}.
  source.WithGoodCore(fig.good_core);
  auto loaded = source.Load();
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n",
                 loaded.status().ToString().c_str());
    return 1;
  }
  const graph::WebGraph& web = loaded.value().graph();
  std::printf("graph: %u hosts, %llu links\n\n", web.num_nodes(),
              static_cast<unsigned long long>(web.num_edges()));

  // 3. Configure and prepare the pipeline context. Preparing the
  //    mass-estimates artifact runs the two PageRank computations (regular
  //    and core-based) as one fused multi-RHS solve, then forms
  //    M̃ = p − p′ and m̃ = 1 − p′/p.
  pipeline::PipelineConfig config;
  config.solver.tolerance = 1e-14;
  config.solver.max_iterations = 2000;
  config.scale_core_jump = false;  // the small example needs no γ scaling
  config.detection.scaled_pagerank_threshold = 1.5;
  config.detection.relative_mass_threshold = 0.5;

  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  util::Status status = context.Prepare(needs);
  if (!status.ok()) {
    std::fprintf(stderr, "mass estimation failed: %s\n",
                 status.ToString().c_str());
    return 1;
  }
  const core::MassEstimates& estimates = context.MassEstimates();

  // 4. Inspect the per-host features (Table 1 of the paper).
  auto scaled_p = pagerank::ScaledScores(estimates.pagerank, 0.85);
  auto scaled_p0 = pagerank::ScaledScores(estimates.core_pagerank, 0.85);
  auto scaled_mass = pagerank::ScaledScores(estimates.absolute_mass, 0.85);
  util::TextTable table;
  table.SetHeader({"host", "PageRank", "core PR", "est. mass", "rel. mass"});
  for (graph::NodeId x = 0; x < web.num_nodes(); ++x) {
    table.AddRow({std::string(web.HostName(x)),
                  util::FormatDouble(scaled_p[x], 3),
                  util::FormatDouble(scaled_p0[x], 3),
                  util::FormatDouble(scaled_mass[x], 3),
                  util::FormatDouble(estimates.relative_mass[x], 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // 5. Detect spam candidates — hosts with scaled PageRank >= ρ and
  //    relative mass >= τ — via the registered "spam_mass" detector. Any
  //    detector in the registry (trustrank, the naive schemes, ...) runs
  //    against the same prepared context.
  auto detector = pipeline::DetectorRegistry::Global().Create("spam_mass");
  if (!detector.ok()) return 1;
  auto output = detector.value()->Run(context);
  if (!output.ok()) {
    std::fprintf(stderr, "detector failed: %s\n",
                 output.status().ToString().c_str());
    return 1;
  }
  std::printf("spam candidates (rho=%.1f, tau=%.2f):\n",
              config.detection.scaled_pagerank_threshold,
              config.detection.relative_mass_threshold);
  for (const auto& c : output.value().candidates) {
    std::printf("  %-18s  scaled PR %-6s  relative mass %s\n",
                std::string(web.HostName(c.node)).c_str(),
                util::FormatDouble(c.scaled_pagerank, 2).c_str(),
                util::FormatDouble(c.relative_mass, 2).c_str());
  }
  std::printf(
      "\nNote: x and s0 are true spam; g2 is the paper's documented false\n"
      "positive caused by core incompleteness (g2 is good but absent from\n"
      "the core, Section 3.6).\n");
  return 0;
}
