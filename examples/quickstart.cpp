// Quickstart: build a tiny host graph, estimate spam mass from a good core,
// and run the mass-based detector (Algorithm 2).
//
//   $ ./quickstart
//
// The graph is the paper's Figure 2 example, so the numbers printed here
// match Table 1 of the paper exactly.

#include <cstdio>

#include "core/detector.h"
#include "core/spam_mass.h"
#include "pagerank/solver.h"
#include "synth/paper_graphs.h"
#include "util/table.h"

using namespace spammass;

int main() {
  // 1. A web graph. MakeFigure2Graph wires the 12-node example of the
  //    paper; in a real deployment you would load an edge list with
  //    graph::ReadEdgeListText or build one with graph::GraphBuilder.
  synth::Figure2Graph fig = synth::MakeFigure2Graph();
  const graph::WebGraph& web = fig.graph;
  std::printf("graph: %u hosts, %llu links\n\n", web.num_nodes(),
              static_cast<unsigned long long>(web.num_edges()));

  // 2. A good core: nodes known to be reputable. The paper assembles one
  //    from a trusted directory plus governmental and educational hosts;
  //    here we use the example's core {g0, g1, g3}.
  const std::vector<graph::NodeId>& good_core = fig.good_core;

  // 3. Estimate spam mass: two PageRank computations (regular and
  //    core-based), then M̃ = p − p′ and m̃ = 1 − p′/p.
  core::SpamMassOptions options;
  options.solver.tolerance = 1e-14;
  options.solver.max_iterations = 2000;
  options.scale_core_jump = false;  // the small example needs no γ scaling
  auto estimates = core::EstimateSpamMass(web, good_core, options);
  if (!estimates.ok()) {
    std::fprintf(stderr, "mass estimation failed: %s\n",
                 estimates.status().ToString().c_str());
    return 1;
  }

  // 4. Inspect the per-host features (Table 1 of the paper).
  auto scaled_p = pagerank::ScaledScores(estimates.value().pagerank, 0.85);
  auto scaled_p0 =
      pagerank::ScaledScores(estimates.value().core_pagerank, 0.85);
  auto scaled_mass =
      pagerank::ScaledScores(estimates.value().absolute_mass, 0.85);
  util::TextTable table;
  table.SetHeader({"host", "PageRank", "core PR", "est. mass", "rel. mass"});
  for (graph::NodeId x = 0; x < web.num_nodes(); ++x) {
    table.AddRow({std::string(web.HostName(x)),
                  util::FormatDouble(scaled_p[x], 3),
                  util::FormatDouble(scaled_p0[x], 3),
                  util::FormatDouble(scaled_mass[x], 3),
                  util::FormatDouble(estimates.value().relative_mass[x], 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // 5. Detect spam candidates: hosts with scaled PageRank >= ρ and
  //    relative mass >= τ.
  core::DetectorConfig config;
  config.scaled_pagerank_threshold = 1.5;
  config.relative_mass_threshold = 0.5;
  auto candidates = core::DetectSpamCandidates(estimates.value(), config);
  std::printf("spam candidates (rho=%.1f, tau=%.2f):\n",
              config.scaled_pagerank_threshold,
              config.relative_mass_threshold);
  for (const auto& c : candidates) {
    std::printf("  %-18s  scaled PR %-6s  relative mass %s\n",
                std::string(web.HostName(c.node)).c_str(),
                util::FormatDouble(c.scaled_pagerank, 2).c_str(),
                util::FormatDouble(c.relative_mass, 2).c_str());
  }
  std::printf(
      "\nNote: x and s0 are true spam; g2 is the paper's documented false\n"
      "positive caused by core incompleteness (g2 is good but absent from\n"
      "the core, Section 3.6).\n");
  return 0;
}
