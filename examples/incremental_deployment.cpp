// Incremental deployment walkthrough — the operational story of Sections
// 4.4.2 and 4.5: a search engine can "start with relatively small cores and
// incrementally expand them to achieve better and better performance".
// This example plays four stages on one synthetic web:
//
//   stage 1: bootstrap with a tiny good core (1% of the lists)
//   stage 2: grow to the full assembled core
//   stage 3: fix a discovered community anomaly by adding its hub hosts
//   stage 4: harvest a spam core from the detector and combine (Sec. 3.4)
//
// and reports detection quality (precision/recall at τ = 0.9, AUC over T)
// after each stage.
//
//   $ ./incremental_deployment [scale] [seed]

#include <cstdio>
#include <cstdlib>

#include "core/bootstrap.h"
#include "core/detector.h"
#include "core/good_core.h"
#include "eval/experiment.h"
#include "eval/metrics.h"
#include "util/table.h"

using namespace spammass;

namespace {

struct StageQuality {
  double precision = 0;
  double recall = 0;
  double auc = 0;
  uint64_t flagged = 0;
};

StageQuality Measure(const core::MassEstimates& estimates,
                     const std::vector<graph::NodeId>& population,
                     const core::LabelStore& labels, double tau = 0.9) {
  StageQuality q;
  core::DetectorConfig config;
  config.relative_mass_threshold = tau;
  auto candidates = core::DetectSpamCandidates(estimates, config);
  uint64_t tp = 0, total_spam = 0;
  for (const auto& c : candidates) tp += labels.IsSpam(c.node);
  for (graph::NodeId x : population) total_spam += labels.IsSpam(x);
  q.flagged = candidates.size();
  q.precision =
      candidates.empty() ? 0 : static_cast<double>(tp) / candidates.size();
  q.recall = total_spam ? static_cast<double>(tp) / total_spam : 0;
  std::vector<eval::ScoredExample> examples;
  for (graph::NodeId x : population) {
    examples.push_back({estimates.relative_mass[x], labels.IsSpam(x)});
  }
  q.auc = eval::ComputeAuc(examples);
  return q;
}

}  // namespace

int main(int argc, char** argv) {
  eval::PipelineOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : 0.15;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  auto pipeline = eval::RunPipeline(options);
  if (!pipeline.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 pipeline.status().ToString().c_str());
    return 1;
  }
  const eval::PipelineResult& r = pipeline.value();
  util::Rng rng(options.seed + 99);

  core::SpamMassOptions mass = options.mass;
  mass.gamma = r.gamma_used;

  util::TextTable table;
  table.SetHeader({"stage", "|core|", "flagged", "precision@0.9",
                   "recall@0.9", "AUC over T"});
  auto report = [&](const char* stage, size_t core_size,
                    const core::MassEstimates& estimates,
                    double tau = 0.9) {
    StageQuality q = Measure(estimates, r.filtered, r.web.labels, tau);
    table.AddRow({stage, std::to_string(core_size),
                  std::to_string(q.flagged),
                  util::FormatDouble(q.precision, 3),
                  util::FormatDouble(q.recall, 3),
                  util::FormatDouble(q.auc, 3)});
  };

  // Stage 1: a 1% core — what a young deployment might have. Re-estimation
  // with a different core keeps the base run's γ (eval::ReestimateWithCore).
  auto tiny_core = core::SubsampleCore(r.good_core, 0.01, &rng);
  auto stage1 = eval::ReestimateWithCore(r, tiny_core, options);
  if (!stage1.ok()) return 1;
  report("1: tiny core (1%)", tiny_core.size(), stage1.value().estimates);

  // Stage 2: the full assembled core (directory + gov + edu lists).
  report("2: full core", r.good_core.size(), r.estimates);

  // Stage 3: the operator investigates high-mass good hosts, finds the
  // isolated commerce community, and white-lists its hub hosts
  // (Section 4.4.2's procedure).
  uint32_t mall = r.web.RegionIndex("cn-mall");
  std::vector<graph::NodeId> hubs;
  for (graph::NodeId x = 0; x < r.web.graph.num_nodes(); ++x) {
    if (r.web.region_of_node[x] == mall && r.web.is_hub[x]) hubs.push_back(x);
  }
  auto fixed_core = core::ExpandCore(r.good_core, hubs);
  auto stage3 = eval::ReestimateWithCore(r, fixed_core, options);
  if (!stage3.ok()) return 1;
  report("3: + anomaly hubs", fixed_core.size(), stage3.value().estimates);

  // Stage 4: harvest a high-confidence spam core and combine (Section 3.4).
  core::BootstrapOptions bootstrap;
  bootstrap.mass = mass;
  bootstrap.seed_detector.relative_mass_threshold = 0.99;
  auto stage4 = core::BootstrapSpamCore(r.web.graph, fixed_core, bootstrap);
  if (!stage4.ok()) {
    std::fprintf(stderr, "bootstrap failed: %s\n",
                 stage4.status().ToString().c_str());
    return 1;
  }
  // Averaging with a (necessarily sparse) spam core halves the mass scale
  // of spam the black-list missed, so the operating threshold halves too.
  report("4: + spam-core combine",
         fixed_core.size() + stage4.value().spam_core.size(),
         stage4.value().combined, /*tau=*/0.45);

  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "Reading the table top to bottom is the paper's deployment story:\n"
      "every increment — more core, anomaly fixes, a harvested black-list —\n"
      "buys better separation without retraining anything; the estimator is\n"
      "always just two PageRank runs (Section 4.5's conclusion).\n");
  return 0;
}
