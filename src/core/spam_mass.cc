#include "core/spam_mass.h"

#include <cmath>

#include "pagerank/contribution.h"
#include "pagerank/solver_validate.h"
#include "util/debug.h"
#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::PageRankResult;
using util::Result;
using util::Status;

namespace {

/// Derives absolute/relative mass from p and a good-contribution estimate.
void FillFromGoodContribution(const std::vector<double>& p,
                              const std::vector<double>& good_contribution,
                              MassEstimates* out) {
  const size_t n = p.size();
  out->absolute_mass.resize(n);
  out->relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out->absolute_mass[i] = p[i] - good_contribution[i];
    // p_i >= (1−c)/n > 0 under a strictly positive uniform jump, but guard
    // against pathological jump vectors anyway.
    out->relative_mass[i] = p[i] > 0 ? 1.0 - good_contribution[i] / p[i] : 0.0;
  }
}

}  // namespace

Result<MassEstimates> EstimateSpamMass(const WebGraph& graph,
                                       const std::vector<NodeId>& good_core,
                                       const SpamMassOptions& options) {
  if (good_core.empty()) {
    return Status::InvalidArgument("good core must not be empty");
  }
  for (NodeId x : good_core) {
    if (x >= graph.num_nodes()) {
      return Status::InvalidArgument("good-core node id out of range");
    }
  }
  if (!(options.gamma > 0.0) || options.gamma > 1.0) {
    return Status::InvalidArgument("gamma must lie in (0, 1]");
  }

  auto p = pagerank::ComputeUniformPageRank(graph, options.solver);
  if (!p.ok()) return p.status();

  JumpVector w =
      options.scale_core_jump
          ? JumpVector::ScaledCore(graph.num_nodes(), good_core, options.gamma)
          : JumpVector::Core(graph.num_nodes(), good_core);
  auto p_prime = pagerank::ComputePageRank(graph, w, options.solver);
  if (!p_prime.ok()) return p_prime.status();

  MassEstimates est;
  est.damping = options.solver.damping;
  est.pagerank = std::move(p.value().scores);
  est.core_pagerank = std::move(p_prime.value().scores);
  FillFromGoodContribution(est.pagerank, est.core_pagerank, &est);
  // Section 4 consistency p = p′ + M̃, entrywise. O(n), debug only.
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

Result<MassEstimates> EstimateSpamMassFromSpamCore(
    const WebGraph& graph, const std::vector<NodeId>& spam_core,
    const SpamMassOptions& options) {
  if (spam_core.empty()) {
    return Status::InvalidArgument("spam core must not be empty");
  }
  for (NodeId x : spam_core) {
    if (x >= graph.num_nodes()) {
      return Status::InvalidArgument("spam-core node id out of range");
    }
  }
  auto p = pagerank::ComputeUniformPageRank(graph, options.solver);
  if (!p.ok()) return p.status();
  // M̂ = PR(v^Ṽ⁻): the spam contribution is estimated directly.
  auto m_hat =
      pagerank::ComputeSetContribution(graph, spam_core, options.solver);
  if (!m_hat.ok()) return m_hat.status();

  MassEstimates est;
  est.damping = options.solver.damping;
  est.pagerank = std::move(p.value().scores);
  est.absolute_mass = std::move(m_hat.value().scores);
  const size_t n = est.pagerank.size();
  est.core_pagerank.resize(n);
  est.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    est.core_pagerank[i] = est.pagerank[i] - est.absolute_mass[i];
    est.relative_mass[i] = est.pagerank[i] > 0
                               ? est.absolute_mass[i] / est.pagerank[i]
                               : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

MassEstimates CombineEstimates(const MassEstimates& from_good_core,
                               const MassEstimates& from_spam_core,
                               double weight) {
  CHECK_GE(weight, 0.0);
  CHECK_LE(weight, 1.0);
  CHECK_EQ(from_good_core.pagerank.size(), from_spam_core.pagerank.size());
  MassEstimates est;
  est.damping = from_good_core.damping;
  est.pagerank = from_good_core.pagerank;
  const size_t n = est.pagerank.size();
  est.absolute_mass.resize(n);
  est.core_pagerank.resize(n);
  est.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    est.absolute_mass[i] = weight * from_good_core.absolute_mass[i] +
                           (1.0 - weight) * from_spam_core.absolute_mass[i];
    est.core_pagerank[i] = est.pagerank[i] - est.absolute_mass[i];
    est.relative_mass[i] = est.pagerank[i] > 0
                               ? est.absolute_mass[i] / est.pagerank[i]
                               : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

Result<MassEstimates> ComputeActualSpamMass(
    const WebGraph& graph, const LabelStore& labels,
    const pagerank::SolverOptions& solver) {
  if (labels.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument("label store does not match the graph");
  }
  auto p = pagerank::ComputeUniformPageRank(graph, solver);
  if (!p.ok()) return p.status();
  auto q_spam =
      pagerank::ComputeSetContribution(graph, labels.SpamNodes(), solver);
  if (!q_spam.ok()) return q_spam.status();

  MassEstimates actual;
  actual.damping = solver.damping;
  actual.pagerank = std::move(p.value().scores);
  actual.absolute_mass = std::move(q_spam.value().scores);
  const size_t n = actual.pagerank.size();
  actual.core_pagerank.resize(n);
  actual.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    actual.core_pagerank[i] = actual.pagerank[i] - actual.absolute_mass[i];
    actual.relative_mass[i] = actual.pagerank[i] > 0
                                  ? actual.absolute_mass[i] / actual.pagerank[i]
                                  : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      actual.pagerank, actual.core_pagerank, actual.absolute_mass)));
  return actual;
}

}  // namespace spammass::core
