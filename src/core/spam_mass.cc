#include "core/spam_mass.h"

#include <cmath>

#include "pagerank/solver_validate.h"
#include "util/debug.h"
#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::PageRankResult;
using util::Result;
using util::Status;

namespace {

/// Derives absolute/relative mass from p and a good-contribution estimate.
void FillFromGoodContribution(const std::vector<double>& p,
                              const std::vector<double>& good_contribution,
                              MassEstimates* out) {
  const size_t n = p.size();
  out->absolute_mass.resize(n);
  out->relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    out->absolute_mass[i] = p[i] - good_contribution[i];
    // p_i >= (1−c)/n > 0 under a strictly positive uniform jump, but guard
    // against pathological jump vectors anyway.
    out->relative_mass[i] = p[i] > 0 ? 1.0 - good_contribution[i] / p[i] : 0.0;
  }
}

}  // namespace

MassEstimates MassEstimatesFromScores(std::vector<double> pagerank,
                                      std::vector<double> core_pagerank,
                                      double damping) {
  CHECK_EQ(pagerank.size(), core_pagerank.size());
  MassEstimates est;
  est.damping = damping;
  est.pagerank = std::move(pagerank);
  est.core_pagerank = std::move(core_pagerank);
  FillFromGoodContribution(est.pagerank, est.core_pagerank, &est);
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

Result<MassEstimates> EstimateSpamMass(const WebGraph& graph,
                                       const std::vector<NodeId>& good_core,
                                       const SpamMassOptions& options,
                                       pagerank::SolverWorkspace* workspace) {
  if (good_core.empty()) {
    return Status::InvalidArgument("good core must not be empty");
  }
  for (NodeId x : good_core) {
    if (x >= graph.num_nodes()) {
      return Status::InvalidArgument("good-core node id out of range");
    }
  }
  if (!(options.gamma > 0.0) || options.gamma > 1.0) {
    return Status::InvalidArgument("gamma must lie in (0, 1]");
  }

  // One fused multi-vector stream for p = PR(v) and p′ = PR(w): both
  // vectors advance through the same CSR traversal per sweep (§4.2's two
  // solves at roughly the memory-traffic price of one under kJacobi).
  std::vector<JumpVector> jumps;
  jumps.reserve(2);
  jumps.push_back(JumpVector::Uniform(graph.num_nodes()));
  jumps.push_back(options.scale_core_jump
                      ? JumpVector::ScaledCore(graph.num_nodes(), good_core,
                                               options.gamma)
                      : JumpVector::Core(graph.num_nodes(), good_core));
  auto solves = pagerank::ComputePageRankMulti(graph, jumps, options.solver,
                                               workspace);
  if (!solves.ok()) return solves.status();

  // Section 4 consistency p = p′ + M̃ is DCHECKed inside the derivation.
  return MassEstimatesFromScores(std::move(solves.value()[0].scores),
                                 std::move(solves.value()[1].scores),
                                 options.solver.damping);
}

Result<MassEstimates> EstimateSpamMassFromSpamCore(
    const WebGraph& graph, const std::vector<NodeId>& spam_core,
    const SpamMassOptions& options, pagerank::SolverWorkspace* workspace) {
  if (spam_core.empty()) {
    return Status::InvalidArgument("spam core must not be empty");
  }
  for (NodeId x : spam_core) {
    if (x >= graph.num_nodes()) {
      return Status::InvalidArgument("spam-core node id out of range");
    }
  }
  // M̂ = PR(v^Ṽ⁻): the spam contribution is estimated directly; fused with
  // the regular-PageRank solve as one multi-vector stream.
  std::vector<JumpVector> jumps;
  jumps.reserve(2);
  jumps.push_back(JumpVector::Uniform(graph.num_nodes()));
  jumps.push_back(JumpVector::Core(graph.num_nodes(), spam_core));
  auto solves = pagerank::ComputePageRankMulti(graph, jumps, options.solver,
                                               workspace);
  if (!solves.ok()) return solves.status();

  MassEstimates est;
  est.damping = options.solver.damping;
  est.pagerank = std::move(solves.value()[0].scores);
  est.absolute_mass = std::move(solves.value()[1].scores);
  const size_t n = est.pagerank.size();
  est.core_pagerank.resize(n);
  est.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    est.core_pagerank[i] = est.pagerank[i] - est.absolute_mass[i];
    est.relative_mass[i] = est.pagerank[i] > 0
                               ? est.absolute_mass[i] / est.pagerank[i]
                               : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

MassEstimates CombineEstimates(const MassEstimates& from_good_core,
                               const MassEstimates& from_spam_core,
                               double weight) {
  CHECK_GE(weight, 0.0);
  CHECK_LE(weight, 1.0);
  CHECK_EQ(from_good_core.pagerank.size(), from_spam_core.pagerank.size());
  MassEstimates est;
  est.damping = from_good_core.damping;
  est.pagerank = from_good_core.pagerank;
  const size_t n = est.pagerank.size();
  est.absolute_mass.resize(n);
  est.core_pagerank.resize(n);
  est.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    est.absolute_mass[i] = weight * from_good_core.absolute_mass[i] +
                           (1.0 - weight) * from_spam_core.absolute_mass[i];
    est.core_pagerank[i] = est.pagerank[i] - est.absolute_mass[i];
    est.relative_mass[i] = est.pagerank[i] > 0
                               ? est.absolute_mass[i] / est.pagerank[i]
                               : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      est.pagerank, est.core_pagerank, est.absolute_mass)));
  return est;
}

Result<MassEstimates> ComputeActualSpamMass(
    const WebGraph& graph, const LabelStore& labels,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace) {
  if (labels.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument("label store does not match the graph");
  }
  const std::vector<NodeId> spam_nodes = labels.SpamNodes();
  MassEstimates actual;
  actual.damping = solver.damping;
  if (spam_nodes.empty()) {
    // The contribution of the empty spam set is identically zero; only the
    // regular PageRank needs solving.
    auto p = pagerank::ComputeUniformPageRank(graph, solver, workspace);
    if (!p.ok()) return p.status();
    actual.pagerank = std::move(p.value().scores);
    actual.absolute_mass.assign(actual.pagerank.size(), 0.0);
  } else {
    std::vector<JumpVector> jumps;
    jumps.reserve(2);
    jumps.push_back(JumpVector::Uniform(graph.num_nodes()));
    jumps.push_back(JumpVector::Core(graph.num_nodes(), spam_nodes));
    auto solves =
        pagerank::ComputePageRankMulti(graph, jumps, solver, workspace);
    if (!solves.ok()) return solves.status();
    actual.pagerank = std::move(solves.value()[0].scores);
    actual.absolute_mass = std::move(solves.value()[1].scores);
  }
  const size_t n = actual.pagerank.size();
  actual.core_pagerank.resize(n);
  actual.relative_mass.resize(n);
  for (size_t i = 0; i < n; ++i) {
    actual.core_pagerank[i] = actual.pagerank[i] - actual.absolute_mass[i];
    actual.relative_mass[i] = actual.pagerank[i] > 0
                                  ? actual.absolute_mass[i] / actual.pagerank[i]
                                  : 0.0;
  }
  SPAMMASS_DEBUG_ONLY(CHECK_OK(pagerank::ValidateMassDecomposition(
      actual.pagerank, actual.core_pagerank, actual.absolute_mass)));
  return actual;
}

}  // namespace spammass::core
