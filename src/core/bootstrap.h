// Spam-core bootstrapping. Section 3.4 notes that when a spam core Ṽ⁻ is
// available alongside the good core, the mass estimates can be combined,
// e.g. by averaging M̃ (from Ṽ⁺) with M̂ = PR(v^Ṽ⁻). A search engine rarely
// starts with a black-list — but the detector itself produces one: run
// Algorithm 2, take the high-confidence candidates as Ṽ⁻, re-estimate, and
// combine. This module implements that loop (a natural extension the paper
// leaves open), optionally iterating it.

#ifndef SPAMMASS_CORE_BOOTSTRAP_H_
#define SPAMMASS_CORE_BOOTSTRAP_H_

#include <vector>

#include "core/detector.h"
#include "core/spam_mass.h"
#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::core {

/// Configuration for the bootstrap loop.
struct BootstrapOptions {
  /// Mass estimation settings (solver, γ, scaling).
  SpamMassOptions mass;
  /// Thresholds used to harvest the spam core from the detector. Keep τ
  /// high: false positives planted into Ṽ⁻ are poison.
  DetectorConfig seed_detector;
  /// Weight of the good-core estimate in the combination (Section 3.4
  /// suggests the plain average, 0.5).
  double combine_weight = 0.5;
  /// Number of detect → re-estimate rounds (1 = single bootstrap).
  int rounds = 1;
};

/// Result of bootstrapping.
struct BootstrapResult {
  /// Estimates from the good core alone (round 0 input).
  MassEstimates from_good_core;
  /// Estimates from the harvested spam core (final round).
  MassEstimates from_spam_core;
  /// Combined estimates (final round).
  MassEstimates combined;
  /// The harvested spam core Ṽ⁻ of the final round.
  std::vector<graph::NodeId> spam_core;
};

/// Runs the bootstrap: estimate from `good_core`, detect spam candidates,
/// use them as Ṽ⁻, combine per Section 3.4, and optionally repeat the
/// detect/combine step on the combined estimates. Fails if no candidates
/// clear the seed thresholds in the first round.
util::Result<BootstrapResult> BootstrapSpamCore(
    const graph::WebGraph& graph,
    const std::vector<graph::NodeId>& good_core,
    const BootstrapOptions& options);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_BOOTSTRAP_H_
