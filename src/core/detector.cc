#include "core/detector.h"

#include <algorithm>

#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;

std::vector<SpamCandidate> DetectSpamCandidates(const MassEstimates& estimates,
                                                const DetectorConfig& config) {
  const size_t n = estimates.pagerank.size();
  CHECK_EQ(n, estimates.relative_mass.size());
  const double scale =
      static_cast<double>(n) / (1.0 - estimates.damping);
  std::vector<SpamCandidate> out;
  for (size_t x = 0; x < n; ++x) {
    double scaled_p = estimates.pagerank[x] * scale;
    if (scaled_p < config.scaled_pagerank_threshold) continue;
    if (estimates.relative_mass[x] < config.relative_mass_threshold) continue;
    SpamCandidate cand;
    cand.node = static_cast<NodeId>(x);
    cand.scaled_pagerank = scaled_p;
    cand.relative_mass = estimates.relative_mass[x];
    cand.scaled_absolute_mass = estimates.absolute_mass[x] * scale;
    out.push_back(cand);
  }
  std::sort(out.begin(), out.end(),
            [](const SpamCandidate& a, const SpamCandidate& b) {
              if (a.relative_mass != b.relative_mass) {
                return a.relative_mass > b.relative_mass;
              }
              if (a.scaled_pagerank != b.scaled_pagerank) {
                return a.scaled_pagerank > b.scaled_pagerank;
              }
              return a.node < b.node;
            });
  return out;
}

std::vector<NodeId> PageRankFilteredNodes(const MassEstimates& estimates,
                                          double scaled_threshold) {
  const size_t n = estimates.pagerank.size();
  const double scale = static_cast<double>(n) / (1.0 - estimates.damping);
  std::vector<NodeId> out;
  for (size_t x = 0; x < n; ++x) {
    if (estimates.pagerank[x] * scale >= scaled_threshold) {
      out.push_back(static_cast<NodeId>(x));
    }
  }
  return out;
}

}  // namespace spammass::core
