// Mass-based spam detection — Algorithm 2 of the paper (Section 3.6).
// Nodes with scaled PageRank at least ρ and estimated relative mass at
// least τ are labeled spam candidates.

#ifndef SPAMMASS_CORE_DETECTOR_H_
#define SPAMMASS_CORE_DETECTOR_H_

#include <vector>

#include "core/spam_mass.h"
#include "graph/web_graph.h"

namespace spammass::core {

/// Thresholds for Algorithm 2.
struct DetectorConfig {
  /// Relative mass threshold τ; candidates need m̃_x ≥ τ. The paper reports
  /// ~100% precision at τ = 0.98 on the Yahoo! graph.
  double relative_mass_threshold = 0.98;
  /// PageRank threshold ρ, in *scaled* units (n/(1−c) scaling, under which
  /// a node without inlinks scores 1). The paper uses ρ = 10: nodes below
  /// it cannot have profited from significant boosting.
  double scaled_pagerank_threshold = 10.0;
};

/// One detected spam candidate.
struct SpamCandidate {
  graph::NodeId node = graph::kInvalidNode;
  /// Scaled PageRank p̂_x = p_x · n/(1−c).
  double scaled_pagerank = 0;
  /// Estimated relative mass m̃_x.
  double relative_mass = 0;
  /// Estimated absolute mass M̃_x, scaled like the PageRank.
  double scaled_absolute_mass = 0;
};

/// Runs Algorithm 2 on precomputed mass estimates. Candidates are returned
/// sorted by relative mass (descending), ties broken by scaled PageRank
/// (descending) so the most confidently spammy nodes come first.
std::vector<SpamCandidate> DetectSpamCandidates(const MassEstimates& estimates,
                                                const DetectorConfig& config);

/// The filtered set T = {x : p̂_x ≥ ρ} that Algorithm 2 restricts attention
/// to (Section 4.4 builds its evaluation sample from this set).
std::vector<graph::NodeId> PageRankFilteredNodes(const MassEstimates& estimates,
                                                 double scaled_threshold);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_DETECTOR_H_
