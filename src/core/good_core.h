// Good-core assembly utilities (Sections 3.4, 4.2, 4.5). The paper builds
// Ṽ⁺ from a trusted web directory, US governmental hosts and educational
// hosts worldwide, then studies uniform subsamples (10%, 1%, 0.1%) and a
// narrow single-country core (.it) to understand how size and breadth of
// coverage affect detection. These helpers assemble, merge, subsample and
// regionally filter cores.

#ifndef SPAMMASS_CORE_GOOD_CORE_H_
#define SPAMMASS_CORE_GOOD_CORE_H_

#include <vector>

#include "graph/web_graph.h"
#include "util/random.h"

namespace spammass::core {

/// Converts a membership bitmap into a sorted node list.
std::vector<graph::NodeId> CoreFromMask(const std::vector<bool>& mask);

/// Union of several cores, deduplicated and sorted.
std::vector<graph::NodeId> UnionCores(
    const std::vector<std::vector<graph::NodeId>>& cores);

/// Uniform random subsample retaining ceil(fraction · |core|) members
/// (fraction ∈ (0, 1]); the paper's 10%/1%/0.1% cores (Section 4.5).
std::vector<graph::NodeId> SubsampleCore(const std::vector<graph::NodeId>& core,
                                         double fraction, util::Rng* rng);

/// Keeps only core members whose region id matches `region` — the paper's
/// ".it educational hosts only" narrow-coverage core (Section 4.5).
std::vector<graph::NodeId> FilterCoreByRegion(
    const std::vector<graph::NodeId>& core,
    const std::vector<uint32_t>& region_of_node, uint32_t region);

/// Adds `additions` to a core (dedup + sort) — the Section 4.4.2 anomaly
/// fix, where 12 Alibaba hub hosts are appended to the core.
std::vector<graph::NodeId> ExpandCore(const std::vector<graph::NodeId>& core,
                                      const std::vector<graph::NodeId>& additions);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_GOOD_CORE_H_
