// Spam mass (Sections 3.3-3.5), the paper's central concept.
//
// For a partition {V⁺, V⁻} of the web, the absolute spam mass of node x is
// the PageRank contribution x receives from spam nodes, M_x = q_x^{V⁻}
// (Definition 1), and the relative mass is m_x = M_x / p_x (Definition 2).
// With only a good core Ṽ⁺ available, the paper estimates
//     M̃ = p − p′   and   m̃ = 1 − p′/p,                    (Definition 3)
// where p = PR(v) is regular PageRank and p′ = PR(w) is the core-based
// PageRank under the γ-scaled jump vector w of Section 3.5.

#ifndef SPAMMASS_CORE_SPAM_MASS_H_
#define SPAMMASS_CORE_SPAM_MASS_H_

#include <vector>

#include "core/labels.h"
#include "graph/web_graph.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass::core {

/// Configuration for mass estimation.
struct SpamMassOptions {
  /// PageRank solver settings shared by both PageRank computations.
  pagerank::SolverOptions solver;
  /// Estimated fraction of good nodes on the web (γ, Section 3.5); the
  /// paper conservatively uses γ = 0.85 ("at least 15% of hosts are spam").
  double gamma = 0.85;
  /// When true (default), the core jump vector is scaled to ‖w‖ = γ
  /// (Section 3.5). When false, the raw v^Ṽ⁺ (1/n per member) is used —
  /// this reproduces the failed first attempt described in Section 4.3
  /// where ‖p′‖ ≪ ‖p‖ makes M̃ ≈ p, and exists for the ablation bench.
  bool scale_core_jump = true;
};

/// Output of spam mass estimation. All vectors are indexed by node and are
/// *unscaled* PageRank quantities; use pagerank::ScaledScores (factor
/// n/(1−c)) for paper-style presentation values.
struct MassEstimates {
  /// Regular PageRank p = PR(v), uniform v.
  std::vector<double> pagerank;
  /// Core-based PageRank p′ = PR(w).
  std::vector<double> core_pagerank;
  /// Estimated absolute mass M̃ = p − p′ (can be negative, Section 3.5).
  std::vector<double> absolute_mass;
  /// Estimated relative mass m̃ = 1 − p′/p ∈ (−∞, 1].
  std::vector<double> relative_mass;
  /// Damping used (needed to rescale for presentation).
  double damping = 0.85;
};

/// Derives MassEstimates from already-solved score vectors: p = PR(v) and
/// p′ = PR(w) computed elsewhere (e.g. by a fused multi-vector solve that
/// also carried unrelated jump vectors). Applies Definition 3 exactly as
/// EstimateSpamMass does — M̃ = p − p′, m̃ = 1 − p′/p — so the result is
/// bit-identical to EstimateSpamMass when fed the same scores.
MassEstimates MassEstimatesFromScores(std::vector<double> pagerank,
                                      std::vector<double> core_pagerank,
                                      double damping);

/// Estimates spam mass from a good core Ṽ⁺ (Definition 3 + Section 3.5).
/// Fails if the core is empty or references out-of-range nodes. The two
/// required solves (p = PR(v) and p′ = PR(w)) run as ONE fused multi-vector
/// Jacobi stream when the solver method allows it, paying the graph's
/// memory traffic once per sweep instead of twice. Pass a `workspace` to
/// additionally reuse the thread pool and scratch across repeated
/// estimates (eval loops, benches); null keeps per-call scratch.
util::Result<MassEstimates> EstimateSpamMass(const graph::WebGraph& graph,
                                             const std::vector<graph::NodeId>& good_core,
                                             const SpamMassOptions& options,
                                             pagerank::SolverWorkspace* workspace = nullptr);

/// Alternative estimator when a spam core Ṽ⁻ is available (Section 3.4):
/// M̂ = PR(v^Ṽ⁻). Returns absolute/relative estimates against the regular
/// PageRank.
util::Result<MassEstimates> EstimateSpamMassFromSpamCore(
    const graph::WebGraph& graph, const std::vector<graph::NodeId>& spam_core,
    const SpamMassOptions& options,
    pagerank::SolverWorkspace* workspace = nullptr);

/// Combines a good-core estimate and a spam-core estimate by (weighted)
/// averaging of the absolute masses, `weight` ∈ [0,1] on the good-core
/// side; relative masses are re-derived. (Section 3.4 suggests the simple
/// average, weight = 0.5.)
MassEstimates CombineEstimates(const MassEstimates& from_good_core,
                               const MassEstimates& from_spam_core,
                               double weight = 0.5);

/// Ground-truth spam mass per Definitions 1-2: M = q^{V⁻} where V⁻ is the
/// set of spam-labeled nodes (a spam node's contribution to itself
/// included). Used to validate the estimator on synthetic data (the paper's
/// Table 1 does exactly this on the Figure 2 graph).
util::Result<MassEstimates> ComputeActualSpamMass(
    const graph::WebGraph& graph, const LabelStore& labels,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace = nullptr);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_SPAM_MASS_H_
