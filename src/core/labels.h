// Node labels. The theory of Section 3 assumes a conceptual partition of
// the web into reputable nodes V⁺ and spam nodes V⁻; the evaluation of
// Section 4 additionally runs into hosts that judges could not classify
// ("unknown") or could not even fetch ("non-existent"). LabelStore carries
// all four states and is used both as synthetic ground truth and as the
// result of (simulated) manual judging.

#ifndef SPAMMASS_CORE_LABELS_H_
#define SPAMMASS_CORE_LABELS_H_

#include <cstdint>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::core {

/// Classification of one node.
enum class NodeLabel : uint8_t {
  kGood = 0,
  kSpam = 1,
  kUnknown = 2,
  kNonExistent = 3,
};

const char* NodeLabelToString(NodeLabel label);

/// Dense label assignment for every node of a graph.
class LabelStore {
 public:
  LabelStore() = default;
  /// All nodes start kGood.
  explicit LabelStore(uint32_t num_nodes)
      : labels_(num_nodes, NodeLabel::kGood) {}

  uint32_t num_nodes() const { return static_cast<uint32_t>(labels_.size()); }

  NodeLabel Get(graph::NodeId x) const { return labels_[x]; }
  void Set(graph::NodeId x, NodeLabel label) { labels_[x] = label; }

  bool IsGood(graph::NodeId x) const { return labels_[x] == NodeLabel::kGood; }
  bool IsSpam(graph::NodeId x) const { return labels_[x] == NodeLabel::kSpam; }

  /// All nodes with the given label, ascending.
  std::vector<graph::NodeId> NodesWithLabel(NodeLabel label) const;

  /// Members of V⁺ (good) and V⁻ (spam).
  std::vector<graph::NodeId> GoodNodes() const {
    return NodesWithLabel(NodeLabel::kGood);
  }
  std::vector<graph::NodeId> SpamNodes() const {
    return NodesWithLabel(NodeLabel::kSpam);
  }

  uint64_t CountLabel(NodeLabel label) const;

  /// Fraction of nodes labeled good — the γ of Section 3.5 when the store is
  /// ground truth (or a judged uniform sample of the web).
  double GoodFraction() const;

 private:
  std::vector<NodeLabel> labels_;
};

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_LABELS_H_
