#include "core/trustrank.h"

#include <algorithm>
#include <numeric>

#include "pagerank/jump_vector.h"
#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using util::Result;
using util::Status;

Result<std::vector<NodeId>> SelectSeedsByInversePageRank(
    const WebGraph& graph, uint32_t k, const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("empty graph");
  }
  WebGraph reversed = graph.Transposed();
  // The transposed graph is a throwaway for this one auxiliary solve;
  // encoding its in-adjacency just to honor compressed_gather would cost
  // the O(m) varint pass the option exists to avoid. Solve it plain.
  pagerank::SolverOptions seed_solver = solver;
  seed_solver.compressed_gather = false;
  auto pr = pagerank::ComputeUniformPageRank(reversed, seed_solver, workspace);
  if (!pr.ok()) return pr.status();
  const std::vector<double>& scores = pr.value().scores;
  std::vector<NodeId> order(graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  uint32_t take = std::min<uint32_t>(k, graph.num_nodes());
  std::partial_sort(order.begin(), order.begin() + take, order.end(),
                    [&scores](NodeId a, NodeId b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  order.resize(take);
  return order;
}

Result<std::vector<double>> ComputeTrustRank(
    const WebGraph& graph, const std::vector<NodeId>& seeds,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace) {
  if (seeds.empty()) {
    return Status::InvalidArgument("TrustRank needs a non-empty seed set");
  }
  for (NodeId s : seeds) {
    if (s >= graph.num_nodes()) {
      return Status::InvalidArgument("seed node id out of range");
    }
  }
  // Uniform jump over the seeds with total mass 1.
  JumpVector v = JumpVector::ScaledCore(graph.num_nodes(), seeds, 1.0);
  auto pr = pagerank::ComputePageRank(graph, v, solver, workspace);
  if (!pr.ok()) return pr.status();
  return std::move(pr.value().scores);
}

Result<TrustRankResult> RunTrustRank(const WebGraph& graph,
                                     const LabelStore& labels,
                                     const TrustRankOptions& options,
                                     pagerank::SolverWorkspace* workspace) {
  if (labels.num_nodes() != graph.num_nodes()) {
    return Status::InvalidArgument("label store does not match the graph");
  }
  // One workspace (pool + scratch) backs both the inverse-PageRank seed
  // solve and the forward trust solve; workspaces are graph-agnostic, so
  // the transposed and forward graphs can share it.
  pagerank::SolverWorkspace local;
  pagerank::SolverWorkspace* ws = workspace != nullptr ? workspace : &local;
  auto candidates = SelectSeedsByInversePageRank(
      graph, options.seed_candidates, options.solver, ws);
  if (!candidates.ok()) return candidates.status();

  TrustRankResult result;
  for (NodeId s : candidates.value()) {
    if (!options.filter_seeds_by_oracle || labels.IsGood(s)) {
      result.seeds.push_back(s);
    }
  }
  if (result.seeds.empty()) {
    return Status::FailedPrecondition(
        "oracle rejected every seed candidate; enlarge seed_candidates");
  }
  auto trust = ComputeTrustRank(graph, result.seeds, options.solver, ws);
  if (!trust.ok()) return trust.status();
  result.trust = std::move(trust.value());
  return result;
}

std::vector<NodeId> RankByTrust(const std::vector<double>& trust) {
  std::vector<NodeId> order(trust.size());
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&trust](NodeId a, NodeId b) {
    return trust[a] > trust[b];
  });
  return order;
}

}  // namespace spammass::core
