// Degree-outlier spam detection in the spirit of Fetterly, Manasse and
// Najork, "Spam, damn spam, and statistics" (WebDB 2004) — the related work
// the paper contrasts against in Section 5. Web in/out-degrees follow a
// power law; machine-generated spam farms produce conspicuous spikes of
// pages sharing the exact same degree. This baseline fits the degree
// distribution and flags nodes whose degree bucket is over-populated
// relative to the fit. It catches large regular farms but — as the paper
// argues — misses spam that mimics natural link patterns; the benches
// compare it with mass-based detection on both kinds of farms.

#ifndef SPAMMASS_CORE_DEGREE_OUTLIER_H_
#define SPAMMASS_CORE_DEGREE_OUTLIER_H_

#include <vector>

#include "graph/web_graph.h"

namespace spammass::core {

/// Configuration for the degree-outlier detector.
struct DegreeOutlierConfig {
  /// Flag a degree d when observed_count(d) exceeds the power-law
  /// prediction by this factor.
  double overpopulation_factor = 5.0;
  /// Ignore degrees below this (tiny degrees are noisy and dominate).
  uint32_t min_degree = 2;
  /// Require at least this many nodes sharing the degree.
  uint64_t min_bucket_size = 10;
  /// Examine indegrees, outdegrees, or both.
  bool use_indegree = true;
  bool use_outdegree = true;
};

/// A flagged degree bucket.
struct DegreeSpike {
  bool indegree = true;  // false -> outdegree spike
  uint32_t degree = 0;
  uint64_t observed = 0;
  double expected = 0;
};

/// Result of the detector.
struct DegreeOutlierResult {
  std::vector<DegreeSpike> spikes;
  /// suspected[x] = true when x sits in a flagged bucket.
  std::vector<bool> suspected;
};

/// Runs the detector. The expected bucket population comes from a
/// least-squares power-law fit to the log-log degree histogram.
DegreeOutlierResult DetectDegreeOutliers(const graph::WebGraph& graph,
                                         const DegreeOutlierConfig& config);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_DEGREE_OUTLIER_H_
