// Label-set persistence: "<node-id>\t<label>" lines ("good", "spam",
// "unknown", "non-existent"). Used by the CLI to ship ground truth and
// white-lists alongside edge-list graphs.

#ifndef SPAMMASS_CORE_LABEL_IO_H_
#define SPAMMASS_CORE_LABEL_IO_H_

#include <string>
#include <vector>

#include "core/labels.h"
#include "util/status.h"

namespace spammass::core {

/// Writes every node's label.
util::Status WriteLabels(const LabelStore& labels, const std::string& path);

/// Reads labels for a graph of `num_nodes` nodes. Unlisted nodes stay
/// kGood; malformed lines, unknown label names and out-of-range ids fail.
util::Result<LabelStore> ReadLabels(const std::string& path,
                                    uint32_t num_nodes);

/// Writes a node-id list (one per line) — a core file.
util::Status WriteNodeList(const std::vector<graph::NodeId>& nodes,
                           const std::string& path);

/// Reads a node-id list; ids must be < num_nodes. Duplicates collapse,
/// output is sorted.
util::Result<std::vector<graph::NodeId>> ReadNodeList(const std::string& path,
                                                      uint32_t num_nodes);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_LABEL_IO_H_
