// TrustRank (Gyöngyi, Garcia-Molina, Pedersen, VLDB 2004) — the paper's
// predecessor and the natural baseline (Section 5 discusses how spam mass
// complements it). TrustRank propagates trust from a small, high-quality
// seed of good pages via a biased PageRank; pages with low trust relative
// to their PageRank are *demoted*, but — unlike spam mass — spam is never
// explicitly *detected*.

#ifndef SPAMMASS_CORE_TRUSTRANK_H_
#define SPAMMASS_CORE_TRUSTRANK_H_

#include <vector>

#include "core/labels.h"
#include "graph/web_graph.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass::core {

/// TrustRank configuration.
struct TrustRankOptions {
  pagerank::SolverOptions solver;
  /// Size of the seed set selected by inverse PageRank.
  uint32_t seed_candidates = 50;
  /// Seeds whose oracle label is not good are discarded (the TrustRank
  /// paper has a human oracle inspect the candidate seeds).
  bool filter_seeds_by_oracle = true;
};

/// Result of a TrustRank computation.
struct TrustRankResult {
  /// Seeds that survived oracle filtering (the jump targets).
  std::vector<graph::NodeId> seeds;
  /// Trust scores t = PR(v_seed) with ‖v_seed‖ = 1 over the seeds.
  std::vector<double> trust;
};

/// Selects seed candidates by inverse PageRank — PageRank on the transposed
/// graph — so that seeds are pages from which many pages are quickly
/// reachable. Returns the top `k` nodes (k clamped to n).
util::Result<std::vector<graph::NodeId>> SelectSeedsByInversePageRank(
    const graph::WebGraph& graph, uint32_t k,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace = nullptr);

/// Computes TrustRank with the given explicit seed set: a biased PageRank
/// whose random jump is uniform over the seeds with total mass 1.
util::Result<std::vector<double>> ComputeTrustRank(
    const graph::WebGraph& graph, const std::vector<graph::NodeId>& seeds,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace = nullptr);

/// Full pipeline: inverse-PageRank seed selection, oracle filtering against
/// `labels`, then trust propagation. The two PageRank solves (inverse and
/// forward) share one solver workspace — pass `workspace` to extend the
/// reuse across repeated TrustRank runs.
util::Result<TrustRankResult> RunTrustRank(const graph::WebGraph& graph,
                                           const LabelStore& labels,
                                           const TrustRankOptions& options,
                                           pagerank::SolverWorkspace* workspace = nullptr);

/// Demotion-style ranking signal: orders nodes by trust (descending).
/// Spam-mass detection can be compared against "everything below trust
/// percentile q is demoted".
std::vector<graph::NodeId> RankByTrust(const std::vector<double>& trust);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_TRUSTRANK_H_
