#include "core/naive_schemes.h"

#include "pagerank/contribution.h"
#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;
using util::Result;
using util::Status;

bool FirstLabelingScheme(const WebGraph& graph, const LabelStore& labels,
                         NodeId x) {
  CHECK_LT(x, graph.num_nodes());
  uint32_t spam = 0, total = 0;
  for (NodeId y : graph.InNeighbors(x)) {
    NodeLabel l = labels.Get(y);
    if (l == NodeLabel::kUnknown || l == NodeLabel::kNonExistent) continue;
    ++total;
    if (l == NodeLabel::kSpam) ++spam;
  }
  return total > 0 && 2 * spam > total;
}

Result<bool> SecondLabelingScheme(const WebGraph& graph,
                                  const LabelStore& labels, NodeId x,
                                  const pagerank::SolverOptions& solver,
                                  LinkContributionMode mode) {
  if (x >= graph.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  double spam_contribution = 0, good_contribution = 0;
  if (mode == LinkContributionMode::kExact) {
    for (NodeId y : graph.InNeighbors(x)) {
      auto contrib = pagerank::LinkContribution(graph, y, x, solver);
      if (!contrib.ok()) return contrib.status();
      if (labels.IsSpam(y)) {
        spam_contribution += contrib.value();
      } else if (labels.IsGood(y)) {
        good_contribution += contrib.value();
      }
    }
  } else {
    auto pr = pagerank::ComputeUniformPageRank(graph, solver);
    if (!pr.ok()) return pr.status();
    const std::vector<double>& p = pr.value().scores;
    for (NodeId y : graph.InNeighbors(x)) {
      double contrib = solver.damping * p[y] * graph.InvOutDegree(y);
      if (labels.IsSpam(y)) {
        spam_contribution += contrib;
      } else if (labels.IsGood(y)) {
        good_contribution += contrib;
      }
    }
  }
  return spam_contribution > good_contribution;
}

std::vector<bool> FirstLabelingSchemeAll(const WebGraph& graph,
                                         const LabelStore& labels) {
  std::vector<bool> out(graph.num_nodes(), false);
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    out[x] = FirstLabelingScheme(graph, labels, x);
  }
  return out;
}

Result<std::vector<bool>> SecondLabelingSchemeAll(
    const WebGraph& graph, const LabelStore& labels,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace) {
  auto pr = pagerank::ComputeUniformPageRank(graph, solver, workspace);
  if (!pr.ok()) return pr.status();
  return SecondLabelingSchemeAll(graph, labels, solver.damping,
                                 pr.value().scores);
}

Result<std::vector<bool>> SecondLabelingSchemeAll(
    const WebGraph& graph, const LabelStore& labels, double damping,
    const std::vector<double>& pagerank) {
  if (pagerank.size() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "pagerank vector dimension does not match the graph");
  }
  std::vector<bool> out(graph.num_nodes(), false);
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    double spam_contribution = 0, good_contribution = 0;
    for (NodeId y : graph.InNeighbors(x)) {
      double contrib = damping * pagerank[y] * graph.InvOutDegree(y);
      if (labels.IsSpam(y)) {
        spam_contribution += contrib;
      } else if (labels.IsGood(y)) {
        good_contribution += contrib;
      }
    }
    out[x] = spam_contribution > good_contribution;
  }
  return out;
}

}  // namespace spammass::core
