#include "core/degree_outlier.h"

#include <cmath>

#include "graph/graph_stats.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;

namespace {

/// Least-squares line fit of log(count) against log(degree) over non-empty
/// buckets with degree >= min_degree. Returns {intercept a, slope b} so that
/// expected(d) = exp(a) * d^b; ok == false with fewer than 3 points.
struct LogLogFit {
  double a = 0;
  double b = 0;
  bool ok = false;
};

LogLogFit FitLogLog(const std::vector<uint64_t>& counts, uint32_t min_degree) {
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  int n = 0;
  for (uint32_t d = min_degree; d < counts.size(); ++d) {
    if (counts[d] == 0) continue;
    double x = std::log(static_cast<double>(d));
    double y = std::log(static_cast<double>(counts[d]));
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
    ++n;
  }
  LogLogFit fit;
  if (n < 3) return fit;
  double denom = n * sxx - sx * sx;
  if (denom == 0) return fit;
  fit.b = (n * sxy - sx * sy) / denom;
  fit.a = (sy - fit.b * sx) / n;
  fit.ok = true;
  return fit;
}

void FlagSpikes(const WebGraph& graph, const std::vector<uint64_t>& counts,
                bool indegree, const DegreeOutlierConfig& config,
                DegreeOutlierResult* result) {
  LogLogFit fit = FitLogLog(counts, config.min_degree);
  if (!fit.ok) return;
  std::vector<bool> spiked_degree(counts.size(), false);
  for (uint32_t d = config.min_degree; d < counts.size(); ++d) {
    if (counts[d] < config.min_bucket_size) continue;
    double expected = std::exp(fit.a + fit.b * std::log(static_cast<double>(d)));
    if (static_cast<double>(counts[d]) >
        config.overpopulation_factor * expected) {
      DegreeSpike spike;
      spike.indegree = indegree;
      spike.degree = d;
      spike.observed = counts[d];
      spike.expected = expected;
      result->spikes.push_back(spike);
      spiked_degree[d] = true;
    }
  }
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    uint32_t d = indegree ? graph.InDegree(x) : graph.OutDegree(x);
    if (d < spiked_degree.size() && spiked_degree[d]) {
      result->suspected[x] = true;
    }
  }
}

}  // namespace

DegreeOutlierResult DetectDegreeOutliers(const WebGraph& graph,
                                         const DegreeOutlierConfig& config) {
  DegreeOutlierResult result;
  result.suspected.assign(graph.num_nodes(), false);
  if (config.use_indegree) {
    FlagSpikes(graph, graph::InDegreeDistribution(graph), /*indegree=*/true,
               config, &result);
  }
  if (config.use_outdegree) {
    FlagSpikes(graph, graph::OutDegreeDistribution(graph), /*indegree=*/false,
               config, &result);
  }
  return result;
}

}  // namespace spammass::core
