#include "core/bootstrap.h"

#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;
using graph::WebGraph;
using util::Result;
using util::Status;

Result<BootstrapResult> BootstrapSpamCore(
    const WebGraph& graph, const std::vector<NodeId>& good_core,
    const BootstrapOptions& options) {
  if (options.rounds < 1) {
    return Status::InvalidArgument("at least one bootstrap round required");
  }
  if (options.combine_weight < 0 || options.combine_weight > 1) {
    return Status::InvalidArgument("combine_weight must lie in [0, 1]");
  }

  auto from_good = EstimateSpamMass(graph, good_core, options.mass);
  if (!from_good.ok()) return from_good.status();

  BootstrapResult result;
  result.from_good_core = std::move(from_good.value());

  const MassEstimates* detection_basis = &result.from_good_core;
  for (int round = 0; round < options.rounds; ++round) {
    auto candidates =
        DetectSpamCandidates(*detection_basis, options.seed_detector);
    if (candidates.empty()) {
      if (round == 0) {
        return Status::FailedPrecondition(
            "no spam candidates cleared the seed thresholds");
      }
      break;  // Keep the previous round's combination.
    }
    std::vector<NodeId> spam_core;
    spam_core.reserve(candidates.size());
    for (const auto& c : candidates) spam_core.push_back(c.node);

    auto from_spam =
        EstimateSpamMassFromSpamCore(graph, spam_core, options.mass);
    if (!from_spam.ok()) return from_spam.status();

    result.spam_core = std::move(spam_core);
    result.from_spam_core = std::move(from_spam.value());
    result.combined = CombineEstimates(result.from_good_core,
                                       result.from_spam_core,
                                       options.combine_weight);
    detection_basis = &result.combined;
  }
  return result;
}

}  // namespace spammass::core
