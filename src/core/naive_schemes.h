// The two naive labeling schemes of Section 3.1, implemented as baselines.
// Both assume oracle knowledge of the in-neighbors' labels and fail in
// documented ways (Figures 1 and 2), which the tests reproduce:
//   * Scheme 1 labels x spam iff the majority of its inlinks come from spam
//     in-neighbors — it ignores how much PageRank each link carries.
//   * Scheme 2 weighs each inlink by its PageRank contribution (the change
//     in p_x if the link were removed) — it still ignores nodes that
//     influence x only indirectly.

#ifndef SPAMMASS_CORE_NAIVE_SCHEMES_H_
#define SPAMMASS_CORE_NAIVE_SCHEMES_H_

#include <vector>

#include "core/labels.h"
#include "graph/web_graph.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass::core {

/// Scheme 1 on a single node: true (spam) iff strictly more than half of
/// x's inlinks originate from spam-labeled in-neighbors. Nodes without
/// inlinks are labeled good.
bool FirstLabelingScheme(const graph::WebGraph& graph, const LabelStore& labels,
                         graph::NodeId x);

/// How link contributions are evaluated by scheme 2.
enum class LinkContributionMode {
  /// Exact per the paper: remove the link, recompute PageRank, take the
  /// difference. O(PageRank) per inlink; small graphs only.
  kExact,
  /// First-order approximation c·p_from/out(from): the direct mass the link
  /// hands to its target in one step. Cheap enough for web scale.
  kFirstOrder,
};

/// Scheme 2 on a single node: true (spam) iff the summed contribution of
/// inlinks from spam in-neighbors exceeds that from good in-neighbors.
/// Unknown/non-existent in-neighbors are ignored.
util::Result<bool> SecondLabelingScheme(const graph::WebGraph& graph,
                                        const LabelStore& labels,
                                        graph::NodeId x,
                                        const pagerank::SolverOptions& solver,
                                        LinkContributionMode mode);

/// Applies scheme 1 to every node; out[x] = true means labeled spam.
std::vector<bool> FirstLabelingSchemeAll(const graph::WebGraph& graph,
                                         const LabelStore& labels);

/// Applies scheme 2 (first-order mode) to every node, reusing one PageRank
/// computation (run through `workspace` when given).
util::Result<std::vector<bool>> SecondLabelingSchemeAll(
    const graph::WebGraph& graph, const LabelStore& labels,
    const pagerank::SolverOptions& solver,
    pagerank::SolverWorkspace* workspace = nullptr);

/// As above but with the regular PageRank scores already in hand (e.g. the
/// `pagerank` vector of a MassEstimates from the same pipeline) — no solve
/// at all, just the first-order link weighting c·p_y·inv_out(y).
util::Result<std::vector<bool>> SecondLabelingSchemeAll(
    const graph::WebGraph& graph, const LabelStore& labels, double damping,
    const std::vector<double>& pagerank);

}  // namespace spammass::core

#endif  // SPAMMASS_CORE_NAIVE_SCHEMES_H_
