#include "core/good_core.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace spammass::core {

using graph::NodeId;

std::vector<NodeId> CoreFromMask(const std::vector<bool>& mask) {
  std::vector<NodeId> out;
  for (size_t i = 0; i < mask.size(); ++i) {
    if (mask[i]) out.push_back(static_cast<NodeId>(i));
  }
  return out;
}

std::vector<NodeId> UnionCores(const std::vector<std::vector<NodeId>>& cores) {
  std::vector<NodeId> out;
  for (const auto& core : cores) {
    out.insert(out.end(), core.begin(), core.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<NodeId> SubsampleCore(const std::vector<NodeId>& core,
                                  double fraction, util::Rng* rng) {
  CHECK_GT(fraction, 0.0);
  CHECK_LE(fraction, 1.0);
  if (fraction == 1.0 || core.empty()) return core;
  uint64_t k = static_cast<uint64_t>(
      std::ceil(fraction * static_cast<double>(core.size())));
  k = std::min<uint64_t>(std::max<uint64_t>(k, 1), core.size());
  std::vector<uint64_t> idx = util::SampleWithoutReplacement(core.size(), k, rng);
  std::vector<NodeId> out;
  out.reserve(idx.size());
  for (uint64_t i : idx) out.push_back(core[i]);
  return out;
}

std::vector<NodeId> FilterCoreByRegion(
    const std::vector<NodeId>& core,
    const std::vector<uint32_t>& region_of_node, uint32_t region) {
  std::vector<NodeId> out;
  for (NodeId x : core) {
    CHECK_LT(static_cast<size_t>(x), region_of_node.size());
    if (region_of_node[x] == region) out.push_back(x);
  }
  return out;
}

std::vector<NodeId> ExpandCore(const std::vector<NodeId>& core,
                               const std::vector<NodeId>& additions) {
  return UnionCores({core, additions});
}

}  // namespace spammass::core
