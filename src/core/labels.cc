#include "core/labels.h"

namespace spammass::core {

const char* NodeLabelToString(NodeLabel label) {
  switch (label) {
    case NodeLabel::kGood:
      return "good";
    case NodeLabel::kSpam:
      return "spam";
    case NodeLabel::kUnknown:
      return "unknown";
    case NodeLabel::kNonExistent:
      return "non-existent";
  }
  return "?";
}

std::vector<graph::NodeId> LabelStore::NodesWithLabel(NodeLabel label) const {
  std::vector<graph::NodeId> out;
  for (graph::NodeId x = 0; x < num_nodes(); ++x) {
    if (labels_[x] == label) out.push_back(x);
  }
  return out;
}

uint64_t LabelStore::CountLabel(NodeLabel label) const {
  uint64_t count = 0;
  for (NodeLabel l : labels_) {
    if (l == label) ++count;
  }
  return count;
}

double LabelStore::GoodFraction() const {
  if (labels_.empty()) return 0;
  return static_cast<double>(CountLabel(NodeLabel::kGood)) /
         static_cast<double>(labels_.size());
}

}  // namespace spammass::core
