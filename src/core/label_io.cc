#include "core/label_io.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>

#include "util/string_util.h"

namespace spammass::core {

using graph::NodeId;
using util::Result;
using util::Status;

util::Status WriteLabels(const LabelStore& labels, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  for (NodeId x = 0; x < labels.num_nodes(); ++x) {
    f << x << '\t' << NodeLabelToString(labels.Get(x)) << '\n';
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<LabelStore> ReadLabels(const std::string& path,
                                    uint32_t num_nodes) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  LabelStore labels(num_nodes);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view sv = util::Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    auto fields = util::SplitWhitespace(sv);
    if (fields.size() != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected '<id> <label>'");
    }
    char* end = nullptr;
    unsigned long long id = std::strtoull(fields[0].c_str(), &end, 10);
    if (*end != '\0' || id >= num_nodes) {
      return Status::OutOfRange(path + ":" + std::to_string(lineno) +
                                ": bad node id '" + fields[0] + "'");
    }
    NodeLabel label;
    if (fields[1] == "good") {
      label = NodeLabel::kGood;
    } else if (fields[1] == "spam") {
      label = NodeLabel::kSpam;
    } else if (fields[1] == "unknown") {
      label = NodeLabel::kUnknown;
    } else if (fields[1] == "non-existent") {
      label = NodeLabel::kNonExistent;
    } else {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": unknown label '" + fields[1] + "'");
    }
    labels.Set(static_cast<NodeId>(id), label);
  }
  return labels;
}

util::Status WriteNodeList(const std::vector<NodeId>& nodes,
                           const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  for (NodeId x : nodes) f << x << '\n';
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<std::vector<NodeId>> ReadNodeList(const std::string& path,
                                               uint32_t num_nodes) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  std::vector<NodeId> nodes;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view sv = util::Trim(line);
    if (sv.empty() || sv[0] == '#') continue;
    std::string token(sv);
    char* end = nullptr;
    unsigned long long id = std::strtoull(token.c_str(), &end, 10);
    if (end == token.c_str() || *end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad node id '" + token + "'");
    }
    if (id >= num_nodes) {
      return Status::OutOfRange(path + ":" + std::to_string(lineno) +
                                ": node id out of range");
    }
    nodes.push_back(static_cast<NodeId>(id));
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  return nodes;
}

}  // namespace spammass::core
