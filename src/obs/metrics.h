// Thread-safe metrics registry: monotonic counters, gauges, and
// fixed-boundary histograms for the telemetry layer.
//
// Design constraints, in priority order:
//   * The hot path (Counter::Add on a solver sweep, Histogram::Observe per
//     solve) must be lock-free and contention-free: each metric owns a
//     fixed array of cache-line-padded shards and a thread adds to the
//     shard picked by its thread-local slot, so concurrent writers from
//     different threads never touch the same cache line. Shards are merged
//     only on snapshot.
//   * Totals are exact. Counters and histogram buckets hold integers, so
//     the merged snapshot is bit-identical for every thread count and
//     every interleaving — the property tests/obs_metrics_test.cc pins.
//     (Histograms therefore record counts only, no floating-point sum: a
//     sharded double sum would round differently per schedule.)
//   * Registration is cold-path: GetCounter/GetGauge/GetHistogram take a
//     mutex and return a stable pointer that callers cache (metric objects
//     live as long as the registry; the global registry lives forever).
//
// Snapshot serialization reuses util::JsonWriter; names are emitted in
// sorted order so snapshots diff cleanly across runs.

#ifndef SPAMMASS_OBS_METRICS_H_
#define SPAMMASS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spammass::obs {

/// Writers per metric. 16 padded slots keep unrelated threads off each
/// other's cache lines while costing only 1 KiB per counter.
inline constexpr uint32_t kMetricShards = 16;

/// Shard index of the calling thread (stable for the thread's lifetime).
uint32_t ThisThreadShard();

/// Monotonic counter. Add() is wait-free: one relaxed fetch_add on the
/// calling thread's shard.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  /// Merged total across shards.
  uint64_t Value() const;

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  Shard shards_[kMetricShards];
};

/// Last-written value (e.g. nodes of the most recently loaded graph).
/// Set/Value are single relaxed atomic accesses; concurrent setters race
/// by design (last writer wins).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-boundary histogram: boundaries b_0 < b_1 < ... < b_{m-1} define
/// m+1 buckets (-inf, b_0), [b_0, b_1), ..., [b_{m-1}, +inf). Observe() is
/// wait-free after the binary search: one relaxed fetch_add on the calling
/// thread's shard row. Counts only — exact, schedule-independent totals.
class Histogram {
 public:
  /// `boundaries` must be strictly increasing and non-empty (CHECK).
  explicit Histogram(std::vector<double> boundaries);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& boundaries() const { return boundaries_; }
  /// Merged per-bucket counts (boundaries().size() + 1 entries).
  std::vector<uint64_t> BucketCounts() const;
  /// Merged observation count.
  uint64_t TotalCount() const;

 private:
  std::vector<double> boundaries_;
  /// counts_[shard * num_buckets + bucket]; rows are 64-byte aligned so
  /// two threads observing concurrently stay on separate cache lines.
  std::vector<std::atomic<uint64_t>> counts_;
  size_t num_buckets_ = 0;
  size_t row_stride_ = 0;
};

/// Name -> metric map. One global instance serves the library
/// (MetricsRegistry::Global()); tests build private instances.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every instrumented subsystem reports into.
  static MetricsRegistry& Global();

  /// Returns the named metric, creating it on first use. Pointers are
  /// stable for the registry's lifetime — cache them on hot paths.
  /// Requesting an existing name as a different metric kind CHECK-fails,
  /// as does re-requesting a histogram with different boundaries.
  Counter* GetCounter(std::string_view name) SPAMMASS_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name) SPAMMASS_EXCLUDES(mu_);
  Histogram* GetHistogram(std::string_view name,
                          std::vector<double> boundaries)
      SPAMMASS_EXCLUDES(mu_);

  /// One JSON object {"counters": {...}, "gauges": {...},
  /// "histograms": {...}} with names sorted; counter/bucket values are
  /// exact merged integers, so the snapshot is identical for every thread
  /// count that performed the same logical updates.
  std::string SnapshotJson() const SPAMMASS_EXCLUDES(mu_);

  /// The same point-in-time snapshot in the Prometheus text exposition
  /// format (version 0.0.4) — the payload a /metrics endpoint serves and
  /// what `spammass_cli --metrics-format=prom` writes. Per metric: one
  /// `# HELP` line carrying the registry's dotted name, one `# TYPE`
  /// line, then the samples. Names are mangled for Prometheus ('.' and
  /// every other illegal character become '_'); counters get the
  /// canonical `_total` suffix; histograms emit cumulative
  /// `_bucket{le="..."}` series, the `+Inf` bucket, and `_count` — but no
  /// `_sum`, because Histogram records exact integer counts only (see the
  /// header comment). Bucket edge semantics: this registry's buckets are
  /// half-open [b_i, b_{i+1}), so a `le="b"` line counts observations
  /// strictly below b, off by the boundary-equal observations from
  /// Prometheus' ≤ convention — advisory, and documented in
  /// docs/observability.md. Names are emitted sorted, values are exact
  /// merged integers, so the snapshot is as diff-stable as SnapshotJson.
  std::string SnapshotPrometheus() const SPAMMASS_EXCLUDES(mu_);

 private:
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };

  /// Guards the name->metric maps only. The metric objects themselves are
  /// internally synchronized (sharded atomics), so callers update them
  /// through the returned stable pointers without this lock.
  mutable util::Mutex mu_;
  std::map<std::string, Kind, std::less<>> kinds_ SPAMMASS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      SPAMMASS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      SPAMMASS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      SPAMMASS_GUARDED_BY(mu_);
};

}  // namespace spammass::obs

#endif  // SPAMMASS_OBS_METRICS_H_
