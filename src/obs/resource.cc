#include "obs/resource.h"

#include <unistd.h>

#include <cstdio>
#include <string>
#include <utility>

#include "obs/metrics.h"
#include "util/logging.h"

namespace spammass::obs {

namespace {

/// Reads a whole (small) /proc file into `out`. stdio instead of mmap or
/// stat-then-read because /proc files report size 0; reads until EOF.
/// False when the file cannot be opened (non-Linux, hidepid mounts).
bool ReadSmallFile(const char* path, std::string* out) {
  std::FILE* f = std::fopen(path, "re");
  if (f == nullptr) return false;
  out->clear();
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok && !out->empty();
}

/// Parses the decimal run starting at text[pos], skipping leading spaces
/// and tabs. Returns false when no digit is found; advances *pos past the
/// parsed run on success.
bool ParseUint(std::string_view text, size_t* pos, uint64_t* value) {
  size_t i = *pos;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
  if (i >= text.size() || text[i] < '0' || text[i] > '9') return false;
  uint64_t v = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(text[i] - '0');
    ++i;
  }
  *pos = i;
  *value = v;
  return true;
}

/// Finds "\n<key>" (or `key` at the start) and parses the first integer
/// after it — the shape of every "Key:  <n> [unit]" line in
/// /proc/self/status and /proc/self/io.
bool ParseKeyedValue(std::string_view text, std::string_view key,
                     uint64_t* value) {
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t hit = text.find(key, pos);
    if (hit == std::string_view::npos) return false;
    if (hit == 0 || text[hit - 1] == '\n') {
      size_t at = hit + key.size();
      return ParseUint(text, &at, value);
    }
    pos = hit + 1;
  }
  return false;
}

}  // namespace

bool ParseProcStatm(std::string_view text, uint64_t page_bytes,
                    uint64_t* vm_bytes, uint64_t* rss_bytes) {
  size_t pos = 0;
  uint64_t size_pages = 0, resident_pages = 0;
  if (!ParseUint(text, &pos, &size_pages)) return false;
  if (!ParseUint(text, &pos, &resident_pages)) return false;
  *vm_bytes = size_pages * page_bytes;
  *rss_bytes = resident_pages * page_bytes;
  return true;
}

bool ParseProcStatus(std::string_view text, uint64_t* rss_peak_bytes) {
  uint64_t kb = 0;
  if (!ParseKeyedValue(text, "VmHWM:", &kb)) return false;
  *rss_peak_bytes = kb * 1024;
  return true;
}

bool ParseProcStat(std::string_view text, uint64_t* minor_faults,
                   uint64_t* major_faults) {
  // Field 2 (comm) is an arbitrary thread name in parentheses — it may
  // itself contain spaces and parentheses, so parse from the LAST ')'.
  // After it: state(3) ppid(4) pgrp(5) session(6) tty(7) tpgid(8) flags(9)
  // minflt(10) cminflt(11) majflt(12).
  const size_t close = text.rfind(')');
  if (close == std::string_view::npos) return false;
  size_t pos = close + 1;
  // Skip the single-character state field and the 6 integer fields
  // (ppid..flags) before minflt.
  while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t')) ++pos;
  while (pos < text.size() && text[pos] != ' ' && text[pos] != '\t') ++pos;
  uint64_t skip = 0;
  for (int field = 0; field < 6; ++field) {
    // tty_nr and tpgid may legitimately be -1; skip an optional sign.
    size_t probe = pos;
    while (probe < text.size() &&
           (text[probe] == ' ' || text[probe] == '\t')) {
      ++probe;
    }
    if (probe < text.size() && text[probe] == '-') pos = probe + 1;
    if (!ParseUint(text, &pos, &skip)) return false;
  }
  uint64_t minflt = 0, cminflt = 0, majflt = 0;
  if (!ParseUint(text, &pos, &minflt)) return false;
  if (!ParseUint(text, &pos, &cminflt)) return false;
  if (!ParseUint(text, &pos, &majflt)) return false;
  *minor_faults = minflt;
  *major_faults = majflt;
  return true;
}

bool ParseProcIo(std::string_view text, uint64_t* read_bytes,
                 uint64_t* write_bytes) {
  return ParseKeyedValue(text, "read_bytes:", read_bytes) &&
         ParseKeyedValue(text, "write_bytes:", write_bytes);
}

ResourceUsage SampleResourceUsage() {
  ResourceUsage usage;
  const uint64_t page_bytes =
      static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  std::string text;
  if (ReadSmallFile("/proc/self/statm", &text) &&
      ParseProcStatm(text, page_bytes, &usage.vm_bytes, &usage.rss_bytes)) {
    usage.has_memory = true;
    // Peak RSS rides on the memory group: /proc/self/status is present
    // wherever statm is, and a missing VmHWM line just leaves the peak at
    // the current RSS.
    usage.rss_peak_bytes = usage.rss_bytes;
    if (ReadSmallFile("/proc/self/status", &text)) {
      ParseProcStatus(text, &usage.rss_peak_bytes);
    }
  }
  if (ReadSmallFile("/proc/self/stat", &text) &&
      ParseProcStat(text, &usage.minor_faults, &usage.major_faults)) {
    usage.has_faults = true;
  }
  // /proc/self/io needs CAP_SYS_PTRACE-free same-user access and is
  // sometimes compiled out (CONFIG_TASK_IO_ACCOUNTING); degrade quietly.
  if (ReadSmallFile("/proc/self/io", &text) &&
      ParseProcIo(text, &usage.io_read_bytes, &usage.io_write_bytes)) {
    usage.has_io = true;
  }
  return usage;
}

namespace {

/// Previous published cumulative kernel values, so registry counters
/// advance by exact positive deltas (monotonic even though a fresh
/// ResourceUsage is re-read from scratch every sample).
struct PublishState {
  util::Mutex mu;
  ResourceUsage prev SPAMMASS_GUARDED_BY(mu);
};

PublishState& GlobalPublishState() {
  static PublishState* state = new PublishState();
  return *state;
}

uint64_t PositiveDelta(uint64_t current, uint64_t previous) {
  return current > previous ? current - previous : 0;
}

}  // namespace

void PublishResourceUsage(const ResourceUsage& usage) {
  if (!usage.has_memory && !usage.has_faults && !usage.has_io) return;
  MetricsRegistry& registry = MetricsRegistry::Global();
  // Cached like every hot-path metric; registration locks once.
  static Counter* samples = registry.GetCounter("process.resource_samples");
  PublishState& state = GlobalPublishState();
  util::MutexLock lock(&state.mu);
  if (usage.has_memory) {
    static Gauge* rss = registry.GetGauge("process.rss_bytes");
    static Gauge* vm = registry.GetGauge("process.vm_bytes");
    static Gauge* peak = registry.GetGauge("process.rss_peak_bytes");
    rss->Set(static_cast<double>(usage.rss_bytes));
    vm->Set(static_cast<double>(usage.vm_bytes));
    peak->Set(static_cast<double>(usage.rss_peak_bytes));
  }
  if (usage.has_faults) {
    static Counter* minor = registry.GetCounter("process.minor_faults");
    static Counter* major = registry.GetCounter("process.major_faults");
    minor->Add(PositiveDelta(usage.minor_faults,
                             state.prev.has_faults ? state.prev.minor_faults
                                                   : 0));
    major->Add(PositiveDelta(usage.major_faults,
                             state.prev.has_faults ? state.prev.major_faults
                                                   : 0));
    state.prev.minor_faults = usage.minor_faults;
    state.prev.major_faults = usage.major_faults;
    state.prev.has_faults = true;
  }
  if (usage.has_io) {
    static Counter* rd = registry.GetCounter("process.io_read_bytes");
    static Counter* wr = registry.GetCounter("process.io_write_bytes");
    rd->Add(PositiveDelta(usage.io_read_bytes,
                          state.prev.has_io ? state.prev.io_read_bytes : 0));
    wr->Add(PositiveDelta(usage.io_write_bytes,
                          state.prev.has_io ? state.prev.io_write_bytes : 0));
    state.prev.io_read_bytes = usage.io_read_bytes;
    state.prev.io_write_bytes = usage.io_write_bytes;
    state.prev.has_io = true;
  }
  samples->Increment();
}

ResourceSampler::ResourceSampler() : ResourceSampler(Options()) {}

ResourceSampler::ResourceSampler(Options options)
    : options_(std::move(options)) {}

ResourceSampler::~ResourceSampler() { Stop(); }

void ResourceSampler::Start() {
  CHECK_GE(options_.period_ms, 1) << "sampler period must be >= 1 ms";
  util::MutexLock lock(&mu_);
  if (running_) return;
  running_ = true;
  stop_requested_ = false;
  const uint64_t generation = ++generation_;
  thread_ = std::thread([this, generation] { Loop(generation); });
}

void ResourceSampler::Stop() {
  std::thread joinable;
  {
    util::MutexLock lock(&mu_);
    if (!running_) return;
    stop_requested_ = true;
    cv_.NotifyAll();
    joinable = std::move(thread_);
    running_ = false;
  }
  // Join outside the lock: the loop reacquires mu_ between samples.
  joinable.join();
}

void ResourceSampler::SampleOnce() {
  PublishResourceUsage(SampleResourceUsage());
  samples_.fetch_add(1, std::memory_order_relaxed);
}

void ResourceSampler::Loop(uint64_t generation) {
  // generation_ != generation means a newer Start superseded this thread
  // after a concurrent Stop already moved its handle out for joining.
  while (true) {
    SampleOnce();
    util::MutexLock lock(&mu_);
    if (stop_requested_ || generation_ != generation) return;
    cv_.WaitFor(&mu_, options_.period_ms);
    if (stop_requested_ || generation_ != generation) return;
    // A spurious wakeup just samples early — harmless for gauges and
    // delta-tracked counters.
  }
}

}  // namespace spammass::obs
