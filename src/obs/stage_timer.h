// ScopedStageTimer: the one sanctioned way to time a pipeline stage.
// Each instance measures wall time for an enclosing scope, appends a
// StageRecord to the caller's sink on destruction, and opens a "stage"
// trace span so the same interval appears in trace output. The repo lint
// (`telemetry-timing` rule) bans raw util::WallTimer under src/pipeline/
// and tools/ in favor of this helper, so stage timings and traces can
// never drift apart.
//
// On hosts where perf_event_open works (obs/perf_counters.h) every stage
// additionally records hardware counts — cycles, instructions, LLC and
// branch misses — into StageRecord::hw and attaches cycle/instruction
// args to the trace span; elsewhere hw.valid stays false and manifests
// omit the fields entirely. Note the counters are thread-scoped: a stage
// that fans work out to a thread pool counts only the calling thread's
// share (the coordinating loop), not the workers'.

#ifndef SPAMMASS_OBS_STAGE_TIMER_H_
#define SPAMMASS_OBS_STAGE_TIMER_H_

#include <string>
#include <utility>
#include <vector>

#include "obs/perf_counters.h"
#include "obs/trace.h"
#include "util/timer.h"

namespace spammass::obs {

/// Wall time (plus hardware counts where available) of one named stage.
/// pipeline::StageTiming aliases this so manifest code and telemetry
/// share one record type.
struct StageRecord {
  std::string name;
  double seconds = 0;
  HwCounts hw;
};

/// RAII stage timer. `name` must be a string literal (it is also the
/// trace-span arg). `sink` may be nullptr to trace without recording.
class ScopedStageTimer {
 public:
  ScopedStageTimer(const char* name, std::vector<StageRecord>* sink)
      : name_(name), sink_(sink), span_("stage", "stage", name) {}

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

  ~ScopedStageTimer() {
    if (!stopped_) Stop();
  }

  /// Ends the measurement early (before scope exit) and records the
  /// StageRecord; the trace span still closes at destruction.
  void Stop() {
    stopped_ = true;
    const HwCounts hw = perf_.Stop();
    if (hw.valid) {
      // Two args only: the "stage" span already carries its name arg and
      // call sites attach one more (detector/kind); kMaxSpanArgs is 4.
      // Full counts (incl. miss rates) land in the StageRecord/manifest.
      span_.Arg("cycles", hw.cycles);
      span_.Arg("instructions", hw.instructions);
    }
    if (sink_ != nullptr) sink_->push_back({name_, timer_.Seconds(), hw});
  }

  /// Seconds elapsed so far.
  double Seconds() const { return timer_.Seconds(); }

  /// The underlying trace span, for attaching extra args.
  ScopedSpan& span() { return span_; }

 private:
  const char* name_;
  std::vector<StageRecord>* sink_;
  util::WallTimer timer_;
  ScopedSpan span_;
  ScopedPerfCounters perf_;
  bool stopped_ = false;
};

}  // namespace spammass::obs

#endif  // SPAMMASS_OBS_STAGE_TIMER_H_
