#include "obs/perf_counters.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#endif

namespace spammass::obs {

#if defined(__linux__)

namespace {

// Event order inside the thread's group; start_[]/HwCounts follow it.
enum EventIndex { kCycles = 0, kInstructions, kLlcMisses, kBranchMisses };

constexpr uint32_t kNumEvents = 4;

/// One thread's always-running event group. Opened lazily on first use,
/// closed by the thread_local destructor at thread exit. leader < 0 means
/// the probe failed and this thread cannot count.
struct PerfGroup {
  int leader = -1;
  int fds[kNumEvents] = {-1, -1, -1, -1};
  /// Position of event i in the PERF_FORMAT_GROUP read buffer, or -1 when
  /// its open failed (VM without that PMU event).
  int slot[kNumEvents] = {-1, -1, -1, -1};
  uint32_t group_size = 0;

  ~PerfGroup() {
    for (int fd : fds) {
      if (fd >= 0) ::close(fd);
    }
  }
};

int OpenEvent(uint64_t config, int group_fd, bool disabled) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = disabled ? 1 : 0;
  // User-space-only counting works at perf_event_paranoid 1 and 2; the
  // common container setting 3+ (or ENOSYS under seccomp) fails the open
  // and the whole wrapper degrades to a no-op.
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  attr.read_format = PERF_FORMAT_GROUP;
  const long fd = ::syscall(SYS_perf_event_open, &attr, /*pid=*/0,
                            /*cpu=*/-1, group_fd, /*flags=*/0UL);
  return static_cast<int>(fd);
}

/// Opens the calling thread's group. Leader (cycles) + instructions are
/// required; cache/branch misses are best-effort siblings.
void OpenGroup(PerfGroup* group) {
  static constexpr uint64_t kConfigs[kNumEvents] = {
      PERF_COUNT_HW_CPU_CYCLES, PERF_COUNT_HW_INSTRUCTIONS,
      PERF_COUNT_HW_CACHE_MISSES, PERF_COUNT_HW_BRANCH_MISSES};
  const int leader = OpenEvent(kConfigs[kCycles], -1, /*disabled=*/true);
  if (leader < 0) return;
  group->fds[kCycles] = leader;
  group->slot[kCycles] = 0;
  group->group_size = 1;
  for (uint32_t i = kInstructions; i < kNumEvents; ++i) {
    const int fd = OpenEvent(kConfigs[i], leader, /*disabled=*/false);
    if (fd < 0) {
      if (i == kInstructions) {
        // Cycles without instructions is useless; treat as unsupported.
        ::close(leader);
        group->fds[kCycles] = -1;
        group->slot[kCycles] = -1;
        group->group_size = 0;
        return;
      }
      continue;
    }
    group->fds[i] = fd;
    group->slot[i] = static_cast<int>(group->group_size++);
  }
  if (::ioctl(leader, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP) != 0 ||
      ::ioctl(leader, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP) != 0) {
    for (int& fd : group->fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
    group->group_size = 0;
    return;
  }
  group->leader = leader;
}

PerfGroup* ThisThreadPerfGroup() {
  thread_local PerfGroup group;
  thread_local bool opened = false;
  if (!opened) {
    opened = true;
    OpenGroup(&group);
  }
  return group.leader >= 0 ? &group : nullptr;
}

/// Reads the group's current values into values[kNumEvents] (absent
/// events read 0). One syscall (PERF_FORMAT_GROUP).
bool ReadGroup(const PerfGroup& group, uint64_t values[kNumEvents]) {
  // Read layout without IDs: { u64 nr; u64 values[nr]; }.
  uint64_t buf[1 + kNumEvents] = {0};
  const size_t want = sizeof(uint64_t) * (1 + group.group_size);
  const ssize_t got = ::read(group.leader, buf, want);
  if (got < 0 || static_cast<size_t>(got) < want ||
      buf[0] != group.group_size) {
    return false;
  }
  for (uint32_t i = 0; i < kNumEvents; ++i) {
    values[i] = group.slot[i] >= 0 ? buf[1 + group.slot[i]] : 0;
  }
  return true;
}

}  // namespace

bool PerfCountersSupported() { return ThisThreadPerfGroup() != nullptr; }

ScopedPerfCounters::ScopedPerfCounters() {
  PerfGroup* group = ThisThreadPerfGroup();
  if (group == nullptr) return;
  active_ = ReadGroup(*group, start_);
}

HwCounts ScopedPerfCounters::Stop() {
  if (stopped_) return counts_;
  stopped_ = true;
  if (!active_) return counts_;
  PerfGroup* group = ThisThreadPerfGroup();
  uint64_t now[kNumEvents];
  if (group == nullptr || !ReadGroup(*group, now)) return counts_;
  counts_.valid = true;
  counts_.cycles = now[kCycles] - start_[kCycles];
  counts_.instructions = now[kInstructions] - start_[kInstructions];
  if (group->slot[kLlcMisses] >= 0 && group->slot[kBranchMisses] >= 0) {
    counts_.has_cache = true;
    counts_.llc_misses = now[kLlcMisses] - start_[kLlcMisses];
    counts_.branch_misses = now[kBranchMisses] - start_[kBranchMisses];
  }
  return counts_;
}

#else  // !defined(__linux__)

bool PerfCountersSupported() { return false; }

ScopedPerfCounters::ScopedPerfCounters() = default;

HwCounts ScopedPerfCounters::Stop() {
  stopped_ = true;
  return counts_;
}

#endif  // defined(__linux__)

}  // namespace spammass::obs
