#include "obs/trace.h"

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "util/file_util.h"
#include "util/json_writer.h"
#include "util/logging.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"
#include "util/thread_pool.h"

namespace spammass::obs {

namespace internal {
std::atomic<bool> g_tracing_enabled{false};
}  // namespace internal

namespace {

/// One recorded complete event. Reused in place on ring wrap, so the
/// std::string capacity inside string args amortizes away.
struct TraceEvent {
  const char* name = nullptr;
  uint64_t start_ns = 0;
  uint64_t dur_ns = 0;
  uint32_t num_args = 0;
  struct Arg {
    const char* key = nullptr;
    SpanArgValue value;
  };
  Arg args[kMaxSpanArgs];
};

/// Per-thread event ring. The owning thread records under `mu`; the mutex
/// is uncontended except while a snapshot is being serialized, so the
/// record path stays cheap and TSan-clean. Rings outlive their threads
/// (pool workers' events must survive pool destruction) and are never
/// removed from the registry.
struct ThreadRing {
  util::Mutex mu;
  /// Assigned once at registration, before the ring is published through
  /// the registry; immutable afterwards, so readable without `mu`.
  uint64_t tid = 0;
  std::string thread_name SPAMMASS_GUARDED_BY(mu);
  /// Grows to kRingCapacity, then wraps.
  std::vector<TraceEvent> events SPAMMASS_GUARDED_BY(mu);
  /// Includes overwritten events.
  uint64_t total_recorded SPAMMASS_GUARDED_BY(mu) = 0;
};

struct TraceRegistry {
  util::Mutex mu;
  /// Leaked: rings live forever.
  std::vector<ThreadRing*> rings SPAMMASS_GUARDED_BY(mu);
  uint64_t next_tid SPAMMASS_GUARDED_BY(mu) = 1;
  /// Timestamp origin, set by StartTracing().
  uint64_t start_ns SPAMMASS_GUARDED_BY(mu) = 0;
};

TraceRegistry& Registry() {
  static TraceRegistry* registry = new TraceRegistry();
  return *registry;
}

/// How many drops the obs.trace.dropped_events counter already reflects.
/// The ring drop total is recomputed from scratch on every serialize (and
/// resets to 0 when StartTracing clears the rings), so the counter
/// advances by positive deltas against this high-water mark to stay
/// monotonic across multiple exports of one tracing session.
struct DroppedPublishState {
  util::Mutex mu;
  uint64_t published SPAMMASS_GUARDED_BY(mu) = 0;
};

DroppedPublishState& DroppedState() {
  static DroppedPublishState* state = new DroppedPublishState();
  return *state;
}

/// Publishes `dropped` (a fresh full recount) into the counter. Callers
/// must NOT hold Registry().mu — metric registration takes its own lock
/// and lock-order discipline keeps the two independent.
void PublishDroppedEvents(uint64_t dropped) {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("obs.trace.dropped_events");
  DroppedPublishState& state = DroppedState();
  util::MutexLock lock(&state.mu);
  if (dropped > state.published) {
    counter->Add(dropped - state.published);
    state.published = dropped;
  }
}

ThreadRing* ThisThreadRing() {
  thread_local ThreadRing* ring = [] {
    auto* r = new ThreadRing();  // leaked: events outlive the thread
    TraceRegistry& registry = Registry();
    util::MutexLock lock(&registry.mu);
    r->tid = registry.next_tid++;
    {
      // Pre-publication, so uncontended; taken for the analysis' benefit.
      util::MutexLock ring_lock(&r->mu);
      r->thread_name = "thread-" + std::to_string(r->tid);
    }
    registry.rings.push_back(r);
    return r;
  }();
  return ring;
}

/// Appends one event to the calling thread's ring, overwriting the oldest
/// event once the ring is full.
TraceEvent& AppendEvent(ThreadRing* ring) SPAMMASS_REQUIRES(ring->mu) {
  if (ring->events.size() < kRingCapacity) {
    ring->events.emplace_back();
    ++ring->total_recorded;
    return ring->events.back();
  }
  TraceEvent& slot =
      ring->events[ring->total_recorded % kRingCapacity];
  ++ring->total_recorded;
  slot.num_args = 0;
  return slot;
}

void RecordComplete(const char* name, uint64_t start_ns, uint64_t dur_ns,
                    const TraceEvent::Arg* args, uint32_t num_args) {
  ThreadRing* ring = ThisThreadRing();
  util::MutexLock lock(&ring->mu);
  TraceEvent& event = AppendEvent(ring);
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = dur_ns;
  event.num_args = num_args;
  for (uint32_t i = 0; i < num_args; ++i) {
    event.args[i].key = args[i].key;
    event.args[i].value = args[i].value;
  }
}

// --- thread-pool telemetry hooks ------------------------------------------
//
// Installed via util::SetThreadPoolHooks. The tasks counter counts always
// (metrics are always-on); the pool_task span records only while tracing.

thread_local uint64_t t_pool_task_start_ns = 0;
thread_local bool t_pool_thread_named = false;

void PoolTaskBegin(uint32_t worker_index) {
  static Counter* tasks =
      MetricsRegistry::Global().GetCounter("threadpool.tasks");
  tasks->Increment();
  if (!TracingEnabled()) {
    t_pool_task_start_ns = 0;
    return;
  }
  if (!t_pool_thread_named) {
    SetCurrentThreadName("pool-worker-" + std::to_string(worker_index));
    t_pool_thread_named = true;
  }
  t_pool_task_start_ns = TraceNowNs();
}

void PoolTaskEnd(uint32_t /*worker_index*/) {
  // start == 0 means tracing was off at task begin; skip the partial span.
  if (t_pool_task_start_ns == 0) return;
  const uint64_t start = t_pool_task_start_ns;
  t_pool_task_start_ns = 0;
  RecordComplete("pool_task", start, TraceNowNs() - start, nullptr, 0);
}

constexpr util::ThreadPoolHooks kObsThreadPoolHooks{&PoolTaskBegin,
                                                    &PoolTaskEnd};

void WriteEventJson(util::JsonWriter& json, const ThreadRing& ring,
                    const TraceEvent& event, uint64_t origin_ns)
    SPAMMASS_REQUIRES(ring.mu) {
  json.BeginObject();
  json.Key("name").String(event.name);
  json.Key("cat").String("spammass");
  json.Key("ph").String("X");
  // Chrome trace-event timestamps are microseconds; fractional values
  // keep the full nanosecond resolution.
  json.Key("ts").Double(
      static_cast<double>(event.start_ns - origin_ns) / 1000.0);
  json.Key("dur").Double(static_cast<double>(event.dur_ns) / 1000.0);
  json.Key("pid").Uint(1);
  json.Key("tid").Uint(ring.tid);
  if (event.num_args > 0) {
    json.Key("args").BeginObject();
    for (uint32_t i = 0; i < event.num_args; ++i) {
      const TraceEvent::Arg& arg = event.args[i];
      json.Key(arg.key);
      switch (arg.value.kind) {
        case SpanArgValue::Kind::kInt:
          json.Int(arg.value.i);
          break;
        case SpanArgValue::Kind::kDouble:
          json.Double(arg.value.d);
          break;
        case SpanArgValue::Kind::kString:
          json.String(arg.value.s);
          break;
      }
    }
    json.EndObject();
  }
  json.EndObject();
}

}  // namespace

void StartTracing() {
  InstallThreadPoolTelemetry();
  TraceRegistry& registry = Registry();
  {
    util::MutexLock lock(&registry.mu);
    for (ThreadRing* ring : registry.rings) {
      util::MutexLock ring_lock(&ring->mu);
      ring->events.clear();
      ring->total_recorded = 0;
    }
    registry.start_ns = TraceNowNs();
  }
  {
    // Rings were just cleared, so the recounted drop total restarts at
    // zero; re-arm the delta baseline to match. The counter itself keeps
    // its lifetime total (counters never go backwards).
    DroppedPublishState& state = DroppedState();
    util::MutexLock lock(&state.mu);
    state.published = 0;
  }
  internal::g_tracing_enabled.store(true, std::memory_order_release);
}

void StopTracing() {
  internal::g_tracing_enabled.store(false, std::memory_order_release);
}

void SetCurrentThreadName(std::string name) {
  ThreadRing* ring = ThisThreadRing();
  util::MutexLock lock(&ring->mu);
  ring->thread_name = std::move(name);
}

void InstallThreadPoolTelemetry() {
  util::SetThreadPoolHooks(&kObsThreadPoolHooks);
}

uint64_t TraceNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

void ScopedSpan::Begin(const char* name) {
  active_ = true;
  name_ = name;
  num_args_ = 0;
  start_ns_ = TraceNowNs();
}

void ScopedSpan::Arg(const char* key, SpanArgValue value) {
  if (!active_ || num_args_ >= kMaxSpanArgs) return;
  args_[num_args_].key = key;
  args_[num_args_].value = std::move(value);
  ++num_args_;
}

void ScopedSpan::End() {
  const uint64_t end_ns = TraceNowNs();
  active_ = false;
  TraceEvent::Arg converted[kMaxSpanArgs];
  for (uint32_t i = 0; i < num_args_; ++i) {
    converted[i].key = args_[i].key;
    converted[i].value = std::move(args_[i].value);
  }
  RecordComplete(name_, start_ns_, end_ns - start_ns_, converted, num_args_);
}

uint64_t DroppedEventCount() {
  TraceRegistry& registry = Registry();
  util::MutexLock lock(&registry.mu);
  uint64_t dropped = 0;
  for (ThreadRing* ring : registry.rings) {
    util::MutexLock ring_lock(&ring->mu);
    if (ring->total_recorded > ring->events.size()) {
      dropped += ring->total_recorded - ring->events.size();
    }
  }
  return dropped;
}

std::string SerializeChromeTrace() {
  TraceRegistry& registry = Registry();
  // Tallied during the ring walk (NOT via DroppedEventCount(), which
  // would re-take registry.mu and self-deadlock) and published after the
  // lock scope so metric registration never nests inside the trace lock.
  uint64_t dropped = 0;
  util::JsonWriter json;
  {
    util::MutexLock lock(&registry.mu);
    json.BeginObject();
    json.Key("displayTimeUnit").String("ms");
    json.Key("traceEvents").BeginArray();
    for (ThreadRing* ring : registry.rings) {
      util::MutexLock ring_lock(&ring->mu);
      if (ring->total_recorded > ring->events.size()) {
        dropped += ring->total_recorded - ring->events.size();
      }
      // Thread-name metadata event so Perfetto labels the track.
      json.BeginObject();
      json.Key("name").String("thread_name");
      json.Key("ph").String("M");
      json.Key("pid").Uint(1);
      json.Key("tid").Uint(ring->tid);
      json.Key("args").BeginObject();
      json.Key("name").String(ring->thread_name);
      json.EndObject();
      json.EndObject();
      // Events, oldest first (the ring overwrites in recording order, so
      // the oldest surviving event sits at total_recorded % capacity once
      // the ring has wrapped).
      const uint64_t count = ring->events.size();
      const uint64_t first =
          ring->total_recorded > count ? ring->total_recorded % count : 0;
      for (uint64_t i = 0; i < count; ++i) {
        WriteEventJson(json, *ring, ring->events[(first + i) % count],
                       registry.start_ns);
      }
    }
    json.EndArray();
    json.EndObject();
  }
  PublishDroppedEvents(dropped);
  return json.TakeString();
}

util::Status WriteTraceFile(const std::string& path) {
  const std::string serialized = SerializeChromeTrace();
  const uint64_t dropped = DroppedEventCount();
  if (dropped > 0) {
    LOG_WARNING() << "trace export '" << path << "' is incomplete: "
                  << dropped << " event(s) dropped by full thread rings "
                  << "(kRingCapacity = " << kRingCapacity
                  << " events per thread); see obs.trace.dropped_events";
  }
  return util::WriteTextFile(path, serialized);
}

}  // namespace spammass::obs
