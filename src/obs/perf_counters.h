// Scoped hardware performance counters via perf_event_open.
//
// ScopedPerfCounters brackets a code region with cycle / instruction /
// LLC-miss / branch-miss counts for the calling thread. The counters are
// opened once per thread as one perf event group (leader: cycles) that
// keeps running for the thread's lifetime; a scope records the group's
// values at construction and subtracts them at Stop(), so scopes nest
// freely (an inner scope never resets the outer one's baseline) and the
// per-scope cost is two group-read syscalls, not four event opens.
//
// Graceful degradation is the contract: when perf_event_open is
// unavailable — non-Linux builds, containers without CAP_PERFMON,
// kernel.perf_event_paranoid >= 3, missing PMU in a VM — every scope
// returns HwCounts{valid: false} and nothing is published. Callers
// (ScopedStageTimer, the run manifest) omit hardware fields entirely in
// that case: absent, never zero/garbage. Events are opened with
// exclude_kernel + exclude_hv so paranoid levels 1 and 2 still work.
//
// Cache/branch siblings are opened best-effort: hosts whose PMU lacks an
// LLC-miss event (common in VMs) still count cycles + instructions, with
// HwCounts::has_cache false.
//
// perf_event_open usage is confined to this unit by the
// `resource-isolation` lint rule (tools/spammass_lint.py).

#ifndef SPAMMASS_OBS_PERF_COUNTERS_H_
#define SPAMMASS_OBS_PERF_COUNTERS_H_

#include <cstdint>

namespace spammass::obs {

/// Hardware counts for one scope. `valid` covers cycles + instructions;
/// `has_cache` additionally covers llc_misses + branch_misses.
struct HwCounts {
  bool valid = false;
  bool has_cache = false;
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t llc_misses = 0;
  uint64_t branch_misses = 0;
};

/// True when this thread can count hardware events (probes and opens the
/// thread's event group on first call; cheap afterwards).
bool PerfCountersSupported();

/// RAII counting scope for the calling thread. Construct where counting
/// should start; Stop() (or destruction) ends it. Must be stopped on the
/// thread that constructed it — the counters are thread-scoped.
class ScopedPerfCounters {
 public:
  ScopedPerfCounters();
  ~ScopedPerfCounters() { Stop(); }

  ScopedPerfCounters(const ScopedPerfCounters&) = delete;
  ScopedPerfCounters& operator=(const ScopedPerfCounters&) = delete;

  /// Ends the scope and returns its counts; idempotent (later calls
  /// return the counts captured by the first). valid == false when the
  /// host cannot count or a read failed.
  HwCounts Stop();

 private:
  bool stopped_ = false;
  bool active_ = false;
  uint64_t start_[4] = {0, 0, 0, 0};
  HwCounts counts_;
};

}  // namespace spammass::obs

#endif  // SPAMMASS_OBS_PERF_COUNTERS_H_
