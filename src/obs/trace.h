// Scoped trace spans with Chrome trace-event export.
//
// SPAMMASS_TRACE_SPAN("pagerank.solve", "method", "jacobi") opens an RAII
// span: on destruction one complete event (name, start, duration, thread,
// key/value args) is appended to the calling thread's ring buffer. When
// tracing is disabled — the default — a span costs one relaxed atomic load
// and a branch; nothing is allocated and nothing is recorded, which is
// what lets the instrumentation live permanently inside the solver and
// pipeline hot paths (bench/bench_obs.cc pins the overhead).
//
// Buffers are per-thread (no locks, no sharing on the record path) and
// fixed-size rings: a thread that records more than kRingCapacity events
// overwrites its oldest ones and counts the drops. SerializeChromeTrace()
// merges every thread's buffer into the Chrome trace-event JSON format,
// loadable in Perfetto (https://ui.perfetto.dev) or chrome://tracing —
// including thread-name metadata so pool workers are labeled and
// ParallelForChunked imbalance is visible as staggered pool_task spans.
//
// StartTracing() also installs the util::ThreadPool telemetry hooks, so
// every pool task executed while tracing is enabled appears as a
// "pool_task" span on its worker's track.

#ifndef SPAMMASS_OBS_TRACE_H_
#define SPAMMASS_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace spammass::obs {

/// Events one thread's ring holds before wrapping (oldest dropped first).
inline constexpr uint32_t kRingCapacity = 16384;

/// Key/value args one span can carry.
inline constexpr uint32_t kMaxSpanArgs = 4;

namespace internal {
extern std::atomic<bool> g_tracing_enabled;
}  // namespace internal

/// True while tracing is enabled. The one check on the disabled fast path.
inline bool TracingEnabled() {
  return internal::g_tracing_enabled.load(std::memory_order_relaxed);
}

/// Clears previously recorded events, installs the thread-pool telemetry
/// hooks, and starts recording.
void StartTracing();

/// Stops recording. Recorded events remain available for serialization.
void StopTracing();

/// Names the calling thread in trace output ("pool-worker-3"); pool
/// workers are named automatically via the thread-pool hooks.
void SetCurrentThreadName(std::string name);

/// Installs the util::ThreadPool observability hooks (task spans + the
/// threadpool.tasks counter). Idempotent; StartTracing() calls it.
void InstallThreadPoolTelemetry();

/// Monotonic timestamp in nanoseconds (steady clock).
uint64_t TraceNowNs();

/// One span argument value. Implicit constructors let call sites pass
/// integers, doubles, and strings directly.
struct SpanArgValue {
  enum class Kind : uint8_t { kInt, kDouble, kString };
  Kind kind = Kind::kInt;
  int64_t i = 0;
  double d = 0;
  std::string s;

  SpanArgValue() = default;
  SpanArgValue(int value) : kind(Kind::kInt), i(value) {}  // NOLINT
  SpanArgValue(int64_t value) : kind(Kind::kInt), i(value) {}  // NOLINT
  SpanArgValue(uint32_t value) : kind(Kind::kInt), i(value) {}  // NOLINT
  SpanArgValue(uint64_t value)  // NOLINT
      : kind(Kind::kInt), i(static_cast<int64_t>(value)) {}
  SpanArgValue(double value) : kind(Kind::kDouble), d(value) {}  // NOLINT
  SpanArgValue(std::string_view value)  // NOLINT
      : kind(Kind::kString), s(value) {}
  SpanArgValue(const char* value)  // NOLINT
      : kind(Kind::kString), s(value) {}
};

/// RAII span. `name` must be a string literal (or otherwise outlive the
/// span); argument keys likewise. Args may be attached at construction or
/// any time before destruction (e.g. an iteration count known only after
/// the measured loop).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (TracingEnabled()) Begin(name);
  }
  ScopedSpan(const char* name, const char* k1, SpanArgValue v1)
      : ScopedSpan(name) {
    Arg(k1, std::move(v1));
  }
  ScopedSpan(const char* name, const char* k1, SpanArgValue v1,
             const char* k2, SpanArgValue v2)
      : ScopedSpan(name) {
    Arg(k1, std::move(v1));
    Arg(k2, std::move(v2));
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (active_) End();
  }

  /// Attaches a key/value arg (no-op when the span is inactive; silently
  /// dropped past kMaxSpanArgs).
  void Arg(const char* key, SpanArgValue value);

 private:
  struct StagedArg {
    const char* key = nullptr;
    SpanArgValue value;
  };

  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_ = nullptr;
  uint64_t start_ns_ = 0;
  uint32_t num_args_ = 0;
  // Staged on the stack; copied into the ring buffer entry at End().
  StagedArg args_[kMaxSpanArgs];
};

/// Total events dropped to ring wrap-around across all threads since the
/// last StartTracing().
uint64_t DroppedEventCount();

/// Serializes every thread's recorded events as one Chrome trace-event
/// JSON document ({"displayTimeUnit": "ms", "traceEvents": [...]}).
/// Callable while tracing is stopped or running (a running trace yields a
/// point-in-time snapshot).
std::string SerializeChromeTrace();

/// Writes SerializeChromeTrace() to `path`, creating missing parent
/// directories; errors name the failing path.
util::Status WriteTraceFile(const std::string& path);

}  // namespace spammass::obs

// Token pasting so multiple spans can coexist in one scope.
#define SPAMMASS_TRACE_CONCAT_IMPL(a, b) a##b
#define SPAMMASS_TRACE_CONCAT(a, b) SPAMMASS_TRACE_CONCAT_IMPL(a, b)

/// Opens a scoped trace span covering the rest of the enclosing block:
///   SPAMMASS_TRACE_SPAN("graph.build");
///   SPAMMASS_TRACE_SPAN("pagerank.solve", "method", "jacobi", "lanes", k);
#define SPAMMASS_TRACE_SPAN(...)                                      \
  ::spammass::obs::ScopedSpan SPAMMASS_TRACE_CONCAT(spammass_span_,   \
                                                    __LINE__) {       \
    __VA_ARGS__                                                       \
  }

#endif  // SPAMMASS_OBS_TRACE_H_
