#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "util/json_writer.h"
#include "util/logging.h"

namespace spammass::obs {

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  CHECK(!boundaries_.empty()) << "histogram needs at least one boundary";
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    CHECK_LT(boundaries_[i - 1], boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
  num_buckets_ = boundaries_.size() + 1;
  // Pad each shard's bucket row to a multiple of a cache line (8 counters)
  // so rows never share a line.
  row_stride_ = (num_buckets_ + 7) / 8 * 8;
  counts_ = std::vector<std::atomic<uint64_t>>(kMetricShards * row_stride_);
}

void Histogram::Observe(double value) {
  // upper_bound puts value == b_i into bucket i+1, i.e. [b_i, b_{i+1});
  // values below b_0 land in bucket 0.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto bucket =
      static_cast<size_t>(std::distance(boundaries_.begin(), it));
  counts_[ThisThreadShard() * row_stride_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(num_buckets_, 0);
  for (uint32_t s = 0; s < kMetricShards; ++s) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      merged[b] += counts_[s * row_stride_ + b].load(
          std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kCounter);
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kGauge);
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> boundaries) {
  util::MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    CHECK(it->second->boundaries() == boundaries)
        << "histogram '" << std::string(name)
        << "' re-requested with different boundaries";
    return it->second.get();
  }
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kHistogram);
  return histograms_
      .emplace(std::string(name),
               std::make_unique<Histogram>(std::move(boundaries)))
      .first->second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  util::MutexLock lock(&mu_);
  util::JsonWriter json;
  json.BeginObject();

  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.KV(name, counter->Value());
  }
  json.EndObject();

  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.KV(name, gauge->Value());
  }
  json.EndObject();

  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("boundaries").BeginArray();
    for (double b : histogram->boundaries()) json.Double(b);
    json.EndArray();
    json.Key("counts").BeginArray();
    for (uint64_t c : histogram->BucketCounts()) json.Uint(c);
    json.EndArray();
    json.KV("total", histogram->TotalCount());
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return json.TakeString();
}

namespace {

/// Dotted registry name -> Prometheus metric name: [a-zA-Z0-9_:] pass
/// through, everything else (notably '.') becomes '_'. A leading digit
/// gets a '_' prefix — cannot happen with this repo's naming convention,
/// but the mangler must never emit an invalid name.
std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(0, 1, '_');
  return out;
}

void AppendUint(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
}

/// %.17g round-trips every double; matches util::JsonWriter's precision
/// so the prom and JSON snapshots agree digit-for-digit.
void AppendDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
}

void AppendHeader(std::string* out, const std::string& prom_name,
                  const std::string& registry_name, const char* type) {
  out->append("# HELP ").append(prom_name).append(" spammass metric ");
  out->append(registry_name).push_back('\n');
  out->append("# TYPE ").append(prom_name).push_back(' ');
  out->append(type);
  out->push_back('\n');
}

}  // namespace

std::string MetricsRegistry::SnapshotPrometheus() const {
  util::MutexLock lock(&mu_);
  std::string out;

  for (const auto& [name, counter] : counters_) {
    const std::string prom = PrometheusName(name) + "_total";
    AppendHeader(&out, prom, name, "counter");
    out.append(prom).push_back(' ');
    AppendUint(&out, counter->Value());
    out.push_back('\n');
  }

  for (const auto& [name, gauge] : gauges_) {
    const std::string prom = PrometheusName(name);
    AppendHeader(&out, prom, name, "gauge");
    out.append(prom).push_back(' ');
    AppendDouble(&out, gauge->Value());
    out.push_back('\n');
  }

  for (const auto& [name, histogram] : histograms_) {
    const std::string prom = PrometheusName(name);
    AppendHeader(&out, prom, name, "histogram");
    const std::vector<uint64_t> counts = histogram->BucketCounts();
    const std::vector<double>& boundaries = histogram->boundaries();
    // Bucket i of this registry is [b_{i-1}, b_i), so the cumulative count
    // through boundary b_i is the sum of buckets 0..i — observations
    // strictly below b_i (see the header note on the le="..." semantics).
    uint64_t cumulative = 0;
    for (size_t i = 0; i < boundaries.size(); ++i) {
      cumulative += counts[i];
      out.append(prom).append("_bucket{le=\"");
      AppendDouble(&out, boundaries[i]);
      out.append("\"} ");
      AppendUint(&out, cumulative);
      out.push_back('\n');
    }
    cumulative += counts[boundaries.size()];
    out.append(prom).append("_bucket{le=\"+Inf\"} ");
    AppendUint(&out, cumulative);
    out.push_back('\n');
    out.append(prom).append("_count ");
    AppendUint(&out, cumulative);
    out.push_back('\n');
  }

  return out;
}

}  // namespace spammass::obs
