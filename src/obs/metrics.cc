#include "obs/metrics.h"

#include <algorithm>

#include "util/json_writer.h"
#include "util/logging.h"

namespace spammass::obs {

uint32_t ThisThreadShard() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local uint32_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

uint64_t Counter::Value() const {
  uint64_t total = 0;
  for (const Shard& shard : shards_) {
    total += shard.value.load(std::memory_order_relaxed);
  }
  return total;
}

Histogram::Histogram(std::vector<double> boundaries)
    : boundaries_(std::move(boundaries)) {
  CHECK(!boundaries_.empty()) << "histogram needs at least one boundary";
  for (size_t i = 1; i < boundaries_.size(); ++i) {
    CHECK_LT(boundaries_[i - 1], boundaries_[i])
        << "histogram boundaries must be strictly increasing";
  }
  num_buckets_ = boundaries_.size() + 1;
  // Pad each shard's bucket row to a multiple of a cache line (8 counters)
  // so rows never share a line.
  row_stride_ = (num_buckets_ + 7) / 8 * 8;
  counts_ = std::vector<std::atomic<uint64_t>>(kMetricShards * row_stride_);
}

void Histogram::Observe(double value) {
  // upper_bound puts value == b_i into bucket i+1, i.e. [b_i, b_{i+1});
  // values below b_0 land in bucket 0.
  const auto it =
      std::upper_bound(boundaries_.begin(), boundaries_.end(), value);
  const auto bucket =
      static_cast<size_t>(std::distance(boundaries_.begin(), it));
  counts_[ThisThreadShard() * row_stride_ + bucket].fetch_add(
      1, std::memory_order_relaxed);
}

std::vector<uint64_t> Histogram::BucketCounts() const {
  std::vector<uint64_t> merged(num_buckets_, 0);
  for (uint32_t s = 0; s < kMetricShards; ++s) {
    for (size_t b = 0; b < num_buckets_; ++b) {
      merged[b] += counts_[s * row_stride_ + b].load(
          std::memory_order_relaxed);
    }
  }
  return merged;
}

uint64_t Histogram::TotalCount() const {
  uint64_t total = 0;
  for (uint64_t c : BucketCounts()) total += c;
  return total;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = counters_.find(name);
  if (it != counters_.end()) return it->second.get();
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kCounter);
  return counters_.emplace(std::string(name), std::make_unique<Counter>())
      .first->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  util::MutexLock lock(&mu_);
  auto it = gauges_.find(name);
  if (it != gauges_.end()) return it->second.get();
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kGauge);
  return gauges_.emplace(std::string(name), std::make_unique<Gauge>())
      .first->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         std::vector<double> boundaries) {
  util::MutexLock lock(&mu_);
  auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    CHECK(it->second->boundaries() == boundaries)
        << "histogram '" << std::string(name)
        << "' re-requested with different boundaries";
    return it->second.get();
  }
  CHECK(kinds_.find(name) == kinds_.end())
      << "metric '" << std::string(name) << "' already registered with a "
      << "different kind";
  kinds_.emplace(std::string(name), Kind::kHistogram);
  return histograms_
      .emplace(std::string(name),
               std::make_unique<Histogram>(std::move(boundaries)))
      .first->second.get();
}

std::string MetricsRegistry::SnapshotJson() const {
  util::MutexLock lock(&mu_);
  util::JsonWriter json;
  json.BeginObject();

  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.KV(name, counter->Value());
  }
  json.EndObject();

  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.KV(name, gauge->Value());
  }
  json.EndObject();

  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("boundaries").BeginArray();
    for (double b : histogram->boundaries()) json.Double(b);
    json.EndArray();
    json.Key("counts").BeginArray();
    for (uint64_t c : histogram->BucketCounts()) json.Uint(c);
    json.EndArray();
    json.KV("total", histogram->TotalCount());
    json.EndObject();
  }
  json.EndObject();

  json.EndObject();
  return json.TakeString();
}

}  // namespace spammass::obs
