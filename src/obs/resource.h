// Process resource telemetry: /proc/self sampling into the global
// MetricsRegistry.
//
// Two pieces:
//   * SampleResourceUsage()/PublishResourceUsage() — one synchronous
//     snapshot of the process' memory, page-fault, and block-IO state,
//     parsed from /proc/self/{statm,status,stat,io}. The parsers are
//     exposed on raw text so tests can feed fixture files; each /proc
//     source degrades independently (a missing or unparsable file leaves
//     its group's has_* flag false and publishes nothing — absent, not
//     zero).
//   * ResourceSampler — a background thread that publishes a snapshot
//     every period. Started/stopped by the CLI's ObsSession so every
//     subcommand gets RSS and fault curves next to its counters; the
//     spammass_serve /metrics endpoint will run one for the process
//     lifetime (ROADMAP item 1).
//
// Published metrics (names are Prometheus-manglable, see
// MetricsRegistry::SnapshotPrometheus):
//   gauges    process.rss_bytes, process.vm_bytes, process.rss_peak_bytes
//   counters  process.minor_faults, process.major_faults,
//             process.io_read_bytes, process.io_write_bytes,
//             process.resource_samples
// The kernel values behind the counters are cumulative per process;
// PublishResourceUsage advances each registry counter by the positive
// delta since the previous published snapshot, so registry counters stay
// monotonic even if a racing reader observes /proc between samples.
//
// This unit (plus util/mmap_file.cc's mincore probe and the
// perf_event_open wrapper in obs/perf_counters.cc) is the only sanctioned
// home for /proc and kernel-introspection calls — the `resource-isolation`
// lint rule (tools/spammass_lint.py) enforces the boundary.

#ifndef SPAMMASS_OBS_RESOURCE_H_
#define SPAMMASS_OBS_RESOURCE_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <thread>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spammass::obs {

/// Point-in-time resource usage of this process. Groups whose /proc
/// source was unavailable (non-Linux, restricted /proc) leave their
/// has_* flag false and their fields zero.
struct ResourceUsage {
  bool has_memory = false;  // rss/vm (statm) + peak (status)
  bool has_faults = false;  // minor/major faults (stat)
  bool has_io = false;      // read/write block-IO bytes (io)
  uint64_t rss_bytes = 0;
  uint64_t vm_bytes = 0;
  uint64_t rss_peak_bytes = 0;
  uint64_t minor_faults = 0;
  uint64_t major_faults = 0;
  uint64_t io_read_bytes = 0;
  uint64_t io_write_bytes = 0;
};

/// Parses /proc/self/statm text ("size resident shared ..." in pages);
/// `page_bytes` converts pages to bytes. False on malformed input.
bool ParseProcStatm(std::string_view text, uint64_t page_bytes,
                    uint64_t* vm_bytes, uint64_t* rss_bytes);

/// Parses /proc/self/status text for the "VmHWM: <n> kB" peak-RSS line.
/// False when the line is missing or malformed.
bool ParseProcStatus(std::string_view text, uint64_t* rss_peak_bytes);

/// Parses /proc/self/stat text for minflt/majflt (fields 10 and 12).
/// Robust to comm names containing spaces or parentheses (scans from the
/// last ')'). False on malformed input.
bool ParseProcStat(std::string_view text, uint64_t* minor_faults,
                   uint64_t* major_faults);

/// Parses /proc/self/io text for the read_bytes/write_bytes lines (actual
/// block-device traffic, not rchar/wchar). False when either is missing.
bool ParseProcIo(std::string_view text, uint64_t* read_bytes,
                 uint64_t* write_bytes);

/// Reads the current process usage from /proc/self. Never fails: each
/// group that cannot be read is simply absent from the result.
ResourceUsage SampleResourceUsage();

/// Publishes `usage` into the global MetricsRegistry (gauges set, counters
/// advanced by the positive delta vs. the previously published snapshot).
/// Absent groups publish nothing. Thread-safe; also increments
/// process.resource_samples per call that carried at least one group.
void PublishResourceUsage(const ResourceUsage& usage);

/// Background thread publishing SampleResourceUsage() every period.
/// Start/Stop are idempotent and thread-safe; the destructor stops. The
/// thread holds no locks while sampling, so Stop() latency is bounded by
/// one /proc read, not one period.
class ResourceSampler {
 public:
  struct Options {
    /// Sampling period. Must be >= 1 to Start(); the CLI maps its
    /// `--resource-sample-ms 0` (sampler off) to never calling Start().
    int64_t period_ms = 100;
  };

  ResourceSampler();
  explicit ResourceSampler(Options options);
  ~ResourceSampler();

  ResourceSampler(const ResourceSampler&) = delete;
  ResourceSampler& operator=(const ResourceSampler&) = delete;

  /// Starts the background thread (no-op when already running).
  void Start() SPAMMASS_EXCLUDES(mu_);

  /// Signals the thread and joins it (no-op when not running). A final
  /// sample is NOT taken here — callers wanting exit-time values call
  /// SampleOnce() after Stop() (ObsSession does, so even a run shorter
  /// than one period reports real numbers).
  void Stop() SPAMMASS_EXCLUDES(mu_);

  /// Takes and publishes one sample synchronously. Safe concurrently with
  /// the background thread.
  void SampleOnce();

  /// Samples published so far (background + synchronous).
  uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void Loop(uint64_t generation) SPAMMASS_EXCLUDES(mu_);

  const Options options_;
  util::Mutex mu_;
  util::CondVar cv_;
  bool running_ SPAMMASS_GUARDED_BY(mu_) = false;
  bool stop_requested_ SPAMMASS_GUARDED_BY(mu_) = false;
  /// Bumped by every Start. The loop thread exits when either
  /// stop_requested_ is set or the generation moved on — the latter keeps
  /// a Start that interleaves between a concurrent Stop's notify and its
  /// join from resurrecting the old thread's run condition (it would
  /// otherwise reset stop_requested_ and leave the join waiting forever).
  uint64_t generation_ SPAMMASS_GUARDED_BY(mu_) = 0;
  std::thread thread_ SPAMMASS_GUARDED_BY(mu_);
  std::atomic<uint64_t> samples_{0};
};

}  // namespace spammass::obs

#endif  // SPAMMASS_OBS_RESOURCE_H_
