// Clang Thread Safety Analysis attribute wrappers. Every mutex-guarded
// structure in the repo annotates its fields (SPAMMASS_GUARDED_BY) and its
// locking contracts (SPAMMASS_REQUIRES / SPAMMASS_ACQUIRE / ...), and the
// SPAMMASS_THREAD_SAFETY build mode (cmake/StaticAnalysis.cmake) compiles
// with -Wthread-safety -Werror=thread-safety so a missed lock is a build
// error, not a race found in production. Under compilers without the
// attributes (GCC) every macro expands to nothing, so the default build is
// unaffected.
//
// The annotations only work on capability-annotated lock types, not on raw
// std::mutex (libstdc++ ships no annotations): guard state with util::Mutex
// from util/mutex.h, which wraps std::mutex with the attributes below.
//
// Quick guide (docs/static_analysis.md has the full version):
//   SPAMMASS_GUARDED_BY(mu)   on a field: reads/writes require holding mu.
//   SPAMMASS_REQUIRES(mu)     on a function: caller must already hold mu.
//   SPAMMASS_EXCLUDES(mu)     on a function: caller must NOT hold mu
//                             (the function acquires it itself).
//   SPAMMASS_NO_THREAD_SAFETY_ANALYSIS  opt-out for one function; every
//                             use must carry a justification comment.

#ifndef SPAMMASS_UTIL_THREAD_ANNOTATIONS_H_
#define SPAMMASS_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && !defined(SPAMMASS_NO_THREAD_SAFETY_ATTRIBUTES)
#define SPAMMASS_THREAD_ATTRIBUTE(x) __attribute__((x))
#else
#define SPAMMASS_THREAD_ATTRIBUTE(x)  // no-op outside clang
#endif

/// Marks a type as a lockable capability ("mutex"). The analysis tracks
/// which capabilities are held at each program point.
#define SPAMMASS_CAPABILITY(x) SPAMMASS_THREAD_ATTRIBUTE(capability(x))

/// Marks an RAII type whose constructor acquires and destructor releases a
/// capability (util::MutexLock).
#define SPAMMASS_SCOPED_CAPABILITY SPAMMASS_THREAD_ATTRIBUTE(scoped_lockable)

/// Data members: accessing the field requires holding the named capability.
#define SPAMMASS_GUARDED_BY(x) SPAMMASS_THREAD_ATTRIBUTE(guarded_by(x))

/// Pointer members: dereferencing the pointee requires the capability (the
/// pointer itself is unguarded).
#define SPAMMASS_PT_GUARDED_BY(x) SPAMMASS_THREAD_ATTRIBUTE(pt_guarded_by(x))

/// Function entry: the caller must already hold the capabilities.
#define SPAMMASS_REQUIRES(...) \
  SPAMMASS_THREAD_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function entry: the caller must NOT hold the capabilities (typically
/// because the function acquires them itself; catches self-deadlock).
#define SPAMMASS_EXCLUDES(...) \
  SPAMMASS_THREAD_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and returns holding it.
#define SPAMMASS_ACQUIRE(...) \
  SPAMMASS_THREAD_ATTRIBUTE(acquire_capability(__VA_ARGS__))

/// The function releases a held capability.
#define SPAMMASS_RELEASE(...) \
  SPAMMASS_THREAD_ATTRIBUTE(release_capability(__VA_ARGS__))

/// The function attempts to acquire; first argument is the return value
/// that signals success.
#define SPAMMASS_TRY_ACQUIRE(...) \
  SPAMMASS_THREAD_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code reachable both
/// with and without the lock).
#define SPAMMASS_ASSERT_CAPABILITY(x) \
  SPAMMASS_THREAD_ATTRIBUTE(assert_capability(x))

/// The function returns a reference to the named capability.
#define SPAMMASS_RETURN_CAPABILITY(x) \
  SPAMMASS_THREAD_ATTRIBUTE(lock_returned(x))

/// Disables the analysis for one function. Policy: only on documented,
/// justified functions (for example lock-wrapper internals the analysis
/// cannot see through); a blanket suppression fails review and the
/// acceptance bar in docs/static_analysis.md.
#define SPAMMASS_NO_THREAD_SAFETY_ANALYSIS \
  SPAMMASS_THREAD_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SPAMMASS_UTIL_THREAD_ANNOTATIONS_H_
