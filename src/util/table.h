// Aligned plain-text tables and CSV emission for the experiment harnesses.
// Every bench binary prints its paper table/figure series through TextTable
// so the output is uniform and diffable.

#ifndef SPAMMASS_UTIL_TABLE_H_
#define SPAMMASS_UTIL_TABLE_H_

#include <ostream>
#include <string>
#include <type_traits>
#include <vector>

#include "util/status.h"

namespace spammass::util {

/// Builds a table row by row and renders it with aligned columns.
class TextTable {
 public:
  /// Sets the header row (also fixes the column count).
  void SetHeader(std::vector<std::string> header);

  /// Appends a row; short rows are padded with empty cells.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats each cell with default formatting.
  template <typename... Args>
  void AddRowValues(const Args&... args) {
    AddRow({ToCell(args)...});
  }

  size_t num_rows() const { return rows_.size(); }

  /// Renders with a header separator and two-space column gaps.
  std::string ToString() const;

  /// Renders as RFC-4180-ish CSV (cells containing comma/quote/newline are
  /// quoted).
  std::string ToCsv() const;

  /// Writes ToCsv() to a file.
  Status WriteCsv(const std::string& path) const;

  /// Streams ToString().
  friend std::ostream& operator<<(std::ostream& os, const TextTable& t) {
    return os << t.ToString();
  }

 private:
  static std::string ToCell(const std::string& v) { return v; }
  static std::string ToCell(const char* v) { return v; }
  static std::string ToCell(double v);
  static std::string ToCell(float v) { return ToCell(static_cast<double>(v)); }
  template <typename T>
  static std::string ToCell(T v)
    requires std::is_integral_v<T>
  {
    return std::to_string(v);
  }

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant decimals, trimming trailing
/// zeros ("2.70" -> "2.7", "-0.00" -> "0").
std::string FormatDouble(double v, int digits = 4);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_TABLE_H_
