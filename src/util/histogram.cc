#include "util/histogram.h"

#include <cmath>

#include "util/logging.h"

namespace spammass::util {

LogHistogram::LogHistogram(double min_value, double ratio)
    : min_value_(min_value), log_ratio_(std::log(ratio)) {
  CHECK_GT(min_value, 0.0);
  CHECK_GT(ratio, 1.0);
}

void LogHistogram::Add(double value) { AddCount(value, 1); }

void LogHistogram::AddCount(double value, uint64_t count) {
  total_ += count;
  if (value < min_value_ || !(value > 0.0)) {
    underflow_ += count;
    return;
  }
  double idx_f = std::floor(std::log(value / min_value_) / log_ratio_);
  size_t idx = idx_f < 0 ? 0 : static_cast<size_t>(idx_f);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += count;
}

std::vector<HistogramBin> LogHistogram::bins() const {
  std::vector<HistogramBin> out;
  out.reserve(counts_.size());
  double ratio = std::exp(log_ratio_);
  double lower = min_value_;
  for (uint64_t c : counts_) {
    HistogramBin bin;
    bin.lower = lower;
    bin.upper = lower * ratio;
    bin.count = c;
    bin.fraction =
        total_ > 0 ? static_cast<double>(c) / static_cast<double>(total_) : 0.0;
    bin.center = std::sqrt(bin.lower * bin.upper);
    out.push_back(bin);
    lower = bin.upper;
  }
  return out;
}

SummaryStats Summarize(const std::vector<double>& values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(sq / static_cast<double>(values.size()));
  return s;
}

}  // namespace spammass::util
