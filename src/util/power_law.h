// Power-law exponent estimation. Section 4.6 of the paper reports that
// positive absolute spam mass follows a power law with exponent -2.31; the
// Figure 6 bench fits the synthetic mass distribution with the estimators
// implemented here.

#ifndef SPAMMASS_UTIL_POWER_LAW_H_
#define SPAMMASS_UTIL_POWER_LAW_H_

#include <cstddef>
#include <vector>

namespace spammass::util {

/// Result of fitting P(X >= x) ~ x^-(alpha-1) to a sample tail.
struct PowerLawFit {
  /// The density exponent: p(x) ~ x^-alpha.
  double alpha = 0;
  /// Lower cutoff used for the fit.
  double xmin = 0;
  /// Number of observations >= xmin actually used.
  size_t tail_size = 0;
  /// Kolmogorov-Smirnov distance between the empirical tail CDF and the
  /// fitted model; smaller is better.
  double ks_distance = 1.0;
};

/// Continuous maximum-likelihood fit (Clauset-Shalizi-Newman):
///   alpha = 1 + n / sum(ln(x_i / xmin)),   over x_i >= xmin.
/// Non-positive and sub-xmin values are ignored. Returns alpha = 0 when
/// fewer than two tail observations exist.
PowerLawFit FitPowerLaw(const std::vector<double>& values, double xmin);

/// Scans candidate xmin values (the distinct sample values, subsampled to at
/// most `max_candidates`) and returns the fit minimizing the KS distance.
PowerLawFit FitPowerLawAutoXmin(const std::vector<double>& values,
                                size_t max_candidates = 64);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_POWER_LAW_H_
