// Minimal streaming JSON emitter for machine-readable reports (the
// pipeline run manifests, bench summaries). Write-only by design: the
// repo's consumers of JSON are external tools (CI artifact tracking,
// notebooks), so no parser lives here. The writer tracks nesting and
// comma placement so call sites read like the document they produce.

#ifndef SPAMMASS_UTIL_JSON_WRITER_H_
#define SPAMMASS_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace spammass::util {

/// Builds one JSON document into an in-memory string. Keys and values must
/// alternate correctly inside objects; misuse (a value with no pending key
/// inside an object, EndObject inside an array, ...) is CHECK-enforced —
/// manifest emission is programmer-controlled, never data-driven.
class JsonWriter {
 public:
  JsonWriter();

  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; the next value/Begin* call becomes its value.
  JsonWriter& Key(std::string_view name);

  JsonWriter& String(std::string_view value);
  JsonWriter& Double(double value);  // non-finite values emit null
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices an already-serialized JSON value verbatim — e.g. a nested
  /// document produced by another writer. The caller guarantees `json` is
  /// itself well-formed; nesting/comma bookkeeping is still handled here.
  JsonWriter& RawValue(std::string_view json);

  // Convenience key/value pairs.
  JsonWriter& KV(std::string_view key, std::string_view value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, const char* value) {
    return Key(key).String(value);
  }
  JsonWriter& KV(std::string_view key, double value) {
    return Key(key).Double(value);
  }
  JsonWriter& KV(std::string_view key, int value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, int64_t value) {
    return Key(key).Int(value);
  }
  JsonWriter& KV(std::string_view key, uint32_t value) {
    return Key(key).Uint(value);
  }
  JsonWriter& KV(std::string_view key, uint64_t value) {
    return Key(key).Uint(value);
  }
  JsonWriter& KV(std::string_view key, bool value) {
    return Key(key).Bool(value);
  }

  /// Finishes the document and returns it. The writer must be back at the
  /// top level (every Begin closed).
  std::string TakeString();

 private:
  enum class Scope : uint8_t { kObject, kArray };

  /// Emits the separating comma / pending key before a value or container.
  void Prepare();
  void AppendEscaped(std::string_view s);

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;  // parallel to stack_
  bool key_pending_ = false;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_JSON_WRITER_H_
