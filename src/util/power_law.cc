#include "util/power_law.h"

#include <algorithm>
#include <cmath>

namespace spammass::util {

namespace {

/// KS distance between the empirical CDF of the sorted tail and the fitted
/// continuous power law with parameters (alpha, xmin).
double KsDistance(const std::vector<double>& sorted_tail, double alpha,
                  double xmin) {
  double worst = 0;
  const double n = static_cast<double>(sorted_tail.size());
  for (size_t i = 0; i < sorted_tail.size(); ++i) {
    double model = 1.0 - std::pow(sorted_tail[i] / xmin, 1.0 - alpha);
    double emp_lo = static_cast<double>(i) / n;
    double emp_hi = static_cast<double>(i + 1) / n;
    worst = std::max(worst, std::abs(model - emp_lo));
    worst = std::max(worst, std::abs(model - emp_hi));
  }
  return worst;
}

}  // namespace

PowerLawFit FitPowerLaw(const std::vector<double>& values, double xmin) {
  PowerLawFit fit;
  fit.xmin = xmin;
  std::vector<double> tail;
  tail.reserve(values.size());
  for (double v : values) {
    if (v >= xmin && v > 0) tail.push_back(v);
  }
  fit.tail_size = tail.size();
  if (tail.size() < 2 || xmin <= 0) return fit;
  double log_sum = 0;
  for (double v : tail) log_sum += std::log(v / xmin);
  if (log_sum <= 0) return fit;
  fit.alpha = 1.0 + static_cast<double>(tail.size()) / log_sum;
  std::sort(tail.begin(), tail.end());
  fit.ks_distance = KsDistance(tail, fit.alpha, xmin);
  return fit;
}

PowerLawFit FitPowerLawAutoXmin(const std::vector<double>& values,
                                size_t max_candidates) {
  std::vector<double> positive;
  positive.reserve(values.size());
  for (double v : values) {
    if (v > 0) positive.push_back(v);
  }
  PowerLawFit best;
  if (positive.size() < 2) return best;
  std::sort(positive.begin(), positive.end());
  positive.erase(std::unique(positive.begin(), positive.end()),
                 positive.end());
  // Only consider cutoffs that keep at least 10 tail points.
  size_t usable = positive.size() > 10 ? positive.size() - 10 : 1;
  size_t step = std::max<size_t>(1, usable / std::max<size_t>(1, max_candidates));
  for (size_t i = 0; i < usable; i += step) {
    PowerLawFit fit = FitPowerLaw(values, positive[i]);
    if (fit.tail_size >= 2 && fit.ks_distance < best.ks_distance) best = fit;
  }
  if (best.tail_size == 0) best = FitPowerLaw(values, positive.front());
  return best;
}

}  // namespace spammass::util
