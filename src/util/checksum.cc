#include "util/checksum.h"

#include <algorithm>
#include <cstring>

namespace spammass::util {

void Fnv1a64::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t h = state_;
  for (size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kPrime;
  }
  state_ = h;
}

uint64_t Fnv1a64Digest(const void* data, size_t size) {
  Fnv1a64 hasher;
  hasher.Update(data, size);
  return hasher.digest();
}

namespace {

// Endianness-independent little-endian 64-bit load. Compilers recognise
// the shift ladder and emit a single load on little-endian targets.
inline uint64_t LoadLe64(const unsigned char* p) {
  return static_cast<uint64_t>(p[0]) | static_cast<uint64_t>(p[1]) << 8 |
         static_cast<uint64_t>(p[2]) << 16 | static_cast<uint64_t>(p[3]) << 24 |
         static_cast<uint64_t>(p[4]) << 32 | static_cast<uint64_t>(p[5]) << 40 |
         static_cast<uint64_t>(p[6]) << 48 | static_cast<uint64_t>(p[7]) << 56;
}

}  // namespace

void Fnv1a64x8::Update(const void* data, size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  total_bytes_ += size;
  // Blocks are cut at absolute stream positions, so the digest is
  // invariant under Update chunking: top up the partial block carried
  // over from the previous call before touching the new data directly.
  if (pending_fill_ > 0) {
    const size_t take = std::min(size, kBlockBytes - pending_fill_);
    std::memcpy(pending_ + pending_fill_, bytes, take);
    pending_fill_ += take;
    bytes += take;
    size -= take;
    if (pending_fill_ < kBlockBytes) return;
    for (size_t k = 0; k < kLanes; ++k) {
      lanes_[k] = (lanes_[k] ^ LoadLe64(pending_ + 8 * k)) * Fnv1a64::kPrime;
    }
    pending_fill_ = 0;
  }
  // Full blocks straight from the input: one multiply per lane per
  // 64-byte block, eight independent chains the CPU can pipeline. Lanes
  // live in locals for the duration of the loop — loads through `bytes`
  // may alias the lanes_ member array, and the resulting per-block
  // store/reload of every lane would serialize the chains; locals whose
  // address never escapes cannot alias and stay in registers.
  if (size >= kBlockBytes) {
    uint64_t l0 = lanes_[0], l1 = lanes_[1], l2 = lanes_[2], l3 = lanes_[3];
    uint64_t l4 = lanes_[4], l5 = lanes_[5], l6 = lanes_[6], l7 = lanes_[7];
    size_t i = 0;
    for (; i + kBlockBytes <= size; i += kBlockBytes) {
      l0 = (l0 ^ LoadLe64(bytes + i + 0)) * Fnv1a64::kPrime;
      l1 = (l1 ^ LoadLe64(bytes + i + 8)) * Fnv1a64::kPrime;
      l2 = (l2 ^ LoadLe64(bytes + i + 16)) * Fnv1a64::kPrime;
      l3 = (l3 ^ LoadLe64(bytes + i + 24)) * Fnv1a64::kPrime;
      l4 = (l4 ^ LoadLe64(bytes + i + 32)) * Fnv1a64::kPrime;
      l5 = (l5 ^ LoadLe64(bytes + i + 40)) * Fnv1a64::kPrime;
      l6 = (l6 ^ LoadLe64(bytes + i + 48)) * Fnv1a64::kPrime;
      l7 = (l7 ^ LoadLe64(bytes + i + 56)) * Fnv1a64::kPrime;
    }
    lanes_[0] = l0;
    lanes_[1] = l1;
    lanes_[2] = l2;
    lanes_[3] = l3;
    lanes_[4] = l4;
    lanes_[5] = l5;
    lanes_[6] = l6;
    lanes_[7] = l7;
    bytes += i;
    size -= i;
  }
  if (size > 0) {
    std::memcpy(pending_, bytes, size);
    pending_fill_ = size;
  }
}

uint64_t Fnv1a64x8::digest() const {
  Fnv1a64 fold;
  for (uint64_t lane : lanes_) {
    unsigned char le[8];
    for (int b = 0; b < 8; ++b) {
      le[b] = static_cast<unsigned char>(lane >> (8 * b));
    }
    fold.Update(le, sizeof(le));
  }
  fold.Update(pending_, pending_fill_);
  unsigned char le[8];
  for (int b = 0; b < 8; ++b) {
    le[b] = static_cast<unsigned char>(total_bytes_ >> (8 * b));
  }
  fold.Update(le, sizeof(le));
  return fold.digest();
}

uint64_t Fnv1a64x8Digest(const void* data, size_t size) {
  Fnv1a64x8 hasher;
  hasher.Update(data, size);
  return hasher.digest();
}

}  // namespace spammass::util
