#include "util/flags.h"

#include <cstdlib>

#include "util/logging.h"

namespace spammass::util {

void FlagParser::Define(const std::string& name,
                        const std::string& default_value,
                        const std::string& help) {
  Flag flag;
  flag.value = default_value;
  flag.default_value = default_value;
  flag.help = help;
  flags_[name] = std::move(flag);
}

void FlagParser::DefineBool(const std::string& name, const std::string& help) {
  Flag flag;
  flag.value = "false";
  flag.default_value = "false";
  flag.help = help;
  flag.is_bool = true;
  flags_[name] = std::move(flag);
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    size_t eq = name.find('=');
    if (eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      return Status::InvalidArgument("unknown flag --" + name);
    }
    Flag& flag = it->second;
    if (!has_value) {
      if (flag.is_bool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("flag --" + name +
                                         " requires a value");
        }
        value = argv[++i];
      }
    }
    flag.value = std::move(value);
    flag.set = true;
  }
  return Status::OK();
}

const FlagParser::Flag& FlagParser::Get(const std::string& name) const {
  auto it = flags_.find(name);
  CHECK(it != flags_.end()) << "flag --" << name << " was never defined";
  return it->second;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return Get(name).value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return std::atof(Get(name).value.c_str());
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return std::strtoll(Get(name).value.c_str(), nullptr, 10);
}

bool FlagParser::GetBool(const std::string& name) const {
  const std::string& v = Get(name).value;
  return v == "true" || v == "1" || v == "yes";
}

bool FlagParser::WasSet(const std::string& name) const {
  return Get(name).set;
}

std::string FlagParser::Help() const {
  std::string out;
  for (const auto& [name, flag] : flags_) {
    out += "  --" + name;
    if (!flag.is_bool) out += " <value>";
    out += "\n      " + flag.help;
    if (!flag.default_value.empty() && !flag.is_bool) {
      out += " (default: " + flag.default_value + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace spammass::util
