// Status and Result<T>: exception-free error handling in the style of
// Arrow / RocksDB. Library code returns Status (or Result<T>) from every
// fallible operation; programming errors use CHECK from logging.h instead.

#ifndef SPAMMASS_UTIL_STATUS_H_
#define SPAMMASS_UTIL_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace spammass::util {

/// Broad classification of an error. Kept deliberately small; the message
/// carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kIoError,
  kFailedPrecondition,
  kInternal,
};

/// Returns a stable human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A cheap value type describing the outcome of an operation. An OK status
/// carries no allocation; error statuses carry a code and a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Modeled after
/// arrow::Result; the value accessors CHECK-fail on error states, so callers
/// must test ok() (or use ValueOr) first.
template <typename T>
class Result {
 public:
  /// Implicit so that `return value;` and `return status;` both work.
  Result(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_.value(); }
  T& value() & { return value_.value(); }
  T&& value() && { return std::move(value_).value(); }

  /// Returns the value, or `fallback` if this holds an error.
  T ValueOr(T fallback) const& {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_;  // OK when value_ holds a value.
};

}  // namespace spammass::util

/// Propagates an error status from an expression, Arrow-style:
///   SPAMMASS_RETURN_NOT_OK(DoThing());
#define SPAMMASS_RETURN_NOT_OK(expr)                   \
  do {                                                 \
    ::spammass::util::Status _st = (expr);             \
    if (!_st.ok()) return _st;                         \
  } while (false)

#endif  // SPAMMASS_UTIL_STATUS_H_
