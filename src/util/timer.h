// Simple wall-clock timer for experiment harnesses.

#ifndef SPAMMASS_UTIL_TIMER_H_
#define SPAMMASS_UTIL_TIMER_H_

#include <chrono>

namespace spammass::util {

/// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed.
  double Millis() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_TIMER_H_
