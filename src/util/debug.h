// Debug-build detection and helpers for debug-only invariant validation.
// The DCHECK macro family itself lives next to CHECK in util/logging.h
// (included below); this header adds the build-mode predicate and a wrapper
// for statements that should exist only in debug builds — typically calls
// into the O(V+E) validators (graph/graph_validate.h,
// pagerank/solver_validate.h) that are far too heavy for release hot paths.

#ifndef SPAMMASS_UTIL_DEBUG_H_
#define SPAMMASS_UTIL_DEBUG_H_

#include "util/logging.h"

namespace spammass::util {

/// True when invariant validation is compiled in (NDEBUG not defined).
/// Usable in `if constexpr` to keep both branches compiling.
#ifdef NDEBUG
inline constexpr bool kDebugBuild = false;
#else
inline constexpr bool kDebugBuild = true;
#endif

}  // namespace spammass::util

/// 1 when DCHECK/SPAMMASS_DEBUG_ONLY are active, 0 in release builds.
/// Preprocessor-visible counterpart of kDebugBuild for conditional includes
/// or declarations.
#ifdef NDEBUG
#define SPAMMASS_DCHECK_IS_ON() 0
#else
#define SPAMMASS_DCHECK_IS_ON() 1
#endif

/// Executes `statement` in debug builds only; compiles to nothing (the
/// statement is not even parsed into the TU's code) in release builds.
///   SPAMMASS_DEBUG_ONLY(CHECK_OK(ValidateGraph(g)));
#if SPAMMASS_DCHECK_IS_ON()
#define SPAMMASS_DEBUG_ONLY(statement) \
  do {                                 \
    statement;                         \
  } while (false)
#else
#define SPAMMASS_DEBUG_ONLY(statement) \
  do {                                 \
  } while (false)
#endif

#endif  // SPAMMASS_UTIL_DEBUG_H_
