#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace spammass::util {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for '" + path +
                         "': " + std::strerror(errno));
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("mmap open: '" + path + "' is not a regular file");
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Errno("mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping keeps its own reference to the file; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

uint64_t MmapFile::ResidentBytes() const {
  if (data_ == nullptr || size_ == 0) return 0;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t num_pages = (size_ + page - 1) / page;
  std::vector<unsigned char> vec(num_pages);
  if (::mincore(const_cast<uint8_t*>(data_), size_, vec.data()) != 0) {
    return 0;
  }
  uint64_t resident_pages = 0;
  for (unsigned char flags : vec) {
    resident_pages += flags & 1u;
  }
  // The last page may extend past EOF; count bytes, not pages, so the
  // report can never exceed the mapped size.
  uint64_t bytes = resident_pages * page;
  return bytes > size_ ? size_ : bytes;
}

}  // namespace spammass::util
