#include "util/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>
#include <vector>

namespace spammass::util {

namespace {

Status Errno(const std::string& op, const std::string& path) {
  return Status::IoError(op + " failed for '" + path +
                         "': " + std::strerror(errno));
}

}  // namespace

Result<MmapFile> MmapFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Errno("open", path);

  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Errno("fstat", path);
    ::close(fd);
    return status;
  }
  if (!S_ISREG(st.st_mode)) {
    ::close(fd);
    return Status::IoError("mmap open: '" + path + "' is not a regular file");
  }

  MmapFile file;
  file.path_ = path;
  file.size_ = static_cast<uint64_t>(st.st_size);
  if (file.size_ > 0) {
    void* addr = ::mmap(nullptr, file.size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      const Status status = Errno("mmap", path);
      ::close(fd);
      return status;
    }
    file.data_ = static_cast<const uint8_t*>(addr);
  }
  // The mapping keeps its own reference to the file; the descriptor is
  // no longer needed.
  ::close(fd);
  return file;
}

MmapFile::~MmapFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

MmapFile::MmapFile(MmapFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      path_(std::move(other.path_)) {}

MmapFile& MmapFile::operator=(MmapFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) {
      ::munmap(const_cast<uint8_t*>(data_), size_);
    }
    data_ = std::exchange(other.data_, nullptr);
    size_ = std::exchange(other.size_, 0);
    path_ = std::move(other.path_);
  }
  return *this;
}

uint64_t MmapFile::ResidentBytes() const {
  return ResidentBytesInRange(0, size_);
}

uint64_t MmapFile::ResidentBytesInRange(uint64_t offset,
                                        uint64_t length) const {
  if (data_ == nullptr || size_ == 0 || offset >= size_) return 0;
  if (length > size_ - offset) length = size_ - offset;
  if (length == 0) return 0;
  const uint64_t page = static_cast<uint64_t>(::sysconf(_SC_PAGESIZE));
  const uint64_t first_page = offset / page;
  const uint64_t last_page = (offset + length - 1) / page;
  const uint64_t num_pages = last_page - first_page + 1;
  std::vector<unsigned char> vec(num_pages);
  // The mapping always covers whole pages (mmap rounds the file size up),
  // so querying through the end of the last touched page stays in bounds
  // even when the range ends mid-page or the file ends mid-page.
  if (::mincore(const_cast<uint8_t*>(data_) + first_page * page,
                num_pages * page, vec.data()) != 0) {
    return 0;
  }
  uint64_t bytes = 0;
  const uint64_t range_end = offset + length;
  for (uint64_t p = 0; p < num_pages; ++p) {
    if ((vec[p] & 1u) == 0) continue;
    // Each resident page contributes its overlap with [offset, range_end),
    // not the full page, so byte totals stay exact at both edges.
    const uint64_t page_begin = (first_page + p) * page;
    const uint64_t begin = page_begin > offset ? page_begin : offset;
    const uint64_t end =
        page_begin + page < range_end ? page_begin + page : range_end;
    bytes += end - begin;
  }
  return bytes;
}

}  // namespace spammass::util
