// Small string helpers shared by graph I/O and report formatting.

#ifndef SPAMMASS_UTIL_STRING_UTIL_H_
#define SPAMMASS_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace spammass::util {

/// Splits on a single character; empty fields are preserved.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits on any run of whitespace; empty fields are dropped.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins the pieces with `sep` between them.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Allocation-free field scanner: skips leading ASCII whitespace in `*s`,
/// returns the next whitespace-delimited field as a view into the original
/// buffer, and advances `*s` past it. Returns an empty view (and leaves `*s`
/// empty) when no field remains. The graph I/O hot loops use this instead of
/// SplitWhitespace, which allocates one std::string per field.
std::string_view NextField(std::string_view* s);

/// Parses a whole field as an unsigned 64-bit decimal via std::from_chars.
/// Returns false when the field is empty, contains any non-digit (including
/// sign characters or trailing junk), or overflows.
bool ParseUint64(std::string_view field, uint64_t* out);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Formats a count with thousands separators ("73,300,000").
std::string FormatWithCommas(uint64_t value);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_STRING_UTIL_H_
