// Minimal leveled logging and CHECK macros. CHECK is for programming errors
// (invariant violations); recoverable failures return util::Status instead.

#ifndef SPAMMASS_UTIL_LOGGING_H_
#define SPAMMASS_UTIL_LOGGING_H_

#include <sstream>
#include <string>
#include <vector>

namespace spammass::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum level that is emitted to stderr. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Redirects emitted log lines into `sink` instead of stderr (nullptr
/// restores stderr). For tests only: the caller owns `sink` and must keep
/// it alive — and must not log from other threads after resetting — until
/// SetLogCaptureForTest(nullptr) returns. Lines are appended whole under
/// the emission lock, so concurrent writers never interleave characters.
void SetLogCaptureForTest(std::vector<std::string>* sink);

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the log level filters it out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace spammass::util

#define SPAMMASS_LOG_INTERNAL(level)                                        \
  ::spammass::util::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define LOG_DEBUG() SPAMMASS_LOG_INTERNAL(::spammass::util::LogLevel::kDebug)
#define LOG_INFO() SPAMMASS_LOG_INTERNAL(::spammass::util::LogLevel::kInfo)
#define LOG_WARNING() SPAMMASS_LOG_INTERNAL(::spammass::util::LogLevel::kWarning)
#define LOG_ERROR() SPAMMASS_LOG_INTERNAL(::spammass::util::LogLevel::kError)
#define LOG_FATAL() SPAMMASS_LOG_INTERNAL(::spammass::util::LogLevel::kFatal)

/// Aborts with a message when `condition` is false. Always enabled (also in
/// release builds): invariant violations in a detection pipeline must not
/// silently produce wrong rankings.
#define CHECK(condition)                                          \
  if (!(condition))                                               \
  LOG_FATAL() << "Check failed: " #condition " "

#define CHECK_OP(a, b, op) CHECK((a)op(b)) << "(" << (a) << " vs " << (b) << ") "
#define CHECK_EQ(a, b) CHECK_OP(a, b, ==)
#define CHECK_NE(a, b) CHECK_OP(a, b, !=)
#define CHECK_LT(a, b) CHECK_OP(a, b, <)
#define CHECK_LE(a, b) CHECK_OP(a, b, <=)
#define CHECK_GT(a, b) CHECK_OP(a, b, >)
#define CHECK_GE(a, b) CHECK_OP(a, b, >=)

/// Aborts when a Status expression is not OK.
#define CHECK_OK(expr)                                                 \
  do {                                                                 \
    ::spammass::util::Status _st = (expr);                             \
    CHECK(_st.ok()) << _st.ToString();                                 \
  } while (false)

/// Debug-only siblings of the CHECK family. In debug builds (NDEBUG not
/// defined) they are exactly CHECK; in release builds they compile to
/// nothing — the condition is type-checked but never evaluated, so DCHECKs
/// are free to sit inside hot loops and to call O(n) validators.
#ifndef NDEBUG

#define DCHECK(condition) CHECK(condition)
#define DCHECK_EQ(a, b) CHECK_EQ(a, b)
#define DCHECK_NE(a, b) CHECK_NE(a, b)
#define DCHECK_LT(a, b) CHECK_LT(a, b)
#define DCHECK_LE(a, b) CHECK_LE(a, b)
#define DCHECK_GT(a, b) CHECK_GT(a, b)
#define DCHECK_GE(a, b) CHECK_GE(a, b)
#define DCHECK_OK(expr) CHECK_OK(expr)

#else  // NDEBUG

// `false && (condition)` keeps the expression visible to the compiler (so a
// release build still rejects DCHECKs that reference renamed symbols) while
// guaranteeing it is never executed; NullStream swallows streamed detail.
#define DCHECK(condition)       \
  while (false && (condition))  \
  ::spammass::util::internal::NullStream()

#define DCHECK_OP(a, b, op) DCHECK((a)op(b))
#define DCHECK_EQ(a, b) DCHECK_OP(a, b, ==)
#define DCHECK_NE(a, b) DCHECK_OP(a, b, !=)
#define DCHECK_LT(a, b) DCHECK_OP(a, b, <)
#define DCHECK_LE(a, b) DCHECK_OP(a, b, <=)
#define DCHECK_GT(a, b) DCHECK_OP(a, b, >)
#define DCHECK_GE(a, b) DCHECK_OP(a, b, >=)

#define DCHECK_OK(expr) DCHECK((expr).ok())

#endif  // NDEBUG

#endif  // SPAMMASS_UTIL_LOGGING_H_
