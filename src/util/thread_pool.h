// Small fixed-size thread pool with a parallel-for helper. PageRank sweeps
// over CSR rows are embarrassingly parallel in the Jacobi scheme (each
// output entry reads only the previous iterate), so the solver shards the
// node range across workers.
//
// Thread-safety: Submit, Wait, and ParallelFor may all be called
// concurrently from multiple caller threads. ParallelFor tracks its own
// chunks through a per-call latch, so two overlapping ParallelFor calls (or
// a ParallelFor racing unrelated Submits) each return as soon as *their*
// work finishes — they never wait on each other's tasks. Wait() is the
// global variant: it blocks until the pool is fully drained, including
// tasks submitted by other threads while waiting.

#ifndef SPAMMASS_UTIL_THREAD_POOL_H_
#define SPAMMASS_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <thread>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spammass::util {

/// Optional telemetry hooks invoked by every pool worker around each
/// executed task. util cannot depend on the obs layer, so obs installs
/// its instrumentation through this table instead; with no hooks
/// installed (the default) a worker pays one atomic pointer load per
/// task. `worker_index` is the worker's index within its pool.
struct ThreadPoolHooks {
  void (*task_begin)(uint32_t worker_index) = nullptr;
  void (*task_end)(uint32_t worker_index) = nullptr;
};

/// Installs process-wide hooks (nullptr uninstalls). `hooks` must outlive
/// every pool; callers pass a pointer to a static table. Tasks already
/// executing may complete under the previous table.
void SetThreadPoolHooks(const ThreadPoolHooks* hooks);

/// Currently installed hooks, or nullptr.
const ThreadPoolHooks* GetThreadPoolHooks();

/// Fixed pool of worker threads executing submitted tasks.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(uint32_t num_threads);

  /// Drains every queued task, then joins the workers. Submitting from a
  /// task while the destructor runs is a programming error (CHECK).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  uint32_t num_threads() const {
    return static_cast<uint32_t>(workers_.size());
  }

  /// Enqueues a task. Must not be called from code already holding the
  /// pool mutex (i.e. never from inside the locked sections of this class).
  void Submit(std::function<void()> task) SPAMMASS_EXCLUDES(mutex_);

  /// Blocks until the pool is idle: every task submitted before or during
  /// the wait (by any thread) has finished.
  void Wait() SPAMMASS_EXCLUDES(mutex_);

  /// Splits [0, total) into roughly equal chunks (one per worker) and runs
  /// `body(begin, end)` on each concurrently; returns when all chunks are
  /// done. Only waits on its own chunks, never on concurrent callers'.
  void ParallelFor(uint64_t total,
                   const std::function<void(uint64_t, uint64_t)>& body)
      SPAMMASS_EXCLUDES(mutex_);

  /// Runs `body(chunk_index, begin, end)` over [0, total) split into fixed
  /// `chunk_size` pieces: chunk c covers [c·chunk_size, min((c+1)·chunk_size,
  /// total)). The decomposition depends only on (total, chunk_size) — never
  /// on the worker count — so callers that accumulate per-chunk partial
  /// results indexed by `chunk_index` and reduce them in chunk order get
  /// bit-identical floating-point sums for every thread count (the
  /// deterministic-reduction contract the PageRank kernels rely on). Chunks
  /// may execute in any order and more chunks than workers is fine; the
  /// call returns when all of its own chunks are done.
  void ParallelForChunked(
      uint64_t total, uint64_t chunk_size,
      const std::function<void(uint64_t, uint64_t, uint64_t)>& body)
      SPAMMASS_EXCLUDES(mutex_);

 private:
  void WorkerLoop(uint32_t worker_index) SPAMMASS_EXCLUDES(mutex_);

  /// Immutable after construction (only the constructor appends), so
  /// num_threads() and join-at-destruction read it without the lock.
  std::vector<std::thread> workers_;

  Mutex mutex_;
  CondVar task_available_;
  CondVar all_done_;
  std::queue<std::function<void()>> tasks_ SPAMMASS_GUARDED_BY(mutex_);
  /// Queued + currently executing tasks.
  uint64_t in_flight_ SPAMMASS_GUARDED_BY(mutex_) = 0;
  bool shutdown_ SPAMMASS_GUARDED_BY(mutex_) = false;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_THREAD_POOL_H_
