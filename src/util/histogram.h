// Log-binned histograms for heavy-tailed quantities (degrees, PageRank,
// spam mass). Figure 6 of the paper plots the fraction of hosts per
// logarithmic mass bin; LogHistogram produces exactly that series.

#ifndef SPAMMASS_UTIL_HISTOGRAM_H_
#define SPAMMASS_UTIL_HISTOGRAM_H_

#include <cstdint>
#include <vector>

namespace spammass::util {

/// One bin of a log histogram: values in [lower, upper).
struct HistogramBin {
  double lower = 0;
  double upper = 0;
  uint64_t count = 0;
  /// count / total observations added (including out-of-range ones).
  double fraction = 0;
  /// Geometric bin center, convenient for log-log plotting.
  double center = 0;
};

/// Histogram over positive values with logarithmically spaced bin edges:
/// edges are min_value * ratio^i. Values below min_value go into an
/// underflow counter; no overflow (the top bin grows on demand).
class LogHistogram {
 public:
  /// `min_value` > 0 is the lower edge of the first bin; `ratio` > 1 is the
  /// multiplicative bin width (e.g. 2.0 for doubling bins).
  LogHistogram(double min_value, double ratio);

  /// Adds one observation. Non-positive and sub-min values are counted as
  /// underflow.
  void Add(double value);

  /// Adds `count` observations of `value`.
  void AddCount(double value, uint64_t count);

  uint64_t total_count() const { return total_; }
  uint64_t underflow_count() const { return underflow_; }

  /// Materializes the non-empty prefix of bins with fractions of the total.
  std::vector<HistogramBin> bins() const;

 private:
  double min_value_;
  double log_ratio_;
  uint64_t total_ = 0;
  uint64_t underflow_ = 0;
  std::vector<uint64_t> counts_;
};

/// Descriptive statistics of a sample.
struct SummaryStats {
  uint64_t count = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double stddev = 0;
};

/// Computes count/min/max/mean/stddev over a sample (population stddev).
SummaryStats Summarize(const std::vector<double>& values);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_HISTOGRAM_H_
