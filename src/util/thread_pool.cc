#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

#include "util/logging.h"

namespace spammass::util {

namespace {
std::atomic<const ThreadPoolHooks*> g_hooks{nullptr};
}  // namespace

void SetThreadPoolHooks(const ThreadPoolHooks* hooks) {
  g_hooks.store(hooks, std::memory_order_release);
}

const ThreadPoolHooks* GetThreadPoolHooks() {
  return g_hooks.load(std::memory_order_acquire);
}

ThreadPool::ThreadPool(uint32_t num_threads) {
  num_threads = std::max<uint32_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mutex_);
    shutdown_ = true;
  }
  task_available_.NotifyAll();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mutex_);
    CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mutex_);
  while (in_flight_ != 0) all_done_.Wait(&mutex_);
}

void ThreadPool::ParallelFor(
    uint64_t total, const std::function<void(uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  const uint64_t chunks = std::min<uint64_t>(num_threads(), total);
  const uint64_t per_chunk = (total + chunks - 1) / chunks;
  ParallelForChunked(total, per_chunk,
                    [&body](uint64_t, uint64_t begin, uint64_t end) {
                      body(begin, end);
                    });
}

void ThreadPool::ParallelForChunked(
    uint64_t total, uint64_t chunk_size,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  CHECK_GT(chunk_size, 0u);
  const uint64_t num_chunks = (total + chunk_size - 1) / chunk_size;
  if (num_chunks == 1) {
    // Nothing to shard; skip the cross-thread hop.
    body(0, 0, total);
    return;
  }

  // Per-call completion latch. Waiting on the pool-global in_flight_
  // counter (the old scheme) made one caller's ParallelFor block on
  // *other* callers' tasks — and on Submits racing in between chunk
  // submission and the wait. The latch counts exactly this call's chunks,
  // however many that is — chunk counts above num_threads() just queue.
  struct Latch {
    Mutex m;
    CondVar cv;
    uint64_t remaining SPAMMASS_GUARDED_BY(m) = 0;
  } latch;

  // Bundle chunks into at most one task per worker. The chunk decomposition
  // (and therefore every body(c, begin, end) call) is unchanged — only the
  // grouping of chunks into queue entries varies with the worker count, so
  // callers relying on chunk-indexed determinism are unaffected, while the
  // queue-mutex traffic per call drops from num_chunks to num_tasks.
  const uint64_t num_tasks = std::min<uint64_t>(num_chunks, num_threads());
  const uint64_t chunks_per_task = (num_chunks + num_tasks - 1) / num_tasks;
  {
    MutexLock lock(&latch.m);
    latch.remaining = num_tasks;
  }
  for (uint64_t t = 0; t < num_tasks; ++t) {
    const uint64_t first = t * chunks_per_task;
    const uint64_t last = std::min(first + chunks_per_task, num_chunks);
    Submit([&body, &latch, chunk_size, total, first, last] {
      for (uint64_t c = first; c < last; ++c) {
        const uint64_t begin = c * chunk_size;
        const uint64_t end = std::min(begin + chunk_size, total);
        body(c, begin, end);
      }
      // Notify while holding the lock: the waiter cannot wake, observe
      // remaining == 0, and destroy the latch before we are done with it.
      MutexLock lk(&latch.m);
      if (--latch.remaining == 0) latch.cv.NotifyAll();
    });
  }
  MutexLock lk(&latch.m);
  while (latch.remaining != 0) latch.cv.Wait(&latch.m);
}

void ThreadPool::WorkerLoop(uint32_t worker_index) {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      while (!shutdown_ && tasks_.empty()) task_available_.Wait(&mutex_);
      // The loop exits with the lock held and shutdown_ || !tasks_.empty();
      // an empty queue therefore means shutdown. Queued tasks drain first.
      if (tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    // Read once so begin/end always come from the same hook table even if
    // hooks are swapped mid-task.
    const ThreadPoolHooks* hooks = GetThreadPoolHooks();
    if (hooks != nullptr && hooks->task_begin != nullptr) {
      hooks->task_begin(worker_index);
    }
    task();
    if (hooks != nullptr && hooks->task_end != nullptr) {
      hooks->task_end(worker_index);
    }
    {
      MutexLock lock(&mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

}  // namespace spammass::util
