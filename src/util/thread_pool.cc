#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"

namespace spammass::util {

ThreadPool::ThreadPool(uint32_t num_threads) {
  num_threads = std::max<uint32_t>(num_threads, 1);
  workers_.reserve(num_threads);
  for (uint32_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::ParallelFor(
    uint64_t total, const std::function<void(uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  uint64_t chunks = std::min<uint64_t>(num_threads(), total);
  uint64_t per_chunk = (total + chunks - 1) / chunks;
  for (uint64_t c = 0; c < chunks; ++c) {
    uint64_t begin = c * per_chunk;
    uint64_t end = std::min(begin + per_chunk, total);
    if (begin >= end) break;
    Submit([&body, begin, end] { body(begin, end); });
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      task_available_.wait(lock,
                           [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace spammass::util
