#include "util/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/string_util.h"

namespace spammass::util {

std::string FormatDouble(double v, int digits) {
  if (v == 0.0) v = 0.0;  // Normalize -0.
  std::string s = StringPrintf("%.*f", digits, v);
  if (s.find('.') != std::string::npos) {
    size_t last = s.find_last_not_of('0');
    if (s[last] == '.') --last;
    s.erase(last + 1);
  }
  if (s == "-0") s = "0";
  return s;
}

std::string TextTable::ToCell(double v) { return FormatDouble(v); }

void TextTable::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TextTable::AddRow(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TextTable::ToString() const {
  size_t cols = header_.size();
  for (const auto& r : rows_) cols = std::max(cols, r.size());
  std::vector<size_t> width(cols, 0);
  auto measure = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      width[i] = std::max(width[i], row[i].size());
    }
  };
  measure(header_);
  for (const auto& r : rows_) measure(r);

  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < cols; ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      out += cell;
      if (i + 1 < cols) out += std::string(width[i] - cell.size() + 2, ' ');
    }
    out += '\n';
  };
  if (!header_.empty()) {
    emit(header_);
    size_t total = 0;
    for (size_t i = 0; i < cols; ++i) total += width[i] + (i + 1 < cols ? 2 : 0);
    out += std::string(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string TextTable::ToCsv() const {
  auto quote = [](const std::string& cell) {
    if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
    std::string out = "\"";
    for (char c : cell) {
      if (c == '"') out += '"';
      out += c;
    }
    out += '"';
    return out;
  };
  std::string out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += quote(row[i]);
    }
    out += '\n';
  };
  if (!header_.empty()) emit(header_);
  for (const auto& r : rows_) emit(r);
  return out;
}

Status TextTable::WriteCsv(const std::string& path) const {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f << ToCsv();
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace spammass::util
