#include "util/string_util.h"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace spammass::util {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string_view NextField(std::string_view* s) {
  size_t b = 0;
  while (b < s->size() && std::isspace(static_cast<unsigned char>((*s)[b]))) {
    ++b;
  }
  size_t e = b;
  while (e < s->size() && !std::isspace(static_cast<unsigned char>((*s)[e]))) {
    ++e;
  }
  std::string_view field = s->substr(b, e - b);
  s->remove_prefix(e);
  return field;
}

bool ParseUint64(std::string_view field, uint64_t* out) {
  if (field.empty()) return false;
  const char* first = field.data();
  const char* last = first + field.size();
  auto [ptr, ec] = std::from_chars(first, last, *out, 10);
  return ec == std::errc() && ptr == last;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace spammass::util
