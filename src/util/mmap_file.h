// Read-only memory-mapped file. The out-of-core graph path
// (graph::ReadBinaryMmap) maps the v2.2 paged binary format and hands
// WebGraph spans that point straight into the mapping, so "loading" a
// graph costs a handful of page faults instead of a bulk copy and the
// page cache — not the process heap — bounds the graph size.
//
// The mapping is MAP_PRIVATE + PROT_READ: the file on disk can never be
// modified through it, and writes through the returned pointers are a
// fault by construction. Callers that need mutable arrays copy out
// (see graph::ReadBinary's v2.2 heap path).

#ifndef SPAMMASS_UTIL_MMAP_FILE_H_
#define SPAMMASS_UTIL_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace spammass::util {

/// Move-only owner of one read-only file mapping. Unmapped on
/// destruction. All sizes are validated up front by callers before any
/// access past data()[size()-1]; the class itself never touches the
/// mapped bytes, so a well-behaved caller cannot SIGBUS on a file that
/// matches its stat() size.
class MmapFile {
 public:
  /// Maps `path` read-only in full. Fails with IoError if the file
  /// cannot be opened, stat'ed, or mapped. An empty file maps
  /// successfully with size() == 0 and data() == nullptr.
  static Result<MmapFile> Open(const std::string& path);

  MmapFile() = default;
  ~MmapFile();

  MmapFile(MmapFile&& other) noexcept;
  MmapFile& operator=(MmapFile&& other) noexcept;
  MmapFile(const MmapFile&) = delete;
  MmapFile& operator=(const MmapFile&) = delete;

  /// First byte of the mapping (nullptr iff size() == 0).
  const uint8_t* data() const { return data_; }
  /// Mapped length in bytes == the file size at Open time.
  uint64_t size() const { return size_; }
  /// Path the mapping was opened from (for error messages).
  const std::string& path() const { return path_; }

  /// Bytes of the mapping currently resident in memory, computed via
  /// mincore. Returns 0 on an empty mapping or if the kernel query
  /// fails; the value is advisory (it races with page reclaim) and
  /// exists for the `graph stats` mapped-vs-resident report and the
  /// graph.mmap_resident_bytes gauge.
  uint64_t ResidentBytes() const;

  /// Resident bytes within [offset, offset + length) of the mapping, the
  /// per-section variant of ResidentBytes(): the queried range is widened
  /// to page boundaries for the mincore call and each resident page
  /// contributes only its overlap with the requested byte range, so
  /// summing disjoint section ranges never double-counts and never
  /// exceeds ResidentBytes() by more than the shared boundary pages.
  /// Ranges past EOF are clamped; returns 0 on an empty mapping, a
  /// fully-clamped range, or a failed kernel query. Advisory, like
  /// ResidentBytes().
  uint64_t ResidentBytesInRange(uint64_t offset, uint64_t length) const;

 private:
  const uint8_t* data_ = nullptr;
  uint64_t size_ = 0;
  std::string path_;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_MMAP_FILE_H_
