#include "util/file_util.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace spammass::util {

Status CreateDirectories(const std::string& path) {
  if (path.empty()) return Status::OK();
  std::error_code ec;
  std::filesystem::create_directories(path, ec);
  if (ec) {
    return Status::IoError("cannot create directory '" + path +
                           "': " + ec.message());
  }
  return Status::OK();
}

Status WriteTextFile(const std::string& path, std::string_view content) {
  const std::string parent = std::filesystem::path(path).parent_path();
  SPAMMASS_RETURN_NOT_OK(CreateDirectories(parent));
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open '" + path +
                           "' for writing: " + std::strerror(errno));
  }
  const size_t written = content.empty()
                             ? 0
                             : std::fwrite(content.data(), 1, content.size(),
                                           f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != content.size() || !close_ok) {
    return Status::IoError("short write to '" + path + "'");
  }
  return Status::OK();
}

}  // namespace spammass::util
