// Streaming checksums for the binary graph container. The v2 container
// (graph/graph_io.cc, docs/graph_format.md) appends one digest over the
// whole file so truncation and bit corruption are detected before the CSR
// arrays are trusted. Neither hash is cryptographic — they guard against
// accidental corruption only.

#ifndef SPAMMASS_UTIL_CHECKSUM_H_
#define SPAMMASS_UTIL_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace spammass::util {

/// Incremental FNV-1a 64-bit hasher (the canonical byte-serial form). Feed
/// byte ranges in any chunking; the digest depends only on the concatenated
/// byte stream. Each byte's multiply depends on the previous byte's result,
/// so throughput is capped by the multiplier latency (~4 cycles/byte) —
/// fine for headers and small records, too slow for multi-megabyte arrays.
class Fnv1a64 {
 public:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  /// Absorbs `size` bytes starting at `data`.
  void Update(const void* data, size_t size);

  /// Digest of everything absorbed so far.
  uint64_t digest() const { return state_; }

 private:
  uint64_t state_ = kOffsetBasis;
};

/// One-shot digest of a byte range.
uint64_t Fnv1a64Digest(const void* data, size_t size);

/// Eight interleaved word-wide FNV-1a lanes. The stream is cut into
/// 64-byte blocks; word `k` of each block (64-bit little-endian) feeds
/// lane `k` with one FNV-1a step (`lane = (lane ^ word) * kPrime`), so a
/// block costs eight independent multiplies instead of sixty-four chained
/// ones and the hash moves at memory bandwidth (~50x the byte-serial
/// class above). digest() folds, through one byte-serial FNV-1a pass: the
/// lane states (each as eight little-endian bytes, lane 0 first), the
/// raw bytes of the final partial block, and the total stream length
/// (eight little-endian bytes). Like the serial form, the result depends
/// only on the concatenated byte stream, never on Update chunking. Any
/// single-bit flip flips its word, its lane, and the digest. This is the
/// whole-file checksum of the v2 binary graph format
/// (docs/graph_format.md).
class Fnv1a64x8 {
 public:
  static constexpr size_t kLanes = 8;
  static constexpr size_t kBlockBytes = 64;

  /// Absorbs `size` bytes starting at `data`.
  void Update(const void* data, size_t size);

  /// Digest of everything absorbed so far.
  uint64_t digest() const;

 private:
  uint64_t lanes_[kLanes] = {
      Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis,
      Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis,
      Fnv1a64::kOffsetBasis, Fnv1a64::kOffsetBasis};
  // Carry for stream tails that don't fill a 64-byte block yet.
  unsigned char pending_[kBlockBytes];
  size_t pending_fill_ = 0;
  uint64_t total_bytes_ = 0;
};

/// One-shot interleaved digest of a byte range.
uint64_t Fnv1a64x8Digest(const void* data, size_t size);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_CHECKSUM_H_
