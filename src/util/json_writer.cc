#include "util/json_writer.h"

#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/logging.h"

namespace spammass::util {

JsonWriter::JsonWriter() { out_.reserve(256); }

void JsonWriter::Prepare() {
  if (stack_.empty()) {
    CHECK(out_.empty()) << "JSON document already complete";
    return;
  }
  if (stack_.back() == Scope::kObject) {
    CHECK(key_pending_) << "object member needs Key() before its value";
    key_pending_ = false;
    return;
  }
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
}

void JsonWriter::AppendEscaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\r':
        out_ += "\\r";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::BeginObject() {
  Prepare();
  out_.push_back('{');
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  CHECK(!key_pending_) << "dangling Key() at EndObject";
  out_.push_back('}');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Prepare();
  out_.push_back('[');
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  out_.push_back(']');
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view name) {
  CHECK(!stack_.empty() && stack_.back() == Scope::kObject)
      << "Key() outside an object";
  CHECK(!key_pending_) << "two Key() calls in a row";
  if (has_items_.back()) out_.push_back(',');
  has_items_.back() = true;
  AppendEscaped(name);
  out_.push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  Prepare();
  AppendEscaped(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  if (!std::isfinite(value)) return Null();
  Prepare();
  char buf[32];
  // %.17g round-trips every double; trim to the shortest representation
  // that still parses back exactly is not worth the code here.
  int len = std::snprintf(buf, sizeof(buf), "%.17g", value);
  out_.append(buf, static_cast<size_t>(len));
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Prepare();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  Prepare();
  char buf[24];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
  out_.append(buf, ptr);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Prepare();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Prepare();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::RawValue(std::string_view json) {
  CHECK(!json.empty()) << "RawValue needs a non-empty JSON value";
  Prepare();
  out_.append(json);
  return *this;
}

std::string JsonWriter::TakeString() {
  CHECK(stack_.empty()) << "unclosed JSON container at TakeString";
  CHECK(!out_.empty()) << "TakeString on an empty document";
  return std::move(out_);
}

}  // namespace spammass::util
