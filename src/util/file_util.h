// Small file-writing helpers shared by every component that emits an
// output artifact (run manifests, trace files, metrics snapshots).

#ifndef SPAMMASS_UTIL_FILE_UTIL_H_
#define SPAMMASS_UTIL_FILE_UTIL_H_

#include <string>
#include <string_view>

#include "util/status.h"

namespace spammass::util {

/// Creates every missing directory on `path` (like `mkdir -p`). Errors
/// name the failing path. An empty path is OK (nothing to create).
Status CreateDirectories(const std::string& path);

/// Writes `content` to `path`, creating missing parent directories first.
/// Overwrites an existing file. Errors name the failing path.
Status WriteTextFile(const std::string& path, std::string_view content);

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_FILE_UTIL_H_
