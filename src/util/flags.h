// Minimal command-line flag parsing for the CLI tool: "--name value",
// "--name=value", bare boolean "--name", and positional arguments. No
// global state; each binary builds a parser, registers flags, parses, and
// reads values.

#ifndef SPAMMASS_UTIL_FLAGS_H_
#define SPAMMASS_UTIL_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace spammass::util {

/// Parses argv into named flags and positionals.
class FlagParser {
 public:
  /// Registers a flag with a default value and a help line. Flags not
  /// registered before Parse() are rejected as unknown.
  void Define(const std::string& name, const std::string& default_value,
              const std::string& help);

  /// Registers a boolean flag (default false; "--name" sets it true,
  /// "--name=false" resets it).
  void DefineBool(const std::string& name, const std::string& help);

  /// Parses the arguments (excluding argv[0]). Unknown flags or missing
  /// values fail.
  Status Parse(int argc, const char* const* argv);

  /// Flag accessors (CHECK-fail on unregistered names).
  const std::string& GetString(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  /// True when the user explicitly set the flag.
  bool WasSet(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Formatted help text listing every flag.
  std::string Help() const;

 private:
  struct Flag {
    std::string value;
    std::string default_value;
    std::string help;
    bool is_bool = false;
    bool set = false;
  };

  const Flag& Get(const std::string& name) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_FLAGS_H_
