#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spammass::util {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetLogLevel() { return g_min_level.load(); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level.load() || level_ == LogLevel::kFatal) {
    std::string line = stream_.str();
    std::fprintf(stderr, "%s\n", line.c_str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace spammass::util
