#include "util/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace spammass::util {

namespace {

std::atomic<LogLevel> g_min_level{LogLevel::kInfo};

/// Serializes line emission. stderr itself locks per fprintf call, but the
/// capture sink is a plain vector and needs real mutual exclusion; routing
/// both paths through one annotated mutex keeps emission-order consistent
/// between the two and gives the thread-safety analysis a capability to
/// check the sink accesses against.
Mutex g_emit_mu;
std::vector<std::string>* g_capture_sink SPAMMASS_GUARDED_BY(g_emit_mu) =
    nullptr;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

void EmitLine(const std::string& line) SPAMMASS_EXCLUDES(g_emit_mu) {
  MutexLock lock(&g_emit_mu);
  if (g_capture_sink != nullptr) {
    g_capture_sink->push_back(line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) { g_min_level.store(level); }
LogLevel GetLogLevel() { return g_min_level.load(); }

void SetLogCaptureForTest(std::vector<std::string>* sink) {
  MutexLock lock(&g_emit_mu);
  g_capture_sink = sink;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level.load() || level_ == LogLevel::kFatal) {
    EmitLine(stream_.str());
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace spammass::util
