// Capability-annotated mutex primitives. std::mutex under libstdc++
// carries no thread-safety attributes, so Clang's analysis cannot see a
// std::lock_guard acquire anything; these thin wrappers restore that
// visibility at zero runtime cost (every method is an inline forward to
// the std primitive). All mutex-guarded state in the repo uses util::Mutex
// + SPAMMASS_GUARDED_BY so the SPAMMASS_THREAD_SAFETY build mode can prove
// every access is locked.
//
//   util::Mutex mu;
//   int value SPAMMASS_GUARDED_BY(mu);
//   {
//     util::MutexLock lock(&mu);
//     ++value;                       // OK: lock held
//   }
//   ++value;                         // -Wthread-safety error
//
// CondVar pairs with Mutex the way std::condition_variable pairs with
// std::mutex; Wait() releases and reacquires atomically and, like any
// condition wait, must sit in a predicate loop.

#ifndef SPAMMASS_UTIL_MUTEX_H_
#define SPAMMASS_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>

#include "util/thread_annotations.h"

namespace spammass::util {

/// Annotated exclusive mutex. Non-recursive, same semantics as the wrapped
/// std::mutex.
class SPAMMASS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SPAMMASS_ACQUIRE() { mu_.lock(); }
  void Unlock() SPAMMASS_RELEASE() { mu_.unlock(); }
  bool TryLock() SPAMMASS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock for Mutex; the scoped-capability shape the analysis
/// understands. Takes a pointer so call sites read `MutexLock lock(&mu_);`
/// and cannot accidentally copy-construct from a temporary.
class SPAMMASS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) SPAMMASS_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~MutexLock() SPAMMASS_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Condition variable for util::Mutex. Forwarding to the std
/// condition_variable keeps native wait morphing; the adopt/release dance
/// just adapts the held Mutex to the unique_lock interface for the span of
/// one wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` (which the caller must hold), blocks until
  /// notified, and reacquires `mu` before returning. Spurious wakeups are
  /// possible — always wait in a predicate loop.
  void Wait(Mutex* mu) SPAMMASS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    // The wait returns with the lock reacquired; release() hands ownership
    // back to the caller instead of unlocking at scope exit.
    lock.release();
  }

  /// Like Wait(), but gives up after `timeout_ms` milliseconds. Returns
  /// true when notified, false on timeout; the mutex is reacquired either
  /// way. Spurious wakeups are possible — always wait in a predicate loop
  /// (a periodic waiter, like the obs resource sampler, treats the
  /// timeout itself as the predicate).
  bool WaitFor(Mutex* mu, int64_t timeout_ms) SPAMMASS_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    const bool notified =
        cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms)) ==
        std::cv_status::no_timeout;
    lock.release();
    return notified;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_MUTEX_H_
