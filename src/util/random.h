// Deterministic, seedable pseudo-random generation used by the synthetic
// web generator and by the samplers in the evaluation harness. Everything in
// this repository derives randomness from Rng so that experiments are
// reproducible bit-for-bit given a seed.

#ifndef SPAMMASS_UTIL_RANDOM_H_
#define SPAMMASS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace spammass::util {

/// SplitMix64: tiny generator used to expand a user seed into engine state.
/// Advances `state` and returns the next 64-bit value.
uint64_t SplitMix64(uint64_t* state);

/// PCG32 (pcg_xsh_rr_64_32): small, fast, statistically solid generator.
/// Satisfies UniformRandomBitGenerator so it composes with <random> and
/// std::shuffle.
class Rng {
 public:
  using result_type = uint32_t;

  /// Seeds the engine; distinct seeds yield independent-looking streams.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32 bits.
  result_type operator()();

  /// Next 64 raw bits.
  uint64_t Next64();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform index in [0, n). Requires n > 0.
  uint64_t UniformIndex(uint64_t n);

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Exponential with rate lambda > 0.
  double Exponential(double lambda);

  /// Continuous Pareto / power-law sample with density ~ x^(-alpha) for
  /// x >= xmin. Requires alpha > 1, xmin > 0.
  double PowerLaw(double xmin, double alpha);

  /// Discrete power-law sample >= xmin with P(X = x) ~ x^(-alpha),
  /// approximated by rounding the continuous inverse transform (the standard
  /// Clauset et al. recipe). Requires alpha > 1, xmin >= 1.
  uint64_t DiscretePowerLaw(uint64_t xmin, double alpha);

  /// Gaussian via Box-Muller.
  double Gaussian(double mean, double stddev);

 private:
  uint64_t state_;
  uint64_t inc_;
};

/// Samples approximately Zipf-distributed ranks in [0, n) with exponent s:
/// P(rank = r) ~ (r + 1)^(-s). Uses rejection-inversion so construction is
/// O(1) and sampling is O(1) expected, independent of n.
class ZipfSampler {
 public:
  /// Requires n >= 1 and s > 0, s != 1 handled as well as s == 1.
  ZipfSampler(uint64_t n, double s);

  /// Draws a rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  uint64_t n() const { return n_; }
  double s() const { return s_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  uint64_t n_;
  double s_;
  double h_x1_;
  double h_n_;
  double threshold_;
};

/// Returns k distinct indices sampled uniformly from [0, n) (k <= n), in
/// ascending order. Uses Floyd's algorithm: O(k) expected memory/time.
std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng* rng);

/// Fisher-Yates shuffle of a vector, driven by Rng.
template <typename T>
void Shuffle(std::vector<T>* v, Rng* rng) {
  if (v->empty()) return;
  for (uint64_t i = v->size() - 1; i > 0; --i) {
    uint64_t j = rng->UniformIndex(i + 1);
    std::swap((*v)[i], (*v)[j]);
  }
}

}  // namespace spammass::util

#endif  // SPAMMASS_UTIL_RANDOM_H_
