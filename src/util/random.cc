#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/logging.h"

namespace spammass::util {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  state_ = SplitMix64(&sm);
  inc_ = SplitMix64(&sm) | 1ULL;  // Stream selector must be odd.
  (*this)();
}

Rng::result_type Rng::operator()() {
  uint64_t old = state_;
  state_ = old * 6364136223846793005ULL + inc_;
  uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
  uint32_t rot = static_cast<uint32_t>(old >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

uint64_t Rng::Next64() {
  uint64_t hi = (*this)();
  uint64_t lo = (*this)();
  return (hi << 32) | lo;
}

double Rng::Uniform01() {
  // 53 random bits -> double in [0, 1).
  return static_cast<double>(Next64() >> 11) * (1.0 / 9007199254740992.0);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t range = static_cast<uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<int64_t>(Next64());  // Full 64-bit range.
  return lo + static_cast<int64_t>(UniformIndex(range));
}

uint64_t Rng::UniformIndex(uint64_t n) {
  CHECK_GT(n, 0u);
  // Lemire-style rejection to remove modulo bias.
  uint64_t threshold = (0 - n) % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return Uniform01() < p;
}

double Rng::Exponential(double lambda) {
  CHECK_GT(lambda, 0.0);
  double u;
  do {
    u = Uniform01();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

double Rng::PowerLaw(double xmin, double alpha) {
  CHECK_GT(alpha, 1.0);
  CHECK_GT(xmin, 0.0);
  double u;
  do {
    u = Uniform01();
  } while (u == 0.0);
  return xmin * std::pow(u, -1.0 / (alpha - 1.0));
}

uint64_t Rng::DiscretePowerLaw(uint64_t xmin, double alpha) {
  CHECK_GE(xmin, 1u);
  double x = (static_cast<double>(xmin) - 0.5) *
                 std::pow(1.0 - Uniform01(), -1.0 / (alpha - 1.0)) +
             0.5;
  if (x >= 9.0e18) return static_cast<uint64_t>(9.0e18);
  uint64_t r = static_cast<uint64_t>(x);
  return std::max(r, xmin);
}

double Rng::Gaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = Uniform01();
  } while (u1 == 0.0);
  double u2 = Uniform01();
  double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return mean + stddev * z;
}

// --- ZipfSampler -----------------------------------------------------------
//
// Rejection-inversion sampling for the Zipf distribution, after W. Hormann
// and G. Derflinger, "Rejection-inversion to generate variates from monotone
// discrete distributions" (1996). Internally samples k in [1, n] with
// P(k) ~ k^(-s) and returns k - 1.

namespace {

double HIntegral(double x, double s) {
  // Integral of t^(-s): (x^(1-s) - 1) / (1 - s); log(x) when s == 1.
  if (s == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s) - 1.0) / (1.0 - s);
}

double HIntegralInverse(double y, double s) {
  if (s == 1.0) return std::exp(y);
  return std::pow(1.0 + y * (1.0 - s), 1.0 / (1.0 - s));
}

}  // namespace

ZipfSampler::ZipfSampler(uint64_t n, double s) : n_(n), s_(s) {
  CHECK_GE(n, 1u);
  CHECK_GT(s, 0.0);
  h_x1_ = HIntegral(1.5, s_) - 1.0;
  h_n_ = HIntegral(static_cast<double>(n_) + 0.5, s_);
  threshold_ = 2.0 - HIntegralInverse(HIntegral(2.5, s_) - std::pow(2.0, -s_), s_);
}

double ZipfSampler::H(double x) const { return HIntegral(x, s_); }
double ZipfSampler::HInverse(double x) const { return HIntegralInverse(x, s_); }

uint64_t ZipfSampler::Sample(Rng* rng) const {
  if (n_ == 1) return 0;
  for (;;) {
    double u = h_n_ + rng->Uniform01() * (h_x1_ - h_n_);
    double x = HInverse(u);
    uint64_t k = static_cast<uint64_t>(x + 0.5);
    k = std::clamp<uint64_t>(k, 1, n_);
    double kd = static_cast<double>(k);
    if (kd - x <= threshold_ ||
        u >= H(kd + 0.5) - std::pow(kd, -s_)) {
      return k - 1;
    }
  }
}

std::vector<uint64_t> SampleWithoutReplacement(uint64_t n, uint64_t k,
                                               Rng* rng) {
  CHECK_LE(k, n);
  // Floyd's algorithm.
  std::set<uint64_t> chosen;
  for (uint64_t j = n - k; j < n; ++j) {
    uint64_t t = rng->UniformIndex(j + 1);
    if (!chosen.insert(t).second) chosen.insert(j);
  }
  return std::vector<uint64_t>(chosen.begin(), chosen.end());
}

}  // namespace spammass::util
