#include "pipeline/graph_source.h"

#include <cctype>
#include <cstdio>
#include <utility>

#include "core/label_io.h"
#include "graph/graph_io.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass::pipeline {

using util::Result;
using util::Status;

const char* GraphFormatToString(GraphFormat format) {
  switch (format) {
    case GraphFormat::kSynthetic:
      return "synthetic";
    case GraphFormat::kTextEdgeList:
      return "text";
    case GraphFormat::kBinary:
      return "binary";
    case GraphFormat::kInMemory:
      return "in-memory";
  }
  return "unknown";
}

Result<GraphFormat> SniffGraphFormat(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open graph file: " + path);
  }
  unsigned char head[64];
  size_t got = std::fread(head, 1, sizeof(head), f);
  std::fclose(f);
  if (got == 0) {
    return Status::InvalidArgument("empty graph file: " + path);
  }
  if (got >= 4 && head[0] == 'S' && head[1] == 'M' && head[2] == 'W' &&
      head[3] == 'G') {
    return GraphFormat::kBinary;
  }
  // A text edge list is '#' comments, digits and whitespace from byte one.
  // Demand printable ASCII across the sniffed window: a truncated binary
  // that lost its magic must not be handed to the text parser, whose
  // per-line errors would point users away from the real problem.
  for (size_t i = 0; i < got; ++i) {
    unsigned char c = head[i];
    if (c != '\n' && c != '\r' && c != '\t' && (c < 0x20 || c > 0x7e)) {
      return Status::InvalidArgument(
          "unrecognized graph file format (neither SMWG binary nor text "
          "edge list): " +
          path);
    }
  }
  return GraphFormat::kTextEdgeList;
}

GraphSource GraphSource::Scenario(double scale, uint64_t seed) {
  return FromConfig(synth::Yahoo2004Scenario(scale, seed));
}

GraphSource GraphSource::FromConfig(synth::WebModelConfig config) {
  GraphSource source;
  source.kind_ = Kind::kSynthetic;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "synthetic seed=%llu",
                static_cast<unsigned long long>(config.seed));
  source.description_ = buf;
  source.config_ = std::move(config);
  return source;
}

GraphSource GraphSource::FromFile(std::string path) {
  GraphSource source;
  source.kind_ = Kind::kFile;
  source.description_ = path;
  source.path_ = std::move(path);
  return source;
}

GraphSource GraphSource::FromGraph(graph::WebGraph graph,
                                   std::string description) {
  GraphSource source;
  source.kind_ = Kind::kInMemory;
  source.graph_ = std::move(graph);
  source.description_ = std::move(description);
  return source;
}

GraphSource& GraphSource::WithLabelsFile(std::string path) {
  labels_path_ = std::move(path);
  return *this;
}

GraphSource& GraphSource::WithCoreFile(std::string path) {
  core_path_ = std::move(path);
  return *this;
}

GraphSource& GraphSource::WithHostNamesFile(std::string path) {
  host_names_path_ = std::move(path);
  return *this;
}

GraphSource& GraphSource::WithGoodCore(std::vector<graph::NodeId> core) {
  good_core_ = std::move(core);
  return *this;
}

GraphSource& GraphSource::WithMmap(bool mmap) {
  mmap_ = mmap;
  return *this;
}

namespace {

/// Post-load bookkeeping shared by every exit path: graph-shape gauges and
/// the load counter the metrics snapshot reports.
void RecordLoadMetrics(const LoadedGraph& loaded) {
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  static obs::Counter* loads = registry.GetCounter("graph.loads");
  static obs::Gauge* nodes = registry.GetGauge("graph.nodes");
  static obs::Gauge* edges = registry.GetGauge("graph.edges");
  static obs::Gauge* mapped = registry.GetGauge("graph.mapped_bytes");
  static obs::Gauge* resident = registry.GetGauge("graph.resident_bytes");
  loads->Increment();
  nodes->Set(static_cast<double>(loaded.web.graph.num_nodes()));
  edges->Set(static_cast<double>(loaded.web.graph.num_edges()));
  // 0/0 for heap-backed graphs; the residency sample is advisory (mincore
  // at one instant) but cheap enough to take on every load.
  mapped->Set(static_cast<double>(loaded.web.graph.mapped_bytes()));
  resident->Set(static_cast<double>(loaded.web.graph.resident_bytes()));
}

}  // namespace

Result<LoadedGraph> GraphSource::Load(util::ThreadPool* pool) {
  obs::ScopedStageTimer timer("graph_source_load", nullptr);
  timer.span().Arg("source", std::string_view(description_));
  LoadedGraph loaded;
  loaded.description = description_;

  if (mmap_ && kind_ != Kind::kFile) {
    return Status::InvalidArgument(
        "mmap loading requires a file source (v2.2 binary container)");
  }
  switch (kind_) {
    case Kind::kSynthetic: {
      auto web = synth::GenerateWeb(config_);
      if (!web.ok()) return web.status();
      loaded.web = std::move(web.value());
      loaded.format = GraphFormat::kSynthetic;
      loaded.is_synthetic = true;
      loaded.has_labels = true;
      loaded.good_core = loaded.web.AssembledGoodCore();
      loaded.load_seconds = timer.Seconds();
      RecordLoadMetrics(loaded);
      return loaded;
    }
    case Kind::kFile: {
      auto format = SniffGraphFormat(path_);
      if (!format.ok()) return format.status();
      loaded.format = format.value();
      if (mmap_ && loaded.format != GraphFormat::kBinary) {
        return Status::InvalidArgument(
            "mmap loading requires a v2.2 binary container, got a text "
            "edge list: " +
            path_);
      }
      auto graph = loaded.format != GraphFormat::kBinary
                       ? graph::ReadEdgeListText(path_, pool)
                       : (mmap_ ? graph::ReadBinaryMmap(path_)
                                : graph::ReadBinary(path_, pool));
      if (!graph.ok()) return graph.status();
      loaded.web.graph = std::move(graph.value());
      break;
    }
    case Kind::kInMemory:
      if (consumed_) {
        return Status::FailedPrecondition(
            "in-memory graph source already loaded (one-shot: WebGraph is "
            "move-only)");
      }
      loaded.web.graph = std::move(graph_);
      consumed_ = true;
      loaded.format = GraphFormat::kInMemory;
      break;
  }

  // Side data for file / in-memory sources.
  if (!host_names_path_.empty()) {
    util::Status status =
        graph::ReadHostNames(host_names_path_, &loaded.web.graph);
    if (!status.ok()) return status;
  }
  if (!labels_path_.empty()) {
    auto labels =
        core::ReadLabels(labels_path_, loaded.web.graph.num_nodes());
    if (!labels.ok()) return labels.status();
    loaded.web.labels = std::move(labels.value());
    loaded.has_labels = true;
  }
  if (!core_path_.empty()) {
    auto core =
        core::ReadNodeList(core_path_, loaded.web.graph.num_nodes());
    if (!core.ok()) return core.status();
    loaded.good_core = std::move(core.value());
  } else if (!good_core_.empty()) {
    for (graph::NodeId x : good_core_) {
      if (x >= loaded.web.graph.num_nodes()) {
        return Status::InvalidArgument("good-core node id out of range");
      }
    }
    loaded.good_core = good_core_;
  }
  loaded.load_seconds = timer.Seconds();
  RecordLoadMetrics(loaded);
  return loaded;
}

}  // namespace spammass::pipeline
