// RunManifest — the structured JSON record every pipeline run writes:
// where the graph came from, the exact configuration used, per-stage wall
// times, solver iteration counts, and a summary per detector. The schema
// is documented in docs/architecture.md; bench tooling and the CLI
// integration tests parse it.

#ifndef SPAMMASS_PIPELINE_MANIFEST_H_
#define SPAMMASS_PIPELINE_MANIFEST_H_

#include <string>
#include <utility>
#include <vector>

#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "util/status.h"

namespace spammass::pipeline {

/// Everything one manifest records. Aggregated by the pipeline driver
/// (and by eval::RunPipeline for its wrapper runs); pointers reference the
/// caller's objects and are only read during BuildManifestJson.
struct ManifestInputs {
  const LoadedGraph* source = nullptr;    // required
  const PipelineConfig* config = nullptr; // required
  /// Stage wall times, in execution order (load + context stages + any
  /// caller-specific stages like sampling).
  std::vector<StageTiming> stages;
  uint64_t base_pagerank_solves = 0;
  uint64_t total_solves = 0;
  /// Convergence telemetry per named solve, in execution order. Feeds both
  /// the solver_runs.iterations map and the schema-v2 "convergence" array
  /// (which carries per-lane residual curves when they were tracked).
  std::vector<std::pair<std::string, pagerank::SolveStats>> solve_stats;
  /// Per-detector summaries; empty for runs that compute artifacts only.
  const std::vector<DetectorOutput>* detectors = nullptr;
  double total_seconds = 0;
};

/// Serializes one run manifest (schema_version 3). The returned string is
/// a complete JSON object, including a point-in-time snapshot of the
/// global metrics registry under "metrics" and of the process' resource
/// usage under "resources" (schema v3; RSS/fault/IO groups appear only
/// when their /proc source was readable, and stage entries carry hardware
/// counts only on hosts where perf_event_open works — absent, never
/// zero). Mapped graphs additionally get "resources"."mmap" with per-
/// section resident bytes. Both the residency gauges and the resource
/// counters are (re)published into the global registry immediately before
/// the "metrics" snapshot is taken, so the two views agree.
std::string BuildManifestJson(const ManifestInputs& inputs);

/// Writes a manifest (or any JSON string) to a file with a trailing
/// newline, creating missing parent directories. Errors name the failing
/// path.
util::Status WriteManifestFile(const std::string& json,
                               const std::string& path);

}  // namespace spammass::pipeline

#endif  // SPAMMASS_PIPELINE_MANIFEST_H_
