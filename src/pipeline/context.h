// PipelineContext — shared state for one detection run over one graph:
// the loaded graph, the run configuration, a reusable SolverWorkspace, and
// an artifact cache. Detectors declare what they need (ArtifactNeeds);
// Prepare() computes the union ONCE, fusing every forward PageRank solve —
// base PageRank, the γ-scaled core PageRank of the mass estimator, the
// TrustRank trust propagation — into a single multi-RHS stream (one CSR
// traversal per sweep under Jacobi; see pagerank/solver.h). Each fused
// lane is bit-identical to a standalone solve, so cached artifacts equal
// what each detector would have computed alone. Running spam mass AND
// TrustRank therefore costs one base PageRank solve, not two — the solve
// counters below let tests assert exactly that.

#ifndef SPAMMASS_PIPELINE_CONTEXT_H_
#define SPAMMASS_PIPELINE_CONTEXT_H_

#include <string>
#include <vector>

#include "core/degree_outlier.h"
#include "core/detector.h"
#include "core/spam_mass.h"
#include "core/trustrank.h"
#include "graph/graph_stats.h"
#include "graph/reorder.h"
#include "obs/stage_timer.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "pipeline/graph_source.h"
#include "util/status.h"

namespace spammass::pipeline {

/// TrustRank-as-detector settings. Seed selection and propagation follow
/// core::RunTrustRank; demotion turns the ranking signal into a verdict:
/// within T = {x : p̂_x ≥ ρ}, the `demote_fraction` of nodes with the
/// lowest trust/PageRank ratio are flagged (TrustRank itself never
/// *detects* spam — this is the comparison convention the benches use).
struct TrustRankDetectorConfig {
  uint32_t seed_candidates = 50;
  /// Discard seed candidates the oracle does not label good. Forced off
  /// when the graph carries no labels.
  bool filter_seeds_by_oracle = true;
  double demote_fraction = 0.25;
};

/// Configuration for one pipeline run: the shared solver settings plus
/// per-detector config structs, echoed verbatim into the run manifest.
struct PipelineConfig {
  /// One solver configuration for every PageRank-like solve of the run.
  pagerank::SolverOptions solver = pagerank::SolverOptions::BenchPreset();
  /// Estimated good fraction γ scaling the core jump (Section 3.5).
  double gamma = 0.85;
  /// False reproduces the failed unscaled first attempt of Section 4.3.
  bool scale_core_jump = true;
  /// Algorithm 2 thresholds (τ, ρ). ρ doubles as the population filter for
  /// the TrustRank demotion verdict so both detectors judge the same set.
  core::DetectorConfig detection;
  TrustRankDetectorConfig trustrank;
  core::DegreeOutlierConfig degree_outlier;
  /// Locality-aware vertex reordering applied before the solves
  /// (graph/reorder.h). The detectors run on the permuted graph; the
  /// pipeline driver maps every node-indexed output back through the
  /// inverse permutation, so verdicts, candidates and the returned source
  /// graph always speak original node IDs. Spam mass, relative mass and
  /// verdicts are permutation-invariant (pipeline_variant_equivalence
  /// tests); only memory locality changes.
  graph::ReorderKind reorder = graph::ReorderKind::kNone;
};

/// What a detector (or driver) needs computed. Fields are cumulative
/// requests, not exclusive modes; Union() merges detector sets.
struct ArtifactNeeds {
  bool base_pagerank = false;
  /// Spam mass estimates (implies base_pagerank; needs a good core).
  bool mass_estimates = false;
  /// TrustRank seeds + trust scores (implies base_pagerank for the
  /// trust/PageRank demotion ratio).
  bool trustrank = false;
  bool graph_stats = false;

  ArtifactNeeds Union(const ArtifactNeeds& other) const {
    return ArtifactNeeds{base_pagerank || other.base_pagerank,
                         mass_estimates || other.mass_estimates,
                         trustrank || other.trustrank,
                         graph_stats || other.graph_stats};
  }
};

/// Wall time of one pipeline stage, for the manifest. An alias of the
/// telemetry layer's record type: obs::ScopedStageTimer produces these
/// (and a matching trace span) wherever a stage is timed.
using StageTiming = obs::StageRecord;

/// Shared artifacts for one run over one graph. Not thread-safe (the
/// workspace inside parallelizes each solve; concurrent runs need one
/// context each). The referenced LoadedGraph and PipelineConfig must
/// outlive the context.
class PipelineContext {
 public:
  PipelineContext(const LoadedGraph& source, const PipelineConfig& config);

  PipelineContext(const PipelineContext&) = delete;
  PipelineContext& operator=(const PipelineContext&) = delete;

  const LoadedGraph& source() const { return *source_; }
  const graph::WebGraph& graph() const { return source_->web.graph; }
  const PipelineConfig& config() const { return *config_; }
  pagerank::SolverWorkspace* workspace() { return &workspace_; }

  /// Computes every requested artifact not already cached. Safe to call
  /// repeatedly — later calls only fill gaps; artifacts computed once are
  /// never recomputed. All forward solves requested together run as one
  /// fused multi-RHS stream.
  util::Status Prepare(const ArtifactNeeds& needs);

  bool has_base_pagerank() const { return has_base_pagerank_; }
  bool has_mass_estimates() const { return has_mass_estimates_; }
  bool has_trustrank() const { return has_trustrank_; }
  bool has_graph_stats() const { return has_graph_stats_; }

  /// Base PageRank p = PR(v), uniform v. CHECK-fails unless prepared.
  const pagerank::PageRankResult& BasePageRank() const;
  /// Spam mass estimates (Definition 3). CHECK-fails unless prepared.
  const core::MassEstimates& MassEstimates() const;
  /// TrustRank seeds + trust. CHECK-fails unless prepared.
  const core::TrustRankResult& TrustRank() const;
  /// Structural graph statistics. CHECK-fails unless prepared.
  const graph::GraphStats& GraphStats() const;

  /// Moves the mass estimates out (eval keeps them beyond the context's
  /// lifetime). The artifact leaves the cache; a later Prepare would
  /// recompute it.
  core::MassEstimates TakeMassEstimates();

  /// Times a base PageRank (uniform-jump) solve ran: the artifact-cache
  /// acceptance counter — two detectors sharing p must leave this at 1.
  uint64_t base_pagerank_solves() const { return base_pagerank_solves_; }
  /// Total solves through the workspace (fused lanes count individually).
  uint64_t total_solves() const { return workspace_.solve_count(); }

  /// Per-stage wall times accumulated by Prepare, for the manifest.
  const std::vector<StageTiming>& stage_timings() const {
    return stage_timings_;
  }
  /// Convergence telemetry per named solve ("base_pagerank",
  /// "core_pagerank", "trustrank_seed_selection", "trustrank"), in
  /// execution order, for the manifest. Each entry carries the lane's own
  /// convergence iteration (lanes of the fused multi-RHS solve converge
  /// independently) and, when config.solver.track_residuals is set, the
  /// full per-iteration residual curve.
  const std::vector<std::pair<std::string, pagerank::SolveStats>>&
  solve_stats() const {
    return solve_stats_;
  }

 private:
  const LoadedGraph* source_;
  const PipelineConfig* config_;
  pagerank::SolverWorkspace workspace_;

  bool has_base_pagerank_ = false;
  bool has_mass_estimates_ = false;
  bool has_trustrank_ = false;
  bool has_graph_stats_ = false;

  pagerank::PageRankResult base_pagerank_;
  core::MassEstimates mass_estimates_;
  core::TrustRankResult trustrank_;
  graph::GraphStats graph_stats_;

  uint64_t base_pagerank_solves_ = 0;
  std::vector<StageTiming> stage_timings_;
  std::vector<std::pair<std::string, pagerank::SolveStats>> solve_stats_;
};

}  // namespace spammass::pipeline

#endif  // SPAMMASS_PIPELINE_CONTEXT_H_
