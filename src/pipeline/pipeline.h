// Pipeline driver: load a graph from a GraphSource, prepare the union of
// the selected detectors' artifact needs in one fused pass, run each
// detector over the shared context, and assemble the run manifest. This
// is the entry point the CLI `run` subcommand, the examples and the
// benches call; eval/experiment.cc composes GraphSource + PipelineContext
// directly for its sampling-specific flow.

#ifndef SPAMMASS_PIPELINE_PIPELINE_H_
#define SPAMMASS_PIPELINE_PIPELINE_H_

#include <string>
#include <utility>
#include <vector>

#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "pipeline/manifest.h"
#include "util/status.h"

namespace spammass::pipeline {

/// Result of one detection run over one graph.
struct PipelineRun {
  /// The loaded graph (moved in; host names available for reporting).
  LoadedGraph source;
  std::vector<DetectorOutput> detectors;
  std::vector<StageTiming> stages;
  uint64_t base_pagerank_solves = 0;
  uint64_t total_solves = 0;
  /// Per-solve convergence telemetry (iterations, residual, and — when
  /// config.solver.track_residuals is set — the residual curve).
  std::vector<std::pair<std::string, pagerank::SolveStats>> solve_stats;
  double total_seconds = 0;
  /// The run manifest, already serialized (schema in docs/architecture.md).
  std::string manifest_json;
};

/// Runs the named detectors over an already-loaded graph. Fails on an
/// unknown detector name before any solve runs. `loaded` is moved into
/// the returned PipelineRun.
util::Result<PipelineRun> RunDetectors(
    LoadedGraph loaded, const PipelineConfig& config,
    const std::vector<std::string>& detector_names);

/// Convenience: Load() the source, then run. `load_pool` parallelizes
/// file ingest. (Non-const: in-memory sources are one-shot, see
/// GraphSource::Load.)
util::Result<PipelineRun> RunDetectors(
    GraphSource& source, const PipelineConfig& config,
    const std::vector<std::string>& detector_names,
    util::ThreadPool* load_pool = nullptr);

}  // namespace spammass::pipeline

#endif  // SPAMMASS_PIPELINE_PIPELINE_H_
