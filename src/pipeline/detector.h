// Detector interface + registry. Every detection method in the repo —
// spam mass (Algorithm 2), TrustRank demotion, the two naive labeling
// schemes of Section 3.1, the degree-outlier baseline — adapts to one
// shape: declare the artifacts it needs, then Run over a prepared
// PipelineContext and return a DetectorOutput. Detectors are registered
// by name, so the CLI, benches and examples select them with a string
// list instead of hand-rolling per-method orchestration.
//
// Built-in names: "spam_mass", "trustrank", "naive_scheme1",
// "naive_scheme2", "degree_outlier".

#ifndef SPAMMASS_PIPELINE_DETECTOR_H_
#define SPAMMASS_PIPELINE_DETECTOR_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "core/detector.h"
#include "pipeline/context.h"
#include "util/status.h"

namespace spammass::pipeline {

/// What a detector produced, in the shape the manifest records.
struct DetectorOutput {
  /// Registry name of the detector that produced this.
  std::string detector;
  /// Per-node verdict; flagged[x] == true means x was labeled spam.
  std::vector<bool> flagged;
  uint64_t flagged_count = 0;
  /// Ranked candidate detail where the method produces it (spam mass:
  /// Algorithm 2 candidates sorted by relative mass). Empty otherwise.
  std::vector<core::SpamCandidate> candidates;
  /// Summary numbers for the manifest ("precision", "recall", method
  /// specifics like "seeds" or "degree_spikes"). Insertion-ordered.
  std::vector<std::pair<std::string, double>> metrics;
  /// Wall time of Run(), filled by the pipeline driver.
  double seconds = 0;
};

/// One detection method. Implementations are stateless between runs: all
/// configuration comes from the context's PipelineConfig, all data from
/// the context's artifacts.
class Detector {
 public:
  virtual ~Detector() = default;

  /// Registry name.
  virtual std::string_view name() const = 0;

  /// Artifacts Run() will read. The driver unions the needs of every
  /// selected detector and prepares them in one fused pass.
  virtual ArtifactNeeds Needs(const PipelineContext& context) const = 0;

  /// Runs detection. The context is const: detectors share prepared
  /// artifacts and must not mutate them.
  virtual util::Result<DetectorOutput> Run(
      const PipelineContext& context) const = 0;
};

using DetectorFactory = std::function<std::unique_ptr<Detector>()>;

/// Name → factory registry. The global instance self-registers the
/// built-in detectors on first use (no static-initialization order games);
/// external code may Register additional detectors before running.
class DetectorRegistry {
 public:
  /// The process-wide registry, built-ins included.
  static DetectorRegistry& Global();

  /// Registers a factory. CHECK-fails on a duplicate name — detector
  /// names are an API surface, not a runtime input.
  void Register(std::string name, DetectorFactory factory);

  /// Instantiates a registered detector; unknown names fail with
  /// InvalidArgument listing what is available.
  util::Result<std::unique_ptr<Detector>> Create(
      const std::string& name) const;

  /// All registered names, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, DetectorFactory> factories_;
};

}  // namespace spammass::pipeline

#endif  // SPAMMASS_PIPELINE_DETECTOR_H_
