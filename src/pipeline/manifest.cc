#include "pipeline/manifest.h"

#include "graph/web_graph.h"
#include "obs/metrics.h"
#include "obs/resource.h"
#include "pagerank/solver.h"
#include "util/file_util.h"
#include "util/json_writer.h"
#include "util/logging.h"

namespace spammass::pipeline {

using util::JsonWriter;
using util::Status;

std::string BuildManifestJson(const ManifestInputs& inputs) {
  CHECK(inputs.source != nullptr);
  CHECK(inputs.config != nullptr);
  const LoadedGraph& source = *inputs.source;
  const PipelineConfig& config = *inputs.config;

  JsonWriter json;
  json.BeginObject();
  json.KV("schema_version", 3);
  json.KV("tool", "spammass_pipeline");

  json.Key("graph").BeginObject();
  json.KV("source", source.description);
  json.KV("format", GraphFormatToString(source.format));
  json.KV("nodes", static_cast<uint64_t>(source.web.graph.num_nodes()));
  json.KV("edges", source.web.graph.num_edges());
  json.KV("has_labels", source.has_labels);
  json.KV("good_core_size", static_cast<uint64_t>(source.good_core.size()));
  json.KV("load_seconds", source.load_seconds);
  json.KV("mmap", source.web.graph.is_mapped());
  json.EndObject();

  json.Key("config").BeginObject();
  json.Key("solver").BeginObject();
  json.KV("method", pagerank::MethodToString(config.solver.method));
  json.KV("damping", config.solver.damping);
  json.KV("tolerance", config.solver.tolerance);
  json.KV("max_iterations", config.solver.max_iterations);
  json.KV("num_threads", config.solver.num_threads);
  json.KV("simd", pagerank::SimdPolicyToString(config.solver.simd));
  json.KV("precision",
          pagerank::SweepPrecisionToString(config.solver.precision));
  json.KV("compressed_gather", config.solver.compressed_gather);
  json.KV("shards", config.solver.shards);
  json.EndObject();
  json.KV("gamma", config.gamma);
  json.KV("scale_core_jump", config.scale_core_jump);
  json.KV("reorder", graph::ReorderKindToString(config.reorder));
  json.Key("detection").BeginObject();
  json.KV("relative_mass_threshold",
          config.detection.relative_mass_threshold);
  json.KV("scaled_pagerank_threshold",
          config.detection.scaled_pagerank_threshold);
  json.EndObject();
  json.Key("trustrank").BeginObject();
  json.KV("seed_candidates", config.trustrank.seed_candidates);
  json.KV("filter_seeds_by_oracle", config.trustrank.filter_seeds_by_oracle);
  json.KV("demote_fraction", config.trustrank.demote_fraction);
  json.EndObject();
  json.Key("degree_outlier").BeginObject();
  json.KV("overpopulation_factor",
          config.degree_outlier.overpopulation_factor);
  json.KV("min_degree", config.degree_outlier.min_degree);
  json.KV("min_bucket_size", config.degree_outlier.min_bucket_size);
  json.KV("use_indegree", config.degree_outlier.use_indegree);
  json.KV("use_outdegree", config.degree_outlier.use_outdegree);
  json.EndObject();
  json.EndObject();

  json.Key("stages").BeginArray();
  for (const StageTiming& stage : inputs.stages) {
    json.BeginObject();
    json.KV("name", stage.name);
    json.KV("seconds", stage.seconds);
    // Schema v3: per-stage hardware counts, present only when the host
    // could count (obs/perf_counters.h) — absent fields, never zeros.
    if (stage.hw.valid) {
      json.KV("cycles", stage.hw.cycles);
      json.KV("instructions", stage.hw.instructions);
      if (stage.hw.has_cache) {
        json.KV("llc_misses", stage.hw.llc_misses);
        json.KV("branch_misses", stage.hw.branch_misses);
      }
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("solver_runs").BeginObject();
  json.KV("base_pagerank_solves", inputs.base_pagerank_solves);
  json.KV("total_solves", inputs.total_solves);
  json.Key("iterations").BeginObject();
  for (const auto& [name, stats] : inputs.solve_stats) {
    json.KV(name, stats.iterations);
  }
  json.EndObject();
  json.EndObject();

  // Schema v2: per-solve convergence telemetry. The residual curve is
  // present only when the run tracked residuals
  // (SolverOptions::track_residuals / spammass_cli --record-convergence);
  // tools/plot_convergence.py renders it.
  json.Key("convergence").BeginArray();
  for (const auto& [name, stats] : inputs.solve_stats) {
    json.BeginObject();
    json.KV("name", name);
    json.KV("iterations", stats.iterations);
    json.KV("residual", stats.residual);
    json.KV("converged", stats.converged);
    if (!stats.residual_curve.empty()) {
      json.Key("residual_curve").BeginArray();
      for (double r : stats.residual_curve) json.Double(r);
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndArray();

  json.Key("detectors").BeginArray();
  if (inputs.detectors != nullptr) {
    for (const DetectorOutput& output : *inputs.detectors) {
      json.BeginObject();
      json.KV("name", output.detector);
      json.KV("flagged", output.flagged_count);
      json.KV("seconds", output.seconds);
      json.Key("metrics").BeginObject();
      for (const auto& [metric, value] : output.metrics) {
        json.KV(metric, value);
      }
      json.EndObject();
      json.EndObject();
    }
  }
  json.EndArray();

  json.KV("total_seconds", inputs.total_seconds);

  // Schema v3: exit-time resource usage. Sampled fresh here and published
  // into the registry BEFORE the metrics snapshot below, so the embedded
  // "metrics" object carries the same final values. Groups degrade
  // independently (see obs/resource.h) — a group whose /proc source was
  // unreadable is absent from the object, not zeroed.
  const obs::ResourceUsage usage = obs::SampleResourceUsage();
  obs::PublishResourceUsage(usage);
  graph::PublishMappedResidency(source.web.graph);
  json.Key("resources").BeginObject();
  if (usage.has_memory) {
    json.KV("rss_bytes", usage.rss_bytes);
    json.KV("vm_bytes", usage.vm_bytes);
    json.KV("rss_peak_bytes", usage.rss_peak_bytes);
  }
  if (usage.has_faults) {
    json.KV("minor_faults", usage.minor_faults);
    json.KV("major_faults", usage.major_faults);
  }
  if (usage.has_io) {
    json.KV("io_read_bytes", usage.io_read_bytes);
    json.KV("io_write_bytes", usage.io_write_bytes);
  }
  if (source.web.graph.is_mapped()) {
    json.Key("mmap").BeginObject();
    json.KV("mapped_bytes", source.web.graph.mapped_bytes());
    json.KV("resident_bytes", source.web.graph.resident_bytes());
    json.Key("sections").BeginArray();
    for (const graph::WebGraph::SectionResidency& s :
         source.web.graph.MappedSectionResidency()) {
      json.BeginObject();
      json.KV("name", s.name);
      json.KV("mapped_bytes", s.mapped_bytes);
      json.KV("resident_bytes", s.resident_bytes);
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndObject();

  // A point-in-time snapshot of the process-global metrics registry
  // (schema v2). For a single-run process the pagerank.solves counter
  // equals solver_runs.total_solves — the acceptance check the CLI
  // integration test exercises.
  json.Key("metrics").RawValue(
      obs::MetricsRegistry::Global().SnapshotJson());

  json.EndObject();
  return json.TakeString();
}

Status WriteManifestFile(const std::string& json, const std::string& path) {
  return util::WriteTextFile(path, json + "\n");
}

}  // namespace spammass::pipeline
