#include "pipeline/pipeline.h"

#include <algorithm>
#include <memory>

#include "graph/reorder.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace spammass::pipeline {

using util::Result;

namespace {

/// Builds the permuted working copy the detectors run on when the config
/// requests a reordering: graph rows, labels and good core all move to the
/// new IDs together, so every artifact computed downstream is the same
/// mathematical object under a relabeling.
LoadedGraph PermuteLoadedGraph(const LoadedGraph& loaded,
                               const graph::Reordering& reordering) {
  const uint32_t n = loaded.web.graph.num_nodes();
  LoadedGraph permuted;
  permuted.web.graph = graph::ApplyReordering(loaded.web.graph, reordering);
  if (loaded.web.labels.num_nodes() == n) {
    permuted.web.labels = core::LabelStore(n);
    for (graph::NodeId x = 0; x < n; ++x) {
      permuted.web.labels.Set(reordering.perm[x], loaded.web.labels.Get(x));
    }
  }
  permuted.good_core = graph::MapNodeIds(loaded.good_core, reordering.perm);
  std::sort(permuted.good_core.begin(), permuted.good_core.end());
  permuted.format = loaded.format;
  permuted.has_labels = loaded.has_labels;
  permuted.description = loaded.description;
  return permuted;
}

}  // namespace

Result<PipelineRun> RunDetectors(
    LoadedGraph loaded, const PipelineConfig& config,
    const std::vector<std::string>& detector_names) {
  obs::ScopedStageTimer total_timer("pipeline.run", nullptr);

  // Resolve every name before any solve: an unknown detector fails the
  // run without wasting a PageRank.
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.reserve(detector_names.size());
  for (const std::string& name : detector_names) {
    auto detector = DetectorRegistry::Global().Create(name);
    if (!detector.ok()) return detector.status();
    detectors.push_back(std::move(detector.value()));
  }

  // Optional locality pass: detectors run over the permuted copy; every
  // node-indexed output is mapped back below, and run.source stays the
  // original-ID graph.
  const bool reordered = config.reorder != graph::ReorderKind::kNone;
  graph::Reordering reordering;
  LoadedGraph permuted;
  StageTiming reorder_timing{"reorder", 0, {}};
  if (reordered) {
    obs::ScopedStageTimer timer("reorder", nullptr);
    timer.span().Arg("kind", graph::ReorderKindToString(config.reorder));
    reordering = graph::ComputeReordering(loaded.web.graph, config.reorder);
    permuted = PermuteLoadedGraph(loaded, reordering);
    reorder_timing.seconds = timer.Seconds();
  }
  LoadedGraph& working = reordered ? permuted : loaded;
  if (config.solver.compressed_gather) {
    working.web.graph.BuildCompressedInAdjacency();
  }

  PipelineContext context(working, config);
  ArtifactNeeds needs;
  for (const auto& detector : detectors) {
    needs = needs.Union(detector->Needs(context));
  }
  util::Status status = context.Prepare(needs);
  if (!status.ok()) return status;

  static obs::Counter* detector_runs_counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.detector_runs");
  PipelineRun run;
  for (const auto& detector : detectors) {
    obs::ScopedStageTimer timer("detector_run", nullptr);
    timer.span().Arg("detector", detector->name());
    detector_runs_counter->Increment();
    auto output = detector->Run(context);
    if (!output.ok()) return output.status();
    output.value().seconds = timer.Seconds();
    if (reordered) {
      // Back to original IDs: verdict x lives at permuted slot perm[x];
      // candidate nodes are permuted IDs, so they map through inverse.
      DetectorOutput& out = output.value();
      const uint32_t n = loaded.web.graph.num_nodes();
      if (out.flagged.size() == n) {
        std::vector<bool> flagged_orig(n);
        for (graph::NodeId x = 0; x < n; ++x) {
          flagged_orig[x] = out.flagged[reordering.perm[x]];
        }
        out.flagged = std::move(flagged_orig);
      }
      for (core::SpamCandidate& candidate : out.candidates) {
        candidate.node = reordering.inverse[candidate.node];
      }
    }
    run.detectors.push_back(std::move(output.value()));
  }

  // The load stage predates this function (the source was loaded by the
  // caller), so it carries wall time only — no hardware counts.
  run.stages.push_back({"load", loaded.load_seconds, {}});
  if (reordered) run.stages.push_back(reorder_timing);
  for (const StageTiming& stage : context.stage_timings()) {
    run.stages.push_back(stage);
  }
  run.base_pagerank_solves = context.base_pagerank_solves();
  run.total_solves = context.total_solves();
  run.solve_stats = context.solve_stats();
  run.total_seconds = total_timer.Seconds();

  ManifestInputs manifest;
  manifest.source = &loaded;
  manifest.config = &config;
  manifest.stages = run.stages;
  manifest.base_pagerank_solves = run.base_pagerank_solves;
  manifest.total_solves = run.total_solves;
  manifest.solve_stats = run.solve_stats;
  manifest.detectors = &run.detectors;
  manifest.total_seconds = run.total_seconds;
  run.manifest_json = BuildManifestJson(manifest);

  run.source = std::move(loaded);
  return run;
}

Result<PipelineRun> RunDetectors(
    GraphSource& source, const PipelineConfig& config,
    const std::vector<std::string>& detector_names,
    util::ThreadPool* load_pool) {
  auto loaded = source.Load(load_pool);
  if (!loaded.ok()) return loaded.status();
  return RunDetectors(std::move(loaded.value()), config, detector_names);
}

}  // namespace spammass::pipeline
