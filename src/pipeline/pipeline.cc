#include "pipeline/pipeline.h"

#include <memory>

#include "obs/metrics.h"
#include "obs/stage_timer.h"

namespace spammass::pipeline {

using util::Result;

Result<PipelineRun> RunDetectors(
    LoadedGraph loaded, const PipelineConfig& config,
    const std::vector<std::string>& detector_names) {
  obs::ScopedStageTimer total_timer("pipeline.run", nullptr);

  // Resolve every name before any solve: an unknown detector fails the
  // run without wasting a PageRank.
  std::vector<std::unique_ptr<Detector>> detectors;
  detectors.reserve(detector_names.size());
  for (const std::string& name : detector_names) {
    auto detector = DetectorRegistry::Global().Create(name);
    if (!detector.ok()) return detector.status();
    detectors.push_back(std::move(detector.value()));
  }

  PipelineContext context(loaded, config);
  ArtifactNeeds needs;
  for (const auto& detector : detectors) {
    needs = needs.Union(detector->Needs(context));
  }
  util::Status status = context.Prepare(needs);
  if (!status.ok()) return status;

  static obs::Counter* detector_runs_counter =
      obs::MetricsRegistry::Global().GetCounter("pipeline.detector_runs");
  PipelineRun run;
  for (const auto& detector : detectors) {
    obs::ScopedStageTimer timer("detector_run", nullptr);
    timer.span().Arg("detector", detector->name());
    detector_runs_counter->Increment();
    auto output = detector->Run(context);
    if (!output.ok()) return output.status();
    output.value().seconds = timer.Seconds();
    run.detectors.push_back(std::move(output.value()));
  }

  run.stages.push_back({"load", loaded.load_seconds});
  for (const StageTiming& stage : context.stage_timings()) {
    run.stages.push_back(stage);
  }
  run.base_pagerank_solves = context.base_pagerank_solves();
  run.total_solves = context.total_solves();
  run.solve_stats = context.solve_stats();
  run.total_seconds = total_timer.Seconds();

  ManifestInputs manifest;
  manifest.source = &loaded;
  manifest.config = &config;
  manifest.stages = run.stages;
  manifest.base_pagerank_solves = run.base_pagerank_solves;
  manifest.total_solves = run.total_solves;
  manifest.solve_stats = run.solve_stats;
  manifest.detectors = &run.detectors;
  manifest.total_seconds = run.total_seconds;
  run.manifest_json = BuildManifestJson(manifest);

  run.source = std::move(loaded);
  return run;
}

Result<PipelineRun> RunDetectors(
    GraphSource& source, const PipelineConfig& config,
    const std::vector<std::string>& detector_names,
    util::ThreadPool* load_pool) {
  auto loaded = source.Load(load_pool);
  if (!loaded.ok()) return loaded.status();
  return RunDetectors(std::move(loaded.value()), config, detector_names);
}

}  // namespace spammass::pipeline
