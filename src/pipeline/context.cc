#include "pipeline/context.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "obs/trace.h"
#include "pagerank/jump_vector.h"
#include "util/logging.h"

namespace spammass::pipeline {

using graph::NodeId;
using pagerank::JumpVector;
using util::Status;

PipelineContext::PipelineContext(const LoadedGraph& source,
                                 const PipelineConfig& config)
    : source_(&source), config_(&config) {}

const pagerank::PageRankResult& PipelineContext::BasePageRank() const {
  CHECK(has_base_pagerank_) << "base PageRank not prepared";
  return base_pagerank_;
}

const core::MassEstimates& PipelineContext::MassEstimates() const {
  CHECK(has_mass_estimates_) << "mass estimates not prepared";
  return mass_estimates_;
}

const core::TrustRankResult& PipelineContext::TrustRank() const {
  CHECK(has_trustrank_) << "TrustRank not prepared";
  return trustrank_;
}

const graph::GraphStats& PipelineContext::GraphStats() const {
  CHECK(has_graph_stats_) << "graph stats not prepared";
  return graph_stats_;
}

core::MassEstimates PipelineContext::TakeMassEstimates() {
  CHECK(has_mass_estimates_) << "mass estimates not prepared";
  has_mass_estimates_ = false;
  return std::move(mass_estimates_);
}

Status PipelineContext::Prepare(const ArtifactNeeds& requested) {
  SPAMMASS_TRACE_SPAN("pipeline.prepare");
  ArtifactNeeds needs = requested;
  // Mass needs p for the relative-mass denominator; the TrustRank detector
  // needs p for the trust/PageRank demotion ratio.
  if (needs.mass_estimates || needs.trustrank) needs.base_pagerank = true;

  const graph::WebGraph& web = graph();
  const PipelineConfig& cfg = *config_;

  if (needs.graph_stats && !has_graph_stats_) {
    obs::ScopedStageTimer timer("graph_stats", &stage_timings_);
    graph_stats_ = graph::ComputeGraphStats(web);
    has_graph_stats_ = true;
  }

  const bool solve_mass = needs.mass_estimates && !has_mass_estimates_;
  const bool solve_trust = needs.trustrank && !has_trustrank_;
  const bool solve_base = needs.base_pagerank && !has_base_pagerank_;

  // Input validation up front, mirroring core::EstimateSpamMass exactly so
  // callers migrating onto the pipeline see the same errors.
  if (solve_mass) {
    if (source_->good_core.empty()) {
      return Status::InvalidArgument("good core must not be empty");
    }
    for (NodeId x : source_->good_core) {
      if (x >= web.num_nodes()) {
        return Status::InvalidArgument("good-core node id out of range");
      }
    }
    if (!(cfg.gamma > 0.0) || cfg.gamma > 1.0) {
      return Status::InvalidArgument("gamma must lie in (0, 1]");
    }
  }

  // TrustRank seed selection runs first: its solve is over the TRANSPOSED
  // graph and cannot join the forward stream. Semantics replicate
  // core::SelectSeedsByInversePageRank + the oracle filter of RunTrustRank
  // (inlined so the solve's iteration count reaches the manifest).
  std::vector<NodeId> trust_seeds;
  if (solve_trust) {
    if (web.num_nodes() == 0) {
      return Status::InvalidArgument("empty graph");
    }
    obs::ScopedStageTimer timer("trustrank_seed_selection", &stage_timings_);
    graph::WebGraph reversed = web.Transposed();
    // The transposed graph is a throwaway; encoding its in-adjacency just
    // to honor compressed_gather would cost the O(m) varint pass the
    // option exists to avoid. Solve the seed ranking plain.
    pagerank::SolverOptions seed_solver = cfg.solver;
    seed_solver.compressed_gather = false;
    auto inverse =
        pagerank::ComputeUniformPageRank(reversed, seed_solver, &workspace_);
    if (!inverse.ok()) return inverse.status();
    const std::vector<double>& scores = inverse.value().scores;
    std::vector<NodeId> order(web.num_nodes());
    std::iota(order.begin(), order.end(), 0u);
    uint32_t take =
        std::min<uint32_t>(cfg.trustrank.seed_candidates, web.num_nodes());
    std::partial_sort(order.begin(), order.begin() + take, order.end(),
                      [&scores](NodeId a, NodeId b) {
                        if (scores[a] != scores[b]) {
                          return scores[a] > scores[b];
                        }
                        return a < b;
                      });
    order.resize(take);
    // The oracle filter needs ground truth; without labels every candidate
    // is kept (the TrustRank paper's human inspection has no stand-in).
    const bool filter =
        cfg.trustrank.filter_seeds_by_oracle && source_->has_labels;
    for (NodeId s : order) {
      if (!filter || source_->web.labels.IsGood(s)) trust_seeds.push_back(s);
    }
    if (trust_seeds.empty()) {
      return Status::FailedPrecondition(
          "oracle rejected every seed candidate; enlarge seed_candidates");
    }
    solve_stats_.emplace_back(
        "trustrank_seed_selection",
        pagerank::SolveStats::FromResult(inverse.value()));
  }

  // Every forward solve the requested artifacts need, as ONE multi-RHS
  // stream: the lanes advance through a single CSR traversal per sweep
  // under Jacobi, and each lane is bit-identical to a standalone solve
  // (pagerank/solver.h) — which is what makes this cache transparent.
  std::vector<JumpVector> jumps;
  int base_lane = -1, core_lane = -1, trust_lane = -1;
  if (solve_base) {
    base_lane = static_cast<int>(jumps.size());
    jumps.push_back(JumpVector::Uniform(web.num_nodes()));
  }
  if (solve_mass) {
    core_lane = static_cast<int>(jumps.size());
    jumps.push_back(cfg.scale_core_jump
                        ? JumpVector::ScaledCore(web.num_nodes(),
                                                 source_->good_core, cfg.gamma)
                        : JumpVector::Core(web.num_nodes(),
                                           source_->good_core));
  }
  if (solve_trust) {
    trust_lane = static_cast<int>(jumps.size());
    // Uniform jump over the seeds with total mass 1 (ComputeTrustRank).
    jumps.push_back(
        JumpVector::ScaledCore(web.num_nodes(), trust_seeds, 1.0));
  }
  if (!jumps.empty()) {
    auto solves = [&] {
      obs::ScopedStageTimer timer("forward_solves", &stage_timings_);
      return pagerank::ComputePageRankMulti(web, jumps, cfg.solver,
                                            &workspace_);
    }();
    if (!solves.ok()) return solves.status();
    if (base_lane >= 0) {
      base_pagerank_ =
          std::move(solves.value()[static_cast<size_t>(base_lane)]);
      has_base_pagerank_ = true;
      ++base_pagerank_solves_;
      static obs::Counter* base_solves_counter =
          obs::MetricsRegistry::Global().GetCounter(
              "pipeline.base_pagerank_solves");
      base_solves_counter->Increment();
      solve_stats_.emplace_back(
          "base_pagerank", pagerank::SolveStats::FromResult(base_pagerank_));
    }
    if (core_lane >= 0) {
      pagerank::PageRankResult& core_pr =
          solves.value()[static_cast<size_t>(core_lane)];
      solve_stats_.emplace_back("core_pagerank",
                                pagerank::SolveStats::FromResult(core_pr));
      // Definition 3 from the two solved score vectors; identical
      // arithmetic (and debug validation) to core::EstimateSpamMass.
      mass_estimates_ = core::MassEstimatesFromScores(
          base_pagerank_.scores, std::move(core_pr.scores),
          cfg.solver.damping);
      has_mass_estimates_ = true;
    }
    if (trust_lane >= 0) {
      pagerank::PageRankResult& trust_pr =
          solves.value()[static_cast<size_t>(trust_lane)];
      solve_stats_.emplace_back("trustrank",
                                pagerank::SolveStats::FromResult(trust_pr));
      trustrank_.seeds = std::move(trust_seeds);
      trustrank_.trust = std::move(trust_pr.scores);
      has_trustrank_ = true;
    }
  }
  return Status::OK();
}

}  // namespace spammass::pipeline
