#include "pipeline/detector.h"

#include <algorithm>

#include "core/degree_outlier.h"
#include "core/naive_schemes.h"
#include "pagerank/solver.h"
#include "util/logging.h"

namespace spammass::pipeline {

using graph::NodeId;
using util::Result;
using util::Status;

namespace {

/// Precision/recall against ground truth, when the graph has any. A
/// detector that flags nothing gets precision 0 (not NaN) so manifests
/// stay numeric.
void AddGroundTruthMetrics(const PipelineContext& context,
                           DetectorOutput* out) {
  if (!context.source().has_labels) return;
  const core::LabelStore& labels = context.source().web.labels;
  uint64_t true_positives = 0;
  uint64_t spam_total = 0;
  for (NodeId x = 0; x < context.graph().num_nodes(); ++x) {
    const bool is_spam = labels.IsSpam(x);
    spam_total += is_spam;
    if (x < out->flagged.size() && out->flagged[x]) {
      true_positives += is_spam;
    }
  }
  out->metrics.emplace_back(
      "precision", out->flagged_count > 0
                       ? static_cast<double>(true_positives) /
                             static_cast<double>(out->flagged_count)
                       : 0.0);
  out->metrics.emplace_back(
      "recall", spam_total > 0 ? static_cast<double>(true_positives) /
                                     static_cast<double>(spam_total)
                               : 0.0);
}

uint64_t CountFlagged(const std::vector<bool>& flagged) {
  uint64_t count = 0;
  for (bool f : flagged) count += f;
  return count;
}

/// Algorithm 2 (Section 3.6): threshold the mass estimates at (τ, ρ).
class SpamMassDetector : public Detector {
 public:
  std::string_view name() const override { return "spam_mass"; }

  ArtifactNeeds Needs(const PipelineContext&) const override {
    ArtifactNeeds needs;
    needs.mass_estimates = true;
    return needs;
  }

  Result<DetectorOutput> Run(const PipelineContext& context) const override {
    DetectorOutput out;
    out.detector = std::string(name());
    out.candidates = core::DetectSpamCandidates(context.MassEstimates(),
                                                context.config().detection);
    out.flagged.assign(context.graph().num_nodes(), false);
    for (const core::SpamCandidate& c : out.candidates) {
      out.flagged[c.node] = true;
    }
    out.flagged_count = out.candidates.size();
    AddGroundTruthMetrics(context, &out);
    return out;
  }
};

/// TrustRank demotion as a verdict: within the ρ-filtered population
/// T = {x : p̂_x ≥ ρ} — the same set Algorithm 2 restricts attention to —
/// flag the demote_fraction of nodes with the lowest trust/PageRank
/// ratio. TrustRank itself only ranks; this convention (the benches' and
/// trustrank_vs_mass's) turns the ranking into a comparable detector.
class TrustRankDetector : public Detector {
 public:
  std::string_view name() const override { return "trustrank"; }

  ArtifactNeeds Needs(const PipelineContext&) const override {
    ArtifactNeeds needs;
    needs.trustrank = true;
    needs.base_pagerank = true;
    return needs;
  }

  Result<DetectorOutput> Run(const PipelineContext& context) const override {
    const std::vector<double>& p = context.BasePageRank().scores;
    const std::vector<double>& trust = context.TrustRank().trust;
    const PipelineConfig& cfg = context.config();
    const double scale = static_cast<double>(p.size()) /
                         (1.0 - cfg.solver.damping);

    std::vector<NodeId> population;
    for (NodeId x = 0; x < p.size(); ++x) {
      if (p[x] * scale >= cfg.detection.scaled_pagerank_threshold) {
        population.push_back(x);
      }
    }
    // Ascending trust/PageRank ratio — least-trusted-for-their-rank first;
    // ties break on the node id for determinism.
    std::sort(population.begin(), population.end(),
              [&](NodeId a, NodeId b) {
                const double ra = trust[a] / p[a];
                const double rb = trust[b] / p[b];
                if (ra != rb) return ra < rb;
                return a < b;
              });
    const size_t demoted = static_cast<size_t>(
        cfg.trustrank.demote_fraction *
        static_cast<double>(population.size()));

    DetectorOutput out;
    out.detector = std::string(name());
    out.flagged.assign(p.size(), false);
    for (size_t i = 0; i < demoted; ++i) out.flagged[population[i]] = true;
    out.flagged_count = demoted;
    out.metrics.emplace_back(
        "seeds", static_cast<double>(context.TrustRank().seeds.size()));
    out.metrics.emplace_back("population",
                             static_cast<double>(population.size()));
    AddGroundTruthMetrics(context, &out);
    return out;
  }
};

/// Section 3.1 scheme 1: majority of inlinks from spam in-neighbors.
class NaiveScheme1Detector : public Detector {
 public:
  std::string_view name() const override { return "naive_scheme1"; }

  ArtifactNeeds Needs(const PipelineContext&) const override {
    return ArtifactNeeds{};
  }

  Result<DetectorOutput> Run(const PipelineContext& context) const override {
    if (!context.source().has_labels) {
      return Status::FailedPrecondition(
          "naive_scheme1 needs ground-truth labels: the Section 3.1 "
          "schemes assume an oracle for the in-neighbors");
    }
    DetectorOutput out;
    out.detector = std::string(name());
    out.flagged = core::FirstLabelingSchemeAll(context.graph(),
                                               context.source().web.labels);
    out.flagged_count = CountFlagged(out.flagged);
    AddGroundTruthMetrics(context, &out);
    return out;
  }
};

/// Section 3.1 scheme 2 (first-order link contributions), reusing the
/// cached base PageRank — no solve of its own.
class NaiveScheme2Detector : public Detector {
 public:
  std::string_view name() const override { return "naive_scheme2"; }

  ArtifactNeeds Needs(const PipelineContext&) const override {
    ArtifactNeeds needs;
    needs.base_pagerank = true;
    return needs;
  }

  Result<DetectorOutput> Run(const PipelineContext& context) const override {
    if (!context.source().has_labels) {
      return Status::FailedPrecondition(
          "naive_scheme2 needs ground-truth labels: the Section 3.1 "
          "schemes assume an oracle for the in-neighbors");
    }
    auto flagged = core::SecondLabelingSchemeAll(
        context.graph(), context.source().web.labels,
        context.config().solver.damping, context.BasePageRank().scores);
    if (!flagged.ok()) return flagged.status();
    DetectorOutput out;
    out.detector = std::string(name());
    out.flagged = std::move(flagged.value());
    out.flagged_count = CountFlagged(out.flagged);
    AddGroundTruthMetrics(context, &out);
    return out;
  }
};

/// Degree-spike baseline (Fetterly et al.); label-free and solve-free.
class DegreeOutlierDetector : public Detector {
 public:
  std::string_view name() const override { return "degree_outlier"; }

  ArtifactNeeds Needs(const PipelineContext&) const override {
    return ArtifactNeeds{};
  }

  Result<DetectorOutput> Run(const PipelineContext& context) const override {
    core::DegreeOutlierResult result = core::DetectDegreeOutliers(
        context.graph(), context.config().degree_outlier);
    DetectorOutput out;
    out.detector = std::string(name());
    out.flagged = std::move(result.suspected);
    out.flagged_count = CountFlagged(out.flagged);
    out.metrics.emplace_back("degree_spikes",
                             static_cast<double>(result.spikes.size()));
    AddGroundTruthMetrics(context, &out);
    return out;
  }
};

void RegisterBuiltins(DetectorRegistry* registry) {
  registry->Register("spam_mass",
                     [] { return std::make_unique<SpamMassDetector>(); });
  registry->Register("trustrank",
                     [] { return std::make_unique<TrustRankDetector>(); });
  registry->Register("naive_scheme1",
                     [] { return std::make_unique<NaiveScheme1Detector>(); });
  registry->Register("naive_scheme2",
                     [] { return std::make_unique<NaiveScheme2Detector>(); });
  registry->Register("degree_outlier",
                     [] { return std::make_unique<DegreeOutlierDetector>(); });
}

}  // namespace

DetectorRegistry& DetectorRegistry::Global() {
  static DetectorRegistry* registry = [] {
    auto* r = new DetectorRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

void DetectorRegistry::Register(std::string name, DetectorFactory factory) {
  CHECK(factory != nullptr);
  auto [it, inserted] = factories_.emplace(std::move(name), std::move(factory));
  CHECK(inserted) << "duplicate detector name: " << it->first;
}

Result<std::unique_ptr<Detector>> DetectorRegistry::Create(
    const std::string& name) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) {
    std::string known;
    for (const auto& [registered, factory] : factories_) {
      if (!known.empty()) known += ", ";
      known += registered;
    }
    return Status::InvalidArgument("unknown detector \"" + name +
                                   "\"; registered detectors: " + known);
  }
  return it->second();
}

std::vector<std::string> DetectorRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

}  // namespace spammass::pipeline
