// GraphSource — the one way pipeline consumers obtain a web graph. A
// source describes where the graph comes from (a synthetic scenario, a
// file on disk, or an in-memory WebGraph) and Load() materializes it as a
// LoadedGraph: graph plus whatever ground truth travels with it (labels,
// good core, host names). On-disk files are format-sniffed by magic
// ("SMWG" → binary container, printable text → edge list), so every entry
// point — CLI subcommands, benches, examples — gets the zero-rebuild v2
// binary loader without opting in.

#ifndef SPAMMASS_PIPELINE_GRAPH_SOURCE_H_
#define SPAMMASS_PIPELINE_GRAPH_SOURCE_H_

#include <string>
#include <vector>

#include "graph/web_graph.h"
#include "synth/generator.h"
#include "synth/web_model.h"
#include "util/status.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::pipeline {

/// Where a loaded graph came from.
enum class GraphFormat { kSynthetic, kTextEdgeList, kBinary, kInMemory };

const char* GraphFormatToString(GraphFormat format);

/// Sniffs the on-disk format of a graph file by its leading bytes: the
/// binary container announces itself with the "SMWG" magic; a text edge
/// list starts with printable ASCII ('#' comments, digits, whitespace).
/// Anything else — including an empty file — is rejected rather than
/// guessed at, so a corrupt binary never reaches the text parser.
util::Result<GraphFormat> SniffGraphFormat(const std::string& path);

/// A materialized graph with its side data. The graph always lives in
/// `web.graph`; for synthetic sources the full SyntheticWeb (region
/// metadata, farms, anomaly attribution) is populated, for file and
/// in-memory sources only the members that side files provided are.
struct LoadedGraph {
  synth::SyntheticWeb web;
  GraphFormat format = GraphFormat::kInMemory;
  /// True when `web` carries the full generator metadata (regions, farms).
  bool is_synthetic = false;
  /// True when `web.labels` holds real ground truth (generator output or a
  /// labels file) rather than the all-good default.
  bool has_labels = false;
  /// Good core Ṽ⁺ for mass estimation: the assembled core for synthetic
  /// sources, the contents of the core file for file sources, else empty.
  std::vector<graph::NodeId> good_core;
  /// Human-readable provenance ("synthetic scale=1 seed=42", a file path).
  std::string description;
  double load_seconds = 0;

  const graph::WebGraph& graph() const { return web.graph; }
  const core::LabelStore& labels() const { return web.labels; }
};

/// A recipe for producing a LoadedGraph. Cheap to construct and copy;
/// the expensive work happens in Load().
class GraphSource {
 public:
  /// The canonical synthetic scenario (synth::Yahoo2004Scenario).
  static GraphSource Scenario(double scale, uint64_t seed);

  /// Any generator configuration.
  static GraphSource FromConfig(synth::WebModelConfig config);

  /// A graph file, format sniffed at load time (text edge list or binary).
  static GraphSource FromFile(std::string path);

  /// An already-built graph (tests, examples constructing paper figures).
  static GraphSource FromGraph(graph::WebGraph graph,
                               std::string description = "in-memory graph");

  /// Attaches a ground-truth label file ("<id>\t<label>" lines) to a file
  /// or in-memory source. Ignored for synthetic sources (they carry their
  /// own labels).
  GraphSource& WithLabelsFile(std::string path);

  /// Attaches a good-core node-list file. Ignored for synthetic sources.
  GraphSource& WithCoreFile(std::string path);

  /// Attaches a host-name map for text-format graphs (v2 binary files
  /// embed names).
  GraphSource& WithHostNamesFile(std::string path);

  /// Uses an explicit in-memory good core (in-memory or file sources).
  GraphSource& WithGoodCore(std::vector<graph::NodeId> core);

  /// Loads a binary file source zero-copy via graph::ReadBinaryMmap — the
  /// O(1)-load out-of-core path. Strict: the file must be the v2.2 paged
  /// container (write one with `spammass_cli convert --format paged` or
  /// graph::WriteBinaryV22), and a text or synthetic source with mmap
  /// requested fails with InvalidArgument instead of silently ignoring the
  /// flag.
  GraphSource& WithMmap(bool mmap = true);

  /// Materializes the graph. `pool` parallelizes file ingest (sort/dedup /
  /// derived arrays); null loads serially. Synthetic and file sources can
  /// be loaded repeatedly; an in-memory source is one-shot (WebGraph is
  /// move-only) — a second Load fails with FailedPrecondition.
  util::Result<LoadedGraph> Load(util::ThreadPool* pool = nullptr);

 private:
  enum class Kind { kSynthetic, kFile, kInMemory };

  GraphSource() = default;

  Kind kind_ = Kind::kInMemory;
  synth::WebModelConfig config_;
  std::string path_;
  graph::WebGraph graph_;
  bool consumed_ = false;
  std::string description_;
  std::string labels_path_;
  std::string core_path_;
  std::string host_names_path_;
  std::vector<graph::NodeId> good_core_;
  bool mmap_ = false;
};

}  // namespace spammass::pipeline

#endif  // SPAMMASS_PIPELINE_GRAPH_SOURCE_H_
