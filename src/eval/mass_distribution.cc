#include "eval/mass_distribution.h"

#include <algorithm>

namespace spammass::eval {

MassDistribution ComputeMassDistribution(const core::MassEstimates& estimates,
                                         double bin_ratio,
                                         double min_abs_mass) {
  MassDistribution dist;
  const size_t n = estimates.absolute_mass.size();
  const double scale = static_cast<double>(n) / (1.0 - estimates.damping);

  util::LogHistogram negative(min_abs_mass, bin_ratio);
  util::LogHistogram positive(min_abs_mass, bin_ratio);
  std::vector<double> positive_masses;
  dist.min_scaled_mass = n ? estimates.absolute_mass[0] * scale : 0;
  dist.max_scaled_mass = dist.min_scaled_mass;
  for (size_t i = 0; i < n; ++i) {
    double m = estimates.absolute_mass[i] * scale;
    dist.min_scaled_mass = std::min(dist.min_scaled_mass, m);
    dist.max_scaled_mass = std::max(dist.max_scaled_mass, m);
    if (m < 0) {
      negative.Add(-m);
      dist.num_negative++;
    } else if (m > 0) {
      positive.Add(m);
      positive_masses.push_back(m);
      dist.num_positive++;
    }
  }
  dist.negative = negative.bins();
  dist.positive = positive.bins();
  // The paper fits the positive branch; scan cutoffs for the best KS fit
  // (the head below a few mass units is not power-law distributed).
  if (positive_masses.size() >= 10) {
    dist.positive_fit = util::FitPowerLawAutoXmin(positive_masses);
  }
  return dist;
}

}  // namespace spammass::eval
