#include "eval/precision.h"

#include "util/logging.h"

namespace spammass::eval {

using core::NodeLabel;

std::vector<PrecisionPoint> ComputePrecisionCurve(
    const EvaluationSample& sample, const std::vector<double>& thresholds,
    const core::MassEstimates* estimates, std::optional<double> scaled_rho) {
  std::vector<PrecisionPoint> curve;
  curve.reserve(thresholds.size());
  for (double tau : thresholds) {
    PrecisionPoint point;
    point.threshold = tau;
    for (const JudgedHost& h : sample.hosts) {
      if (h.Excluded() || h.relative_mass < tau) continue;
      if (h.judged == NodeLabel::kSpam) {
        point.sample_spam++;
      } else if (h.anomalous) {
        point.sample_anomalous++;
      } else {
        point.sample_good++;
      }
    }
    uint32_t with = point.sample_spam + point.sample_good +
                    point.sample_anomalous;
    uint32_t without = point.sample_spam + point.sample_good;
    point.precision_including_anomalous =
        with ? static_cast<double>(point.sample_spam) / with : 0.0;
    point.precision_excluding_anomalous =
        without ? static_cast<double>(point.sample_spam) / without : 0.0;

    if (estimates != nullptr && scaled_rho.has_value()) {
      const size_t n = estimates->pagerank.size();
      const double scale =
          static_cast<double>(n) / (1.0 - estimates->damping);
      for (size_t x = 0; x < n; ++x) {
        if (estimates->pagerank[x] * scale >= *scaled_rho &&
            estimates->relative_mass[x] >= tau) {
          point.hosts_above++;
        }
      }
    }
    curve.push_back(point);
  }
  return curve;
}

}  // namespace spammass::eval
