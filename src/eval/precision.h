// Precision of the detection algorithm (Figures 4 and 5):
//     prec(τ) = |{spam sample hosts with m̃ ≥ τ}| /
//               |{sample hosts with m̃ ≥ τ}|,
// evaluated over the judged sample (unknown / non-existent hosts excluded).
// The paper reports two variants: anomalous good hosts counted as false
// positives ("included") and dropped from the sample ("excluded").

#ifndef SPAMMASS_EVAL_PRECISION_H_
#define SPAMMASS_EVAL_PRECISION_H_

#include <optional>
#include <vector>

#include "core/spam_mass.h"
#include "eval/sampling.h"

namespace spammass::eval {

/// One point of the precision curve.
struct PrecisionPoint {
  double threshold = 0;  // τ
  /// Number of hosts in the full filtered set T with m̃ ≥ τ (the counts
  /// printed along the top of Figure 4). Only filled when full estimates
  /// are supplied.
  uint64_t hosts_above = 0;
  /// Judged sample tallies at or above the threshold.
  uint32_t sample_spam = 0;
  uint32_t sample_good = 0;
  uint32_t sample_anomalous = 0;
  /// prec(τ) with anomalous hosts as false positives.
  double precision_including_anomalous = 0;
  /// prec(τ) with anomalous hosts dropped.
  double precision_excluding_anomalous = 0;
};

/// Computes the curve over the given thresholds. When `estimates` and
/// `scaled_rho` are provided, hosts_above counts nodes with p̂ ≥ ρ and
/// m̃ ≥ τ in the whole graph.
std::vector<PrecisionPoint> ComputePrecisionCurve(
    const EvaluationSample& sample, const std::vector<double>& thresholds,
    const core::MassEstimates* estimates = nullptr,
    std::optional<double> scaled_rho = std::nullopt);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_PRECISION_H_
