// Evaluation sampling (Section 4.4.1). The paper draws a uniform random
// sample T′ of 892 hosts from T = {x : p̂_x ≥ ρ} and judges each manually:
// 63.2% good, 25.7% spam, 6.1% unknown (East Asian hosts), 5% non-existent.
// On synthetic data the ground truth is known, so judging is simulated:
// labels come from the generator, and configurable fractions of the sample
// are marked unknown / non-existent to reproduce the paper's accounting
// (both classes are excluded from the analysis).

#ifndef SPAMMASS_EVAL_SAMPLING_H_
#define SPAMMASS_EVAL_SAMPLING_H_

#include <vector>

#include "core/labels.h"
#include "core/spam_mass.h"
#include "graph/web_graph.h"
#include "synth/generator.h"
#include "util/random.h"

namespace spammass::eval {

/// One judged sample host.
struct JudgedHost {
  graph::NodeId node = graph::kInvalidNode;
  /// Simulated judge verdict (ground truth, or unknown/non-existent).
  core::NodeLabel judged = core::NodeLabel::kGood;
  /// Estimated relative mass m̃ under the evaluation core.
  double relative_mass = 0;
  /// Scaled PageRank p̂.
  double scaled_pagerank = 0;
  /// True for good hosts whose region is a known core-coverage anomaly
  /// (the gray bars of Figure 3).
  bool anomalous = false;

  bool Excluded() const {
    return judged == core::NodeLabel::kUnknown ||
           judged == core::NodeLabel::kNonExistent;
  }
};

/// A judged evaluation sample.
struct EvaluationSample {
  std::vector<JudgedHost> hosts;

  uint64_t CountJudged(core::NodeLabel label) const;
};

/// Draws `sample_size` hosts uniformly from `candidates` (clamped to the
/// candidate count), attaches mass estimates, simulates judging with the
/// given unknown / non-existent fractions, and attributes anomalies via
/// the generator's region metadata.
EvaluationSample DrawEvaluationSample(const synth::SyntheticWeb& web,
                                      const core::MassEstimates& estimates,
                                      const std::vector<graph::NodeId>& candidates,
                                      uint64_t sample_size,
                                      double unknown_fraction,
                                      double nonexistent_fraction,
                                      util::Rng* rng);

/// Re-derives each sample host's relative mass from another set of
/// estimates (e.g. a smaller core), keeping hosts and verdicts fixed — the
/// Figure 5 methodology ("we used the same evaluation sample T′").
EvaluationSample WithEstimates(const EvaluationSample& sample,
                               const core::MassEstimates& estimates);

/// Estimates the good fraction γ of the whole web from a uniform random
/// sample of `sample_size` nodes judged against ground truth (Section 3.5's
/// "small uniform random sample of nodes, manually labeled").
double EstimateGoodFraction(const core::LabelStore& labels,
                            uint64_t sample_size, util::Rng* rng);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_SAMPLING_H_
