#include "eval/sampling.h"

#include <algorithm>

#include "util/logging.h"

namespace spammass::eval {

using core::MassEstimates;
using core::NodeLabel;
using graph::NodeId;
using util::Rng;

uint64_t EvaluationSample::CountJudged(NodeLabel label) const {
  uint64_t count = 0;
  for (const JudgedHost& h : hosts) {
    if (h.judged == label) ++count;
  }
  return count;
}

EvaluationSample DrawEvaluationSample(const synth::SyntheticWeb& web,
                                      const MassEstimates& estimates,
                                      const std::vector<NodeId>& candidates,
                                      uint64_t sample_size,
                                      double unknown_fraction,
                                      double nonexistent_fraction,
                                      Rng* rng) {
  CHECK_EQ(estimates.pagerank.size(),
           static_cast<size_t>(web.graph.num_nodes()));
  EvaluationSample sample;
  if (candidates.empty()) return sample;
  sample_size = std::min<uint64_t>(sample_size, candidates.size());
  std::vector<uint64_t> idx =
      util::SampleWithoutReplacement(candidates.size(), sample_size, rng);
  const double scale = static_cast<double>(estimates.pagerank.size()) /
                       (1.0 - estimates.damping);
  for (uint64_t i : idx) {
    NodeId x = candidates[i];
    JudgedHost h;
    h.node = x;
    h.relative_mass = estimates.relative_mass[x];
    h.scaled_pagerank = estimates.pagerank[x] * scale;
    // Simulated judging: the verdict is ground truth except for the
    // configured unknown / non-existent slices (mirroring the 6.1% East
    // Asian hosts and 5% dead hosts of Section 4.4.1).
    double u = rng->Uniform01();
    if (u < nonexistent_fraction) {
      h.judged = NodeLabel::kNonExistent;
    } else if (u < nonexistent_fraction + unknown_fraction) {
      h.judged = NodeLabel::kUnknown;
    } else {
      h.judged = web.labels.Get(x);
    }
    h.anomalous = web.IsAnomalousGoodNode(x);
    sample.hosts.push_back(h);
  }
  return sample;
}

EvaluationSample WithEstimates(const EvaluationSample& sample,
                               const MassEstimates& estimates) {
  EvaluationSample out = sample;
  const double scale = static_cast<double>(estimates.pagerank.size()) /
                       (1.0 - estimates.damping);
  for (JudgedHost& h : out.hosts) {
    CHECK_LT(static_cast<size_t>(h.node), estimates.relative_mass.size());
    h.relative_mass = estimates.relative_mass[h.node];
    h.scaled_pagerank = estimates.pagerank[h.node] * scale;
  }
  return out;
}

double EstimateGoodFraction(const core::LabelStore& labels,
                            uint64_t sample_size, Rng* rng) {
  CHECK_GT(labels.num_nodes(), 0u);
  sample_size = std::min<uint64_t>(sample_size, labels.num_nodes());
  CHECK_GT(sample_size, 0u);
  std::vector<uint64_t> idx =
      util::SampleWithoutReplacement(labels.num_nodes(), sample_size, rng);
  uint64_t good = 0;
  for (uint64_t i : idx) {
    if (labels.IsGood(static_cast<NodeId>(i))) ++good;
  }
  return static_cast<double>(good) / static_cast<double>(sample_size);
}

}  // namespace spammass::eval
