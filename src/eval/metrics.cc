#include "eval/metrics.h"

#include <algorithm>

namespace spammass::eval {

namespace {

/// Sorts descending by score and tallies totals.
struct Prepared {
  std::vector<ScoredExample> sorted;
  uint64_t positives = 0;
  uint64_t negatives = 0;
};

Prepared Prepare(const std::vector<ScoredExample>& examples) {
  Prepared p;
  p.sorted = examples;
  std::sort(p.sorted.begin(), p.sorted.end(),
            [](const ScoredExample& a, const ScoredExample& b) {
              return a.score > b.score;
            });
  for (const auto& e : p.sorted) {
    if (e.positive) {
      ++p.positives;
    } else {
      ++p.negatives;
    }
  }
  return p;
}

}  // namespace

std::vector<RocPoint> ComputeRoc(const std::vector<ScoredExample>& examples) {
  Prepared p = Prepare(examples);
  std::vector<RocPoint> curve;
  if (p.sorted.empty()) return curve;
  uint64_t tp = 0, fp = 0;
  for (size_t i = 0; i < p.sorted.size(); ++i) {
    if (p.sorted[i].positive) {
      ++tp;
    } else {
      ++fp;
    }
    // Emit a point only at the last example of a tie group, so every
    // threshold classifies all equal scores identically.
    if (i + 1 < p.sorted.size() &&
        p.sorted[i + 1].score == p.sorted[i].score) {
      continue;
    }
    RocPoint point;
    point.threshold = p.sorted[i].score;
    point.true_positive_rate =
        p.positives ? static_cast<double>(tp) / static_cast<double>(p.positives)
                    : 0;
    point.false_positive_rate =
        p.negatives ? static_cast<double>(fp) / static_cast<double>(p.negatives)
                    : 0;
    curve.push_back(point);
  }
  return curve;
}

double ComputeAuc(const std::vector<ScoredExample>& examples) {
  auto curve = ComputeRoc(examples);
  if (curve.empty()) return 0.5;
  double auc = 0;
  double prev_fpr = 0, prev_tpr = 0;
  for (const RocPoint& point : curve) {
    auc += (point.false_positive_rate - prev_fpr) *
           (point.true_positive_rate + prev_tpr) / 2.0;
    prev_fpr = point.false_positive_rate;
    prev_tpr = point.true_positive_rate;
  }
  // Close the curve to (1, 1).
  auc += (1.0 - prev_fpr) * (1.0 + prev_tpr) / 2.0;
  return auc;
}

std::vector<PrPoint> ComputePrCurve(const std::vector<ScoredExample>& examples) {
  Prepared p = Prepare(examples);
  std::vector<PrPoint> curve;
  uint64_t tp = 0, flagged = 0;
  for (size_t i = 0; i < p.sorted.size(); ++i) {
    ++flagged;
    if (p.sorted[i].positive) ++tp;
    if (i + 1 < p.sorted.size() &&
        p.sorted[i + 1].score == p.sorted[i].score) {
      continue;
    }
    PrPoint point;
    point.threshold = p.sorted[i].score;
    point.flagged = flagged;
    point.precision = static_cast<double>(tp) / static_cast<double>(flagged);
    point.recall =
        p.positives ? static_cast<double>(tp) / static_cast<double>(p.positives)
                    : 0;
    curve.push_back(point);
  }
  return curve;
}

PrPoint ThresholdForPrecision(const std::vector<ScoredExample>& examples,
                              double target_precision) {
  auto curve = ComputePrCurve(examples);
  PrPoint best;
  bool found = false;
  for (const PrPoint& point : curve) {
    if (point.precision >= target_precision) {
      // Curve is ordered by descending threshold = ascending recall, so
      // the last qualifying point has the largest recall.
      best = point;
      found = true;
    }
  }
  if (!found) {
    for (const PrPoint& point : curve) {
      if (!found || point.precision > best.precision) {
        best = point;
        found = true;
      }
    }
  }
  return best;
}

}  // namespace spammass::eval
