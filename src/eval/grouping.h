// Relative-mass sample grouping (Table 2 / Figure 3). The paper sorts the
// judged sample by estimated relative mass and splits it into 20 groups of
// roughly equal size, then reports each group's mass range (Table 2) and
// good/spam/anomalous composition (Figure 3).

#ifndef SPAMMASS_EVAL_GROUPING_H_
#define SPAMMASS_EVAL_GROUPING_H_

#include <cstdint>
#include <vector>

#include "eval/sampling.h"

namespace spammass::eval {

/// One sample group (ascending mass order: group 1 holds the most negative
/// estimates, group `num_groups` the ones closest to 1).
struct SampleGroup {
  /// Smallest and largest relative mass estimate in the group (Table 2's
  /// two threshold rows).
  double smallest_mass = 0;
  double largest_mass = 0;
  /// All sample hosts assigned to the group.
  uint32_t size = 0;
  /// Composition after discarding unknown / non-existent hosts (Figure 3).
  uint32_t good = 0;       // good, not anomaly-attributed
  uint32_t spam = 0;
  uint32_t anomalous = 0;  // good hosts attributed to core anomalies
  uint32_t excluded = 0;   // unknown + non-existent

  uint32_t EvaluatedSize() const { return good + spam + anomalous; }
  /// Fraction of spam among evaluated hosts (the percentage printed on the
  /// bars of Figure 3).
  double SpamFraction() const {
    uint32_t n = EvaluatedSize();
    return n ? static_cast<double>(spam) / n : 0.0;
  }
};

/// Sorts the sample ascending by relative mass and splits into
/// `num_groups` groups of near-equal size (remainders spread over the
/// leading groups). Requires a non-empty sample and num_groups >= 1.
std::vector<SampleGroup> SplitIntoGroups(const EvaluationSample& sample,
                                         uint32_t num_groups);

/// Threshold grid for the precision curve: the smallest relative mass of
/// each group with non-negative lower bound, descending (the paper derives
/// its Figure 4 thresholds "from the sample group boundaries"), with 0
/// appended as the final threshold.
std::vector<double> ThresholdsFromGroups(const std::vector<SampleGroup>& groups);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_GROUPING_H_
