#include "eval/grouping.h"

#include <algorithm>

#include "util/logging.h"

namespace spammass::eval {

using core::NodeLabel;

std::vector<SampleGroup> SplitIntoGroups(const EvaluationSample& sample,
                                         uint32_t num_groups) {
  CHECK_GE(num_groups, 1u);
  CHECK(!sample.hosts.empty());
  std::vector<JudgedHost> sorted = sample.hosts;
  std::sort(sorted.begin(), sorted.end(),
            [](const JudgedHost& a, const JudgedHost& b) {
              return a.relative_mass < b.relative_mass;
            });
  num_groups = std::min<uint32_t>(num_groups,
                                  static_cast<uint32_t>(sorted.size()));
  const uint64_t total = sorted.size();
  const uint64_t base = total / num_groups;
  const uint64_t remainder = total % num_groups;

  std::vector<SampleGroup> groups;
  uint64_t pos = 0;
  for (uint32_t g = 0; g < num_groups; ++g) {
    uint64_t count = base + (g < remainder ? 1 : 0);
    SampleGroup group;
    group.size = static_cast<uint32_t>(count);
    group.smallest_mass = sorted[pos].relative_mass;
    group.largest_mass = sorted[pos + count - 1].relative_mass;
    for (uint64_t i = pos; i < pos + count; ++i) {
      const JudgedHost& h = sorted[i];
      if (h.Excluded()) {
        group.excluded++;
      } else if (h.judged == NodeLabel::kSpam) {
        group.spam++;
      } else if (h.anomalous) {
        group.anomalous++;
      } else {
        group.good++;
      }
    }
    groups.push_back(group);
    pos += count;
  }
  return groups;
}

std::vector<double> ThresholdsFromGroups(
    const std::vector<SampleGroup>& groups) {
  std::vector<double> thresholds;
  for (auto it = groups.rbegin(); it != groups.rend(); ++it) {
    if (it->smallest_mass >= 0 &&
        (thresholds.empty() || it->smallest_mass < thresholds.back())) {
      thresholds.push_back(it->smallest_mass);
    }
  }
  if (thresholds.empty() || thresholds.back() > 0) thresholds.push_back(0.0);
  return thresholds;
}

}  // namespace spammass::eval
