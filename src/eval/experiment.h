// End-to-end experiment pipeline glue shared by the bench binaries: build
// the synthetic web, assemble the good core, estimate γ from a judged
// uniform sample, compute mass estimates, apply the PageRank filter, draw
// and judge the evaluation sample — the exact experimental procedure of
// Sections 4.1-4.4. Since PR 4 this is a thin wrapper over src/pipeline/
// (GraphSource + PipelineContext); the simulated-judging and sampling
// stages are the only logic that lives here.

#ifndef SPAMMASS_EVAL_EXPERIMENT_H_
#define SPAMMASS_EVAL_EXPERIMENT_H_

#include <string>
#include <vector>

#include "core/spam_mass.h"
#include "eval/sampling.h"
#include "pagerank/solver.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/status.h"

namespace spammass::eval {

/// Pipeline configuration.
struct PipelineOptions {
  /// Scenario scale and seed (see synth::Yahoo2004Scenario).
  double scale = 1.0;
  uint64_t seed = 42;
  /// Mass-estimation settings. gamma is overridden when
  /// estimate_gamma_from_sample is true.
  core::SpamMassOptions mass;
  /// Scaled-PageRank filter ρ (Section 4.4 uses ρ = 10).
  double scaled_rho = 10.0;
  /// Evaluation sample size (the paper judges 892 hosts).
  uint64_t sample_size = 892;
  /// Fractions of the sample the simulated judge cannot classify / fetch.
  double unknown_fraction = 0.061;
  double nonexistent_fraction = 0.05;
  /// Estimate γ from a judged uniform sample of the whole web (Section
  /// 3.5's procedure) instead of using mass.gamma directly.
  bool estimate_gamma_from_sample = true;
  uint64_t gamma_sample_size = 2000;

  PipelineOptions() { mass.solver = pagerank::SolverOptions::BenchPreset(); }
};

/// Everything downstream experiments need.
struct PipelineResult {
  synth::SyntheticWeb web;
  std::vector<graph::NodeId> good_core;
  double gamma_used = 0;
  core::MassEstimates estimates;
  /// T = {x : p̂_x ≥ ρ}.
  std::vector<graph::NodeId> filtered;
  /// Judged uniform sample T′ of T.
  EvaluationSample sample;
  /// The run manifest JSON (pipeline/manifest.h schema) recording config,
  /// stage wall times and solver iteration counts for this run.
  std::string manifest_json;
};

/// Runs the full pipeline. Deterministic in options.seed.
util::Result<PipelineResult> RunPipeline(const PipelineOptions& options);

/// Output of ReestimateWithCore.
struct ReestimateResult {
  /// The base run's sample hosts with mass estimates re-derived under the
  /// replacement core.
  EvaluationSample sample;
  /// The full replacement-core estimates the sample was derived from.
  core::MassEstimates estimates;
};

/// Re-estimates mass under a replacement good core (same web, same sample
/// hosts) — the Figure 5 core-size/coverage methodology.
util::Result<ReestimateResult> ReestimateWithCore(
    const PipelineResult& base, const std::vector<graph::NodeId>& core,
    const PipelineOptions& options);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_EXPERIMENT_H_
