// Absolute-mass distribution (Figure 6 / Section 4.6). The paper plots the
// fraction of hosts per scaled absolute-mass value on log-log axes, split
// into a negative and a positive branch, and reports a power-law exponent
// of −2.31 for the positive branch.

#ifndef SPAMMASS_EVAL_MASS_DISTRIBUTION_H_
#define SPAMMASS_EVAL_MASS_DISTRIBUTION_H_

#include <vector>

#include "core/spam_mass.h"
#include "util/histogram.h"
#include "util/power_law.h"

namespace spammass::eval {

/// The two branches of the Figure 6 plot plus a power-law fit of the
/// positive tail.
struct MassDistribution {
  /// Log-binned histogram of −M̃ over hosts with M̃ < 0 (so bin centers are
  /// positive magnitudes; the paper's left plot).
  std::vector<util::HistogramBin> negative;
  /// Log-binned histogram of M̃ over hosts with M̃ > 0 (right plot).
  std::vector<util::HistogramBin> positive;
  /// MLE power-law fit of the positive branch (density exponent −alpha;
  /// the paper measures alpha = 2.31).
  util::PowerLawFit positive_fit;
  /// Extremes of the scaled mass range (the paper reports −268,099 to
  /// +132,332 on the Yahoo! graph).
  double min_scaled_mass = 0;
  double max_scaled_mass = 0;
  uint64_t num_negative = 0;
  uint64_t num_positive = 0;
};

/// Builds the distribution from mass estimates; masses are scaled by
/// n/(1−c) like every presentation value. `bin_ratio` is the multiplicative
/// log-bin width.
MassDistribution ComputeMassDistribution(const core::MassEstimates& estimates,
                                         double bin_ratio = 1.35,
                                         double min_abs_mass = 0.5);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_MASS_DISTRIBUTION_H_
