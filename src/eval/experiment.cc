#include "eval/experiment.h"

#include <algorithm>

#include "core/detector.h"
#include "util/logging.h"

namespace spammass::eval {

using util::Result;
using util::Rng;
using util::Status;

Result<PipelineResult> RunPipeline(const PipelineOptions& options) {
  PipelineResult result;

  auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(options.scale,
                                                         options.seed));
  if (!web.ok()) return web.status();
  result.web = std::move(web.value());

  result.good_core = result.web.AssembledGoodCore();
  if (result.good_core.empty()) {
    return Status::FailedPrecondition("scenario produced an empty good core");
  }

  // Independent RNG streams for judging vs. generation.
  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);

  core::SpamMassOptions mass_options = options.mass;
  if (options.estimate_gamma_from_sample) {
    mass_options.gamma = EstimateGoodFraction(
        result.web.labels, options.gamma_sample_size, &rng);
    // Clamp away from 0/1 — a degenerate judged sample must not produce an
    // invalid jump scaling.
    mass_options.gamma = std::min(std::max(mass_options.gamma, 0.05), 1.0);
  }
  result.gamma_used = mass_options.gamma;

  auto estimates =
      core::EstimateSpamMass(result.web.graph, result.good_core, mass_options);
  if (!estimates.ok()) return estimates.status();
  result.estimates = std::move(estimates.value());

  result.filtered =
      core::PageRankFilteredNodes(result.estimates, options.scaled_rho);
  result.sample = DrawEvaluationSample(
      result.web, result.estimates, result.filtered, options.sample_size,
      options.unknown_fraction, options.nonexistent_fraction, &rng);
  return result;
}

Result<EvaluationSample> ReestimateWithCore(
    const PipelineResult& base, const std::vector<graph::NodeId>& core,
    const PipelineOptions& options, core::MassEstimates* estimates_out) {
  core::SpamMassOptions mass_options = options.mass;
  mass_options.gamma = base.gamma_used;
  auto estimates =
      core::EstimateSpamMass(base.web.graph, core, mass_options);
  if (!estimates.ok()) return estimates.status();
  EvaluationSample sample = WithEstimates(base.sample, estimates.value());
  if (estimates_out != nullptr) {
    *estimates_out = std::move(estimates.value());
  }
  return sample;
}

}  // namespace spammass::eval
