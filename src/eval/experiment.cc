#include "eval/experiment.h"

#include <algorithm>
#include <utility>

#include "core/detector.h"
#include "pipeline/context.h"
#include "pipeline/graph_source.h"
#include "pipeline/manifest.h"
#include "util/logging.h"
#include "util/timer.h"

namespace spammass::eval {

using util::Result;
using util::Rng;
using util::Status;

Result<PipelineResult> RunPipeline(const PipelineOptions& options) {
  util::WallTimer total_timer;
  PipelineResult result;

  pipeline::GraphSource source =
      pipeline::GraphSource::Scenario(options.scale, options.seed);
  auto loaded = source.Load();
  if (!loaded.ok()) return loaded.status();

  if (loaded.value().good_core.empty()) {
    return Status::FailedPrecondition("scenario produced an empty good core");
  }

  // Independent RNG streams for judging vs. generation. The γ-estimation
  // draw and the evaluation-sample draw deliberately share one stream in
  // this order (the judged γ sample happens "first" in the paper's
  // procedure), so the stream position must be preserved verbatim.
  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);

  util::WallTimer stage_timer;
  double gamma = options.mass.gamma;
  if (options.estimate_gamma_from_sample) {
    gamma = EstimateGoodFraction(loaded.value().web.labels,
                                 options.gamma_sample_size, &rng);
    // Clamp away from 0/1 — a degenerate judged sample must not produce an
    // invalid jump scaling.
    gamma = std::min(std::max(gamma, 0.05), 1.0);
  }
  result.gamma_used = gamma;
  const double gamma_seconds = stage_timer.Seconds();

  // Mass estimation through the shared pipeline context: the p and p′
  // solves run as one fused multi-RHS stream, exactly as
  // core::EstimateSpamMass issues them, so the estimates are bit-identical
  // to the pre-pipeline implementation.
  pipeline::PipelineConfig config;
  config.solver = options.mass.solver;
  config.gamma = gamma;
  config.scale_core_jump = options.mass.scale_core_jump;
  config.detection.scaled_pagerank_threshold = options.scaled_rho;

  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  Status status = context.Prepare(needs);
  if (!status.ok()) return status;
  result.estimates = context.TakeMassEstimates();

  stage_timer.Restart();
  result.filtered =
      core::PageRankFilteredNodes(result.estimates, options.scaled_rho);
  result.sample = DrawEvaluationSample(
      loaded.value().web, result.estimates, result.filtered,
      options.sample_size, options.unknown_fraction,
      options.nonexistent_fraction, &rng);
  const double sample_seconds = stage_timer.Seconds();

  pipeline::ManifestInputs manifest;
  manifest.source = &loaded.value();
  manifest.config = &config;
  manifest.stages.push_back({"load", loaded.value().load_seconds, {}});
  manifest.stages.push_back({"gamma_estimation", gamma_seconds, {}});
  for (const pipeline::StageTiming& stage : context.stage_timings()) {
    manifest.stages.push_back(stage);
  }
  manifest.stages.push_back({"filter_and_sample", sample_seconds, {}});
  manifest.base_pagerank_solves = context.base_pagerank_solves();
  manifest.total_solves = context.total_solves();
  manifest.solve_stats = context.solve_stats();
  manifest.total_seconds = total_timer.Seconds();
  result.manifest_json = pipeline::BuildManifestJson(manifest);

  result.good_core = std::move(loaded.value().good_core);
  result.web = std::move(loaded.value().web);
  return result;
}

Result<ReestimateResult> ReestimateWithCore(
    const PipelineResult& base, const std::vector<graph::NodeId>& core,
    const PipelineOptions& options) {
  core::SpamMassOptions mass_options = options.mass;
  mass_options.gamma = base.gamma_used;
  auto estimates =
      core::EstimateSpamMass(base.web.graph, core, mass_options);
  if (!estimates.ok()) return estimates.status();
  ReestimateResult result;
  result.sample = WithEstimates(base.sample, estimates.value());
  result.estimates = std::move(estimates.value());
  return result;
}

}  // namespace spammass::eval
