// Ranking-quality metrics for detector comparison: ROC / AUC,
// precision-recall curves, and threshold selection. The paper evaluates by
// precision at chosen thresholds (Figures 4-5); these utilities generalize
// that to full operating-characteristic curves so detectors with different
// score scales (relative mass, trust ratio, degree-spike flags) can be
// compared fairly.

#ifndef SPAMMASS_EVAL_METRICS_H_
#define SPAMMASS_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace spammass::eval {

/// A scored, ground-truth-labeled example (score: higher = more spammy).
struct ScoredExample {
  double score = 0;
  bool positive = false;  // ground truth: is spam
};

/// One ROC operating point: classify score >= threshold as positive.
struct RocPoint {
  double threshold = 0;
  double true_positive_rate = 0;   // recall
  double false_positive_rate = 0;
};

/// Full ROC curve over all distinct thresholds, sorted by descending
/// threshold (so FPR/TPR ascend along the vector). Requires at least one
/// positive and one negative example for meaningful rates.
std::vector<RocPoint> ComputeRoc(const std::vector<ScoredExample>& examples);

/// Area under the ROC curve by trapezoidal integration. Equals the
/// probability that a random spam example outscores a random good one
/// (ties counted half). Returns 0.5 for degenerate inputs.
double ComputeAuc(const std::vector<ScoredExample>& examples);

/// One precision-recall operating point.
struct PrPoint {
  double threshold = 0;
  double precision = 0;
  double recall = 0;
  uint64_t flagged = 0;
};

/// Precision-recall curve over all distinct thresholds, descending.
std::vector<PrPoint> ComputePrCurve(const std::vector<ScoredExample>& examples);

/// Picks the smallest threshold (= largest recall) whose precision is at
/// least `target_precision`; returns the corresponding point. Falls back
/// to the highest-precision point when the target is unattainable.
PrPoint ThresholdForPrecision(const std::vector<ScoredExample>& examples,
                              double target_precision);

}  // namespace spammass::eval

#endif  // SPAMMASS_EVAL_METRICS_H_
