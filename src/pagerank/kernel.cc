#include "pagerank/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace spammass::pagerank::kernel {

using graph::NodeId;
using graph::WebGraph;

static_assert(simd::kMaxSweepLanes == kMaxVectorsPerSweep,
              "simd_sweep_body.h lane cap must match the kernel's");

uint64_t ChunkSize(uint64_t total) {
  const uint64_t spread = (total + kMaxChunks - 1) / kMaxChunks;
  return std::max(kMinChunkSize, spread);
}

uint64_t NumChunks(uint64_t total) {
  if (total == 0) return 0;
  const uint64_t chunk = ChunkSize(total);
  return (total + chunk - 1) / chunk;
}

void ForEachChunk(
    util::ThreadPool* pool, uint64_t total,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body) {
  if (total == 0) return;
  const uint64_t chunk = ChunkSize(total);
  if (pool != nullptr) {
    pool->ParallelForChunked(total, chunk, body);
    return;
  }
  const uint64_t chunks = (total + chunk - 1) / chunk;
  for (uint64_t c = 0; c < chunks; ++c) {
    body(c, c * chunk, std::min((c + 1) * chunk, total));
  }
}

double DeterministicSum(
    util::ThreadPool* pool, uint64_t total,
    const std::function<double(uint64_t, uint64_t)>& range_sum,
    std::vector<double>* partials) {
  if (total == 0) return 0.0;
  partials->assign(NumChunks(total), 0.0);
  ForEachChunk(pool, total, [&](uint64_t c, uint64_t begin, uint64_t end) {
    (*partials)[c] = range_sum(begin, end);
  });
  double sum = 0.0;
  for (double partial : *partials) sum += partial;
  return sum;
}

void ScaleByInvOutDegree(const WebGraph& graph, uint32_t k, const double* p,
                         double* scaled, util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  const double* inv = graph.InvOutDegrees().data();
  ForEachChunk(pool, graph.num_nodes(),
               [&](uint64_t, uint64_t begin, uint64_t end) {
                 for (uint64_t x = begin; x < end; ++x) {
                   const double w = inv[x];
                   const double* in = p + x * k;
                   double* out = scaled + x * k;
                   for (uint32_t j = 0; j < k; ++j) out[j] = in[j] * w;
                 }
               });
}

void DanglingSums(const WebGraph& graph, uint32_t k, const double* p,
                  std::vector<double>* partials, double* sums,
                  util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  CHECK_LE(k, kMaxVectorsPerSweep);
  const auto dangling = graph.DanglingNodes();
  const uint64_t total = dangling.size();
  for (uint32_t j = 0; j < k; ++j) sums[j] = 0.0;
  if (total == 0) return;
  const uint64_t chunks = NumChunks(total);
  partials->assign(chunks * k, 0.0);
  ForEachChunk(pool, total, [&](uint64_t c, uint64_t begin, uint64_t end) {
    double acc[kMaxVectorsPerSweep] = {0.0};
    for (uint64_t i = begin; i < end; ++i) {
      const double* row = p + static_cast<uint64_t>(dangling[i]) * k;
      for (uint32_t j = 0; j < k; ++j) acc[j] += row[j];
    }
    double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) slot[j] = acc[j];
  });
  for (uint64_t c = 0; c < chunks; ++c) {
    const double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) sums[j] += slot[j];
  }
}

namespace {

/// One sweep over node range [begin, end). K is the compile-time lane
/// count (1/2/4/8/16 cover the batch widths the solver produces; K == 0
/// falls back to the runtime k for compacted in-between widths).
/// The per-lane arithmetic — accumulation order included — is the same for
/// every K, so specializations only unroll, never reassociate.
template <uint32_t K>
void SweepRange(const WebGraph& graph, uint32_t k, const double* v, double c,
                const double* dangling, const double* p, const double* scaled,
                double* next, double* next_scaled, double* diff_slot,
                NodeId begin, NodeId end) {
  const uint32_t lanes = K == 0 ? k : K;
  const double* inv = graph.InvOutDegrees().data();
  const uint64_t* in_offsets = graph.InOffsets().data();
  const NodeId* sources = graph.Sources().data();
  // Per-lane jump multiplier, hoisted out of the node loop:
  //   c·(in_sum + vy·d) + (1−c)·vy  =  c·in_sum + vy·((1−c) + c·d).
  // Computed identically by every chunk and every K path, so the
  // reassociation cannot introduce cross-configuration divergence.
  double m[kMaxVectorsPerSweep];
  for (uint32_t j = 0; j < lanes; ++j) {
    m[j] = (1.0 - c) + c * dangling[j];
  }
  double diff[kMaxVectorsPerSweep] = {0.0};
  for (NodeId y = begin; y < end; ++y) {
    double in_sum[kMaxVectorsPerSweep];
    for (uint32_t j = 0; j < lanes; ++j) in_sum[j] = 0.0;
    for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
      const double* row = scaled + static_cast<uint64_t>(sources[e]) * lanes;
      for (uint32_t j = 0; j < lanes; ++j) in_sum[j] += row[j];
    }
    const double* vrow = v + static_cast<uint64_t>(y) * lanes;
    const double* prow = p + static_cast<uint64_t>(y) * lanes;
    double* nrow = next + static_cast<uint64_t>(y) * lanes;
    if (next_scaled != nullptr) {
      const double w = inv[y];
      double* srow = next_scaled + static_cast<uint64_t>(y) * lanes;
      for (uint32_t j = 0; j < lanes; ++j) {
        const double out = c * in_sum[j] + vrow[j] * m[j];
        diff[j] += std::abs(out - prow[j]);
        nrow[j] = out;
        srow[j] = out * w;
      }
    } else {
      for (uint32_t j = 0; j < lanes; ++j) {
        const double out = c * in_sum[j] + vrow[j] * m[j];
        diff[j] += std::abs(out - prow[j]);
        nrow[j] = out;
      }
    }
  }
  for (uint32_t j = 0; j < lanes; ++j) diff_slot[j] = diff[j];
}

using SweepRangeFn = void (*)(const WebGraph&, uint32_t, const double*,
                              double, const double*, const double*,
                              const double*, double*, double*, double*,
                              NodeId, NodeId);

SweepRangeFn PickSweepRange(uint32_t k) {
  switch (k) {
    case 1:
      return SweepRange<1>;
    case 2:
      return SweepRange<2>;
    case 4:
      return SweepRange<4>;
    case 8:
      return SweepRange<8>;
    case 16:
      return SweepRange<16>;
    default:
      return SweepRange<0>;
  }
}

}  // namespace

void WeightedJacobiSweepMulti(const WebGraph& graph, uint32_t k,
                              const double* v, double damping,
                              const double* dangling, const double* p,
                              const double* scaled, double* next,
                              double* next_scaled,
                              std::vector<double>* partials, double* diffs,
                              util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  CHECK_LE(k, kMaxVectorsPerSweep);
  const NodeId n = graph.num_nodes();
  const uint64_t chunks = NumChunks(n);
  partials->assign(chunks * k, 0.0);
  const SweepRangeFn sweep = PickSweepRange(k);
  ForEachChunk(pool, n, [&](uint64_t c, uint64_t begin, uint64_t end) {
    sweep(graph, k, v, damping, dangling, p, scaled, next, next_scaled,
          partials->data() + c * k, static_cast<NodeId>(begin),
          static_cast<NodeId>(end));
  });
  for (uint32_t j = 0; j < k; ++j) diffs[j] = 0.0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) diffs[j] += slot[j];
  }
}

namespace {

/// Fills the variant-independent SweepArgs fields. The jump multipliers
/// land in caller-owned `m` storage (hoisted once per kernel call; the
/// reference path computes the same expression per chunk).
template <typename Real>
simd::SweepArgs<Real> MakeSweepArgs(const WebGraph& graph, uint32_t k,
                                    const Real* v, double damping,
                                    const double* dangling, const Real* inv,
                                    const Real* p, const Real* scaled,
                                    Real* next, Real* next_scaled,
                                    bool compressed, Real* m) {
  simd::SweepArgs<Real> args;
  args.k = k;
  args.in_offsets = graph.InOffsets().data();
  if (compressed) {
    CHECK(graph.has_compressed_in())
        << "compressed sweep variant requires WebGraph::"
           "BuildCompressedInAdjacency";
    args.comp_offsets = graph.compressed_in().byte_offsets.data();
    args.comp_bytes = graph.compressed_in().bytes.data();
  } else {
    args.sources = graph.Sources().data();
  }
  args.inv = inv;
  args.v = v;
  args.c = static_cast<Real>(damping);
  for (uint32_t j = 0; j < k; ++j) {
    m[j] = static_cast<Real>((1.0 - damping) + damping * dangling[j]);
  }
  args.m = m;
  args.p = p;
  args.scaled = scaled;
  args.next = next;
  args.next_scaled = next_scaled;
  return args;
}

template <typename Real>
void RunVariantSweep(const simd::SweepRangeFn<Real> sweep,
                     const simd::SweepArgs<Real>& args, uint32_t k,
                     uint64_t n, std::vector<double>* partials, double* diffs,
                     util::ThreadPool* pool) {
  const uint64_t chunks = NumChunks(n);
  partials->assign(chunks * k, 0.0);
  ForEachChunk(pool, n, [&](uint64_t c, uint64_t begin, uint64_t end) {
    sweep(args, partials->data() + c * k, static_cast<NodeId>(begin),
          static_cast<NodeId>(end));
  });
  for (uint32_t j = 0; j < k; ++j) diffs[j] = 0.0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) diffs[j] += slot[j];
  }
}

}  // namespace

void WeightedJacobiSweepMulti(const WebGraph& graph, uint32_t k,
                              const double* v, double damping,
                              const double* dangling, const double* p,
                              const double* scaled, double* next,
                              double* next_scaled,
                              std::vector<double>* partials, double* diffs,
                              const SweepVariant& variant,
                              util::ThreadPool* pool) {
  if (variant.IsDefault()) {
    // The reference path must stay byte-for-byte the pre-variant code, so
    // the bit-exact guarantee never depends on template instantiation
    // details.
    WeightedJacobiSweepMulti(graph, k, v, damping, dangling, p, scaled, next,
                             next_scaled, partials, diffs, pool);
    return;
  }
  CHECK_GE(k, 1u);
  CHECK_LE(k, kMaxVectorsPerSweep);
  double m[kMaxVectorsPerSweep];
  const simd::SweepArgs<double> args = MakeSweepArgs<double>(
      graph, k, v, damping, dangling, graph.InvOutDegrees().data(), p,
      scaled, next, next_scaled, variant.compressed, m);
  RunVariantSweep<double>(
      simd::PickSweepF64(variant.level, k, variant.compressed), args, k,
      graph.num_nodes(), partials, diffs, pool);
}

void InvOutDegreesF32(const WebGraph& graph, std::vector<float>* out) {
  const auto inv = graph.InvOutDegrees();
  out->resize(inv.size());
  for (size_t x = 0; x < inv.size(); ++x) {
    (*out)[x] = static_cast<float>(inv[x]);
  }
}

void ScaleByInvOutDegreeF32(uint32_t num_nodes, uint32_t k, const float* inv,
                            const float* p, float* scaled,
                            util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  ForEachChunk(pool, num_nodes, [&](uint64_t, uint64_t begin, uint64_t end) {
    for (uint64_t x = begin; x < end; ++x) {
      const float w = inv[x];
      const float* in = p + x * k;
      float* out = scaled + x * k;
      for (uint32_t j = 0; j < k; ++j) out[j] = in[j] * w;
    }
  });
}

void DanglingSumsF32(const WebGraph& graph, uint32_t k, const float* p,
                     std::vector<double>* partials, double* sums,
                     util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  CHECK_LE(k, kMaxVectorsPerSweep);
  const auto dangling = graph.DanglingNodes();
  const uint64_t total = dangling.size();
  for (uint32_t j = 0; j < k; ++j) sums[j] = 0.0;
  if (total == 0) return;
  const uint64_t chunks = NumChunks(total);
  partials->assign(chunks * k, 0.0);
  ForEachChunk(pool, total, [&](uint64_t c, uint64_t begin, uint64_t end) {
    double acc[kMaxVectorsPerSweep] = {0.0};
    for (uint64_t i = begin; i < end; ++i) {
      const float* row = p + static_cast<uint64_t>(dangling[i]) * k;
      for (uint32_t j = 0; j < k; ++j) {
        acc[j] += static_cast<double>(row[j]);
      }
    }
    double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) slot[j] = acc[j];
  });
  for (uint64_t c = 0; c < chunks; ++c) {
    const double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) sums[j] += slot[j];
  }
}

void WeightedJacobiSweepMultiF32(const WebGraph& graph, uint32_t k,
                                 const float* v, double damping,
                                 const double* dangling, const float* inv,
                                 const float* p, const float* scaled,
                                 float* next, float* next_scaled,
                                 std::vector<double>* partials, double* diffs,
                                 const SweepVariant& variant,
                                 util::ThreadPool* pool) {
  CHECK_GE(k, 1u);
  CHECK_LE(k, kMaxVectorsPerSweep);
  float m[kMaxVectorsPerSweep];
  const simd::SweepArgs<float> args =
      MakeSweepArgs<float>(graph, k, v, damping, dangling, inv, p, scaled,
                           next, next_scaled, variant.compressed, m);
  RunVariantSweep<float>(
      simd::PickSweepF32(variant.level, k, variant.compressed), args, k,
      graph.num_nodes(), partials, diffs, pool);
}

}  // namespace spammass::pagerank::kernel
