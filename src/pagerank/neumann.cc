#include "pagerank/neumann.h"

#include <cmath>

#include "util/logging.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::WebGraph;

std::vector<double> NeumannSeries(const WebGraph& graph,
                                  const JumpVector& jump, double damping,
                                  int num_terms) {
  CHECK_EQ(jump.n(), graph.num_nodes());
  CHECK_GT(damping, 0.0);
  CHECK_LT(damping, 1.0);
  CHECK_GT(num_terms, 0);
  const uint32_t n = graph.num_nodes();
  // term = (1−c)·(c·Tᵀ)^k·v, starting at k = 0.
  std::vector<double> term(n);
  for (uint32_t i = 0; i < n; ++i) term[i] = (1.0 - damping) * jump[i];
  std::vector<double> sum = term;
  std::vector<double> next(n, 0.0);
  for (int k = 1; k < num_terms; ++k) {
    for (NodeId y = 0; y < n; ++y) {
      double acc = 0;
      for (NodeId x : graph.InNeighbors(y)) {
        acc += term[x] / graph.OutDegree(x);
      }
      next[y] = damping * acc;
    }
    term.swap(next);
    for (uint32_t i = 0; i < n; ++i) sum[i] += term[i];
  }
  return sum;
}

double NeumannTruncationBound(const JumpVector& jump, double damping,
                              int num_terms) {
  // Tail: (1−c)·Σ_{k≥L} c^k·‖(Tᵀ)^k v‖₁ ≤ (1−c)·‖v‖₁·c^L/(1−c) = c^L·‖v‖₁.
  return std::pow(damping, num_terms) * jump.Norm();
}

}  // namespace spammass::pagerank
