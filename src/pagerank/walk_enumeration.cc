#include "pagerank/walk_enumeration.h"

#include <cmath>

#include "util/logging.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::WebGraph;

namespace {

void Dfs(const WebGraph& graph, NodeId current, NodeId target,
         uint32_t remaining, uint64_t max_walks, Walk* walk,
         std::vector<Walk>* out) {
  if (walk->nodes.size() > 1 && current == target) {
    CHECK_LT(out->size(), max_walks) << "walk budget exhausted";
    out->push_back(*walk);
    // Walks may pass through the target and return, so do not stop here.
  }
  if (remaining == 0) return;
  uint32_t out_degree = graph.OutDegree(current);
  if (out_degree == 0) return;
  double step = 1.0 / out_degree;
  for (NodeId next : graph.OutNeighbors(current)) {
    walk->nodes.push_back(next);
    walk->weight *= step;
    Dfs(graph, next, target, remaining - 1, max_walks, walk, out);
    walk->weight /= step;
    walk->nodes.pop_back();
  }
}

}  // namespace

std::vector<Walk> EnumerateWalks(const WebGraph& graph, NodeId x, NodeId y,
                                 uint32_t max_length, uint64_t max_walks) {
  CHECK_LT(x, graph.num_nodes());
  CHECK_LT(y, graph.num_nodes());
  std::vector<Walk> out;
  Walk walk;
  walk.nodes.push_back(x);
  Dfs(graph, x, y, max_length, max_walks, &walk, &out);
  return out;
}

double WalkSumContribution(const WebGraph& graph, NodeId x, NodeId y,
                           double damping, double vx, uint32_t max_length) {
  double sum = 0;
  for (const Walk& walk : EnumerateWalks(graph, x, y, max_length)) {
    sum += std::pow(damping, walk.length()) * walk.weight;
  }
  sum *= (1.0 - damping) * vx;
  if (x == y) {
    // The virtual zero-length circuit Z_x of Section 3.2.
    sum += (1.0 - damping) * vx;
  }
  return sum;
}

}  // namespace spammass::pagerank
