// Truncated Neumann-series evaluation of linear PageRank, used as an
// independent test oracle for the iterative solvers and as a direct
// implementation of the walk-sum semantics of Section 3.2:
//   p = (1−c) Σ_k (c·Tᵀ)^k v,
// where term k aggregates the contributions c^k·π(W)·(1−c)·v_x of all walks
// W of length k. Truncating after L terms leaves an error of at most
// c^L · ‖v‖₁ in L1.

#ifndef SPAMMASS_PAGERANK_NEUMANN_H_
#define SPAMMASS_PAGERANK_NEUMANN_H_

#include <vector>

#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"

namespace spammass::pagerank {

/// Evaluates the first `num_terms` terms (k = 0 .. num_terms−1) of the
/// Neumann series for PR(jump) with damping c.
std::vector<double> NeumannSeries(const graph::WebGraph& graph,
                                  const JumpVector& jump, double damping,
                                  int num_terms);

/// Upper bound on the L1 truncation error after `num_terms` terms.
double NeumannTruncationBound(const JumpVector& jump, double damping,
                              int num_terms);

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_NEUMANN_H_
