// Exact walk-sum evaluation of PageRank contributions on tiny graphs
// (Section 3.2 of the paper defines q_y^x as a sum over all walks from x
// to y of c^|W|·π(W)·(1−c)·v_x). This module enumerates the walks
// explicitly — up to a length bound, since cyclic graphs have infinitely
// many — and serves as a third, independent oracle besides the iterative
// solvers and the Neumann series. Exponential in the worst case; intended
// for graphs of at most a few dozen nodes in tests.

#ifndef SPAMMASS_PAGERANK_WALK_ENUMERATION_H_
#define SPAMMASS_PAGERANK_WALK_ENUMERATION_H_

#include <cstdint>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::pagerank {

/// One enumerated walk with its weight.
struct Walk {
  /// Node sequence x = nodes.front() ... y = nodes.back().
  std::vector<graph::NodeId> nodes;
  /// π(W) = Π 1/out(x_i) over the walk's non-final nodes.
  double weight = 1.0;

  uint32_t length() const {
    return static_cast<uint32_t>(nodes.size() - 1);
  }
};

/// Enumerates every walk from x to y of length 1..max_length (the
/// zero-length virtual circuit of the paper is NOT included; add
/// (1−c)·v_x for x == y). Exponential; CHECK-fails if more than
/// `max_walks` would be produced.
std::vector<Walk> EnumerateWalks(const graph::WebGraph& graph,
                                 graph::NodeId x, graph::NodeId y,
                                 uint32_t max_length,
                                 uint64_t max_walks = 1000000);

/// Contribution of x to y truncated at walks of length ≤ max_length:
///   q_y^x ≈ Σ_W c^|W|·π(W)·(1−c)·v_x  (+ the virtual circuit for x == y).
/// Converges to the true contribution as max_length → ∞ (error bounded by
/// c^{max_length+1}·v_x / (1−c) in the worst case).
double WalkSumContribution(const graph::WebGraph& graph, graph::NodeId x,
                           graph::NodeId y, double damping, double vx,
                           uint32_t max_length);

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_WALK_ENUMERATION_H_
