// Runtime-dispatched SIMD backends for the multi-RHS sweep. The kernel
// (kernel.cc) asks this shim for a sweep-range implementation matching the
// resolved (instruction set, precision, edge encoding, lane count); the
// shim returns a hand-vectorized AVX2/NEON routine when the host supports
// it and the width has one, otherwise the portable scalar body from
// simd_sweep_body.h. Dispatch happens once per kernel call — never inside
// the edge loop.
//
// Vector intrinsics are confined to simd_avx2.cc / simd_neon.cc
// (spammass_lint.py `simd-isolation`); each vector routine is
// element-wise per lane, preserving the per-lane accumulation order of the
// scalar body, so vectorization never reassociates a reduction — the only
// numeric divergence from scalar is FMA contraction in the output
// expression, bounded by the equivalence tests.

#ifndef SPAMMASS_PAGERANK_SIMD_H_
#define SPAMMASS_PAGERANK_SIMD_H_

#include <cstdint>

#include "pagerank/simd_sweep_body.h"

namespace spammass::pagerank::simd {

/// Instruction-set tier a sweep can run on.
enum class Level {
  kScalar = 0,
  kAvx2,  // x86-64 AVX2 + FMA
  kNeon,  // AArch64 Advanced SIMD
};

/// Stable lowercase name ("scalar", "avx2", "neon").
const char* LevelToString(Level level);

/// True when the running host can execute `level` (kScalar always can).
bool IsSupported(Level level);

/// Highest supported level on the running host; kScalar when no vector
/// backend applies.
Level Best();

/// Returns the sweep-range routine for (level, lane count k, compressed
/// edge encoding) at the given precision. Unsupported or unvectorized
/// combinations fall back to the scalar body — the returned function is
/// always valid for k in [1, kMaxSweepLanes].
SweepRangeFn<double> PickSweepF64(Level level, uint32_t k, bool compressed);
SweepRangeFn<float> PickSweepF32(Level level, uint32_t k, bool compressed);

}  // namespace spammass::pagerank::simd

#endif  // SPAMMASS_PAGERANK_SIMD_H_
