#include "pagerank/workspace.h"

#include "pagerank/shard_sweep.h"

namespace spammass::pagerank {

SolverWorkspace::SolverWorkspace() = default;

SolverWorkspace::SolverWorkspace(uint32_t num_threads) {
  EnsurePool(num_threads);
}

SolverWorkspace::~SolverWorkspace() = default;

util::ThreadPool* SolverWorkspace::EnsurePool(uint32_t num_threads) {
  if (num_threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_threads_ != num_threads) {
    pool_.reset();  // join the old workers before spawning replacements
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
    pool_threads_ = num_threads;
  }
  return pool_.get();
}

ShardRuntime* SolverWorkspace::EnsureShardRuntime(
    const graph::WebGraph& graph, uint32_t num_shards) {
  if (shard_runtime_ == nullptr ||
      !shard_runtime_->Matches(graph, num_shards)) {
    shard_runtime_ = std::make_unique<ShardRuntime>(graph, num_shards);
  }
  return shard_runtime_.get();
}

}  // namespace spammass::pagerank
