#include "pagerank/workspace.h"

namespace spammass::pagerank {

util::ThreadPool* SolverWorkspace::EnsurePool(uint32_t num_threads) {
  if (num_threads <= 1) return nullptr;
  if (pool_ == nullptr || pool_threads_ != num_threads) {
    pool_.reset();  // join the old workers before spawning replacements
    pool_ = std::make_unique<util::ThreadPool>(num_threads);
    pool_threads_ = num_threads;
  }
  return pool_.get();
}

}  // namespace spammass::pagerank
