// AArch64 Advanced-SIMD (NEON) sweep-range backends — the ARM mirror of
// simd_avx2.cc and the only other translation unit allowed to use vector
// intrinsics (spammass_lint.py `simd-isolation`). NEON is baseline on
// AArch64, so there is no runtime feature check; simd.cc gates dispatch on
// the architecture alone.
//
// Same discipline as the AVX2 backend: registers hold lanes of ONE node,
// edge contributions add element-wise in the scalar body's order, and the
// L1 difference widens float lanes to double before subtracting.

#if defined(__aarch64__)

#include <arm_neon.h>

#include <cstdint>

#include "pagerank/simd_sweep_body.h"

namespace spammass::pagerank::simd {

namespace {

/// K doubles (K ∈ {4, 8, 16}) of one node accumulate in K/2 128-bit
/// registers.
template <uint32_t K, bool Compressed>
void NeonSweepF64(const SweepArgs<double>& args, double* diff_slot,
                  graph::NodeId begin, graph::NodeId end) {
  static_assert(K % 2 == 0 && K <= kMaxSweepLanes);
  constexpr uint32_t kBlocks = K / 2;
  const uint64_t* in_offsets = args.in_offsets;
  const float64x2_t c = vdupq_n_f64(args.c);
  float64x2_t mv[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) mv[b] = vld1q_f64(args.m + b * 2);
  float64x2_t diff[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) diff[b] = vdupq_n_f64(0.0);
  for (graph::NodeId y = begin; y < end; ++y) {
    float64x2_t acc[kBlocks];
    for (uint32_t b = 0; b < kBlocks; ++b) acc[b] = vdupq_n_f64(0.0);
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      graph::NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const graph::NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        const double* row = args.scaled + static_cast<uint64_t>(src) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = vaddq_f64(acc[b], vld1q_f64(row + b * 2));
        }
      }
    } else {
      const graph::NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        const double* row =
            args.scaled + static_cast<uint64_t>(sources[e]) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = vaddq_f64(acc[b], vld1q_f64(row + b * 2));
        }
      }
    }
    const uint64_t base = static_cast<uint64_t>(y) * K;
    for (uint32_t b = 0; b < kBlocks; ++b) {
      const float64x2_t vy = vld1q_f64(args.v + base + b * 2);
      const float64x2_t py = vld1q_f64(args.p + base + b * 2);
      const float64x2_t out = vfmaq_f64(vmulq_f64(c, acc[b]), vy, mv[b]);
      diff[b] = vaddq_f64(diff[b], vabsq_f64(vsubq_f64(out, py)));
      vst1q_f64(args.next + base + b * 2, out);
      if (args.next_scaled != nullptr) {
        vst1q_f64(args.next_scaled + base + b * 2,
                  vmulq_n_f64(out, args.inv[y]));
      }
    }
  }
  for (uint32_t b = 0; b < kBlocks; ++b) {
    vst1q_f64(diff_slot + b * 2, diff[b]);
  }
}

/// K floats (K ∈ {4, 8, 16}) of one node accumulate in K/4 128-bit
/// registers; differences widen each half to double before subtracting.
template <uint32_t K, bool Compressed>
void NeonSweepF32(const SweepArgs<float>& args, double* diff_slot,
                  graph::NodeId begin, graph::NodeId end) {
  static_assert(K % 4 == 0 && K <= kMaxSweepLanes);
  constexpr uint32_t kBlocks = K / 4;
  const uint64_t* in_offsets = args.in_offsets;
  const float32x4_t c = vdupq_n_f32(args.c);
  float32x4_t mv[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) mv[b] = vld1q_f32(args.m + b * 4);
  float64x2_t diff_lo[kBlocks];
  float64x2_t diff_hi[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) {
    diff_lo[b] = vdupq_n_f64(0.0);
    diff_hi[b] = vdupq_n_f64(0.0);
  }
  for (graph::NodeId y = begin; y < end; ++y) {
    float32x4_t acc[kBlocks];
    for (uint32_t b = 0; b < kBlocks; ++b) acc[b] = vdupq_n_f32(0.0f);
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      graph::NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const graph::NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        const float* row = args.scaled + static_cast<uint64_t>(src) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = vaddq_f32(acc[b], vld1q_f32(row + b * 4));
        }
      }
    } else {
      const graph::NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        const float* row = args.scaled + static_cast<uint64_t>(sources[e]) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = vaddq_f32(acc[b], vld1q_f32(row + b * 4));
        }
      }
    }
    const uint64_t base = static_cast<uint64_t>(y) * K;
    for (uint32_t b = 0; b < kBlocks; ++b) {
      const float32x4_t vy = vld1q_f32(args.v + base + b * 4);
      const float32x4_t py = vld1q_f32(args.p + base + b * 4);
      const float32x4_t out = vfmaq_f32(vmulq_f32(c, acc[b]), vy, mv[b]);
      const float64x2_t out_lo = vcvt_f64_f32(vget_low_f32(out));
      const float64x2_t out_hi = vcvt_high_f64_f32(out);
      const float64x2_t p_lo = vcvt_f64_f32(vget_low_f32(py));
      const float64x2_t p_hi = vcvt_high_f64_f32(py);
      diff_lo[b] = vaddq_f64(diff_lo[b], vabsq_f64(vsubq_f64(out_lo, p_lo)));
      diff_hi[b] = vaddq_f64(diff_hi[b], vabsq_f64(vsubq_f64(out_hi, p_hi)));
      vst1q_f32(args.next + base + b * 4, out);
      if (args.next_scaled != nullptr) {
        vst1q_f32(args.next_scaled + base + b * 4,
                  vmulq_n_f32(out, args.inv[y]));
      }
    }
  }
  for (uint32_t b = 0; b < kBlocks; ++b) {
    vst1q_f64(diff_slot + b * 4, diff_lo[b]);
    vst1q_f64(diff_slot + b * 4 + 2, diff_hi[b]);
  }
}

}  // namespace

SweepRangeFn<double> PickNeonSweepF64(uint32_t k, bool compressed) {
  if (compressed) {
    switch (k) {
      case 4:
        return NeonSweepF64<4, true>;
      case 8:
        return NeonSweepF64<8, true>;
      case 16:
        return NeonSweepF64<16, true>;
      default:
        return nullptr;
    }
  }
  switch (k) {
    case 4:
      return NeonSweepF64<4, false>;
    case 8:
      return NeonSweepF64<8, false>;
    case 16:
      return NeonSweepF64<16, false>;
    default:
      return nullptr;
  }
}

SweepRangeFn<float> PickNeonSweepF32(uint32_t k, bool compressed) {
  if (compressed) {
    switch (k) {
      case 4:
        return NeonSweepF32<4, true>;
      case 8:
        return NeonSweepF32<8, true>;
      case 16:
        return NeonSweepF32<16, true>;
      default:
        return nullptr;
    }
  }
  switch (k) {
    case 4:
      return NeonSweepF32<4, false>;
    case 8:
      return NeonSweepF32<8, false>;
    case 16:
      return NeonSweepF32<16, false>;
    default:
      return nullptr;
  }
}

}  // namespace spammass::pagerank::simd

#endif  // defined(__aarch64__)
