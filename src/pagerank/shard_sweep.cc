#include "pagerank/shard_sweep.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pagerank/kernel.h"
#include "util/checksum.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::ShardExchange;
using graph::WebGraph;

namespace {

// Sweep telemetry, cached like solver.cc's counters (registration takes a
// lock, incrementing does not).
obs::Counter* ShardSweepsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("pagerank.shard_sweeps");
  return counter;
}

obs::Counter* ExchangeRowsCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "pagerank.shard_exchange_rows");
  return counter;
}

obs::Counter* BoundaryBytesCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "pagerank.shard_boundary_bytes");
  return counter;
}

obs::Counter* GhostGathersCounter() {
  static obs::Counter* counter = obs::MetricsRegistry::Global().GetCounter(
      "pagerank.shard_ghost_gathers");
  return counter;
}

obs::Histogram* ShardSweepSecondsHistogram() {
  // Log-scale seconds: shards of a cache-blocked sweep land in the
  // microsecond-to-second range across graph sizes.
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "pagerank.shard_sweep_seconds",
          {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0});
  return histogram;
}

/// Bounded structural fingerprint for ShardRuntime::Matches: the first and
/// last 64 in-offset entries. Cheap, and distinguishes any two graphs that
/// agree on (pointer, n, m) by accident of allocator reuse.
uint64_t GraphFingerprint(const WebGraph& graph) {
  const auto offsets = graph.InOffsets();
  util::Fnv1a64 hasher;
  const size_t head = std::min<size_t>(offsets.size(), 64);
  hasher.Update(offsets.data(), head * sizeof(uint64_t));
  if (offsets.size() > head) {
    const size_t tail = std::min<size_t>(offsets.size() - head, 64);
    hasher.Update(offsets.data() + (offsets.size() - tail),
                  tail * sizeof(uint64_t));
  }
  return hasher.digest();
}

/// The kernel's SweepRange (kernel.cc) with exactly one change: the gather
/// walks the plan's shard-local sources instead of graph.Sources(). Same
/// per-lane arithmetic, same accumulation order — specializations only
/// unroll, never reassociate — so a sweep over bitwise-equal inputs yields
/// bitwise-equal outputs.
template <uint32_t K>
void ShardSweepRange(const WebGraph& graph, const NodeId* sources,
                     uint32_t k, const double* v, double c,
                     const double* dangling, const double* p,
                     const double* scaled, double* next, double* next_scaled,
                     double* diff_slot, NodeId begin, NodeId end) {
  const uint32_t lanes = K == 0 ? k : K;
  const double* inv = graph.InvOutDegrees().data();
  const uint64_t* in_offsets = graph.InOffsets().data();
  double m[kernel::kMaxVectorsPerSweep];
  for (uint32_t j = 0; j < lanes; ++j) {
    m[j] = (1.0 - c) + c * dangling[j];
  }
  double diff[kernel::kMaxVectorsPerSweep] = {0.0};
  for (NodeId y = begin; y < end; ++y) {
    double in_sum[kernel::kMaxVectorsPerSweep];
    for (uint32_t j = 0; j < lanes; ++j) in_sum[j] = 0.0;
    for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
      const double* row = scaled + static_cast<uint64_t>(sources[e]) * lanes;
      for (uint32_t j = 0; j < lanes; ++j) in_sum[j] += row[j];
    }
    const double* vrow = v + static_cast<uint64_t>(y) * lanes;
    const double* prow = p + static_cast<uint64_t>(y) * lanes;
    double* nrow = next + static_cast<uint64_t>(y) * lanes;
    const double w = inv[y];
    double* srow = next_scaled + static_cast<uint64_t>(y) * lanes;
    for (uint32_t j = 0; j < lanes; ++j) {
      const double out = c * in_sum[j] + vrow[j] * m[j];
      diff[j] += std::abs(out - prow[j]);
      nrow[j] = out;
      srow[j] = out * w;
    }
  }
  for (uint32_t j = 0; j < lanes; ++j) diff_slot[j] = diff[j];
}

using ShardSweepRangeFn = void (*)(const WebGraph&, const NodeId*, uint32_t,
                                   const double*, double, const double*,
                                   const double*, const double*, double*,
                                   double*, double*, NodeId, NodeId);

ShardSweepRangeFn PickShardSweepRange(uint32_t k) {
  switch (k) {
    case 1:
      return ShardSweepRange<1>;
    case 2:
      return ShardSweepRange<2>;
    case 4:
      return ShardSweepRange<4>;
    case 8:
      return ShardSweepRange<8>;
    case 16:
      return ShardSweepRange<16>;
    default:
      return ShardSweepRange<0>;
  }
}

}  // namespace

ShardRuntime::ShardRuntime(const WebGraph& graph, uint32_t num_shards)
    : graph_(&graph),
      num_nodes_(graph.num_nodes()),
      num_edges_(graph.num_edges()),
      fingerprint_(GraphFingerprint(graph)),
      plan_(graph::ShardPlan::Build(graph, num_shards,
                                    kernel::ChunkSize(graph.num_nodes()))) {
  SPAMMASS_TRACE_SPAN("pagerank.shard_runtime", "shards",
                      static_cast<uint64_t>(num_shards), "ghosts",
                      plan_.total_ghosts());
  obs::MetricsRegistry::Global()
      .GetGauge("pagerank.shard_max_working_set_bytes")
      ->Set(static_cast<double>(plan_.max_working_set_bytes()));
  for (const graph::ShardStats& stats : plan_.stats()) {
    boundary_bytes_per_sweep_ += stats.boundary_bytes;
    ghost_gathers_per_sweep_ += stats.ghost_in_edges;
  }
}

bool ShardRuntime::Matches(const WebGraph& graph, uint32_t num_shards) const {
  return graph_ == &graph && num_nodes_ == graph.num_nodes() &&
         num_edges_ == graph.num_edges() &&
         plan_.num_shards() == num_shards &&
         fingerprint_ == GraphFingerprint(graph);
}

void ShardRuntime::SweepMulti(const WebGraph& graph, uint32_t k,
                              const double* v, double damping,
                              const double* dangling, const double* p,
                              double* scaled, double* next,
                              double* next_scaled,
                              std::vector<double>* partials, double* diffs,
                              util::ThreadPool* pool) const {
  CHECK_GE(k, 1u);
  CHECK_LE(k, kernel::kMaxVectorsPerSweep);
  DCHECK_EQ(num_nodes_, graph.num_nodes());
  const NodeId n = num_nodes_;

  // Phase 1: boundary exchange. Copy each exchanged node's scaled row into
  // its consumer's ghost slots. Exchanges write disjoint slot ranges and
  // only read owned rows [0, n), so the copies parallelize with no
  // ordering concerns — a copy is a copy.
  const std::vector<ShardExchange>& exchanges = plan_.exchanges();
  uint64_t exchange_rows = 0;
  const auto exchange_body = [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const ShardExchange& ex = exchanges[i];
      double* dst = scaled + ex.slot_begin * k;
      for (size_t t = 0; t < ex.nodes.size(); ++t) {
        const double* src =
            scaled + static_cast<uint64_t>(ex.nodes[t]) * k;
        double* out = dst + t * k;
        for (uint32_t j = 0; j < k; ++j) out[j] = src[j];
      }
    }
  };
  if (pool != nullptr) {
    pool->ParallelFor(exchanges.size(), exchange_body);
  } else {
    exchange_body(0, exchanges.size());
  }
  for (const ShardExchange& ex : exchanges) exchange_rows += ex.nodes.size();

  // Phase 2: the sweep itself — the kernel's global chunk decomposition
  // (chunk c of the unsharded kernel is chunk c here, inside one shard by
  // the alignment argument), gathering through sources_local.
  const uint64_t chunks = kernel::NumChunks(n);
  partials->assign(chunks * k, 0.0);
  const ShardSweepRangeFn sweep = PickShardSweepRange(k);
  const NodeId* sources = plan_.sources_local().data();
  // Per-chunk wall time; each worker writes only its own chunk's slot, so
  // no synchronization is needed. Aggregated per shard below (shard
  // boundaries are chunk-aligned, so a chunk belongs to exactly one
  // shard).
  std::vector<double> chunk_seconds(chunks, 0.0);
  kernel::ForEachChunk(pool, n, [&](uint64_t c, uint64_t begin,
                                    uint64_t end) {
    util::WallTimer chunk_timer;
    sweep(graph, sources, k, v, damping, dangling, p, scaled, next,
          next_scaled, partials->data() + c * k, static_cast<NodeId>(begin),
          static_cast<NodeId>(end));
    chunk_seconds[c] = chunk_timer.Seconds();
  });
  for (uint32_t j = 0; j < k; ++j) diffs[j] = 0.0;
  for (uint64_t c = 0; c < chunks; ++c) {
    const double* slot = partials->data() + c * k;
    for (uint32_t j = 0; j < k; ++j) diffs[j] += slot[j];
  }

  // One histogram observation per non-empty shard per sweep: the summed
  // wall time of the shard's chunks (their compute footprint, regardless
  // of which worker ran each chunk).
  obs::Histogram* sweep_seconds = ShardSweepSecondsHistogram();
  const uint64_t chunk_size = kernel::ChunkSize(n);
  for (const graph::ShardRange& range : plan_.ranges()) {
    if (range.size() == 0) continue;
    const uint64_t c_begin = range.begin / chunk_size;
    const uint64_t c_end =
        (static_cast<uint64_t>(range.end) + chunk_size - 1) / chunk_size;
    double shard_seconds = 0.0;
    for (uint64_t c = c_begin; c < c_end && c < chunks; ++c) {
      shard_seconds += chunk_seconds[c];
    }
    sweep_seconds->Observe(shard_seconds);
  }

  ShardSweepsCounter()->Increment();
  ExchangeRowsCounter()->Add(exchange_rows);
  BoundaryBytesCounter()->Add(boundary_bytes_per_sweep_);
  GhostGathersCounter()->Add(ghost_gathers_per_sweep_);
}

}  // namespace spammass::pagerank
