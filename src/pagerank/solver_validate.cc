#include "pagerank/solver_validate.h"

#include <algorithm>
#include <cmath>
#include <string>

namespace spammass::pagerank {

using util::Status;

Status ValidateJumpValues(const std::vector<double>& values,
                          bool require_stochastic, double tolerance) {
  if (values.empty()) {
    return Status::FailedPrecondition("jump vector is empty");
  }
  double norm = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    const double v = values[i];
    if (!std::isfinite(v)) {
      return Status::FailedPrecondition(
          "jump vector entry " + std::to_string(i) + " is not finite");
    }
    if (v < 0.0) {
      return Status::FailedPrecondition(
          "jump vector entry " + std::to_string(i) + " is negative (" +
          std::to_string(v) + ")");
    }
    norm += v;
  }
  if (norm <= 0.0) {
    return Status::FailedPrecondition("jump vector norm is zero");
  }
  if (norm > 1.0 + tolerance) {
    return Status::FailedPrecondition(
        "jump vector norm " + std::to_string(norm) +
        " exceeds 1 (Section 2.2 requires 0 < ||v|| <= 1)");
  }
  if (require_stochastic && std::abs(norm - 1.0) > tolerance) {
    return Status::FailedPrecondition(
        "jump vector is not stochastic: ||v|| = " + std::to_string(norm) +
        " but a probability distribution (Eq. 3 regular PageRank) was "
        "required");
  }
  return Status::OK();
}

Status ValidateJumpVector(const JumpVector& jump, bool require_stochastic,
                          double tolerance) {
  return ValidateJumpValues(jump.values(), require_stochastic, tolerance);
}

Status ValidateSolverResult(const graph::WebGraph& graph,
                            const JumpVector& jump,
                            const SolverOptions& options,
                            const PageRankResult& result, double tolerance) {
  const size_t n = graph.num_nodes();
  if (result.scores.size() != n) {
    return Status::FailedPrecondition(
        "solution has " + std::to_string(result.scores.size()) +
        " scores for " + std::to_string(n) + " nodes");
  }
  if (jump.n() != n) {
    return Status::FailedPrecondition("jump vector dimension mismatch");
  }

  // Unconverged iterates and SOR over-relaxation can sit slightly outside
  // the analytic bounds; widen the acceptance band by the final residual.
  const double slack = tolerance + result.residual;

  double mass = 0;
  for (size_t i = 0; i < n; ++i) {
    const double p = result.scores[i];
    if (!std::isfinite(p)) {
      return Status::FailedPrecondition(
          "score " + std::to_string(i) + " is not finite");
    }
    if (p < -slack) {
      return Status::FailedPrecondition(
          "score " + std::to_string(i) + " is negative (" + std::to_string(p) +
          "); PageRank solutions are non-negative");
    }
    mass += p;
  }

  // Mass conservation. The geometric-series solution of Eq. 3 satisfies
  // (1−c)||v|| ≤ ||p||₁ ≤ ||v|| for every dangling policy (the transition
  // matrix never amplifies L1 mass); power iteration explicitly normalizes
  // to ||p||₁ = 1.
  const double c = options.damping;
  const double vnorm =
      options.method == Method::kPowerIteration ? 1.0 : jump.Norm();
  if (mass > vnorm + slack) {
    return Status::FailedPrecondition(
        "total PageRank mass " + std::to_string(mass) +
        " exceeds the jump-vector norm " + std::to_string(vnorm) +
        "; mass is never created (Eq. 3)");
  }
  if (mass < (1.0 - c) * vnorm - slack) {
    return Status::FailedPrecondition(
        "total PageRank mass " + std::to_string(mass) +
        " fell below the teleportation floor (1-c)||v|| = " +
        std::to_string((1.0 - c) * vnorm));
  }
  if (options.method == Method::kPowerIteration &&
      std::abs(mass - 1.0) > slack) {
    return Status::FailedPrecondition(
        "power-iteration solution has mass " + std::to_string(mass) +
        " != 1 despite explicit normalization");
  }
  if (options.dangling == DanglingPolicy::kRedistributeToJump &&
      result.converged && std::abs(jump.Norm() - 1.0) <= tolerance &&
      std::abs(mass - 1.0) > slack) {
    return Status::FailedPrecondition(
        "redistributing solver converged with mass " + std::to_string(mass) +
        " != 1; a stochastic jump vector conserves mass exactly");
  }
  return Status::OK();
}

Status ValidateMassDecomposition(const std::vector<double>& total,
                                 const std::vector<double>& core_part,
                                 const std::vector<double>& residual,
                                 double tolerance) {
  if (core_part.size() != total.size() || residual.size() != total.size()) {
    return Status::FailedPrecondition(
        "mass decomposition sizes disagree: p has " +
        std::to_string(total.size()) + ", p_core " +
        std::to_string(core_part.size()) + ", residual " +
        std::to_string(residual.size()));
  }
  for (size_t i = 0; i < total.size(); ++i) {
    // Entrywise p = p_core + p_residual (Section 4); scale the tolerance by
    // the magnitudes involved so large graphs do not trip rounding noise.
    const double lhs = total[i];
    const double rhs = core_part[i] + residual[i];
    const double scale =
        std::max({1.0, std::abs(lhs), std::abs(core_part[i]),
                  std::abs(residual[i])});
    if (std::abs(lhs - rhs) > tolerance * scale) {
      return Status::FailedPrecondition(
          "mass decomposition violated at node " + std::to_string(i) +
          ": p = " + std::to_string(lhs) + " but p_core + residual = " +
          std::to_string(rhs));
    }
  }
  return Status::OK();
}

}  // namespace spammass::pagerank
