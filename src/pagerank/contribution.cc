#include "pagerank/contribution.h"

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::WebGraph;
using util::Result;
using util::Status;

Result<PageRankResult> ComputeSetContribution(
    const WebGraph& graph, const std::vector<NodeId>& set,
    const SolverOptions& options, SolverWorkspace* workspace) {
  if (set.empty()) {
    // The contribution of the empty set is identically zero.
    PageRankResult r;
    r.scores.assign(graph.num_nodes(), 0.0);
    r.converged = true;
    return r;
  }
  return ComputePageRank(graph, JumpVector::Core(graph.num_nodes(), set),
                         options, workspace);
}

Result<PageRankResult> ComputeNodeContribution(const WebGraph& graph,
                                               NodeId x,
                                               const SolverOptions& options,
                                               SolverWorkspace* workspace) {
  if (x >= graph.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  return ComputePageRank(
      graph,
      JumpVector::SingleNode(graph.num_nodes(), x, 1.0 / graph.num_nodes()),
      options, workspace);
}

Result<double> LinkContribution(const WebGraph& graph, NodeId from, NodeId to,
                                const SolverOptions& options) {
  if (from >= graph.num_nodes() || to >= graph.num_nodes()) {
    return Status::InvalidArgument("node id out of range");
  }
  if (!graph.HasEdge(from, to)) {
    return Status::NotFound("no such link");
  }
  auto with = ComputeUniformPageRank(graph, options);
  if (!with.ok()) return with.status();

  // Rebuild the graph without the (from, to) link.
  graph::GraphBuilder builder(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      if (u == from && v == to) continue;
      builder.AddEdge(u, v);
    }
  }
  WebGraph without_link = builder.Build();
  auto without = ComputeUniformPageRank(without_link, options);
  if (!without.ok()) return without.status();
  return with.value().scores[to] - without.value().scores[to];
}

}  // namespace spammass::pagerank
