#include "pagerank/solver.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pagerank/kernel.h"
#include "pagerank/shard_sweep.h"
#include "pagerank/solver_validate.h"
#include "util/debug.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::WebGraph;
using util::Result;
using util::Status;

double L1Norm(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += std::abs(x);
  return sum;
}

SolverOptions SolverOptions::BenchPreset() {
  SolverOptions options;
  options.method = Method::kGaussSeidel;
  options.tolerance = 1e-10;
  options.max_iterations = 400;
  return options;
}

const char* MethodToString(Method method) {
  switch (method) {
    case Method::kJacobi:
      return "jacobi";
    case Method::kGaussSeidel:
      return "gauss-seidel";
    case Method::kSor:
      return "sor";
    case Method::kPowerIteration:
      return "power-iteration";
  }
  return "unknown";
}

Result<Method> MethodFromString(std::string_view name) {
  if (name == "jacobi") return Method::kJacobi;
  if (name == "gauss-seidel") return Method::kGaussSeidel;
  if (name == "sor") return Method::kSor;
  if (name == "power-iteration") return Method::kPowerIteration;
  return Status::InvalidArgument("unknown solver method: " +
                                 std::string(name));
}

const char* SimdPolicyToString(SimdPolicy policy) {
  switch (policy) {
    case SimdPolicy::kScalar:
      return "scalar";
    case SimdPolicy::kAuto:
      return "auto";
    case SimdPolicy::kAvx2:
      return "avx2";
    case SimdPolicy::kNeon:
      return "neon";
  }
  return "unknown";
}

Result<SimdPolicy> SimdPolicyFromString(std::string_view name) {
  if (name == "scalar") return SimdPolicy::kScalar;
  if (name == "auto") return SimdPolicy::kAuto;
  if (name == "avx2") return SimdPolicy::kAvx2;
  if (name == "neon") return SimdPolicy::kNeon;
  return Status::InvalidArgument("unknown simd policy: " + std::string(name));
}

const char* SweepPrecisionToString(SweepPrecision precision) {
  switch (precision) {
    case SweepPrecision::kFloat64:
      return "f64";
    case SweepPrecision::kMixedF32:
      return "mixed-f32";
  }
  return "unknown";
}

Result<SweepPrecision> SweepPrecisionFromString(std::string_view name) {
  if (name == "f64") return SweepPrecision::kFloat64;
  if (name == "mixed-f32") return SweepPrecision::kMixedF32;
  return Status::InvalidArgument("unknown sweep precision: " +
                                 std::string(name));
}

std::vector<double> ScaledScores(const std::vector<double>& scores,
                                 double damping) {
  CHECK_GT(damping, 0.0);
  CHECK_LT(damping, 1.0);
  double factor = static_cast<double>(scores.size()) / (1.0 - damping);
  std::vector<double> out(scores);
  for (double& x : out) x *= factor;
  return out;
}

SolveStats SolveStats::FromResult(const PageRankResult& result) {
  SolveStats stats;
  stats.iterations = result.iterations;
  stats.residual = result.residual;
  stats.converged = result.converged;
  stats.residual_curve = result.residual_history;
  return stats;
}

namespace {

// Solver telemetry. Counters increment at the same granularity the
// workspace's RecordSolve uses (once per batch/solve), so the metrics
// snapshot's pagerank.solves always equals a manifest's total_solves.
// Pointers are cached — registration takes a lock, incrementing does not.
obs::Counter* SolvesCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("pagerank.solves");
  return counter;
}

obs::Counter* SweepsCounter() {
  static obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("pagerank.sweeps");
  return counter;
}

obs::Histogram* IterationsHistogram() {
  static obs::Histogram* histogram =
      obs::MetricsRegistry::Global().GetHistogram(
          "pagerank.solve_iterations",
          {1, 2, 5, 10, 20, 50, 100, 200, 400, 800});
  return histogram;
}

/// Maps the validated SolverOptions onto a kernel sweep variant. kAuto
/// resolves to the best level the host supports; a forced-but-unsupported
/// level was already rejected by CheckGraphAndOptions.
kernel::SweepVariant ResolveVariant(const SolverOptions& opt) {
  kernel::SweepVariant variant;
  switch (opt.simd) {
    case SimdPolicy::kScalar:
      variant.level = simd::Level::kScalar;
      break;
    case SimdPolicy::kAuto:
      variant.level = simd::Best();
      break;
    case SimdPolicy::kAvx2:
      variant.level = simd::Level::kAvx2;
      break;
    case SimdPolicy::kNeon:
      variant.level = simd::Level::kNeon;
      break;
  }
  variant.compressed = opt.compressed_gather;
  return variant;
}

/// Sum of scores over dangling nodes. Scans the graph's precomputed
/// dangling-node list (ascending, so the addition order matches the seed
/// full-scan version bit for bit) instead of testing all n nodes.
double DanglingSum(const WebGraph& graph, const std::vector<double>& p) {
  double sum = 0;
  for (NodeId x : graph.DanglingNodes()) sum += p[x];
  return sum;
}

/// Extracts lane `j` of the interleaved (n × k) buffer `flat` into `out`.
void ExtractLane(const std::vector<double>& flat, uint64_t n, uint32_t k,
                 uint32_t j, std::vector<double>* out) {
  out->resize(n);
  for (uint64_t x = 0; x < n; ++x) (*out)[x] = flat[x * k + j];
}

/// Removes the columns NOT listed in `keep` (ascending) from the
/// interleaved (n × k) buffer, packing the survivors to width keep.size().
void CompactLanes(std::vector<double>* flat, uint64_t n, uint32_t k,
                  const std::vector<uint32_t>& keep) {
  const auto kk = static_cast<uint32_t>(keep.size());
  for (uint64_t x = 0; x < n; ++x) {
    const double* in = flat->data() + x * k;
    double* out = flat->data() + x * kk;
    for (uint32_t j = 0; j < kk; ++j) out[j] = in[keep[j]];
  }
}

/// Mixed-precision pre-phase (SweepPrecision::kMixedF32): runs float32
/// sweeps — half the lane memory traffic — until every lane's
/// float64-measured residual clears max(f32_switch_tolerance, tolerance)
/// or stops improving, then hands the widened iterate back to the float64
/// loop. No lane is ever marked converged here (only float64 sweeps decide
/// convergence), no lane is compacted (the phase is short), and the budget
/// of max_iterations − 1 guarantees at least one float64 refinement sweep.
/// Returns the number of sweeps spent, which the caller uses as the
/// float64 loop's starting iteration index; per-lane iteration counts and
/// residual history are updated in place.
int MixedPrecisionPrePhase(const WebGraph& graph, uint32_t k, uint64_t n,
                           const SolverOptions& opt,
                           const kernel::SweepVariant& variant,
                           bool redistribute, std::vector<double>* cur,
                           const std::vector<double>& vflat,
                           std::vector<PageRankResult>* results,
                           SolverWorkspace* ws, util::ThreadPool* pool) {
  const double switch_tol =
      std::max(opt.f32_switch_tolerance, opt.tolerance);
  std::vector<float>& fcur = ws->iterate_f32();
  std::vector<float>& fnext = ws->next_f32();
  std::vector<float>& fscaled = ws->scaled_f32();
  std::vector<float>& fscaled_next = ws->scaled_next_f32();
  std::vector<float>& fvflat = ws->jump_flat_f32();
  std::vector<float>& finv = ws->inv_out_f32();
  fcur.resize(n * k);
  fnext.resize(n * k);
  fscaled.resize(n * k);
  fscaled_next.resize(n * k);
  fvflat.resize(n * k);
  kernel::InvOutDegreesF32(graph, &finv);
  for (uint64_t i = 0; i < n * k; ++i) {
    fcur[i] = static_cast<float>((*cur)[i]);
    fvflat[i] = static_cast<float>(vflat[i]);
  }
  kernel::ScaleByInvOutDegreeF32(static_cast<uint32_t>(n), k, finv.data(),
                                 fcur.data(), fscaled.data(), pool);

  std::array<double, kernel::kMaxVectorsPerSweep> dangling{};
  std::array<double, kernel::kMaxVectorsPerSweep> diffs{};
  std::array<double, kernel::kMaxVectorsPerSweep> prev_diffs{};
  prev_diffs.fill(std::numeric_limits<double>::infinity());
  if (!redistribute) dangling.fill(0.0);

  int used = 0;
  // max_iterations − 1 budget: the float64 loop always gets ≥ 1 sweep.
  for (; used < opt.max_iterations - 1; ++used) {
    if (redistribute) {
      kernel::DanglingSumsF32(graph, k, fcur.data(),
                              &ws->dangling_partials(), dangling.data(),
                              pool);
    }
    kernel::WeightedJacobiSweepMultiF32(
        graph, k, fvflat.data(), opt.damping, dangling.data(), finv.data(),
        fcur.data(), fscaled.data(), fnext.data(), fscaled_next.data(),
        &ws->node_partials(), diffs.data(), variant, pool);
    fcur.swap(fnext);
    fscaled.swap(fscaled_next);
    SweepsCounter()->Increment();

    bool all_below = true;
    bool all_stalled = true;
    for (uint32_t j = 0; j < k; ++j) {
      PageRankResult& r = (*results)[j];
      r.iterations = used + 1;
      r.residual = diffs[j];
      if (opt.track_residuals) r.residual_history.push_back(diffs[j]);
      if (diffs[j] >= switch_tol) all_below = false;
      // A lane still shaving ≥ 1% off its residual per sweep is making
      // float32-worthy progress; once every lane stalls, float32 has done
      // all it can and the float64 phase takes over.
      if (diffs[j] < 0.99 * prev_diffs[j]) all_stalled = false;
      prev_diffs[j] = diffs[j];
    }
    if (all_below || all_stalled) {
      ++used;
      break;
    }
  }
  for (uint64_t i = 0; i < n * k; ++i) {
    (*cur)[i] = static_cast<double>(fcur[i]);
  }
  return used;
}

/// Fused Jacobi solve (Algorithm 1) for a batch of 1..kMaxVectorsPerSweep
/// jump vectors: all in-flight lanes advance through one CSR traversal per
/// sweep. Each lane converges independently; a converged lane's scores are
/// extracted immediately and the lane is compacted out of the interleaved
/// working set, so finished vectors cost nothing while the rest keep
/// sweeping. Lane arithmetic is independent of the lane count, so lane j's
/// output is bit-identical to a standalone solve with jumps[j].
std::vector<PageRankResult> SolveJacobiBatch(
    const WebGraph& graph, const std::vector<const JumpVector*>& jumps,
    const SolverOptions& opt, SolverWorkspace* ws) {
  const auto k = static_cast<uint32_t>(jumps.size());
  const uint64_t n = graph.num_nodes();
  SPAMMASS_TRACE_SPAN("pagerank.solve", "method", "jacobi", "lanes", k);
  util::ThreadPool* pool = ws->EnsurePool(opt.num_threads);

  // Sharded mode (opt.shards > 1): the sweeps run through a cached
  // ShardRuntime, and the two scaled buffers grow a ghost region the
  // exchange phase refreshes every sweep. Everything else — seeding,
  // convergence, lane compaction — is shard-oblivious, because rows
  // [0, n) of every buffer mean exactly what they mean unsharded.
  ShardRuntime* shard_rt =
      opt.shards > 1 ? ws->EnsureShardRuntime(graph, opt.shards) : nullptr;
  const uint64_t scaled_rows =
      shard_rt != nullptr ? shard_rt->extended_rows() : n;

  std::vector<double>& cur = ws->iterate();
  std::vector<double>& next = ws->next();
  std::vector<double>& scaled = ws->scaled();
  std::vector<double>& scaled_next = ws->scaled_next();
  std::vector<double>& vflat = ws->jump_flat();
  cur.resize(n * k);
  next.resize(n * k);
  scaled.resize(scaled_rows * k);
  scaled_next.resize(scaled_rows * k);
  vflat.resize(n * k);

  for (uint64_t x = 0; x < n; ++x) {
    for (uint32_t j = 0; j < k; ++j) {
      vflat[x * k + j] = (*jumps[j])[static_cast<NodeId>(x)];
    }
  }
  // Algorithm 1: p[0] <- v.
  std::copy(vflat.begin(), vflat.end(), cur.begin());

  const bool redistribute =
      opt.dangling == DanglingPolicy::kRedistributeToJump;
  const kernel::SweepVariant variant = ResolveVariant(opt);
  std::array<double, kernel::kMaxVectorsPerSweep> dangling{};
  std::array<double, kernel::kMaxVectorsPerSweep> diffs{};

  std::vector<PageRankResult> results(k);
  // lane_ids[j] = index into `results` of in-flight lane j.
  std::vector<uint32_t> lane_ids(k);
  for (uint32_t j = 0; j < k; ++j) lane_ids[j] = j;

  // Mixed precision: burn down the bulk of the residual in float32 first;
  // the float64 loop below then starts at the pre-phase's iteration count.
  int start_iter = 0;
  if (opt.precision == SweepPrecision::kMixedF32) {
    start_iter = MixedPrecisionPrePhase(graph, k, n, opt, variant,
                                        redistribute, &cur, vflat, &results,
                                        ws, pool);
  }

  uint32_t live = k;
  // Seed the scaled iterate once; each sweep then emits next_scaled
  // alongside next (same values ScaleByInvOutDegree would produce), so the
  // full-pass rescale never runs again.
  kernel::ScaleByInvOutDegree(graph, live, cur.data(), scaled.data(), pool);
  if (!redistribute) dangling.fill(0.0);
  for (int i = start_iter; i < opt.max_iterations && live > 0; ++i) {
    if (redistribute) {
      kernel::DanglingSums(graph, live, cur.data(), &ws->dangling_partials(),
                           dangling.data(), pool);
    }
    if (shard_rt != nullptr) {
      shard_rt->SweepMulti(graph, live, vflat.data(), opt.damping,
                           dangling.data(), cur.data(), scaled.data(),
                           next.data(), scaled_next.data(),
                           &ws->node_partials(), diffs.data(), pool);
    } else {
      kernel::WeightedJacobiSweepMulti(
          graph, live, vflat.data(), opt.damping, dangling.data(),
          cur.data(), scaled.data(), next.data(), scaled_next.data(),
          &ws->node_partials(), diffs.data(), variant, pool);
    }
    cur.swap(next);
    scaled.swap(scaled_next);
    SweepsCounter()->Increment();

    std::vector<uint32_t> keep;
    keep.reserve(live);
    for (uint32_t j = 0; j < live; ++j) {
      PageRankResult& r = results[lane_ids[j]];
      r.iterations = i + 1;
      r.residual = diffs[j];
      if (opt.track_residuals) r.residual_history.push_back(diffs[j]);
      if (diffs[j] < opt.tolerance) {
        r.converged = true;
        ExtractLane(cur, n, live, j, &r.scores);
      } else {
        keep.push_back(j);
      }
    }
    if (keep.size() < live) {
      // Compact the surviving lanes; the dropped ones stop costing sweeps.
      CompactLanes(&cur, n, live, keep);
      CompactLanes(&scaled, n, live, keep);
      CompactLanes(&vflat, n, live, keep);
      for (uint32_t j = 0; j < keep.size(); ++j) {
        lane_ids[j] = lane_ids[keep[j]];
      }
      live = static_cast<uint32_t>(keep.size());
    }
  }
  // Lanes that hit the iteration cap without converging.
  for (uint32_t j = 0; j < live; ++j) {
    ExtractLane(cur, n, live, j, &results[lane_ids[j]].scores);
  }
  ws->RecordSolve();
  SolvesCounter()->Increment();
  for (const PageRankResult& r : results) {
    IterationsHistogram()->Observe(r.iterations);
  }
  return results;
}

PageRankResult SolveJacobi(const WebGraph& graph, const JumpVector& jump,
                           const SolverOptions& opt, SolverWorkspace* ws) {
  std::vector<const JumpVector*> jumps = {&jump};
  std::vector<PageRankResult> results =
      SolveJacobiBatch(graph, jumps, opt, ws);
  return std::move(results.front());
}

/// Gauss-Seidel / SOR sweeps (omega == 1 is plain Gauss-Seidel). In-place
/// updates force a sequential sweep, but the inner gather still uses the
/// cached inverse out-degrees (multiply instead of divide) and the initial
/// dangling sum scans the cached dangling list.
PageRankResult SolveGaussSeidel(const WebGraph& graph, const JumpVector& jump,
                                const SolverOptions& opt, double omega,
                                SolverWorkspace* ws) {
  SPAMMASS_TRACE_SPAN("pagerank.solve", "method",
                      omega == 1.0 ? "gauss-seidel" : "sor");
  PageRankResult result;
  result.scores = jump.values();
  std::vector<double>& p = result.scores;
  const double c = opt.damping;
  const auto inv_out = graph.InvOutDegrees();
  const bool redistribute =
      opt.dangling == DanglingPolicy::kRedistributeToJump;
  double dangling = redistribute ? DanglingSum(graph, p) : 0.0;
  for (int i = 0; i < opt.max_iterations; ++i) {
    double diff = 0;
    for (NodeId y = 0; y < graph.num_nodes(); ++y) {
      double in_sum = 0;
      for (NodeId x : graph.InNeighbors(y)) {
        in_sum += p[x] * inv_out[x];
      }
      const double vy = jump[y];
      double next;
      if (redistribute) {
        const bool y_dangling = graph.IsDangling(y);
        // Exclude y's own (old) dangling contribution and solve the scalar
        // equation p_y = c·(in_sum + v_y·(D_excl + p_y·[y dangling])) +
        // (1−c)·v_y for p_y exactly.
        double d_excl = dangling - (y_dangling ? p[y] : 0.0);
        double numer = c * (in_sum + vy * d_excl) + (1.0 - c) * vy;
        if (y_dangling) {
          double denom = 1.0 - c * vy;
          next = denom > 0 ? numer / denom : numer;
          next = (1.0 - omega) * p[y] + omega * next;
          dangling = d_excl + next;
        } else {
          next = (1.0 - omega) * p[y] + omega * numer;
        }
      } else {
        next = (1.0 - omega) * p[y] +
               omega * (c * in_sum + (1.0 - c) * vy);
      }
      diff += std::abs(next - p[y]);
      p[y] = next;
    }
    result.iterations = i + 1;
    result.residual = diff;
    SweepsCounter()->Increment();
    if (opt.track_residuals) result.residual_history.push_back(diff);
    if (diff < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  ws->RecordSolve();
  SolvesCounter()->Increment();
  IterationsHistogram()->Observe(result.iterations);
  return result;
}

/// Power iteration on the stochasticized matrix T″ (Eq. 1). Requires a
/// normalizable jump vector; the result is the stationary distribution
/// (‖p‖₁ = 1) of the random walk with teleportation to v/‖v‖. The sweep,
/// the dangling sum, the norm guard, and the residual all run through the
/// deterministic kernel, so the method parallelizes with bit-identical
/// output for every thread count.
PageRankResult SolvePowerIteration(const WebGraph& graph,
                                   const JumpVector& jump,
                                   const SolverOptions& opt,
                                   SolverWorkspace* ws) {
  SPAMMASS_TRACE_SPAN("pagerank.solve", "method", "power-iteration");
  PageRankResult result;
  const uint32_t n = graph.num_nodes();
  const double c = opt.damping;
  const kernel::SweepVariant variant = ResolveVariant(opt);
  util::ThreadPool* pool = ws->EnsurePool(opt.num_threads);

  // Normalize the jump distribution.
  std::vector<double>& v = ws->jump_flat();
  v = jump.values();
  double vnorm = 0;
  for (double x : v) vnorm += x;
  for (double& x : v) x /= vnorm;

  std::vector<double>& p = ws->iterate();
  std::vector<double>& next = ws->next();
  std::vector<double>& scaled = ws->scaled();
  p.assign(n, 1.0 / n);
  next.assign(n, 0.0);
  scaled.resize(n);

  for (int i = 0; i < opt.max_iterations; ++i) {
    kernel::ScaleByInvOutDegree(graph, 1, p.data(), scaled.data(), pool);
    double dangling = 0;
    kernel::DanglingSums(graph, 1, p.data(), &ws->dangling_partials(),
                         &dangling, pool);
    // ‖p‖ stays 1, so the teleport term is (1−c)·v·1ᵀp = (1−c)·v.
    double sweep_diff = 0;  // pre-normalization; the residual below is used
    kernel::WeightedJacobiSweepMulti(graph, 1, v.data(), c, &dangling,
                                     p.data(), scaled.data(), next.data(),
                                     /*next_scaled=*/nullptr,
                                     &ws->node_partials(), &sweep_diff,
                                     variant, pool);
    // Guard against numerical drift of the norm.
    const double norm = kernel::DeterministicSum(
        pool, n,
        [&next](uint64_t begin, uint64_t end) {
          double s = 0;
          for (uint64_t x = begin; x < end; ++x) s += std::abs(next[x]);
          return s;
        },
        &ws->reduce_partials());
    kernel::ForEachChunk(pool, n,
                         [&next, norm](uint64_t, uint64_t begin,
                                       uint64_t end) {
                           for (uint64_t x = begin; x < end; ++x) {
                             next[x] /= norm;
                           }
                         });
    const double diff = kernel::DeterministicSum(
        pool, n,
        [&next, &p](uint64_t begin, uint64_t end) {
          double s = 0;
          for (uint64_t x = begin; x < end; ++x) {
            s += std::abs(next[x] - p[x]);
          }
          return s;
        },
        &ws->reduce_partials());
    p.swap(next);
    result.iterations = i + 1;
    result.residual = diff;
    SweepsCounter()->Increment();
    if (opt.track_residuals) result.residual_history.push_back(diff);
    if (diff < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  // Copy (not move): p aliases the workspace's reusable iterate buffer.
  result.scores.assign(p.begin(), p.end());
  ws->RecordSolve();
  SolvesCounter()->Increment();
  IterationsHistogram()->Observe(result.iterations);
  return result;
}

/// Argument checks shared by the single- and multi-vector entry points.
Status CheckGraphAndOptions(const WebGraph& graph,
                            const SolverOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("PageRank on an empty graph");
  }
  if (!(options.damping > 0.0) || !(options.damping < 1.0)) {
    return Status::InvalidArgument("damping factor must lie in (0, 1)");
  }
  if (options.tolerance < 0.0 || options.max_iterations <= 0) {
    return Status::InvalidArgument("bad tolerance or iteration cap");
  }
  if (options.method == Method::kSor &&
      (!(options.sor_omega > 0.0) || !(options.sor_omega < 2.0))) {
    return Status::InvalidArgument("sor_omega must lie in (0, 2)");
  }
  // Forcing a specific SIMD level demands host support; kAuto degrades
  // gracefully and kScalar always works. (Gauss-Seidel/SOR sweeps are
  // sequential and simply ignore the policy.)
  if (options.simd == SimdPolicy::kAvx2 &&
      !simd::IsSupported(simd::Level::kAvx2)) {
    return Status::InvalidArgument("simd policy avx2 forced on a host "
                                   "without AVX2+FMA support");
  }
  if (options.simd == SimdPolicy::kNeon &&
      !simd::IsSupported(simd::Level::kNeon)) {
    return Status::InvalidArgument(
        "simd policy neon forced on a non-AArch64 host");
  }
  if (options.precision == SweepPrecision::kMixedF32 &&
      options.method != Method::kJacobi) {
    return Status::InvalidArgument(
        "mixed-f32 precision requires the Jacobi method");
  }
  if (options.precision == SweepPrecision::kMixedF32 &&
      !(options.f32_switch_tolerance >= 0.0)) {
    return Status::InvalidArgument("f32_switch_tolerance must be >= 0");
  }
  if (options.shards < 1) {
    return Status::InvalidArgument("shards must be >= 1");
  }
  // Sharded sweeps exist to make the bit-exact reference scale; the
  // vectorized / narrowed / compressed sweep bodies have no shard-local
  // gather, so combining them is rejected rather than silently unsharded.
  // Sequential Gauss-Seidel/SOR ignore shards (like num_threads).
  if (options.shards > 1 && options.method == Method::kPowerIteration) {
    return Status::InvalidArgument(
        "shards > 1 supports the Jacobi method only");
  }
  if (options.shards > 1 && options.method == Method::kJacobi) {
    if (options.simd != SimdPolicy::kScalar) {
      return Status::InvalidArgument(
          "shards > 1 requires the scalar simd policy");
    }
    if (options.precision != SweepPrecision::kFloat64) {
      return Status::InvalidArgument("shards > 1 requires f64 precision");
    }
    if (options.compressed_gather) {
      return Status::InvalidArgument(
          "shards > 1 is incompatible with compressed_gather");
    }
  }
  if (options.compressed_gather) {
    if (options.method != Method::kJacobi &&
        options.method != Method::kPowerIteration) {
      return Status::InvalidArgument(
          "compressed_gather requires the Jacobi or power-iteration method");
    }
    if (!graph.has_compressed_in()) {
      return Status::FailedPrecondition(
          "compressed_gather requires a graph with a compressed "
          "in-adjacency (WebGraph::BuildCompressedInAdjacency)");
    }
  }
  return Status::OK();
}

/// Per-jump-vector argument checks.
Status CheckJump(const WebGraph& graph, const JumpVector& jump) {
  if (jump.n() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "jump vector dimension does not match the graph");
  }
  double norm = jump.Norm();
  if (norm <= 0.0 || norm > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "jump vector norm must satisfy 0 < ||v|| <= 1");
  }
  // Entry invariants beyond the cheap argument checks above: the jump
  // vector must be entrywise non-negative and finite. O(n), debug only.
  DCHECK_OK(ValidateJumpVector(jump));
  return Status::OK();
}

/// Dispatches one validated solve through `ws` (never null here).
PageRankResult SolveDispatch(const WebGraph& graph, const JumpVector& jump,
                             const SolverOptions& options,
                             SolverWorkspace* ws) {
  switch (options.method) {
    case Method::kJacobi:
      return SolveJacobi(graph, jump, options, ws);
    case Method::kGaussSeidel:
      return SolveGaussSeidel(graph, jump, options, /*omega=*/1.0, ws);
    case Method::kSor:
      return SolveGaussSeidel(graph, jump, options, options.sor_omega, ws);
    case Method::kPowerIteration:
      return SolvePowerIteration(graph, jump, options, ws);
  }
  return PageRankResult{};
}

}  // namespace

Result<PageRankResult> ComputePageRank(const WebGraph& graph,
                                       const JumpVector& jump,
                                       const SolverOptions& options,
                                       SolverWorkspace* workspace) {
  SolverWorkspace local;
  SolverWorkspace* ws = workspace != nullptr ? workspace : &local;
  SPAMMASS_RETURN_NOT_OK(CheckGraphAndOptions(graph, options));
  SPAMMASS_RETURN_NOT_OK(CheckJump(graph, jump));
  PageRankResult result = SolveDispatch(graph, jump, options, ws);
  if (result.scores.empty()) return Status::Internal("unknown method");
  // Post-conditions (non-negativity, mass conservation). O(n), debug only.
  DCHECK_OK(ValidateSolverResult(graph, jump, options, result));
  return result;
}

Result<PageRankResult> ComputePageRank(const WebGraph& graph,
                                       const JumpVector& jump,
                                       const SolverOptions& options) {
  return ComputePageRank(graph, jump, options, nullptr);
}

Result<std::vector<PageRankResult>> ComputePageRankMulti(
    const WebGraph& graph, const std::vector<JumpVector>& jumps,
    const SolverOptions& options, SolverWorkspace* workspace) {
  if (jumps.empty()) {
    return Status::InvalidArgument("multi-solve needs at least one jump");
  }
  SolverWorkspace local;
  SolverWorkspace* ws = workspace != nullptr ? workspace : &local;
  SPAMMASS_RETURN_NOT_OK(CheckGraphAndOptions(graph, options));
  for (const JumpVector& jump : jumps) {
    SPAMMASS_RETURN_NOT_OK(CheckJump(graph, jump));
  }

  std::vector<PageRankResult> results;
  results.reserve(jumps.size());
  if (options.method == Method::kJacobi) {
    // Fused multi-RHS path, in batches of at most kMaxVectorsPerSweep.
    for (size_t base = 0; base < jumps.size();
         base += kernel::kMaxVectorsPerSweep) {
      const size_t batch_end =
          std::min(base + kernel::kMaxVectorsPerSweep, jumps.size());
      std::vector<const JumpVector*> batch;
      batch.reserve(batch_end - base);
      for (size_t j = base; j < batch_end; ++j) batch.push_back(&jumps[j]);
      std::vector<PageRankResult> batch_results =
          SolveJacobiBatch(graph, batch, options, ws);
      for (PageRankResult& r : batch_results) {
        results.push_back(std::move(r));
      }
    }
  } else {
    // Sequential-dependency methods: solve one at a time, still sharing
    // the workspace (pool + scratch reuse).
    for (const JumpVector& jump : jumps) {
      results.push_back(SolveDispatch(graph, jump, options, ws));
    }
  }
  for (size_t j = 0; j < results.size(); ++j) {
    if (results[j].scores.empty()) return Status::Internal("unknown method");
    DCHECK_OK(ValidateSolverResult(graph, jumps[j], options, results[j]));
  }
  return results;
}

Result<PageRankResult> ComputeUniformPageRank(const WebGraph& graph,
                                              const SolverOptions& options,
                                              SolverWorkspace* workspace) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("PageRank on an empty graph");
  }
  return ComputePageRank(graph, JumpVector::Uniform(graph.num_nodes()),
                         options, workspace);
}

Result<PageRankResult> ComputeUniformPageRank(const WebGraph& graph,
                                              const SolverOptions& options) {
  return ComputeUniformPageRank(graph, options, nullptr);
}

}  // namespace spammass::pagerank
