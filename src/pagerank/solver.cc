#include "pagerank/solver.h"

#include <atomic>
#include <cmath>
#include <memory>

#include "pagerank/solver_validate.h"
#include "util/debug.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace spammass::pagerank {

using graph::NodeId;
using graph::WebGraph;
using util::Result;
using util::Status;

double L1Norm(const std::vector<double>& v) {
  double sum = 0;
  for (double x : v) sum += std::abs(x);
  return sum;
}

std::vector<double> ScaledScores(const std::vector<double>& scores,
                                 double damping) {
  CHECK_GT(damping, 0.0);
  CHECK_LT(damping, 1.0);
  double factor = static_cast<double>(scores.size()) / (1.0 - damping);
  std::vector<double> out(scores);
  for (double& x : out) x *= factor;
  return out;
}

namespace {

/// Sum of scores over dangling nodes.
double DanglingSum(const WebGraph& graph, const std::vector<double>& p) {
  double sum = 0;
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    if (graph.IsDangling(x)) sum += p[x];
  }
  return sum;
}

/// One Jacobi sweep over node range [begin, end): out = c·Tᵀ·p (+ the
/// dangling redistribution term) + (1−c)·v. Returns the range's L1
/// difference contribution.
double JacobiSweepRange(const WebGraph& graph, const JumpVector& jump,
                        double c, double dangling,
                        const std::vector<double>& p,
                        std::vector<double>* out, NodeId begin, NodeId end) {
  double diff = 0;
  for (NodeId y = begin; y < end; ++y) {
    double in_sum = 0;
    for (NodeId x : graph.InNeighbors(y)) {
      in_sum += p[x] / graph.OutDegree(x);
    }
    double vy = jump[y];
    double next = c * (in_sum + vy * dangling) + (1.0 - c) * vy;
    diff += std::abs(next - p[y]);
    (*out)[y] = next;
  }
  return diff;
}

/// Full-graph Jacobi sweep, optionally sharded over a thread pool.
double JacobiSweep(const WebGraph& graph, const JumpVector& jump,
                   const SolverOptions& opt, const std::vector<double>& p,
                   std::vector<double>* out, util::ThreadPool* pool) {
  const double c = opt.damping;
  double dangling = 0;
  if (opt.dangling == DanglingPolicy::kRedistributeToJump) {
    dangling = DanglingSum(graph, p);
  }
  if (pool == nullptr) {
    return JacobiSweepRange(graph, jump, c, dangling, p, out, 0,
                            graph.num_nodes());
  }
  std::vector<double> partial(pool->num_threads() + 1, 0.0);
  std::atomic<size_t> slot{0};
  pool->ParallelFor(graph.num_nodes(), [&](uint64_t begin, uint64_t end) {
    size_t my_slot = slot.fetch_add(1);
    partial[my_slot] = JacobiSweepRange(graph, jump, c, dangling, p, out,
                                        static_cast<NodeId>(begin),
                                        static_cast<NodeId>(end));
  });
  double diff = 0;
  for (double d : partial) diff += d;
  return diff;
}

PageRankResult SolveJacobi(const WebGraph& graph, const JumpVector& jump,
                           const SolverOptions& opt) {
  PageRankResult result;
  // Algorithm 1: p[0] <- v.
  result.scores = jump.values();
  std::vector<double> next(result.scores.size(), 0.0);
  std::unique_ptr<util::ThreadPool> pool;
  if (opt.num_threads > 1) {
    pool = std::make_unique<util::ThreadPool>(opt.num_threads);
  }
  for (int i = 0; i < opt.max_iterations; ++i) {
    double diff =
        JacobiSweep(graph, jump, opt, result.scores, &next, pool.get());
    result.scores.swap(next);
    result.iterations = i + 1;
    result.residual = diff;
    if (opt.track_residuals) result.residual_history.push_back(diff);
    if (diff < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

/// Gauss-Seidel / SOR sweeps (omega == 1 is plain Gauss-Seidel).
PageRankResult SolveGaussSeidel(const WebGraph& graph, const JumpVector& jump,
                                const SolverOptions& opt, double omega) {
  PageRankResult result;
  result.scores = jump.values();
  std::vector<double>& p = result.scores;
  const double c = opt.damping;
  const bool redistribute =
      opt.dangling == DanglingPolicy::kRedistributeToJump;
  double dangling = redistribute ? DanglingSum(graph, p) : 0.0;
  for (int i = 0; i < opt.max_iterations; ++i) {
    double diff = 0;
    for (NodeId y = 0; y < graph.num_nodes(); ++y) {
      double in_sum = 0;
      for (NodeId x : graph.InNeighbors(y)) {
        in_sum += p[x] / graph.OutDegree(x);
      }
      const double vy = jump[y];
      double next;
      if (redistribute) {
        const bool y_dangling = graph.IsDangling(y);
        // Exclude y's own (old) dangling contribution and solve the scalar
        // equation p_y = c·(in_sum + v_y·(D_excl + p_y·[y dangling])) +
        // (1−c)·v_y for p_y exactly.
        double d_excl = dangling - (y_dangling ? p[y] : 0.0);
        double numer = c * (in_sum + vy * d_excl) + (1.0 - c) * vy;
        if (y_dangling) {
          double denom = 1.0 - c * vy;
          next = denom > 0 ? numer / denom : numer;
          next = (1.0 - omega) * p[y] + omega * next;
          dangling = d_excl + next;
        } else {
          next = (1.0 - omega) * p[y] + omega * numer;
        }
      } else {
        next = (1.0 - omega) * p[y] +
               omega * (c * in_sum + (1.0 - c) * vy);
      }
      diff += std::abs(next - p[y]);
      p[y] = next;
    }
    result.iterations = i + 1;
    result.residual = diff;
    if (opt.track_residuals) result.residual_history.push_back(diff);
    if (diff < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  return result;
}

/// Power iteration on the stochasticized matrix T″ (Eq. 1). Requires a
/// normalizable jump vector; the result is the stationary distribution
/// (‖p‖₁ = 1) of the random walk with teleportation to v/‖v‖.
PageRankResult SolvePowerIteration(const WebGraph& graph,
                                   const JumpVector& jump,
                                   const SolverOptions& opt) {
  PageRankResult result;
  const uint32_t n = graph.num_nodes();
  const double c = opt.damping;
  // Normalize the jump distribution.
  std::vector<double> v = jump.values();
  double vnorm = 0;
  for (double x : v) vnorm += x;
  for (double& x : v) x /= vnorm;

  std::vector<double> p(n, 1.0 / n);
  std::vector<double> next(n, 0.0);
  for (int i = 0; i < opt.max_iterations; ++i) {
    double dangling = DanglingSum(graph, p);
    // ‖p‖ stays 1, so the teleport term is (1−c)·v·1ᵀp = (1−c)·v.
    double diff = 0;
    for (NodeId y = 0; y < n; ++y) {
      double in_sum = 0;
      for (NodeId x : graph.InNeighbors(y)) {
        in_sum += p[x] / graph.OutDegree(x);
      }
      next[y] = c * (in_sum + v[y] * dangling) + (1.0 - c) * v[y];
    }
    // Guard against numerical drift of the norm.
    double norm = L1Norm(next);
    for (double& x : next) x /= norm;
    for (NodeId y = 0; y < n; ++y) diff += std::abs(next[y] - p[y]);
    p.swap(next);
    result.iterations = i + 1;
    result.residual = diff;
    if (opt.track_residuals) result.residual_history.push_back(diff);
    if (diff < opt.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(p);
  return result;
}

}  // namespace

Result<PageRankResult> ComputePageRank(const WebGraph& graph,
                                       const JumpVector& jump,
                                       const SolverOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("PageRank on an empty graph");
  }
  if (jump.n() != graph.num_nodes()) {
    return Status::InvalidArgument(
        "jump vector dimension does not match the graph");
  }
  if (!(options.damping > 0.0) || !(options.damping < 1.0)) {
    return Status::InvalidArgument("damping factor must lie in (0, 1)");
  }
  if (options.tolerance < 0.0 || options.max_iterations <= 0) {
    return Status::InvalidArgument("bad tolerance or iteration cap");
  }
  double norm = jump.Norm();
  if (norm <= 0.0 || norm > 1.0 + 1e-9) {
    return Status::InvalidArgument(
        "jump vector norm must satisfy 0 < ||v|| <= 1");
  }
  // Entry invariants beyond the cheap argument checks above: the jump
  // vector must be entrywise non-negative and finite. O(n), debug only.
  DCHECK_OK(ValidateJumpVector(jump));

  PageRankResult result;
  switch (options.method) {
    case Method::kJacobi:
      result = SolveJacobi(graph, jump, options);
      break;
    case Method::kGaussSeidel:
      result = SolveGaussSeidel(graph, jump, options, /*omega=*/1.0);
      break;
    case Method::kSor:
      if (!(options.sor_omega > 0.0) || !(options.sor_omega < 2.0)) {
        return Status::InvalidArgument("sor_omega must lie in (0, 2)");
      }
      result = SolveGaussSeidel(graph, jump, options, options.sor_omega);
      break;
    case Method::kPowerIteration:
      result = SolvePowerIteration(graph, jump, options);
      break;
  }
  if (result.scores.empty()) return Status::Internal("unknown method");
  // Post-conditions (non-negativity, mass conservation). O(n), debug only.
  DCHECK_OK(ValidateSolverResult(graph, jump, options, result));
  return result;
}

Result<PageRankResult> ComputeUniformPageRank(const WebGraph& graph,
                                              const SolverOptions& options) {
  if (graph.num_nodes() == 0) {
    return Status::InvalidArgument("PageRank on an empty graph");
  }
  return ComputePageRank(graph, JumpVector::Uniform(graph.num_nodes()),
                         options);
}

}  // namespace spammass::pagerank
