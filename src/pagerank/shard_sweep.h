// Sharded multi-RHS Jacobi sweeps over a host-range ShardPlan
// (graph/shard.h): each sweep first exchanges boundary rank — the scaled
// values of every cross-shard source — into per-shard ghost slots, then
// runs the reference sweep arithmetic with the plan's shard-local gather,
// so every shard touches only its own compact working set plus its ghost
// rows (ROADMAP item 3, out-of-core scale).
//
// Bit-identity argument (verified by the ParallelJacobiShard tests):
//   * The plan's sources_local array only REMAPS ids — edge positions are
//     untouched — so a sweep gathers exactly the same edge sequence as the
//     unsharded kernel.
//   * Ghost slots hold bitwise copies of the scaled values they stand in
//     for (the exchange phase is pure copies).
//   * The sweep keeps the kernel's global deterministic chunk
//     decomposition, and shard boundaries are aligned to the chunk size
//     (the plan is built with alignment = kernel::ChunkSize(n)), so no
//     residual-reduction chunk ever straddles a shard — splitting one
//     would re-associate its float sum.
// Hence scores AND residuals are bit-identical to the unsharded kernel for
// every shard count and every thread count.

#ifndef SPAMMASS_PAGERANK_SHARD_SWEEP_H_
#define SPAMMASS_PAGERANK_SHARD_SWEEP_H_

#include <cstdint>
#include <vector>

#include "graph/shard.h"
#include "graph/web_graph.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::pagerank {

/// A ShardPlan bound to one graph plus the sweep loop that consumes it.
/// Built once per (graph, shard count) and cached by SolverWorkspace;
/// immutable after construction, so one runtime may serve concurrent
/// sweeps (each sweep's mutable state lives in caller buffers).
class ShardRuntime {
 public:
  /// Partitions `graph` into `num_shards` ranges aligned to the kernel's
  /// deterministic-reduction chunk size (see the bit-identity argument
  /// above). The graph must stay alive for the runtime's lifetime.
  ShardRuntime(const graph::WebGraph& graph, uint32_t num_shards);

  /// True when this runtime was built for this graph at this shard count —
  /// the workspace's cache-hit test. Checks identity (pointer), shape
  /// (n, m), and a bounded in-offset fingerprint, so a different graph
  /// reallocated at the same address misses.
  bool Matches(const graph::WebGraph& graph, uint32_t num_shards) const;

  const graph::ShardPlan& plan() const { return plan_; }
  uint32_t num_shards() const { return plan_.num_shards(); }

  /// Rows of the ghost-extended scaled buffers: num_nodes + total ghost
  /// slots. Callers size `scaled` and `next_scaled` as extended_rows() * k.
  uint64_t extended_rows() const {
    return static_cast<uint64_t>(plan_.num_nodes()) + plan_.total_ghosts();
  }

  /// One fused Jacobi sweep, semantically identical to
  /// kernel::WeightedJacobiSweepMulti with the default (scalar f64)
  /// variant, but gathering through the shard plan. `scaled` and
  /// `next_scaled` are ghost-extended (extended_rows() * k); rows [0, n)
  /// carry the usual scaled iterate and the ghost region is refreshed from
  /// them by the exchange phase at the start of every sweep, so its
  /// between-sweep contents are irrelevant (lane compaction safe).
  void SweepMulti(const graph::WebGraph& graph, uint32_t k, const double* v,
                  double damping, const double* dangling, const double* p,
                  double* scaled, double* next, double* next_scaled,
                  std::vector<double>* partials, double* diffs,
                  util::ThreadPool* pool) const;

 private:
  const graph::WebGraph* graph_ = nullptr;
  graph::NodeId num_nodes_ = 0;
  uint64_t num_edges_ = 0;
  uint64_t fingerprint_ = 0;
  graph::ShardPlan plan_;
  // Per-sweep telemetry constants, summed once from the plan at
  // construction (the plan is immutable, so every sweep exchanges the
  // same boundary bytes and gathers the same ghost rows).
  uint64_t boundary_bytes_per_sweep_ = 0;
  uint64_t ghost_gathers_per_sweep_ = 0;
};

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_SHARD_SWEEP_H_
