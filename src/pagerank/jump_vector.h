// Random-jump (teleportation) distributions. The paper's method hinges on
// solving linear PageRank for different jump vectors v:
//   * the uniform v = (1/n)ⁿ for the regular PageRank p,
//   * the core-based v^Ṽ⁺ (1/n on good-core members, 0 elsewhere) and its
//     γ-scaled variant w (Section 3.5) for the good-contribution p′,
//   * single-node vectors vˣ for PageRank contributions (Theorem 2).
// Vectors may be unnormalized: 0 < ‖v‖ ≤ 1 (Section 2.2).

#ifndef SPAMMASS_PAGERANK_JUMP_VECTOR_H_
#define SPAMMASS_PAGERANK_JUMP_VECTOR_H_

#include <cstdint>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::pagerank {

/// A non-negative jump distribution over the nodes of a graph.
class JumpVector {
 public:
  /// Zero vector of dimension n (useless for PageRank itself; building
  /// block for combinations).
  explicit JumpVector(uint32_t n) : values_(n, 0.0) {}

  /// Wraps a dense vector of non-negative weights.
  static JumpVector FromDense(std::vector<double> values);

  /// Uniform 1/n over all n nodes; ‖v‖ = 1.
  static JumpVector Uniform(uint32_t n);

  /// Core-based v^U: 1/n on each member of `core`, 0 elsewhere;
  /// ‖v‖ = |core|/n. (Definition in Section 3.4.)
  static JumpVector Core(uint32_t n, const std::vector<graph::NodeId>& core);

  /// γ-scaled core vector w: γ/|core| on each member, 0 elsewhere; ‖w‖ = γ.
  /// (Section 3.5; the paper uses γ = 0.85 on the Yahoo! graph.)
  static JumpVector ScaledCore(uint32_t n,
                               const std::vector<graph::NodeId>& core,
                               double gamma);

  /// Single-node vector vˣ with weight `weight` on x (defaults to 1/n).
  static JumpVector SingleNode(uint32_t n, graph::NodeId x, double weight);

  uint32_t n() const { return static_cast<uint32_t>(values_.size()); }
  double operator[](uint32_t i) const { return values_[i]; }
  const std::vector<double>& values() const { return values_; }

  /// L1 norm (the vector is non-negative).
  double Norm() const;

  /// Number of nonzero entries.
  uint64_t NumNonZero() const;

  /// Sum of two jump vectors of equal dimension — PageRank is linear in v
  /// (Section 2.2), so PR(a + b) = PR(a) + PR(b).
  JumpVector Plus(const JumpVector& other) const;

  /// Scalar multiple.
  JumpVector Scaled(double factor) const;

 private:
  explicit JumpVector(std::vector<double> values)
      : values_(std::move(values)) {}

  std::vector<double> values_;
};

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_JUMP_VECTOR_H_
