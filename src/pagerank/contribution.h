// PageRank contributions (Section 3.2). Theorem 2 shows that the vector qˣ
// of contributions of node x to every node equals PR(vˣ), the linear
// PageRank under the single-node jump vector; by linearity the contribution
// of any node set U is PR(v^U). These wrappers compute both, and are the
// machinery behind the actual (ground-truth) spam mass of Definition 1.

#ifndef SPAMMASS_PAGERANK_CONTRIBUTION_H_
#define SPAMMASS_PAGERANK_CONTRIBUTION_H_

#include <vector>

#include "graph/web_graph.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass::pagerank {

/// Contribution vector q^U = PR(v^U) of the node set U, where the base jump
/// distribution is the uniform 1/n (matching p = PR(v)): v^U has 1/n on
/// members of U and 0 elsewhere.
util::Result<PageRankResult> ComputeSetContribution(
    const graph::WebGraph& graph, const std::vector<graph::NodeId>& set,
    const SolverOptions& options, SolverWorkspace* workspace = nullptr);

/// Contribution vector qˣ = PR(vˣ) of a single node x. Repeated per-node
/// contribution scans should pass a shared `workspace`.
util::Result<PageRankResult> ComputeNodeContribution(
    const graph::WebGraph& graph, graph::NodeId x,
    const SolverOptions& options, SolverWorkspace* workspace = nullptr);

/// Link contribution used by the paper's second naive labeling scheme
/// (Section 3.1): the amount of PageRank that the single link (x, y)
/// contributes to y, i.e. the drop in p_y if the link were removed. Computed
/// exactly as c · p_x^{G∖(x,y)} / out(x) where p^{G∖(x,y)} is PageRank on
/// the graph without the link... — equivalently we recompute PageRank on the
/// graph with the link removed and take the difference. O(PageRank) per
/// link; intended for small analyses, not web scale.
util::Result<double> LinkContribution(const graph::WebGraph& graph,
                                      graph::NodeId from, graph::NodeId to,
                                      const SolverOptions& options);

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_CONTRIBUTION_H_
