// High-throughput PageRank sweep kernels.
//
// Every detector in the paper (spam mass §4.2, TrustRank, the naive schemes
// of §3.1, contribution analysis) funnels through repeated PageRank solves
// over one fixed graph, so this layer optimizes the per-sweep work that the
// solvers in solver.cc share:
//
//   * Division-free sweeps. The CSR gather Σ_x p[x]/outdeg(x) hides an
//     integer division + convert per edge visit. The kernel instead scales
//     the iterate once per node per sweep — scaled[x] = p[x]·inv_out[x],
//     with inv_out cached on the WebGraph at build time — so the edge loop
//     is a pure gather-add.
//   * Multi-vector (multi-RHS) sweeps. k score vectors stored interleaved
//     (value of vector j at node x lives at x·k + j) advance through ONE
//     CSR traversal per sweep, amortizing the dominant cost — graph memory
//     traffic — across solves. Spam mass's p/p′ pair is the k = 2 case.
//     The per-vector arithmetic is independent of k (the j-loop only adds
//     lanes), so a k-vector solve is bit-identical to k separate solves.
//   * Deterministic parallel reductions. All floating-point reductions
//     (residuals, dangling-mass sums, norms) are chunked by a decomposition
//     that depends only on the element count — never on the thread count —
//     with per-chunk partials summed in chunk order. Scores AND residuals
//     are therefore bit-identical across 1/2/…/N threads, and the iteration
//     count (which compares residuals against the tolerance) cannot drift
//     with parallelism.
//
// The functions here are stateless building blocks; scratch buffers and the
// thread pool live in SolverWorkspace (workspace.h). Dangling handling is
// expressed by the `dangling` weights passed in: a zero weight reproduces
// DanglingPolicy::kLeak exactly (x + 0.0 == x for the non-negative values
// involved), a dangling-mass sum reproduces kRedistributeToJump.

#ifndef SPAMMASS_PAGERANK_KERNEL_H_
#define SPAMMASS_PAGERANK_KERNEL_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "graph/web_graph.h"
#include "pagerank/simd.h"
#include "util/thread_pool.h"

namespace spammass::pagerank::kernel {

/// Selects the sweep implementation: instruction-set tier (simd.h) and
/// edge encoding. The default — scalar, plain CSR — is the bit-exact
/// reference path; every other combination is validated against it by
/// pagerank_sweep_variant_test.cc. `compressed` requires the graph to
/// carry a compressed in-adjacency (WebGraph::has_compressed_in).
struct SweepVariant {
  simd::Level level = simd::Level::kScalar;
  bool compressed = false;

  bool IsDefault() const {
    return level == simd::Level::kScalar && !compressed;
  }
};

/// Maximum number of interleaved vectors one sweep advances. Callers batch
/// larger multi-solves into groups of at most this many (the solver does
/// this transparently); the cap keeps per-thread accumulators on the stack.
inline constexpr uint32_t kMaxVectorsPerSweep = 16;

/// Deterministic chunk decomposition: chunk size is a function of `total`
/// alone (never the worker count), so per-chunk partial sums reduce to
/// bit-identical totals for every thread count. At most kMaxChunks chunks;
/// at least kMinChunkSize elements per chunk so tiny inputs don't drown in
/// task overhead.
inline constexpr uint64_t kMinChunkSize = 256;
inline constexpr uint64_t kMaxChunks = 64;

/// Chunk size for `total` elements under the deterministic policy.
uint64_t ChunkSize(uint64_t total);

/// Number of chunks for `total` elements (0 when total == 0).
uint64_t NumChunks(uint64_t total);

/// Runs body(chunk_index, begin, end) over [0, total) under the
/// deterministic decomposition — serially in chunk order when `pool` is
/// null, via ThreadPool::ParallelForChunked otherwise. The work performed
/// per chunk is identical either way.
void ForEachChunk(util::ThreadPool* pool, uint64_t total,
                  const std::function<void(uint64_t, uint64_t, uint64_t)>& body);

/// Deterministic chunked reduction: returns Σ over [0, total) where
/// `range_sum(begin, end)` yields one range's contribution (accumulated
/// left to right inside the range). `partials` is caller-owned scratch,
/// resized to NumChunks(total); partial sums are combined in chunk order,
/// so the result is bit-identical for every thread count.
double DeterministicSum(
    util::ThreadPool* pool, uint64_t total,
    const std::function<double(uint64_t, uint64_t)>& range_sum,
    std::vector<double>* partials);

/// Per-sweep scaling pass: scaled[x·k + j] = p[x·k + j] · inv_out[x] for
/// every node x and lane j, with inv_out the graph's cached inverse
/// out-degrees (0.0 on dangling nodes). n·k multiplies replace one divide
/// per edge visit in the sweep proper.
void ScaleByInvOutDegree(const graph::WebGraph& graph, uint32_t k,
                         const double* p, double* scaled,
                         util::ThreadPool* pool);

/// Per-lane dangling-mass sums over the graph's cached dangling-node list:
/// sums[j] = Σ_{x dangling} p[x·k + j]. Deterministic chunked reduction;
/// `partials` is caller-owned scratch (resized to NumChunks(|dangling|)·k).
void DanglingSums(const graph::WebGraph& graph, uint32_t k, const double* p,
                  std::vector<double>* partials, double* sums,
                  util::ThreadPool* pool);

/// One weighted Jacobi sweep advancing k interleaved vectors (k in
/// [1, kMaxVectorsPerSweep]):
///
///   next[y·k+j] = c·(Σ_{x ∈ In(y)} scaled[x·k+j] + v[y·k+j]·dangling[j])
///                 + (1−c)·v[y·k+j],
///
/// where `scaled` is the ScaleByInvOutDegree output for `p`. Every lane is
/// advanced; when a lane converges mid-batch the solver compacts it out of
/// the interleaved working set entirely (solver.cc), so a finished vector
/// costs nothing instead of riding along frozen. The per-lane arithmetic —
/// accumulation order included — does not depend on k, which is what makes
/// a fused lane bit-identical to a standalone solve. diffs[j] receives the
/// deterministic L1 difference Σ_y |next − p| for lane j. `partials` is
/// caller-owned scratch (resized to NumChunks(n)·k).
///
/// When `next_scaled` is non-null the output loop also writes
/// next_scaled[y·k+j] = next[y·k+j] · inv_out[y] — exactly the values
/// ScaleByInvOutDegree(next) would produce — so iterative callers skip the
/// separate full-pass rescale between sweeps (the solver seeds `scaled`
/// once before the first sweep and double-buffers from then on).
void WeightedJacobiSweepMulti(const graph::WebGraph& graph, uint32_t k,
                              const double* v, double damping,
                              const double* dangling, const double* p,
                              const double* scaled, double* next,
                              double* next_scaled,
                              std::vector<double>* partials, double* diffs,
                              util::ThreadPool* pool);

/// Variant-selecting overload: `variant` picks the instruction set and the
/// edge encoding. The default variant routes through the exact code path
/// of the overload above (bit-identical results); vectorized and
/// compressed variants preserve each lane's accumulation order but may
/// differ from the reference by FMA contraction (see simd.h).
void WeightedJacobiSweepMulti(const graph::WebGraph& graph, uint32_t k,
                              const double* v, double damping,
                              const double* dangling, const double* p,
                              const double* scaled, double* next,
                              double* next_scaled,
                              std::vector<double>* partials, double* diffs,
                              const SweepVariant& variant,
                              util::ThreadPool* pool);

/// Narrows the graph's cached inverse out-degrees to float32 scratch for
/// the f32 sweep family (resizes `out` to num_nodes()).
void InvOutDegreesF32(const graph::WebGraph& graph, std::vector<float>* out);

/// float32 twin of ScaleByInvOutDegree over explicit arrays: scaled[x·k+j]
/// = p[x·k+j] · inv[x] for `num_nodes` nodes. `inv` is the
/// InvOutDegreesF32 output.
void ScaleByInvOutDegreeF32(uint32_t num_nodes, uint32_t k, const float* inv,
                            const float* p, float* scaled,
                            util::ThreadPool* pool);

/// float32 twin of DanglingSums: sums[j] = Σ_{x dangling} p[x·k+j], each
/// term widened to double before accumulating, so the sums (and the jump
/// multipliers derived from them) are full-precision measurements of the
/// float iterate. Deterministic chunked reduction, same policy as the f64
/// path.
void DanglingSumsF32(const graph::WebGraph& graph, uint32_t k, const float* p,
                     std::vector<double>* partials, double* sums,
                     util::ThreadPool* pool);

/// float32 twin of the variant-selecting WeightedJacobiSweepMulti. Lane
/// storage (`v`, `p`, `scaled`, `next`, `next_scaled`) is float32 — half
/// the sweep's memory traffic — while `dangling` carries the f64
/// DanglingSumsF32 measurements and every L1 difference accumulates in
/// double (diffs[j] is a float64 residual of the float32 iterate). `inv`
/// is the InvOutDegreesF32 output.
void WeightedJacobiSweepMultiF32(const graph::WebGraph& graph, uint32_t k,
                                 const float* v, double damping,
                                 const double* dangling, const float* inv,
                                 const float* p, const float* scaled,
                                 float* next, float* next_scaled,
                                 std::vector<double>* partials, double* diffs,
                                 const SweepVariant& variant,
                                 util::ThreadPool* pool);

}  // namespace spammass::pagerank::kernel

#endif  // SPAMMASS_PAGERANK_KERNEL_H_
