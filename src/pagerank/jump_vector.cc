#include "pagerank/jump_vector.h"

#include "util/logging.h"

namespace spammass::pagerank {

JumpVector JumpVector::FromDense(std::vector<double> values) {
  for (double v : values) CHECK_GE(v, 0.0);
  return JumpVector(std::move(values));
}

JumpVector JumpVector::Uniform(uint32_t n) {
  CHECK_GT(n, 0u);
  return JumpVector(std::vector<double>(n, 1.0 / n));
}

JumpVector JumpVector::Core(uint32_t n,
                            const std::vector<graph::NodeId>& core) {
  CHECK_GT(n, 0u);
  std::vector<double> v(n, 0.0);
  for (graph::NodeId x : core) {
    CHECK_LT(x, n);
    v[x] = 1.0 / n;
  }
  return JumpVector(std::move(v));
}

JumpVector JumpVector::ScaledCore(uint32_t n,
                                  const std::vector<graph::NodeId>& core,
                                  double gamma) {
  CHECK_GT(n, 0u);
  CHECK(!core.empty());
  CHECK_GT(gamma, 0.0);
  CHECK_LE(gamma, 1.0);
  std::vector<double> v(n, 0.0);
  double weight = gamma / static_cast<double>(core.size());
  for (graph::NodeId x : core) {
    CHECK_LT(x, n);
    v[x] = weight;
  }
  return JumpVector(std::move(v));
}

JumpVector JumpVector::SingleNode(uint32_t n, graph::NodeId x, double weight) {
  CHECK_GT(n, 0u);
  CHECK_LT(x, n);
  CHECK_GE(weight, 0.0);
  std::vector<double> v(n, 0.0);
  v[x] = weight;
  return JumpVector(std::move(v));
}

double JumpVector::Norm() const {
  double sum = 0;
  for (double v : values_) sum += v;
  return sum;
}

uint64_t JumpVector::NumNonZero() const {
  uint64_t nz = 0;
  for (double v : values_) {
    if (v != 0.0) ++nz;
  }
  return nz;
}

JumpVector JumpVector::Plus(const JumpVector& other) const {
  CHECK_EQ(n(), other.n());
  std::vector<double> v(values_);
  for (uint32_t i = 0; i < other.n(); ++i) v[i] += other.values_[i];
  return JumpVector(std::move(v));
}

JumpVector JumpVector::Scaled(double factor) const {
  CHECK_GE(factor, 0.0);
  std::vector<double> v(values_);
  for (double& x : v) x *= factor;
  return JumpVector(std::move(v));
}

}  // namespace spammass::pagerank
