// Debug-mode invariant validation for PageRank inputs and solutions.
//
// The linear-system formulation (Eq. 3) comes with sharp analytic
// post-conditions: solutions are non-negative, total PageRank mass is
// bounded by the jump-vector norm under the leaking (substochastic) policy
// and conserved exactly under redistribution, and the mass decomposition
// p = p_core + p_residual (Section 4: spam mass M̃ = p − p′) must hold
// entrywise. Silent violations of any of these — the failure mode Vigna's
// "Stanford Matrix Considered Harmful" catalogs for published PageRank
// experiments — produce plausible-looking but wrong rankings, so the
// solvers re-verify them after every solve in debug builds (DCHECK_OK) and
// expose the checks here as a public Validate API for any build mode.

#ifndef SPAMMASS_PAGERANK_SOLVER_VALIDATE_H_
#define SPAMMASS_PAGERANK_SOLVER_VALIDATE_H_

#include <vector>

#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "util/status.h"

namespace spammass::pagerank {

/// Validates a raw jump-vector value array: every entry finite and
/// non-negative, and 0 < ‖v‖₁ ≤ 1 (+slack; Section 2.2 allows unnormalized
/// vectors up to norm 1). When `require_stochastic` is set the norm must
/// equal 1 within `tolerance` — the Eq. 3 regular-PageRank case where v is
/// a probability distribution.
util::Status ValidateJumpValues(const std::vector<double>& values,
                                bool require_stochastic = false,
                                double tolerance = 1e-9);

/// JumpVector convenience overload of ValidateJumpValues.
util::Status ValidateJumpVector(const JumpVector& jump,
                                bool require_stochastic = false,
                                double tolerance = 1e-9);

/// Post-conditions of a finished solve:
///   * dimension: scores.size() == graph.num_nodes() == jump.n(),
///   * every score finite and non-negative,
///   * mass conservation: under DanglingPolicy::kLeak the geometric-series
///     solution satisfies (1−c)‖v‖ ≤ ‖p‖₁ ≤ ‖v‖ (+slack); under
///     kRedistributeToJump a converged solution carries ‖p‖₁ = ‖v‖
///     exactly; power iteration always normalizes to ‖p‖₁ = 1.
/// `tolerance` bounds the allowed conservation slack and is additionally
/// widened by the solver's convergence residual.
util::Status ValidateSolverResult(const graph::WebGraph& graph,
                                  const JumpVector& jump,
                                  const SolverOptions& options,
                                  const PageRankResult& result,
                                  double tolerance = 1e-9);

/// Verifies the Section 4 decomposition total = core_part + residual
/// entrywise within `tolerance` (all three indexed by node). Used by the
/// spam-mass estimators, where total = p, core_part = p′, residual = M̃.
util::Status ValidateMassDecomposition(const std::vector<double>& total,
                                       const std::vector<double>& core_part,
                                       const std::vector<double>& residual,
                                       double tolerance = 1e-9);

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_SOLVER_VALIDATE_H_
