// Shared sweep-loop body for every (precision, lane-width, edge-encoding)
// variant of the multi-RHS Jacobi sweep. kernel.cc instantiates the scalar
// template for the default bit-exact path; simd.cc instantiates the scalar
// fallbacks for the non-default variants; simd_avx2.cc / simd_neon.cc
// provide hand-vectorized overrides registered through simd.h. Keeping the
// loop in one header guarantees every scalar variant computes the exact
// expressions documented in kernel.h — specializations only unroll or
// vectorize element-wise, never reassociate a lane's accumulation order.
//
// No intrinsics live here (spammass_lint.py `simd-isolation` enforces
// that); this header is pure portable C++.

#ifndef SPAMMASS_PAGERANK_SIMD_SWEEP_BODY_H_
#define SPAMMASS_PAGERANK_SIMD_SWEEP_BODY_H_

#include <cmath>
#include <cstdint>

#include "graph/csr_codec.h"

namespace spammass::pagerank::simd {

using graph::NodeId;

/// Lane cap shared with kernel.h (static_assert-matched against
/// kernel::kMaxVectorsPerSweep in kernel.cc; redeclared here so the sweep
/// bodies do not need the full kernel header).
inline constexpr uint32_t kMaxSweepLanes = 16;

/// Everything one sweep range needs, precomputed by the kernel entry point
/// so every variant sees identical inputs. Lane j of node x lives at
/// x·k + j in each interleaved array.
template <typename Real>
struct SweepArgs {
  uint32_t k = 1;
  /// In-CSR: offsets always present (they carry the in-degrees); exactly
  /// one of `sources` (plain) or `comp_offsets`+`comp_bytes` (compressed)
  /// is non-null.
  const uint64_t* in_offsets = nullptr;
  const NodeId* sources = nullptr;
  const uint64_t* comp_offsets = nullptr;
  const uint8_t* comp_bytes = nullptr;
  /// Inverse out-degrees in the sweep precision (0 for dangling nodes).
  const Real* inv = nullptr;
  /// Jump vectors, interleaved.
  const Real* v = nullptr;
  /// Damping factor c.
  Real c = Real(0);
  /// Hoisted per-lane jump multiplier m[j] = (1−c) + c·dangling[j].
  const Real* m = nullptr;
  const Real* p = nullptr;
  const Real* scaled = nullptr;
  Real* next = nullptr;
  /// Nullable: when set, receives next · inv (the pre-scaled iterate).
  Real* next_scaled = nullptr;
};

/// L1-difference term in double regardless of sweep precision: float
/// variants widen BEFORE subtracting, so the residual the solver compares
/// against the tolerance is a true float64 measurement of the float32
/// iterate (the "float64 residual check" of ROADMAP item 4).
inline double AbsDiff(double a, double b) { return std::abs(a - b); }
inline double AbsDiff(float a, float b) {
  return std::abs(static_cast<double>(a) - static_cast<double>(b));
}

/// Portable sweep over node range [begin, end). K is the compile-time lane
/// count (0 = use args.k for compacted in-between widths). diff_slot[j]
/// receives the range's L1 difference for lane j, accumulated in double.
template <typename Real, uint32_t K, bool Compressed>
void ScalarSweepRange(const SweepArgs<Real>& args, double* diff_slot,
                      NodeId begin, NodeId end) {
  const uint32_t lanes = K == 0 ? args.k : K;
  const uint64_t* in_offsets = args.in_offsets;
  const Real c = args.c;
  double diff[kMaxSweepLanes] = {0.0};
  for (NodeId y = begin; y < end; ++y) {
    Real in_sum[kMaxSweepLanes];
    for (uint32_t j = 0; j < lanes; ++j) in_sum[j] = Real(0);
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        const Real* row = args.scaled + static_cast<uint64_t>(src) * lanes;
        for (uint32_t j = 0; j < lanes; ++j) in_sum[j] += row[j];
      }
    } else {
      const NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        const Real* row =
            args.scaled + static_cast<uint64_t>(sources[e]) * lanes;
        for (uint32_t j = 0; j < lanes; ++j) in_sum[j] += row[j];
      }
    }
    const Real* vrow = args.v + static_cast<uint64_t>(y) * lanes;
    const Real* prow = args.p + static_cast<uint64_t>(y) * lanes;
    Real* nrow = args.next + static_cast<uint64_t>(y) * lanes;
    if (args.next_scaled != nullptr) {
      const Real w = args.inv[y];
      Real* srow = args.next_scaled + static_cast<uint64_t>(y) * lanes;
      for (uint32_t j = 0; j < lanes; ++j) {
        const Real out = c * in_sum[j] + vrow[j] * args.m[j];
        diff[j] += AbsDiff(out, prow[j]);
        nrow[j] = out;
        srow[j] = out * w;
      }
    } else {
      for (uint32_t j = 0; j < lanes; ++j) {
        const Real out = c * in_sum[j] + vrow[j] * args.m[j];
        diff[j] += AbsDiff(out, prow[j]);
        nrow[j] = out;
      }
    }
  }
  for (uint32_t j = 0; j < lanes; ++j) diff_slot[j] = diff[j];
}

/// Signature every sweep-range implementation (scalar or vectorized)
/// satisfies.
template <typename Real>
using SweepRangeFn = void (*)(const SweepArgs<Real>&, double*, NodeId,
                              NodeId);

}  // namespace spammass::pagerank::simd

#endif  // SPAMMASS_PAGERANK_SIMD_SWEEP_BODY_H_
