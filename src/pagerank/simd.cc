#include "pagerank/simd.h"

#include <cstdint>

#include "pagerank/simd_sweep_body.h"

namespace spammass::pagerank::simd {

// Vector backends, defined in simd_avx2.cc / simd_neon.cc when compiled
// for the matching architecture. They return nullptr for widths they do
// not vectorize; this TU then falls back to ScalarSweepRange.
#if defined(__x86_64__) || defined(_M_X64)
SweepRangeFn<double> PickAvx2SweepF64(uint32_t k, bool compressed);
SweepRangeFn<float> PickAvx2SweepF32(uint32_t k, bool compressed);
bool Avx2HostSupported();
#endif
#if defined(__aarch64__)
SweepRangeFn<double> PickNeonSweepF64(uint32_t k, bool compressed);
SweepRangeFn<float> PickNeonSweepF32(uint32_t k, bool compressed);
#endif

const char* LevelToString(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kAvx2:
      return "avx2";
    case Level::kNeon:
      return "neon";
  }
  return "scalar";
}

bool IsSupported(Level level) {
  switch (level) {
    case Level::kScalar:
      return true;
    case Level::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return Avx2HostSupported();
#else
      return false;
#endif
    case Level::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

Level Best() {
  if (IsSupported(Level::kAvx2)) return Level::kAvx2;
  if (IsSupported(Level::kNeon)) return Level::kNeon;
  return Level::kScalar;
}

namespace {

/// Scalar instantiation table: the same compile-time widths the fused
/// kernel specializes (1/2/4/8/16), with the runtime-k body covering
/// compacted in-between widths.
template <typename Real, bool Compressed>
SweepRangeFn<Real> PickScalar(uint32_t k) {
  switch (k) {
    case 1:
      return ScalarSweepRange<Real, 1, Compressed>;
    case 2:
      return ScalarSweepRange<Real, 2, Compressed>;
    case 4:
      return ScalarSweepRange<Real, 4, Compressed>;
    case 8:
      return ScalarSweepRange<Real, 8, Compressed>;
    case 16:
      return ScalarSweepRange<Real, 16, Compressed>;
    default:
      return ScalarSweepRange<Real, 0, Compressed>;
  }
}

template <typename Real>
SweepRangeFn<Real> PickScalarSweep(uint32_t k, bool compressed) {
  return compressed ? PickScalar<Real, true>(k) : PickScalar<Real, false>(k);
}

}  // namespace

SweepRangeFn<double> PickSweepF64(Level level, uint32_t k, bool compressed) {
#if defined(__x86_64__) || defined(_M_X64)
  if (level == Level::kAvx2 && Avx2HostSupported()) {
    if (SweepRangeFn<double> fn = PickAvx2SweepF64(k, compressed)) return fn;
  }
#endif
#if defined(__aarch64__)
  if (level == Level::kNeon) {
    if (SweepRangeFn<double> fn = PickNeonSweepF64(k, compressed)) return fn;
  }
#endif
  (void)level;
  return PickScalarSweep<double>(k, compressed);
}

SweepRangeFn<float> PickSweepF32(Level level, uint32_t k, bool compressed) {
#if defined(__x86_64__) || defined(_M_X64)
  if (level == Level::kAvx2 && Avx2HostSupported()) {
    if (SweepRangeFn<float> fn = PickAvx2SweepF32(k, compressed)) return fn;
  }
#endif
#if defined(__aarch64__)
  if (level == Level::kNeon) {
    if (SweepRangeFn<float> fn = PickNeonSweepF32(k, compressed)) return fn;
  }
#endif
  (void)level;
  return PickScalarSweep<float>(k, compressed);
}

}  // namespace spammass::pagerank::simd
