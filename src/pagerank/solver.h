// Linear PageRank solvers (Section 2.2 of the paper).
//
// The paper adopts the linear-system formulation
//     (I − cTᵀ) p = (1 − c) v                                   (Eq. 3)
// with the substochastic transition matrix T (dangling rows are zero), and
// solves it with the Jacobi method (Algorithm 1). This module implements:
//   * kJacobi       — Algorithm 1 verbatim,
//   * kGaussSeidel  — in-place sweeps; typically converges in fewer
//                     iterations than Jacobi (the paper cites Gauss-Seidel
//                     as a faster alternative),
//   * kPowerIteration — the classic eigensystem formulation (Eq. 1) on the
//                     fully stochasticized matrix T'', for comparison.
// Dangling handling is selectable: kLeak matches Eq. 3 exactly (dangling
// PageRank simply dissipates, only rescaling the solution), while
// kRedistributeToJump adds the d·vᵀ patch of T′ so the solution is the true
// random-walk stationary distribution.

#ifndef SPAMMASS_PAGERANK_SOLVER_H_
#define SPAMMASS_PAGERANK_SOLVER_H_

#include <string_view>
#include <vector>

#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/workspace.h"
#include "util/status.h"

namespace spammass::pagerank {

/// Iterative method selection. kSor is successive over-relaxation on the
/// Gauss-Seidel sweep (ω = 1 degenerates to plain Gauss-Seidel); for
/// PageRank systems mild over-relaxation (ω ≈ 1.1) typically shaves a few
/// sweeps, while under-relaxation damps oscillation on near-cyclic graphs.
enum class Method { kJacobi, kGaussSeidel, kSor, kPowerIteration };

/// Which sweep instruction set the Jacobi-family kernels may use. The
/// scalar default is the bit-exact reference; kAuto picks the best level
/// the host supports at runtime; forcing a level the host lacks fails
/// option validation. Gauss-Seidel/SOR sweeps are sequential and ignore
/// this.
enum class SimdPolicy { kScalar, kAuto, kAvx2, kNeon };

/// Lane-storage precision of the Jacobi sweep.
enum class SweepPrecision {
  /// float64 lanes throughout — the bit-exact reference.
  kFloat64,
  /// Mixed precision: float32 lanes (half the memory traffic) until the
  /// float64-measured residual clears f32_switch_tolerance or stops
  /// improving, then float64 lanes to the final tolerance. At least one
  /// full float64 refinement sweep always runs, and every residual —
  /// including those of float32 sweeps — is accumulated in float64, so
  /// convergence decisions never trust float32 arithmetic. Jacobi only.
  kMixedF32,
};

/// What to do with the PageRank that reaches a node without outlinks.
enum class DanglingPolicy {
  /// Let it dissipate — the linear system (3) with substochastic T. This is
  /// the paper's formulation; all paper examples (Table 1) use it.
  kLeak,
  /// Re-inject it through the jump distribution (the T′ = T + d·vᵀ patch).
  kRedistributeToJump,
};

/// Solver configuration.
struct SolverOptions {
  /// Damping factor c; the paper uses 0.85 throughout.
  double damping = 0.85;
  /// Convergence: stop when ‖p⁽ⁱ⁾ − p⁽ⁱ⁻¹⁾‖₁ < tolerance.
  double tolerance = 1e-12;
  /// Hard iteration cap.
  int max_iterations = 1000;
  Method method = Method::kJacobi;
  DanglingPolicy dangling = DanglingPolicy::kLeak;
  /// Relaxation factor for kSor; must lie in (0, 2). Ignored otherwise.
  double sor_omega = 1.1;
  /// Worker threads for the out-of-place sweeps (each output entry depends
  /// only on the previous iterate, so rows shard cleanly). 1 = serial.
  /// kJacobi and kPowerIteration parallelize — with bit-identical scores
  /// AND residuals for every thread count (deterministic chunked
  /// reductions, pagerank/kernel.h); the sequential-dependency
  /// Gauss-Seidel/SOR sweeps ignore this.
  uint32_t num_threads = 1;
  /// When true, PageRankResult::residual_history records the L1 residual of
  /// every iteration (for convergence studies).
  bool track_residuals = false;
  /// Sweep instruction set (Jacobi/power-iteration kernels only). The
  /// scalar default keeps the bit-exact guarantee; vectorized sweeps
  /// preserve per-lane accumulation order but may differ by FMA
  /// contraction (validated against scalar by the variant tests).
  SimdPolicy simd = SimdPolicy::kScalar;
  /// Lane-storage precision of the Jacobi sweep (see SweepPrecision).
  SweepPrecision precision = SweepPrecision::kFloat64;
  /// Gather in-edges from the graph's delta+varint compressed adjacency
  /// (WebGraph::has_compressed_in must hold) instead of the plain source
  /// array — ~4→~1.2 bytes of edge traffic per visit on power-law webs.
  /// Decoding changes no floating-point operation, so compressed f64
  /// scalar sweeps stay bit-identical to the reference. Jacobi and
  /// power-iteration only.
  bool compressed_gather = false;
  /// Mixed-precision switch point: the float32 pre-phase hands over to
  /// float64 once every lane's residual drops below
  /// max(f32_switch_tolerance, tolerance). Near the float32 unit roundoff
  /// by default; raising it shifts work to the float64 phase.
  double f32_switch_tolerance = 1e-6;
  /// Host-range shard count for the Jacobi sweep (pagerank/shard_sweep.h):
  /// the node range is partitioned into this many contiguous shards, each
  /// sweeping against its own compact working set with boundary rank
  /// exchanged through ghost slots — the cache-blocking/out-of-core mode.
  /// 1 (the default) is the unsharded kernel. Sharded scores and residuals
  /// are bit-identical to unsharded for every shard and thread count.
  /// Jacobi + scalar f64 + plain gather only: shards > 1 rejects other
  /// simd/precision/compressed_gather settings, and the sequential
  /// Gauss-Seidel/SOR sweeps ignore it (like num_threads). Use
  /// graph::PickShardCount to size it from the cache budget.
  uint32_t shards = 1;

  /// The solver configuration shared by the eval pipeline, the CLI
  /// defaults, and the paper-reproduction benches: Gauss-Seidel at 1e-10 /
  /// 400 iterations. Named so the three call sites cannot silently diverge.
  static SolverOptions BenchPreset();
};

/// Human-readable method name ("jacobi", "gauss-seidel", "sor",
/// "power-iteration") for manifests and CLI help.
const char* MethodToString(Method method);

/// Inverse of MethodToString. Fails with InvalidArgument on unknown names.
util::Result<Method> MethodFromString(std::string_view name);

/// Human-readable SIMD policy name ("scalar", "auto", "avx2", "neon").
const char* SimdPolicyToString(SimdPolicy policy);

/// Inverse of SimdPolicyToString. Fails with InvalidArgument on unknown
/// names.
util::Result<SimdPolicy> SimdPolicyFromString(std::string_view name);

/// Human-readable precision name ("f64", "mixed-f32").
const char* SweepPrecisionToString(SweepPrecision precision);

/// Inverse of SweepPrecisionToString. Fails with InvalidArgument on
/// unknown names.
util::Result<SweepPrecision> SweepPrecisionFromString(std::string_view name);

/// Solution plus convergence diagnostics.
struct PageRankResult {
  std::vector<double> scores;
  int iterations = 0;
  double residual = 0;
  bool converged = false;
  std::vector<double> residual_history;
};

/// Convergence telemetry of one solve, decoupled from the (large) score
/// vector so callers can keep it after the scores are consumed. In the
/// fused multi-RHS kernel each lane converges at its own iteration;
/// FromResult captures that per-lane count, and with
/// SolverOptions::track_residuals the full per-iteration residual curve.
/// Surfaced in the run manifest ("convergence", schema_version 2) and
/// plotted by tools/plot_convergence.py.
struct SolveStats {
  int iterations = 0;
  double residual = 0;
  bool converged = false;
  /// One L1 residual per iteration; empty unless track_residuals was set.
  std::vector<double> residual_curve;

  static SolveStats FromResult(const PageRankResult& result);
};

/// Solves PageRank for the given jump vector. Fails with InvalidArgument on
/// bad options (damping outside (0,1), empty graph, dimension mismatch, or
/// power iteration with an unnormalizable zero jump vector).
util::Result<PageRankResult> ComputePageRank(const graph::WebGraph& graph,
                                             const JumpVector& jump,
                                             const SolverOptions& options);

/// As above, reusing `workspace` for the thread pool and scratch buffers —
/// the fast path for repeated solves over one graph (workspace.h). A null
/// workspace falls back to per-call scratch. Results are bit-identical to
/// the workspace-free overload.
util::Result<PageRankResult> ComputePageRank(const graph::WebGraph& graph,
                                             const JumpVector& jump,
                                             const SolverOptions& options,
                                             SolverWorkspace* workspace);

/// Solves PageRank for several jump vectors over one graph. With
/// Method::kJacobi the solve is fused: up to kernel::kMaxVectorsPerSweep
/// vectors advance through ONE CSR traversal per sweep (multi-RHS), paying
/// the graph's memory traffic once instead of once per vector — the spam
/// mass p/p′ pair is the canonical k = 2 caller. Each vector converges
/// independently (a converged vector is compacted out of the working set
/// and stops costing sweeps), so results[j] is bit-identical to a
/// standalone ComputePageRank with jumps[j]. Other methods solve
/// sequentially through the shared workspace. Fails on the first invalid
/// jump vector.
util::Result<std::vector<PageRankResult>> ComputePageRankMulti(
    const graph::WebGraph& graph, const std::vector<JumpVector>& jumps,
    const SolverOptions& options, SolverWorkspace* workspace = nullptr);

/// Convenience: regular PageRank p = PR(v) with uniform v.
util::Result<PageRankResult> ComputeUniformPageRank(
    const graph::WebGraph& graph, const SolverOptions& options);

/// Workspace-reusing variant of ComputeUniformPageRank.
util::Result<PageRankResult> ComputeUniformPageRank(
    const graph::WebGraph& graph, const SolverOptions& options,
    SolverWorkspace* workspace);

/// Rescales scores by n/(1−c), the paper's presentation scaling under which
/// a node with no inlinks has score exactly 1 (Section 3.4).
std::vector<double> ScaledScores(const std::vector<double>& scores,
                                 double damping);

/// L1 norm of a score vector.
double L1Norm(const std::vector<double>& v);

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_SOLVER_H_
