// AVX2 + FMA sweep-range backends. This is the only x86 translation unit
// allowed to use vector intrinsics (spammass_lint.py `simd-isolation`); it
// is compiled with -mavx2 -mfma and entered only after the runtime check
// in Avx2HostSupported(), so no AVX2 instruction can execute on an
// unsupporting host.
//
// Every routine is element-wise per lane: a 256-bit accumulator holds 4
// double (or, via two registers, 8+ float) lanes of ONE node, and edge
// contributions add in exactly the scalar body's order. The only numeric
// difference from ScalarSweepRange is FMA contraction in the output
// expression `c·in_sum + v·m`, which the compiler applies to the scalar
// body as well at -O2; equivalence is asserted by
// pagerank_sweep_variant_test.cc under tolerance, while the default
// scalar/f64/plain path keeps the bit-exact guarantee.

#if defined(__x86_64__) || defined(_M_X64)

#include <immintrin.h>

#include <cstdint>

#include "pagerank/simd_sweep_body.h"

namespace spammass::pagerank::simd {

bool Avx2HostSupported() {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

// Gathered `scaled` rows are the sweep's only hard-to-predict loads;
// issuing a software prefetch this many edges ahead hides most of the
// DRAM latency the hardware prefetcher cannot (the source IDs are
// data-dependent). Cross-node prefetches are fine — the guard only keeps
// the *index* load in bounds.
constexpr uint64_t kPrefetchDistance = 16;

// ---- float64 lanes ----

/// K doubles (K ∈ {4, 8, 16}) of one node accumulate in K/4 ymm registers.
template <uint32_t K, bool Compressed>
void Avx2SweepF64(const SweepArgs<double>& args, double* diff_slot,
                  graph::NodeId begin, graph::NodeId end) {
  static_assert(K % 4 == 0 && K <= kMaxSweepLanes);
  constexpr uint32_t kBlocks = K / 4;
  const uint64_t* in_offsets = args.in_offsets;
  const __m256d c = _mm256_set1_pd(args.c);
  const __m256d sign_mask = _mm256_set1_pd(-0.0);
  __m256d mv[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) {
    mv[b] = _mm256_loadu_pd(args.m + b * 4);
  }
  __m256d diff[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) diff[b] = _mm256_setzero_pd();
  const uint64_t edge_limit = in_offsets[end];
  for (graph::NodeId y = begin; y < end; ++y) {
    __m256d acc[kBlocks];
    for (uint32_t b = 0; b < kBlocks; ++b) acc[b] = _mm256_setzero_pd();
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      graph::NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const graph::NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        const double* row = args.scaled + static_cast<uint64_t>(src) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = _mm256_add_pd(acc[b], _mm256_loadu_pd(row + b * 4));
        }
      }
    } else {
      const graph::NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        if (e + kPrefetchDistance < edge_limit) {
          _mm_prefetch(reinterpret_cast<const char*>(
                           args.scaled +
                           static_cast<uint64_t>(
                               sources[e + kPrefetchDistance]) *
                               K),
                       _MM_HINT_T0);
        }
        const double* row =
            args.scaled + static_cast<uint64_t>(sources[e]) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = _mm256_add_pd(acc[b], _mm256_loadu_pd(row + b * 4));
        }
      }
    }
    const uint64_t base = static_cast<uint64_t>(y) * K;
    const double* vrow = args.v + base;
    const double* prow = args.p + base;
    double* nrow = args.next + base;
    const __m256d w =
        args.next_scaled != nullptr ? _mm256_set1_pd(args.inv[y])
                                    : _mm256_setzero_pd();
    for (uint32_t b = 0; b < kBlocks; ++b) {
      const __m256d vy = _mm256_loadu_pd(vrow + b * 4);
      const __m256d py = _mm256_loadu_pd(prow + b * 4);
      const __m256d out =
          _mm256_fmadd_pd(vy, mv[b], _mm256_mul_pd(c, acc[b]));
      diff[b] = _mm256_add_pd(
          diff[b],
          _mm256_andnot_pd(sign_mask, _mm256_sub_pd(out, py)));
      _mm256_storeu_pd(nrow + b * 4, out);
      if (args.next_scaled != nullptr) {
        _mm256_storeu_pd(args.next_scaled + base + b * 4,
                         _mm256_mul_pd(out, w));
      }
    }
  }
  for (uint32_t b = 0; b < kBlocks; ++b) {
    _mm256_storeu_pd(diff_slot + b * 4, diff[b]);
  }
}

// ---- float32 lanes ----

/// K floats (K ∈ {8, 16}) of one node accumulate in K/8 ymm registers;
/// the L1 difference widens each 8-float block into two double registers
/// BEFORE subtracting, matching AbsDiff in the scalar body.
template <uint32_t K, bool Compressed>
void Avx2SweepF32(const SweepArgs<float>& args, double* diff_slot,
                  graph::NodeId begin, graph::NodeId end) {
  static_assert(K % 8 == 0 && K <= kMaxSweepLanes);
  constexpr uint32_t kBlocks = K / 8;
  const uint64_t* in_offsets = args.in_offsets;
  const __m256 c = _mm256_set1_ps(args.c);
  __m256 mv[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) {
    mv[b] = _mm256_loadu_ps(args.m + b * 8);
  }
  const __m256d dsign_mask = _mm256_set1_pd(-0.0);
  __m256d diff_lo[kBlocks];
  __m256d diff_hi[kBlocks];
  for (uint32_t b = 0; b < kBlocks; ++b) {
    diff_lo[b] = _mm256_setzero_pd();
    diff_hi[b] = _mm256_setzero_pd();
  }
  const uint64_t edge_limit = in_offsets[end];
  for (graph::NodeId y = begin; y < end; ++y) {
    __m256 acc[kBlocks];
    for (uint32_t b = 0; b < kBlocks; ++b) acc[b] = _mm256_setzero_ps();
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      graph::NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const graph::NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        const float* row = args.scaled + static_cast<uint64_t>(src) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = _mm256_add_ps(acc[b], _mm256_loadu_ps(row + b * 8));
        }
      }
    } else {
      const graph::NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        if (e + kPrefetchDistance < edge_limit) {
          _mm_prefetch(reinterpret_cast<const char*>(
                           args.scaled +
                           static_cast<uint64_t>(
                               sources[e + kPrefetchDistance]) *
                               K),
                       _MM_HINT_T0);
        }
        const float* row = args.scaled + static_cast<uint64_t>(sources[e]) * K;
        for (uint32_t b = 0; b < kBlocks; ++b) {
          acc[b] = _mm256_add_ps(acc[b], _mm256_loadu_ps(row + b * 8));
        }
      }
    }
    const uint64_t base = static_cast<uint64_t>(y) * K;
    const float* vrow = args.v + base;
    const float* prow = args.p + base;
    float* nrow = args.next + base;
    const __m256 w = args.next_scaled != nullptr
                         ? _mm256_set1_ps(args.inv[y])
                         : _mm256_setzero_ps();
    for (uint32_t b = 0; b < kBlocks; ++b) {
      const __m256 vy = _mm256_loadu_ps(vrow + b * 8);
      const __m256 py = _mm256_loadu_ps(prow + b * 8);
      const __m256 out = _mm256_fmadd_ps(vy, mv[b], _mm256_mul_ps(c, acc[b]));
      // Widen out/p to double per half, then |out − p| accumulates in
      // double exactly like the scalar AbsDiff.
      const __m256d out_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(out));
      const __m256d out_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(out, 1));
      const __m256d p_lo = _mm256_cvtps_pd(_mm256_castps256_ps128(py));
      const __m256d p_hi = _mm256_cvtps_pd(_mm256_extractf128_ps(py, 1));
      diff_lo[b] = _mm256_add_pd(
          diff_lo[b],
          _mm256_andnot_pd(dsign_mask, _mm256_sub_pd(out_lo, p_lo)));
      diff_hi[b] = _mm256_add_pd(
          diff_hi[b],
          _mm256_andnot_pd(dsign_mask, _mm256_sub_pd(out_hi, p_hi)));
      _mm256_storeu_ps(nrow + b * 8, out);
      if (args.next_scaled != nullptr) {
        _mm256_storeu_ps(args.next_scaled + base + b * 8,
                         _mm256_mul_ps(out, w));
      }
    }
  }
  for (uint32_t b = 0; b < kBlocks; ++b) {
    _mm256_storeu_pd(diff_slot + b * 8, diff_lo[b]);
    _mm256_storeu_pd(diff_slot + b * 8 + 4, diff_hi[b]);
  }
}

/// K = 4 floats fit one xmm register; the difference accumulator is a
/// single double register covering all four lanes.
template <bool Compressed>
void Avx2SweepF32x4(const SweepArgs<float>& args, double* diff_slot,
                    graph::NodeId begin, graph::NodeId end) {
  constexpr uint32_t K = 4;
  const uint64_t* in_offsets = args.in_offsets;
  const __m128 c = _mm_set1_ps(args.c);
  const __m128 mv = _mm_loadu_ps(args.m);
  const __m256d dsign_mask = _mm256_set1_pd(-0.0);
  __m256d diff = _mm256_setzero_pd();
  const uint64_t edge_limit = in_offsets[end];
  for (graph::NodeId y = begin; y < end; ++y) {
    __m128 acc = _mm_setzero_ps();
    if constexpr (Compressed) {
      const uint8_t* cp = args.comp_bytes + args.comp_offsets[y];
      const uint64_t degree = in_offsets[y + 1] - in_offsets[y];
      graph::NodeId prev = 0;
      for (uint64_t e = 0; e < degree; ++e) {
        const graph::NodeId src = prev + graph::DecodeVarint32Unchecked(&cp);
        prev = src + 1;
        acc = _mm_add_ps(
            acc, _mm_loadu_ps(args.scaled + static_cast<uint64_t>(src) * K));
      }
    } else {
      const graph::NodeId* sources = args.sources;
      for (uint64_t e = in_offsets[y]; e < in_offsets[y + 1]; ++e) {
        if (e + kPrefetchDistance < edge_limit) {
          _mm_prefetch(reinterpret_cast<const char*>(
                           args.scaled +
                           static_cast<uint64_t>(
                               sources[e + kPrefetchDistance]) *
                               K),
                       _MM_HINT_T0);
        }
        acc = _mm_add_ps(acc, _mm_loadu_ps(args.scaled +
                                           static_cast<uint64_t>(sources[e]) *
                                               K));
      }
    }
    const uint64_t base = static_cast<uint64_t>(y) * K;
    const __m128 vy = _mm_loadu_ps(args.v + base);
    const __m128 py = _mm_loadu_ps(args.p + base);
    const __m128 out = _mm_fmadd_ps(vy, mv, _mm_mul_ps(c, acc));
    diff = _mm256_add_pd(
        diff, _mm256_andnot_pd(dsign_mask,
                               _mm256_sub_pd(_mm256_cvtps_pd(out),
                                             _mm256_cvtps_pd(py))));
    _mm_storeu_ps(args.next + base, out);
    if (args.next_scaled != nullptr) {
      _mm_storeu_ps(args.next_scaled + base,
                    _mm_mul_ps(out, _mm_set1_ps(args.inv[y])));
    }
  }
  _mm256_storeu_pd(diff_slot, diff);
}

}  // namespace

SweepRangeFn<double> PickAvx2SweepF64(uint32_t k, bool compressed) {
  if (compressed) {
    switch (k) {
      case 4:
        return Avx2SweepF64<4, true>;
      case 8:
        return Avx2SweepF64<8, true>;
      case 16:
        return Avx2SweepF64<16, true>;
      default:
        return nullptr;
    }
  }
  switch (k) {
    case 4:
      return Avx2SweepF64<4, false>;
    case 8:
      return Avx2SweepF64<8, false>;
    case 16:
      return Avx2SweepF64<16, false>;
    default:
      return nullptr;
  }
}

SweepRangeFn<float> PickAvx2SweepF32(uint32_t k, bool compressed) {
  if (compressed) {
    switch (k) {
      case 4:
        return Avx2SweepF32x4<true>;
      case 8:
        return Avx2SweepF32<8, true>;
      case 16:
        return Avx2SweepF32<16, true>;
      default:
        return nullptr;
    }
  }
  switch (k) {
    case 4:
      return Avx2SweepF32x4<false>;
    case 8:
      return Avx2SweepF32<8, false>;
    case 16:
      return Avx2SweepF32<16, false>;
    default:
      return nullptr;
  }
}

}  // namespace spammass::pagerank::simd

#endif  // defined(__x86_64__) || defined(_M_X64)
