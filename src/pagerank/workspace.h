// Reusable solver workspace: the thread pool and scratch buffers shared by
// repeated PageRank solves.
//
// The eval harness's workload shape — many PageRank-like solves over one
// fixed graph (spam mass issues two, TrustRank two more, every bench/eval
// loop hundreds) — made the seed solver's per-call costs dominate: a fresh
// ThreadPool (thread spawn + join) per SolveJacobi call and fresh iterate /
// scratch allocations per solve. A SolverWorkspace owns both across calls:
//
//   SolverWorkspace ws(/*num_threads=*/8);
//   auto p  = ComputePageRank(graph, v, options, &ws);   // pays setup
//   auto p2 = ComputePageRank(graph, w, options, &ws);   // reuses it all
//
// Lifetime rules:
//   * A workspace is graph-agnostic: buffers are sized on demand per solve,
//     so one workspace may serve solves over different graphs, interleaved
//     freely. Buffers never shrink, so peak memory is that of the largest
//     solve passed through.
//   * NOT thread-safe. One workspace serves one caller thread at a time
//     (the pool inside parallelizes each solve; concurrent solves need one
//     workspace each).
//   * The workspace only caches resources, never results: every solve
//     through a workspace returns bit-identical output to a fresh-state
//     solve with the same options.

#ifndef SPAMMASS_PAGERANK_WORKSPACE_H_
#define SPAMMASS_PAGERANK_WORKSPACE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/thread_pool.h"

namespace spammass::graph {
class WebGraph;
}  // namespace spammass::graph

namespace spammass::pagerank {

class ShardRuntime;

/// Reusable thread pool + scratch vectors for the solvers in solver.h.
class SolverWorkspace {
 public:
  /// Workspace with no pool yet; one is created lazily the first time a
  /// solve requests num_threads > 1. Out-of-line (like every special
  /// member): member cleanup needs ShardRuntime complete.
  SolverWorkspace();

  ~SolverWorkspace();

  /// Workspace with a pool for `num_threads` pre-spawned (avoids paying
  /// thread startup inside the first timed solve). Out-of-line, like the
  /// destructor: member cleanup needs ShardRuntime complete.
  explicit SolverWorkspace(uint32_t num_threads);

  SolverWorkspace(const SolverWorkspace&) = delete;
  SolverWorkspace& operator=(const SolverWorkspace&) = delete;

  /// Returns a pool with exactly `num_threads` workers, creating or
  /// replacing the cached one as needed; returns nullptr for num_threads
  /// <= 1 (serial — the cached pool, if any, is kept for later).
  util::ThreadPool* EnsurePool(uint32_t num_threads);

  /// The cached pool (may be null). Exposed for callers that parallelize
  /// their own pre/post-processing around solves.
  util::ThreadPool* pool() const { return pool_.get(); }

  /// Worker count of the cached pool (0 when none exists).
  uint32_t pool_threads() const { return pool_threads_; }

  /// Returns a ShardRuntime (pagerank/shard_sweep.h) for this graph at
  /// this shard count, building one on the first call and on any
  /// (graph, num_shards) change — the ShardPlan is the expensive part, so
  /// repeated sharded solves over one graph pay it once. The graph must
  /// outlive the returned runtime's use.
  ShardRuntime* EnsureShardRuntime(const graph::WebGraph& graph,
                                   uint32_t num_shards);

  /// Number of solves that have run through this workspace (diagnostics).
  uint64_t solve_count() const { return solve_count_; }

  // Solver-internal scratch accessors. Contents are unspecified between
  // solves; each solve resizes what it needs. Exposed publicly so the
  // kernel-level tests and benches can drive sweeps directly.
  std::vector<double>& iterate() { return iterate_; }
  std::vector<double>& next() { return next_; }
  std::vector<double>& scaled() { return scaled_; }
  std::vector<double>& scaled_next() { return scaled_next_; }
  std::vector<double>& jump_flat() { return jump_flat_; }
  std::vector<double>& node_partials() { return node_partials_; }
  std::vector<double>& dangling_partials() { return dangling_partials_; }
  std::vector<double>& reduce_partials() { return reduce_partials_; }

  // float32 twins used by the mixed-precision sweep pre-phase
  // (SweepPrecision::kMixedF32): lane storage in float halves the sweep's
  // memory traffic; inv_out_f32 caches the narrowed inverse out-degrees.
  std::vector<float>& iterate_f32() { return iterate_f32_; }
  std::vector<float>& next_f32() { return next_f32_; }
  std::vector<float>& scaled_f32() { return scaled_f32_; }
  std::vector<float>& scaled_next_f32() { return scaled_next_f32_; }
  std::vector<float>& jump_flat_f32() { return jump_flat_f32_; }
  std::vector<float>& inv_out_f32() { return inv_out_f32_; }

  /// Bumps the solve counter (called by the solvers).
  void RecordSolve() { ++solve_count_; }

 private:
  std::unique_ptr<util::ThreadPool> pool_;
  uint32_t pool_threads_ = 0;
  uint64_t solve_count_ = 0;
  // Cached sharded-sweep runtime (see EnsureShardRuntime).
  std::unique_ptr<ShardRuntime> shard_runtime_;

  // Interleaved k-wide buffers (n·k): current/next iterate and the
  // double-buffered scaled iterate (the sweep writes next_scaled alongside
  // next, so the rescale pass runs once per solve, not once per sweep);
  // jump_flat holds the k jump vectors.
  std::vector<double> iterate_;
  std::vector<double> next_;
  std::vector<double> scaled_;
  std::vector<double> scaled_next_;
  std::vector<double> jump_flat_;
  // float32 twins for the mixed-precision pre-phase.
  std::vector<float> iterate_f32_;
  std::vector<float> next_f32_;
  std::vector<float> scaled_f32_;
  std::vector<float> scaled_next_f32_;
  std::vector<float> jump_flat_f32_;
  std::vector<float> inv_out_f32_;
  // Chunk-indexed partials for the deterministic reductions.
  std::vector<double> node_partials_;
  std::vector<double> dangling_partials_;
  std::vector<double> reduce_partials_;
};

}  // namespace spammass::pagerank

#endif  // SPAMMASS_PAGERANK_WORKSPACE_H_
