// Debug-mode invariant validation for the CSR web graph.
//
// WebGraph's documented invariants (Section 2.1 of the paper plus the CSR
// layout contract in web_graph.h) are cheap to violate silently — an
// unsorted adjacency row breaks HasEdge's binary search, a transpose
// mismatch corrupts every PageRank sweep that scans in-neighbors, and a
// self-loop invalidates the paper's graph model. Vigna's "Stanford Matrix
// Considered Harmful" documents how exactly this class of silently broken
// matrix invariant corrupts published PageRank numbers; these validators
// exist so refactors of the builders and kernels fail fast instead.
//
// Call sites inside the library run under `#ifndef NDEBUG` (via DCHECK_OK /
// SPAMMASS_DEBUG_ONLY), so release builds pay nothing. All functions are
// also public API: callers ingesting untrusted serialized graphs can invoke
// Validate() explicitly in any build mode.

#ifndef SPAMMASS_GRAPH_GRAPH_VALIDATE_H_
#define SPAMMASS_GRAPH_GRAPH_VALIDATE_H_

#include <cstdint>
#include <span>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::graph {

/// Validates one CSR direction given raw arrays: `offsets` must have
/// `num_nodes + 1` entries, start at 0, be non-decreasing, and end at
/// `adjacency.size()`; every row must be strictly ascending (sorted, no
/// duplicates) with entries in [0, num_nodes) and — because the graph model
/// forbids self-links — no entry equal to its own row index.
/// `direction` names the arrays in error messages ("out" / "in").
util::Status ValidateCsr(NodeId num_nodes, std::span<const uint64_t> offsets,
                         std::span<const NodeId> adjacency,
                         const char* direction = "out");

/// Validates the derived solver-support arrays against the forward CSR
/// offsets: `inv_out_degrees` must hold num_nodes entries with
/// inv_out_degrees[x] == 1.0/outdeg(x) exactly (bitwise, the same IEEE
/// division the kernels rely on) for non-dangling x and exactly 0.0 for
/// dangling x; `dangling_nodes` must be precisely the ascending list of
/// nodes with outdeg == 0.
util::Status ValidateDerivedArrays(NodeId num_nodes,
                                   std::span<const uint64_t> out_offsets,
                                   std::span<const double> inv_out_degrees,
                                   std::span<const NodeId> dangling_nodes);

/// Full structural validation of a WebGraph: both CSR directions via
/// ValidateCsr, forward/transpose consistency (every edge (x, y) in the
/// out-adjacency appears as x in InNeighbors(y), and the edge counts
/// match), the derived inverse-out-degree / dangling-list arrays via
/// ValidateDerivedArrays, and host-name table sizing.
util::Status ValidateGraph(const WebGraph& graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_VALIDATE_H_
