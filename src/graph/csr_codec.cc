#include "graph/csr_codec.h"

#include <cstdint>
#include <span>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace spammass::graph {

CompressedAdjacency EncodeAdjacency(NodeId num_nodes,
                                    std::span<const uint64_t> offsets,
                                    std::span<const NodeId> adjacency) {
  CHECK_EQ(offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CompressedAdjacency compressed;
  compressed.byte_offsets.reserve(static_cast<size_t>(num_nodes) + 1);
  // Gaps on power-law webs are mostly small; one byte per edge is the
  // common case, so reserving the raw edge count avoids most growth.
  compressed.bytes.reserve(adjacency.size());
  for (NodeId x = 0; x < num_nodes; ++x) {
    NodeId prev = 0;
    for (uint64_t e = offsets[x]; e < offsets[x + 1]; ++e) {
      const NodeId id = adjacency[e];
      DCHECK_GE(id, prev);
      AppendVarint32(id - prev, &compressed.bytes);
      prev = id + 1;
    }
    compressed.byte_offsets.push_back(compressed.bytes.size());
  }
  return compressed;
}

namespace {

/// Decodes one varint from [*p, end) with full bounds and length checking.
/// Returns false on truncation or a varint longer than 5 bytes.
bool DecodeVarint32Checked(const uint8_t** p, const uint8_t* end,
                           uint32_t* value) {
  const uint8_t* s = *p;
  uint32_t out = 0;
  uint32_t shift = 0;
  while (true) {
    if (s == end || shift >= 35) return false;
    out |= static_cast<uint32_t>(*s & 0x7fu) << shift;
    if ((*s & 0x80u) == 0) break;
    ++s;
    shift += 7;
  }
  *p = s + 1;
  *value = out;
  return true;
}

}  // namespace

util::Status DecodeRow(const CompressedAdjacency& compressed, NodeId node,
                       uint32_t degree, NodeId num_nodes,
                       std::vector<NodeId>* out) {
  if (static_cast<size_t>(node) + 1 >= compressed.byte_offsets.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "compressed row %u out of range (%u rows)", node,
        compressed.num_rows()));
  }
  const uint64_t begin = compressed.byte_offsets[node];
  const uint64_t end = compressed.byte_offsets[node + 1];
  if (begin > end || end > compressed.bytes.size()) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "compressed row %u has malformed byte frame [%llu, %llu)", node,
        static_cast<unsigned long long>(begin),
        static_cast<unsigned long long>(end)));
  }
  out->clear();
  out->reserve(degree);
  const uint8_t* p = compressed.bytes.data() + begin;
  const uint8_t* const row_end = compressed.bytes.data() + end;
  // prev tracks id+1 of the last decoded neighbor; accumulate in 64 bits so
  // a hostile max gap cannot wrap back into range.
  uint64_t prev = 0;
  for (uint32_t i = 0; i < degree; ++i) {
    uint32_t gap = 0;
    if (!DecodeVarint32Checked(&p, row_end, &gap)) {
      return util::Status::IoError(util::StringPrintf(
          "compressed row %u truncated at neighbor %u of %u", node, i,
          degree));
    }
    const uint64_t id = prev + gap;
    if (id >= num_nodes) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "compressed row %u neighbor %u decodes to %llu >= num_nodes %u",
          node, i, static_cast<unsigned long long>(id), num_nodes));
    }
    out->push_back(static_cast<NodeId>(id));
    prev = id + 1;
  }
  if (p != row_end) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "compressed row %u has %lld trailing byte(s)", node,
        static_cast<long long>(row_end - p)));
  }
  return util::Status::OK();
}

util::Status ValidateCompressedAdjacency(const CompressedAdjacency& compressed,
                                         NodeId num_nodes,
                                         std::span<const uint64_t> offsets,
                                         std::span<const NodeId> adjacency) {
  if (compressed.byte_offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return util::Status::InvalidArgument(util::StringPrintf(
        "compressed section has %zu byte offsets, want %zu",
        compressed.byte_offsets.size(), static_cast<size_t>(num_nodes) + 1));
  }
  if (compressed.byte_offsets.front() != 0 ||
      compressed.byte_offsets.back() != compressed.bytes.size()) {
    return util::Status::InvalidArgument(
        "compressed byte offsets do not frame the byte blob");
  }
  std::vector<NodeId> row;
  for (NodeId x = 0; x < num_nodes; ++x) {
    if (compressed.byte_offsets[x] > compressed.byte_offsets[x + 1]) {
      return util::Status::InvalidArgument(util::StringPrintf(
          "compressed byte offsets decrease at row %u", x));
    }
    const uint32_t degree =
        static_cast<uint32_t>(offsets[x + 1] - offsets[x]);
    util::Status status = DecodeRow(compressed, x, degree, num_nodes, &row);
    if (!status.ok()) return status;
    for (uint32_t i = 0; i < degree; ++i) {
      if (row[i] != adjacency[offsets[x] + i]) {
        return util::Status::InvalidArgument(util::StringPrintf(
            "compressed row %u neighbor %u decodes to %u, CSR has %u", x, i,
            row[i], adjacency[offsets[x] + i]));
      }
    }
  }
  return util::Status::OK();
}

}  // namespace spammass::graph
