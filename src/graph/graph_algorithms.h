// Graph traversal primitives used by core-coverage diagnostics: which part
// of the web a good core can reach (and therefore endow with PageRank
// contribution) is exactly its forward-reachable set, and the isolated
// communities behind the Figure 3 anomalies show up as weakly connected
// components disjoint from the core.

#ifndef SPAMMASS_GRAPH_GRAPH_ALGORITHMS_H_
#define SPAMMASS_GRAPH_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::graph {

/// Multi-source BFS along out-edges; returns a bitmap of reachable nodes
/// (sources included).
std::vector<bool> ReachableFrom(const WebGraph& graph,
                                const std::vector<NodeId>& sources);

/// Multi-source BFS along in-edges: the set of nodes that can reach any
/// source.
std::vector<bool> CanReach(const WebGraph& graph,
                           const std::vector<NodeId>& targets);

/// BFS distance (number of links) from the source set; kUnreachable for
/// unreached nodes.
inline constexpr uint32_t kUnreachableDistance = 0xffffffffu;
std::vector<uint32_t> BfsDistances(const WebGraph& graph,
                                   const std::vector<NodeId>& sources);

/// Weakly connected components: returns component id per node (dense, in
/// [0, num_components)) and stores the count in *num_components if non-null.
std::vector<uint32_t> WeaklyConnectedComponents(const WebGraph& graph,
                                                uint32_t* num_components);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_ALGORITHMS_H_
