// Graph (de)serialization. Two formats:
//   * Text edge list — one "source target" pair per line, '#' comments,
//     interoperable with common web-graph dumps (e.g. WebGraph/SNAP style).
//   * Binary — little-endian container (magic "SMWG"). Version 2 dumps
//     both CSR directions (forward offsets/targets, transposed
//     offsets/sources, optional host-name blob) as a handful of bulk
//     writes with a trailing interleaved-FNV checksum, and loads them back
//     into WebGraph without re-materializing an edge-pair list, re-sorting,
//     or rebuilding the transpose; see docs/graph_format.md for the byte
//     layout. Format 2.1 adds an optional checksummed delta+varint
//     compressed in-adjacency section (csr_codec.h) between the CSR arrays
//     and the names; files without it remain byte-identical to 2.0
//     output. Format 2.2 (WriteBinaryV22) is the page-aligned *paged*
//     layout: a section table in a 4 KiB header page, every array stored
//     4 KiB-aligned with per-section checksums, so ReadBinaryMmap can back
//     a WebGraph zero-copy by the mapped file and load in O(1) instead of
//     O(n+m). Version 1 (per-row records, no checksum, no names) is still
//     readable for migration.
// Host names travel inside the v2 binary when present; the companion
// "<id>\t<host>" text map remains available for the text format.

#ifndef SPAMMASS_GRAPH_GRAPH_IO_H_
#define SPAMMASS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Writes "u v" lines (plus a size header comment). Output is assembled in
/// a large buffer via std::to_chars and flushed in ~1 MiB slabs.
util::Status WriteEdgeListText(const WebGraph& graph, const std::string& path);

/// Parses an edge list. Lines starting with '#' and blank lines are skipped;
/// node count is max id + 1 unless a "# nodes: N" header raises it.
/// Duplicate edges and self-loops in the file are normalized away. `pool`
/// parallelizes the final sort/dedup/CSR build for large inputs.
util::Result<WebGraph> ReadEdgeListText(const std::string& path,
                                        util::ThreadPool* pool = nullptr);

/// Writes the current binary container (magic "SMWG", version 2): both CSR
/// directions and, when the graph carries them, the compressed
/// in-adjacency section (format 2.1) and the host-name blob, ending in a
/// whole-file checksum.
util::Status WriteBinary(const WebGraph& graph, const std::string& path);

/// Writes the page-aligned v2.2 container for mmap loading: a 4 KiB header
/// page holding a checksummed section table, then every array — both CSR
/// directions plus the derived solver arrays (inverse out-degrees,
/// dangling list) and the optional host-name sections — at a 4 KiB-aligned
/// offset with full and bounded-sample FNV checksums per section. The
/// compressed in-adjacency is NOT persisted (rebuild on demand with
/// BuildCompressedInAdjacency); see docs/graph_format.md for the layout
/// and the v2.2 trust model.
util::Status WriteBinaryV22(const WebGraph& graph, const std::string& path);

/// Maps a v2.2 file and returns a WebGraph whose arrays are zero-copy
/// views into the mapping (WebGraph::is_mapped()). Load cost is O(1) in
/// the graph size: the header page is validated (magic, section table,
/// header checksum, all section bounds — so no access can fault past EOF),
/// each section's bounded head/tail sample checksum is verified, and the
/// small dangling section is fully validated; debug builds additionally
/// verify every full-section checksum and run the O(n+m) structural
/// validators. Host names (when present) are copied to the heap. Fails
/// with InvalidArgument on v1/v2.0/v2.1 files — those load via ReadBinary.
util::Result<WebGraph> ReadBinaryMmap(const std::string& path);

/// Writes the legacy version-1 container (per-row degree + target records,
/// no checksum, no host names). Kept only as a fixture for migration
/// tests and the v1-vs-v2 load benchmarks; new code writes v2.
util::Status WriteBinaryV1(const WebGraph& graph, const std::string& path);

/// Reads a binary graph written by WriteBinary (v2), WriteBinaryV22, or
/// WriteBinaryV1, always into heap-owned storage. Version 2 payloads are
/// checksum-verified and structurally validated (ValidateCsr on both
/// directions), then adopted directly as the graph's CSR arrays; only the
/// cheap derived solver arrays are rebuilt — in parallel when `pool` is
/// non-null. v2.2 files take the same full-validation path (every section
/// checksum verified, both CSR directions validated) with the arrays
/// copied out of a temporary mapping — use ReadBinaryMmap for the
/// zero-copy load.
util::Result<WebGraph> ReadBinary(const std::string& path,
                                  util::ThreadPool* pool = nullptr);

/// Writes "<id>\t<host_name>" lines for every node.
util::Status WriteHostNames(const WebGraph& graph, const std::string& path);

/// Reads a host-name map written by WriteHostNames and attaches it to
/// `graph`. Every node must be covered.
util::Status ReadHostNames(const std::string& path, WebGraph* graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_IO_H_
