// Graph (de)serialization. Two formats:
//   * Text edge list — one "source target" pair per line, '#' comments,
//     interoperable with common web-graph dumps (e.g. WebGraph/SNAP style).
//   * Binary — little-endian CSR dump with a magic header, for fast reloads
//     of large synthetic crawls.
// Host names travel in a companion "<id>\t<host>" text map.

#ifndef SPAMMASS_GRAPH_GRAPH_IO_H_
#define SPAMMASS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::graph {

/// Writes "u v" lines (plus a size header comment).
util::Status WriteEdgeListText(const WebGraph& graph, const std::string& path);

/// Parses an edge list. Lines starting with '#' and blank lines are skipped;
/// node count is max id + 1 unless a "# nodes: N" header raises it.
/// Duplicate edges and self-loops in the file are normalized away.
util::Result<WebGraph> ReadEdgeListText(const std::string& path);

/// Writes the CSR arrays in a binary container (magic "SMWG", version 1).
util::Status WriteBinary(const WebGraph& graph, const std::string& path);

/// Reads a binary graph written by WriteBinary.
util::Result<WebGraph> ReadBinary(const std::string& path);

/// Writes "<id>\t<host_name>" lines for every node.
util::Status WriteHostNames(const WebGraph& graph, const std::string& path);

/// Reads a host-name map written by WriteHostNames and attaches it to
/// `graph`. Every node must be covered.
util::Status ReadHostNames(const std::string& path, WebGraph* graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_IO_H_
