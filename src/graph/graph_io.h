// Graph (de)serialization. Two formats:
//   * Text edge list — one "source target" pair per line, '#' comments,
//     interoperable with common web-graph dumps (e.g. WebGraph/SNAP style).
//   * Binary — little-endian container (magic "SMWG"). Version 2 dumps
//     both CSR directions (forward offsets/targets, transposed
//     offsets/sources, optional host-name blob) as a handful of bulk
//     writes with a trailing interleaved-FNV checksum, and loads them back
//     into WebGraph without re-materializing an edge-pair list, re-sorting,
//     or rebuilding the transpose; see docs/graph_format.md for the byte
//     layout. Format 2.1 adds an optional checksummed delta+varint
//     compressed in-adjacency section (csr_codec.h) between the CSR arrays
//     and the names; files without it remain byte-identical to 2.0
//     output. Version 1 (per-row records, no checksum, no names) is still
//     readable for migration.
// Host names travel inside the v2 binary when present; the companion
// "<id>\t<host>" text map remains available for the text format.

#ifndef SPAMMASS_GRAPH_GRAPH_IO_H_
#define SPAMMASS_GRAPH_GRAPH_IO_H_

#include <string>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Writes "u v" lines (plus a size header comment). Output is assembled in
/// a large buffer via std::to_chars and flushed in ~1 MiB slabs.
util::Status WriteEdgeListText(const WebGraph& graph, const std::string& path);

/// Parses an edge list. Lines starting with '#' and blank lines are skipped;
/// node count is max id + 1 unless a "# nodes: N" header raises it.
/// Duplicate edges and self-loops in the file are normalized away. `pool`
/// parallelizes the final sort/dedup/CSR build for large inputs.
util::Result<WebGraph> ReadEdgeListText(const std::string& path,
                                        util::ThreadPool* pool = nullptr);

/// Writes the current binary container (magic "SMWG", version 2): both CSR
/// directions and, when the graph carries them, the compressed
/// in-adjacency section (format 2.1) and the host-name blob, ending in a
/// whole-file checksum.
util::Status WriteBinary(const WebGraph& graph, const std::string& path);

/// Writes the legacy version-1 container (per-row degree + target records,
/// no checksum, no host names). Kept only as a fixture for migration
/// tests and the v1-vs-v2 load benchmarks; new code writes v2.
util::Status WriteBinaryV1(const WebGraph& graph, const std::string& path);

/// Reads a binary graph written by WriteBinary (v2) or WriteBinaryV1.
/// Version 2 payloads are checksum-verified and structurally validated
/// (ValidateCsr on both directions), then adopted directly as the graph's
/// CSR arrays; only the cheap derived solver arrays are rebuilt — in
/// parallel when `pool` is non-null.
util::Result<WebGraph> ReadBinary(const std::string& path,
                                  util::ThreadPool* pool = nullptr);

/// Writes "<id>\t<host_name>" lines for every node.
util::Status WriteHostNames(const WebGraph& graph, const std::string& path);

/// Reads a host-name map written by WriteHostNames and attaches it to
/// `graph`. Every node must be covered.
util::Status ReadHostNames(const std::string& path, WebGraph* graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_IO_H_
