// Site-level aggregation. Section 2.1 of the paper deliberately abstracts
// the granularity — "nodes may be pages, hosts, or sites" — and the
// evaluation runs at host level. This module collapses a host graph to the
// site level: hosts sharing a registered domain ("a.shop.example.com" and
// "b.example.com" → "example.com") become one node, inter-site links are
// deduplicated and intra-site links vanish, exactly how the host graph was
// itself condensed from the page graph (Section 4.1). Spam mass then runs
// unchanged on the site graph.

#ifndef SPAMMASS_GRAPH_SITE_AGGREGATION_H_
#define SPAMMASS_GRAPH_SITE_AGGREGATION_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::graph {

/// Extracts the registered domain of a host name: the last two labels, or
/// the last three when the two-label suffix is a country-code second-level
/// registry ("co.uk", "com.br", "edu.pl", ...). Host names without a dot
/// are returned unchanged. Comparison is case-insensitive (input should be
/// normalized first; see host_normalize.h).
std::string RegisteredDomain(std::string_view host);

/// Result of collapsing a host graph to sites.
struct SiteAggregationResult {
  WebGraph graph;
  /// to_site[host_id] = site node id.
  std::vector<NodeId> to_site;
  /// Number of hosts per site node.
  std::vector<uint32_t> site_sizes;
};

/// Builds the site graph. Site node names are the registered domains.
/// Requires host names on the graph.
util::Result<SiteAggregationResult> AggregateToSites(const WebGraph& graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_SITE_AGGREGATION_H_
