// Mutable edge accumulator that normalizes an untrusted edge stream into a
// WebGraph: duplicate links between the same ordered pair collapse into one
// edge (the paper collapses all hyperlinks between two hosts the same way,
// Section 4.1) and self-links are dropped (Section 2.1).

#ifndef SPAMMASS_GRAPH_GRAPH_BUILDER_H_
#define SPAMMASS_GRAPH_GRAPH_BUILDER_H_

#include <string>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Accumulates nodes and edges, then produces an immutable WebGraph.
class GraphBuilder {
 public:
  GraphBuilder() = default;
  /// Pre-declares `num_nodes` nodes (ids [0, num_nodes)).
  explicit GraphBuilder(NodeId num_nodes) : num_nodes_(num_nodes) {}

  /// Adds a new node and returns its id.
  NodeId AddNode();

  /// Adds a new node with a host name and returns its id.
  NodeId AddNode(std::string host_name);

  /// Ensures at least `n` nodes exist.
  void EnsureNodes(NodeId n);

  /// Records the directed link (from, to). Self-links are silently dropped;
  /// duplicates collapse at Build() time. Endpoints must already exist.
  void AddEdge(NodeId from, NodeId to);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_pending_edges() const { return edges_.size(); }

  /// Sorts, dedupes and freezes into a WebGraph. The builder is left empty.
  ///
  /// When `pool` is non-null and the edge set is large enough, the build
  /// runs the parallel pipeline: edges are partitioned into contiguous
  /// source-id shards, each shard is sorted and deduplicated on a worker,
  /// and the shards are stitched into CSR via prefix sums. Because the
  /// shards partition the source range, the concatenation of sorted shards
  /// IS the globally sorted unique edge list — the resulting graph is
  /// bit-identical to the serial build for every pool size. Small inputs
  /// (and pool == nullptr) take the serial path.
  WebGraph Build(util::ThreadPool* pool = nullptr);

 private:
  WebGraph BuildParallel(util::ThreadPool* pool);

  NodeId num_nodes_ = 0;
  std::vector<std::pair<NodeId, NodeId>> edges_;
  std::vector<std::string> host_names_;
  bool any_names_ = false;
};

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_BUILDER_H_
