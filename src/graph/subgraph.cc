#include "graph/subgraph.h"

#include "graph/graph_builder.h"
#include "util/logging.h"

namespace spammass::graph {

Subgraph InducedSubgraph(const WebGraph& graph,
                         const std::vector<bool>& keep) {
  CHECK_EQ(keep.size(), static_cast<size_t>(graph.num_nodes()));
  Subgraph out;
  out.to_sub.assign(graph.num_nodes(), kInvalidNode);
  const bool has_names = !graph.host_names().empty();
  GraphBuilder builder;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (!keep[u]) continue;
    NodeId nid = has_names ? builder.AddNode(std::string(graph.HostName(u)))
                           : builder.AddNode();
    out.to_sub[u] = nid;
    out.to_original.push_back(u);
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    if (!keep[u]) continue;
    for (NodeId v : graph.OutNeighbors(u)) {
      if (keep[v]) builder.AddEdge(out.to_sub[u], out.to_sub[v]);
    }
  }
  out.graph = builder.Build();
  return out;
}

}  // namespace spammass::graph
