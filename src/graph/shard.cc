#include "graph/shard.h"

#include <algorithm>

#include "graph/csr_codec.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/logging.h"

namespace spammass::graph {

namespace {

// PickShardCount's search ceiling; far above any sensible in-process
// shard count (the sweep parallelism comes from chunks, not shards).
constexpr uint32_t kMaxShardCount = 64;

constexpr NodeId AlignUpNode(uint64_t v, uint64_t alignment) {
  const uint64_t aligned = (v + alignment - 1) / alignment * alignment;
  return static_cast<NodeId>(aligned);
}

}  // namespace

std::vector<uint8_t> EncodeExchangeList(std::span<const NodeId> nodes) {
  std::vector<uint8_t> encoded;
  encoded.reserve(nodes.size());  // ~1-2 bytes/id on locality-ordered webs.
  NodeId prev = 0;
  for (size_t i = 0; i < nodes.size(); ++i) {
    const NodeId id = nodes[i];
    if (i == 0) {
      AppendVarint32(id, &encoded);
    } else {
      CHECK_GT(id, prev) << "exchange lists must be strictly ascending";
      AppendVarint32(id - prev - 1, &encoded);
    }
    prev = id;
  }
  return encoded;
}

std::vector<NodeId> DecodeExchangeList(std::span<const uint8_t> encoded,
                                       uint64_t count) {
  std::vector<NodeId> nodes;
  nodes.reserve(count);
  const uint8_t* p = encoded.data();
  NodeId prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    const uint32_t gap = DecodeVarint32Unchecked(&p);
    const NodeId id = (i == 0) ? gap : prev + gap + 1;
    nodes.push_back(id);
    prev = id;
  }
  CHECK_EQ(static_cast<size_t>(p - encoded.data()), encoded.size())
      << "exchange list decode did not consume its byte range";
  return nodes;
}

ShardPlan ShardPlan::Build(const WebGraph& graph, uint32_t num_shards,
                           uint64_t alignment) {
  CHECK_GE(num_shards, 1u);
  CHECK_GE(alignment, 1u);
  const NodeId n = graph.num_nodes();
  const uint64_t m = graph.num_edges();
  SPAMMASS_TRACE_SPAN("graph.shard_plan", "shards",
                      static_cast<uint64_t>(num_shards), "nodes",
                      static_cast<uint64_t>(n));
  obs::MetricsRegistry::Global().GetCounter("graph.shard_plans")->Increment();

  ShardPlan plan;
  plan.num_nodes_ = n;
  plan.alignment_ = alignment;

  // Cut points: for shard s the smallest alignment multiple whose in-edge
  // prefix reaches s/num_shards of the total. Monotone by construction;
  // trailing shards collapse to empty when the graph runs out of aligned
  // cut points.
  const auto in_offsets = graph.InOffsets();
  plan.boundaries_.reserve(num_shards + 1);
  plan.boundaries_.push_back(0);
  for (uint32_t s = 1; s < num_shards; ++s) {
    const uint64_t target =
        m / num_shards * s + (m % num_shards) * s / num_shards;
    const auto it =
        std::lower_bound(in_offsets.begin(), in_offsets.end(), target);
    const uint64_t cut = static_cast<uint64_t>(it - in_offsets.begin());
    NodeId b = AlignUpNode(cut, alignment);
    if (b > n) b = n;
    if (b < plan.boundaries_.back()) b = plan.boundaries_.back();
    plan.boundaries_.push_back(b);
  }
  plan.boundaries_.push_back(n);
  plan.ranges_.reserve(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    plan.ranges_.push_back({plan.boundaries_[s], plan.boundaries_[s + 1]});
  }

  // Ghost tables and the remapped sources array. Shard by shard: collect
  // the sorted-unique foreign sources of the shard's rows, then rewrite
  // each foreign entry to num_nodes + its global ghost slot. Edge
  // positions never move.
  const auto sources = graph.Sources();
  plan.sources_local_.assign(sources.begin(), sources.end());
  plan.ghost_base_.reserve(num_shards + 1);
  plan.stats_.resize(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const ShardRange range = plan.ranges_[s];
    SPAMMASS_TRACE_SPAN("graph.shard_plan.shard", "shard",
                        static_cast<uint64_t>(s), "rows", range.size());
    plan.ghost_base_.push_back(plan.ghost_nodes_.size());
    const uint64_t row_begin = in_offsets[range.begin];
    const uint64_t row_end = in_offsets[range.end];

    std::vector<NodeId> ghosts;
    for (uint64_t e = row_begin; e < row_end; ++e) {
      const NodeId src = sources[e];
      if (src < range.begin || src >= range.end) ghosts.push_back(src);
    }
    // Before dedup this is one entry per cross-shard edge — the sweep's
    // ghost-gather count.
    const uint64_t ghost_in_edges = ghosts.size();
    std::sort(ghosts.begin(), ghosts.end());
    ghosts.erase(std::unique(ghosts.begin(), ghosts.end()), ghosts.end());

    const uint64_t slot_base =
        static_cast<uint64_t>(n) + plan.ghost_base_.back();
    for (uint64_t e = row_begin; e < row_end; ++e) {
      const NodeId src = plan.sources_local_[e];
      if (src < range.begin || src >= range.end) {
        const auto it =
            std::lower_bound(ghosts.begin(), ghosts.end(), src);
        plan.sources_local_[e] =
            static_cast<NodeId>(slot_base + (it - ghosts.begin()));
      }
    }

    ShardStats& stats = plan.stats_[s];
    stats.in_edges = row_end - row_begin;
    stats.ghosts = ghosts.size();
    stats.ghost_in_edges = ghost_in_edges;
    stats.working_set_bytes = range.size() * (3 * 8 + 8 + 8) +
                              ghosts.size() * 8 + stats.in_edges * 4;

    plan.ghost_nodes_.insert(plan.ghost_nodes_.end(), ghosts.begin(),
                             ghosts.end());
  }
  plan.ghost_base_.push_back(plan.ghost_nodes_.size());
  CHECK_LE(static_cast<uint64_t>(n) + plan.ghost_nodes_.size(),
           static_cast<uint64_t>(kInvalidNode))
      << "ghost slots exceed the 32-bit id space";

  // Exchange lists: each shard's ghost table is ascending by global id,
  // so the slice owned by one producer shard is one contiguous run —
  // encode each run with the csr_codec gap scheme, then decode it back so
  // the runtime consumes exactly what the wire form carries.
  for (uint32_t s = 0; s < num_shards; ++s) {
    const uint64_t g_begin = plan.ghost_base_[s];
    const uint64_t g_end = plan.ghost_base_[s + 1];
    uint64_t i = g_begin;
    while (i < g_end) {
      const uint32_t producer = plan.ShardOf(plan.ghost_nodes_[i]);
      uint64_t j = i;
      while (j < g_end &&
             plan.ghost_nodes_[j] < plan.ranges_[producer].end) {
        ++j;
      }
      ShardExchange exchange;
      exchange.producer = producer;
      exchange.consumer = s;
      exchange.slot_begin = static_cast<uint64_t>(n) + i;
      exchange.encoded = EncodeExchangeList(
          std::span<const NodeId>(plan.ghost_nodes_.data() + i, j - i));
      exchange.nodes = DecodeExchangeList(exchange.encoded, j - i);
      plan.stats_[s].boundary_bytes += exchange.encoded.size();
      plan.exchanges_.push_back(std::move(exchange));
      i = j;
    }
  }
  return plan;
}

uint32_t ShardPlan::ShardOf(NodeId y) const {
  DCHECK_LT(y, num_nodes_);
  const auto it =
      std::upper_bound(boundaries_.begin() + 1, boundaries_.end(), y);
  return static_cast<uint32_t>(it - (boundaries_.begin() + 1));
}

uint64_t ShardPlan::max_working_set_bytes() const {
  uint64_t max_bytes = 0;
  for (const ShardStats& s : stats_) {
    max_bytes = std::max(max_bytes, s.working_set_bytes);
  }
  return max_bytes;
}

uint32_t PickShardCount(const WebGraph& graph, uint64_t llc_bytes) {
  CHECK_GE(llc_bytes, 1u);
  // Same per-row cost model as ShardStats::working_set_bytes, ghost-free:
  // prev/next/scaled + in-offsets + inverse out-degrees per node, one
  // sources entry per edge.
  const uint64_t total_bytes =
      static_cast<uint64_t>(graph.num_nodes()) * (3 * 8 + 8 + 8) +
      graph.num_edges() * 4;
  uint32_t shards = 1;
  while (shards < kMaxShardCount && total_bytes / shards > llc_bytes) {
    shards *= 2;
  }
  return shards;
}

}  // namespace spammass::graph
