#include "graph/graph_validate.h"

#include <algorithm>
#include <string>

namespace spammass::graph {

using util::Status;

namespace {

std::string RowContext(const char* direction, NodeId row) {
  return std::string(direction) + "-adjacency row " + std::to_string(row);
}

}  // namespace

Status ValidateCsr(NodeId num_nodes, std::span<const uint64_t> offsets,
                   std::span<const NodeId> adjacency, const char* direction) {
  if (offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets size " +
        std::to_string(offsets.size()) + " != num_nodes + 1 = " +
        std::to_string(static_cast<size_t>(num_nodes) + 1));
  }
  if (offsets.front() != 0) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets must start at 0, got " +
        std::to_string(offsets.front()));
  }
  if (offsets.back() != adjacency.size()) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets end at " +
        std::to_string(offsets.back()) + " but adjacency holds " +
        std::to_string(adjacency.size()) + " entries");
  }
  for (NodeId row = 0; row < num_nodes; ++row) {
    const uint64_t begin = offsets[row];
    const uint64_t end = offsets[row + 1];
    if (begin > end) {
      return Status::FailedPrecondition(
          RowContext(direction, row) + ": offsets decrease (" +
          std::to_string(begin) + " > " + std::to_string(end) + ")");
    }
    for (uint64_t i = begin; i < end; ++i) {
      const NodeId neighbor = adjacency[i];
      if (neighbor >= num_nodes) {
        return Status::FailedPrecondition(
            RowContext(direction, row) + ": neighbor " +
            std::to_string(neighbor) + " out of range [0, " +
            std::to_string(num_nodes) + ")");
      }
      if (neighbor == row) {
        return Status::FailedPrecondition(
            RowContext(direction, row) +
            ": self-loop (disallowed by the graph model, Section 2.1)");
      }
      if (i > begin && adjacency[i - 1] >= neighbor) {
        return Status::FailedPrecondition(
            RowContext(direction, row) + ": entries not strictly ascending (" +
            std::to_string(adjacency[i - 1]) + " then " +
            std::to_string(neighbor) + ")");
      }
    }
  }
  return Status::OK();
}

Status ValidateGraph(const WebGraph& graph) {
  const NodeId n = graph.num_nodes();
  SPAMMASS_RETURN_NOT_OK(
      ValidateCsr(n, graph.OutOffsets(), graph.Targets(), "out"));
  SPAMMASS_RETURN_NOT_OK(
      ValidateCsr(n, graph.InOffsets(), graph.Sources(), "in"));

  if (graph.Targets().size() != graph.Sources().size()) {
    return Status::FailedPrecondition(
        "forward holds " + std::to_string(graph.Targets().size()) +
        " edges but transpose holds " +
        std::to_string(graph.Sources().size()));
  }
  // Every forward edge (x, y) must appear in the transpose. Rows are sorted
  // (verified above), so membership is a binary search; combined with equal
  // edge counts this makes the two directions exactly equivalent.
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y : graph.OutNeighbors(x)) {
      auto in = graph.InNeighbors(y);
      if (!std::binary_search(in.begin(), in.end(), x)) {
        return Status::FailedPrecondition(
            "edge (" + std::to_string(x) + ", " + std::to_string(y) +
            ") present in out-adjacency but missing from in-adjacency");
      }
    }
  }

  if (!graph.host_names().empty() &&
      graph.host_names().size() != static_cast<size_t>(n)) {
    return Status::FailedPrecondition(
        "host_names holds " + std::to_string(graph.host_names().size()) +
        " entries for " + std::to_string(n) + " nodes");
  }
  return Status::OK();
}

}  // namespace spammass::graph
