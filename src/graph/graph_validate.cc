#include "graph/graph_validate.h"

#include <algorithm>
#include <string>

namespace spammass::graph {

using util::Status;

namespace {

std::string RowContext(const char* direction, NodeId row) {
  return std::string(direction) + "-adjacency row " + std::to_string(row);
}

}  // namespace

Status ValidateCsr(NodeId num_nodes, std::span<const uint64_t> offsets,
                   std::span<const NodeId> adjacency, const char* direction) {
  if (offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets size " +
        std::to_string(offsets.size()) + " != num_nodes + 1 = " +
        std::to_string(static_cast<size_t>(num_nodes) + 1));
  }
  if (offsets.front() != 0) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets must start at 0, got " +
        std::to_string(offsets.front()));
  }
  if (offsets.back() != adjacency.size()) {
    return Status::FailedPrecondition(
        std::string(direction) + "-offsets end at " +
        std::to_string(offsets.back()) + " but adjacency holds " +
        std::to_string(adjacency.size()) + " entries");
  }
  // Offsets first: monotone non-decreasing. Combined with the front/back
  // checks above this bounds every offset by adjacency.size(), which makes
  // the entry scan below safe even for hostile offset arrays (a huge
  // middle offset would otherwise walk the scan off the end of the
  // adjacency array before any per-entry check could fire).
  for (NodeId row = 0; row < num_nodes; ++row) {
    if (offsets[row] > offsets[row + 1]) {
      return Status::FailedPrecondition(
          RowContext(direction, row) + ": offsets decrease (" +
          std::to_string(offsets[row]) + " > " +
          std::to_string(offsets[row + 1]) + ")");
    }
  }
  // Entry scan. This runs on every checksummed v2 load, where the graph
  // is almost always clean, so the fast path folds all violations into
  // one flag with no data-dependent branches: an ascending compare per
  // adjacent pair, a self-loop compare per entry, and a range check on
  // the last entry only (strict ascent makes it the row maximum). A
  // dirty row is re-walked entry by entry to report the first offending
  // entry with the same diagnostics as always.
  for (NodeId row = 0; row < num_nodes; ++row) {
    const uint64_t begin = offsets[row];
    const uint64_t end = offsets[row + 1];
    if (begin == end) continue;
    unsigned bad = static_cast<unsigned>(adjacency[begin] == row) |
                   static_cast<unsigned>(adjacency[end - 1] >= num_nodes);
    for (uint64_t i = begin + 1; i < end; ++i) {
      bad |= static_cast<unsigned>(adjacency[i - 1] >= adjacency[i]) |
             static_cast<unsigned>(adjacency[i] == row);
    }
    if (bad == 0) continue;
    for (uint64_t i = begin; i < end; ++i) {
      const NodeId neighbor = adjacency[i];
      if (neighbor >= num_nodes) {
        return Status::FailedPrecondition(
            RowContext(direction, row) + ": neighbor " +
            std::to_string(neighbor) + " out of range [0, " +
            std::to_string(num_nodes) + ")");
      }
      if (neighbor == row) {
        return Status::FailedPrecondition(
            RowContext(direction, row) +
            ": self-loop (disallowed by the graph model, Section 2.1)");
      }
      if (i > begin && adjacency[i - 1] >= neighbor) {
        return Status::FailedPrecondition(
            RowContext(direction, row) + ": entries not strictly ascending (" +
            std::to_string(adjacency[i - 1]) + " then " +
            std::to_string(neighbor) + ")");
      }
    }
  }
  return Status::OK();
}

Status ValidateDerivedArrays(NodeId num_nodes,
                             std::span<const uint64_t> out_offsets,
                             std::span<const double> inv_out_degrees,
                             std::span<const NodeId> dangling_nodes) {
  if (out_offsets.size() != static_cast<size_t>(num_nodes) + 1) {
    return Status::FailedPrecondition(
        "out-offsets size " + std::to_string(out_offsets.size()) +
        " != num_nodes + 1 = " +
        std::to_string(static_cast<size_t>(num_nodes) + 1));
  }
  if (inv_out_degrees.size() != static_cast<size_t>(num_nodes)) {
    return Status::FailedPrecondition(
        "inv-out-degree array holds " +
        std::to_string(inv_out_degrees.size()) + " entries for " +
        std::to_string(num_nodes) + " nodes");
  }
  size_t dangling_cursor = 0;
  for (NodeId x = 0; x < num_nodes; ++x) {
    const uint64_t degree = out_offsets[x + 1] - out_offsets[x];
    if (degree == 0) {
      if (dangling_cursor >= dangling_nodes.size() ||
          dangling_nodes[dangling_cursor] != x) {
        return Status::FailedPrecondition(
            "dangling node " + std::to_string(x) +
            " missing from the dangling list (or list out of order)");
      }
      ++dangling_cursor;
      if (inv_out_degrees[x] != 0.0) {
        return Status::FailedPrecondition(
            "dangling node " + std::to_string(x) +
            " carries nonzero inverse out-degree " +
            std::to_string(inv_out_degrees[x]));
      }
    } else if (inv_out_degrees[x] != 1.0 / static_cast<double>(degree)) {
      // Exact comparison on purpose: the cached weight must be the very
      // IEEE quotient the kernels would otherwise compute per edge.
      return Status::FailedPrecondition(
          "node " + std::to_string(x) + ": inverse out-degree " +
          std::to_string(inv_out_degrees[x]) + " != 1/" +
          std::to_string(degree));
    }
  }
  if (dangling_cursor != dangling_nodes.size()) {
    return Status::FailedPrecondition(
        "dangling list holds " + std::to_string(dangling_nodes.size()) +
        " entries but only " + std::to_string(dangling_cursor) +
        " nodes are dangling");
  }
  return Status::OK();
}

Status ValidateGraph(const WebGraph& graph) {
  const NodeId n = graph.num_nodes();
  SPAMMASS_RETURN_NOT_OK(
      ValidateCsr(n, graph.OutOffsets(), graph.Targets(), "out"));
  SPAMMASS_RETURN_NOT_OK(
      ValidateCsr(n, graph.InOffsets(), graph.Sources(), "in"));
  SPAMMASS_RETURN_NOT_OK(ValidateDerivedArrays(
      n, graph.OutOffsets(), graph.InvOutDegrees(), graph.DanglingNodes()));

  if (graph.Targets().size() != graph.Sources().size()) {
    return Status::FailedPrecondition(
        "forward holds " + std::to_string(graph.Targets().size()) +
        " edges but transpose holds " +
        std::to_string(graph.Sources().size()));
  }
  // Every forward edge (x, y) must appear in the transpose. Rows are sorted
  // (verified above), so membership is a binary search; combined with equal
  // edge counts this makes the two directions exactly equivalent.
  for (NodeId x = 0; x < n; ++x) {
    for (NodeId y : graph.OutNeighbors(x)) {
      auto in = graph.InNeighbors(y);
      if (!std::binary_search(in.begin(), in.end(), x)) {
        return Status::FailedPrecondition(
            "edge (" + std::to_string(x) + ", " + std::to_string(y) +
            ") present in out-adjacency but missing from in-adjacency");
      }
    }
  }

  if (!graph.host_names().empty() &&
      graph.host_names().size() != static_cast<size_t>(n)) {
    return Status::FailedPrecondition(
        "host_names holds " + std::to_string(graph.host_names().size()) +
        " entries for " + std::to_string(n) + " nodes");
  }
  return Status::OK();
}

}  // namespace spammass::graph
