#include "graph/graph_io.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

#include "graph/graph_builder.h"
#include "util/string_util.h"

namespace spammass::graph {

using util::Result;
using util::Status;

util::Status WriteEdgeListText(const WebGraph& graph,
                               const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f << "# spammass edge list\n";
  f << "# nodes: " << graph.num_nodes() << "\n";
  f << "# edges: " << graph.num_edges() << "\n";
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      f << u << ' ' << v << '\n';
    }
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadEdgeListText(const std::string& path) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  GraphBuilder builder;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view sv = util::Trim(line);
    if (sv.empty()) continue;
    if (sv[0] == '#') {
      // Honor an optional "# nodes: N" header so isolated trailing nodes
      // survive a round trip.
      constexpr std::string_view kNodesPrefix = "# nodes:";
      if (sv.substr(0, kNodesPrefix.size()) == kNodesPrefix) {
        auto fields = util::SplitWhitespace(sv.substr(kNodesPrefix.size()));
        if (!fields.empty()) {
          builder.EnsureNodes(static_cast<NodeId>(
              std::strtoull(fields[0].c_str(), nullptr, 10)));
        }
      }
      continue;
    }
    auto fields = util::SplitWhitespace(sv);
    if (fields.size() != 2) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'source target'");
    }
    char* end = nullptr;
    unsigned long long u = std::strtoull(fields[0].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad source id '" + fields[0] + "'");
    }
    unsigned long long v = std::strtoull(fields[1].c_str(), &end, 10);
    if (*end != '\0') {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad target id '" + fields[1] + "'");
    }
    if (u >= kInvalidNode || v >= kInvalidNode) {
      return Status::OutOfRange(path + ":" + std::to_string(lineno) +
                                ": node id exceeds 32-bit range");
    }
    NodeId max_id = static_cast<NodeId>(std::max(u, v));
    builder.EnsureNodes(max_id + 1);
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.Build();
}

namespace {

constexpr char kMagic[4] = {'S', 'M', 'W', 'G'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* v) {
  f.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(f);
}

}  // namespace

util::Status WriteBinary(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f.write(kMagic, sizeof(kMagic));
  WritePod(f, kVersion);
  WritePod(f, static_cast<uint64_t>(graph.num_nodes()));
  WritePod(f, graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    WritePod(f, static_cast<uint64_t>(graph.OutDegree(u)));
    for (NodeId v : graph.OutNeighbors(u)) WritePod(f, v);
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadBinary(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open: " + path);
  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a spammass binary graph");
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version) || version != kVersion) {
    return Status::InvalidArgument(path + ": unsupported version");
  }
  uint64_t num_nodes = 0, num_edges = 0;
  if (!ReadPod(f, &num_nodes) || !ReadPod(f, &num_edges)) {
    return Status::IoError(path + ": truncated header");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint64_t deg = 0;
    if (!ReadPod(f, &deg)) return Status::IoError(path + ": truncated");
    for (uint64_t i = 0; i < deg; ++i) {
      NodeId v = 0;
      if (!ReadPod(f, &v)) return Status::IoError(path + ": truncated");
      if (v >= num_nodes) {
        return Status::OutOfRange(path + ": edge target out of range");
      }
      edges.emplace_back(static_cast<NodeId>(u), v);
    }
  }
  if (edges.size() != num_edges) {
    return Status::InvalidArgument(path + ": edge count mismatch");
  }
  return WebGraph::FromSortedEdges(static_cast<NodeId>(num_nodes), edges);
}

util::Status WriteHostNames(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    f << u << '\t' << graph.HostName(u) << '\n';
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Status ReadHostNames(const std::string& path, WebGraph* graph) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  std::vector<std::string> names(graph->num_nodes());
  std::vector<bool> seen(graph->num_nodes(), false);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected '<id>\\t<host>'");
    }
    char* end = nullptr;
    unsigned long long id = std::strtoull(line.c_str(), &end, 10);
    if (end != line.c_str() + tab || id >= graph->num_nodes()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad node id");
    }
    names[id] = line.substr(tab + 1);
    seen[id] = true;
  }
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    if (!seen[u]) {
      return Status::InvalidArgument(path + ": missing host name for node " +
                                     std::to_string(u));
    }
  }
  graph->set_host_names(std::move(names));
  return Status::OK();
}

}  // namespace spammass::graph
