#include "graph/graph_io.h"

#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_validate.h"
#include "obs/trace.h"
#include "util/checksum.h"
#include "util/string_util.h"

namespace spammass::graph {

using util::Result;
using util::Status;

namespace {

// Text output is assembled in a buffer and flushed in slabs; the seed
// streamed one operator<< per field, which bottoms out in one virtual
// streambuf call per number.
constexpr size_t kTextFlushThreshold = 1u << 20;

void AppendUint(std::string* buf, uint64_t value) {
  char tmp[20];
  auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), value);
  (void)ec;  // Cannot fail: 20 chars hold any uint64.
  buf->append(tmp, static_cast<size_t>(ptr - tmp));
}

}  // namespace

util::Status WriteEdgeListText(const WebGraph& graph,
                               const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::string buf;
  buf.reserve(kTextFlushThreshold + 64);
  buf += "# spammass edge list\n# nodes: ";
  AppendUint(&buf, graph.num_nodes());
  buf += "\n# edges: ";
  AppendUint(&buf, graph.num_edges());
  buf += '\n';
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      AppendUint(&buf, u);
      buf += ' ';
      AppendUint(&buf, v);
      buf += '\n';
      if (buf.size() >= kTextFlushThreshold) {
        f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
        buf.clear();
      }
    }
  }
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadEdgeListText(const std::string& path,
                                        util::ThreadPool* pool) {
  SPAMMASS_TRACE_SPAN("graph.read_text", "path", std::string_view(path));
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  GraphBuilder builder;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view sv = util::Trim(line);
    if (sv.empty()) continue;
    if (sv[0] == '#') {
      // Honor an optional "# nodes: N" header so isolated trailing nodes
      // survive a round trip.
      constexpr std::string_view kNodesPrefix = "# nodes:";
      if (sv.substr(0, kNodesPrefix.size()) == kNodesPrefix) {
        std::string_view rest = sv.substr(kNodesPrefix.size());
        uint64_t declared = 0;
        if (util::ParseUint64(util::NextField(&rest), &declared) &&
            declared < kInvalidNode) {
          builder.EnsureNodes(static_cast<NodeId>(declared));
        }
      }
      continue;
    }
    std::string_view rest = sv;
    std::string_view source_field = util::NextField(&rest);
    std::string_view target_field = util::NextField(&rest);
    if (source_field.empty() || target_field.empty() ||
        !util::NextField(&rest).empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'source target'");
    }
    uint64_t u = 0;
    if (!util::ParseUint64(source_field, &u)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad source id '" +
                                     std::string(source_field) + "'");
    }
    uint64_t v = 0;
    if (!util::ParseUint64(target_field, &v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad target id '" +
                                     std::string(target_field) + "'");
    }
    if (u >= kInvalidNode || v >= kInvalidNode) {
      return Status::OutOfRange(path + ":" + std::to_string(lineno) +
                                ": node id exceeds 32-bit range");
    }
    NodeId max_id = static_cast<NodeId>(std::max(u, v));
    builder.EnsureNodes(max_id + 1);
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.Build(pool);
}

namespace {

constexpr char kMagic[4] = {'S', 'M', 'W', 'G'};
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersionCurrent = 2;
constexpr uint32_t kFlagHostNames = 1u << 0;
// Format 2.1: optional delta+varint compressed in-adjacency section
// (csr_codec.h) between the CSR arrays and the host-name blob. The former
// reserved header word doubles as the minor version — written as 1 only
// when the section is present, so plain v2 files stay byte-identical to
// minor-version-0 output and old readers only reject files that actually
// carry the new section.
constexpr uint32_t kFlagCompressedIn = 1u << 1;
constexpr uint32_t kMinorPlain = 0;
constexpr uint32_t kMinorCompressed = 1;

template <typename T>
void WritePod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* v) {
  f.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(f);
}

/// Forwards every write into the running whole-file checksum. The digest
/// itself is written with WritePod (it must not hash itself).
class ChecksummingWriter {
 public:
  explicit ChecksummingWriter(std::ofstream& f) : f_(f) {}

  void Write(const void* data, size_t size) {
    hasher_.Update(data, size);
    f_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  }

  template <typename T>
  void WriteValue(const T& v) {
    Write(&v, sizeof(v));
  }

  uint64_t digest() const { return hasher_.digest(); }

 private:
  std::ofstream& f_;
  util::Fnv1a64x8 hasher_;
};

/// Bulk-reads `count` elements into a vector and feeds them to `hasher`.
template <typename T>
bool ReadArray(std::ifstream& f, util::Fnv1a64x8* hasher, uint64_t count,
               std::vector<T>* out) {
  out->resize(count);
  const size_t bytes = static_cast<size_t>(count) * sizeof(T);
  f.read(reinterpret_cast<char*>(out->data()),
         static_cast<std::streamsize>(bytes));
  if (!f) return false;
  hasher->Update(out->data(), bytes);
  return true;
}

Result<WebGraph> ReadBinaryV1(std::ifstream& f, const std::string& path) {
  uint64_t num_nodes = 0, num_edges = 0;
  if (!ReadPod(f, &num_nodes) || !ReadPod(f, &num_edges)) {
    return Status::IoError(path + ": truncated header");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint64_t deg = 0;
    if (!ReadPod(f, &deg)) return Status::IoError(path + ": truncated");
    for (uint64_t i = 0; i < deg; ++i) {
      NodeId v = 0;
      if (!ReadPod(f, &v)) return Status::IoError(path + ": truncated");
      if (v >= num_nodes) {
        return Status::OutOfRange(path + ": edge target out of range");
      }
      edges.emplace_back(static_cast<NodeId>(u), v);
    }
  }
  if (edges.size() != num_edges) {
    return Status::InvalidArgument(path + ": edge count mismatch");
  }
  return WebGraph::FromSortedEdges(static_cast<NodeId>(num_nodes), edges);
}

Result<WebGraph> ReadBinaryV2(std::ifstream& f, const std::string& path,
                              uint64_t file_size, util::Fnv1a64x8 hasher,
                              util::ThreadPool* pool) {
  // Fixed-width header tail: flags, reserved, node count, edge count.
  char head[24];
  f.read(head, sizeof(head));
  if (!f) return Status::IoError(path + ": truncated header");
  hasher.Update(head, sizeof(head));
  uint32_t flags = 0, reserved = 0;
  uint64_t num_nodes = 0, num_edges = 0;
  std::memcpy(&flags, head, sizeof(flags));
  std::memcpy(&reserved, head + 4, sizeof(reserved));
  std::memcpy(&num_nodes, head + 8, sizeof(num_nodes));
  std::memcpy(&num_edges, head + 16, sizeof(num_edges));
  if ((flags & ~(kFlagHostNames | kFlagCompressedIn)) != 0) {
    return Status::InvalidArgument(path + ": unknown header flags");
  }
  const bool has_names = (flags & kFlagHostNames) != 0;
  const bool has_compressed = (flags & kFlagCompressedIn) != 0;
  // The minor version (former reserved word) and the section flag must
  // agree; anything else is a writer this reader does not know.
  if (reserved != (has_compressed ? kMinorCompressed : kMinorPlain)) {
    return Status::InvalidArgument(path + ": unknown header flags");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }

  // Size sanity before any allocation: the declared arrays plus trailer
  // must fit the actual file exactly (the compressed section and names add
  // variable-length blobs, each verified against the remaining bytes as
  // its size field is read). The per-element bounds also keep the size
  // arithmetic below from overflowing on garbage counts. Both adjacency
  // directions are stored, hence the doubled per-node / per-edge
  // footprints.
  if (num_nodes > file_size / 16 || num_edges > file_size / 8) {
    return Status::IoError(path + ": truncated");
  }
  const uint64_t csr_end = 32 + 2 * ((num_nodes + 1) * 8 + num_edges * 4);
  const uint64_t min_size = csr_end +
                            (has_compressed ? 8 + (num_nodes + 1) * 8 : 0) +
                            (has_names ? 8 + (num_nodes + 1) * 8 : 0) + 8;
  if (file_size < min_size) return Status::IoError(path + ": truncated");
  if (!has_names && !has_compressed && file_size != min_size) {
    return Status::InvalidArgument(path + ": trailing bytes after payload");
  }

  std::vector<uint64_t> out_offsets;
  std::vector<NodeId> targets;
  std::vector<uint64_t> in_offsets;
  std::vector<NodeId> sources;
  if (!ReadArray(f, &hasher, num_nodes + 1, &out_offsets) ||
      !ReadArray(f, &hasher, num_edges, &targets) ||
      !ReadArray(f, &hasher, num_nodes + 1, &in_offsets) ||
      !ReadArray(f, &hasher, num_edges, &sources)) {
    return Status::IoError(path + ": truncated");
  }

  CompressedAdjacency compressed;
  uint64_t compressed_bytes = 0;
  if (has_compressed) {
    char section_header[8];
    f.read(section_header, sizeof(section_header));
    if (!f) return Status::IoError(path + ": truncated");
    hasher.Update(section_header, sizeof(section_header));
    std::memcpy(&compressed_bytes, section_header, sizeof(compressed_bytes));
    if (compressed_bytes > file_size - min_size) {
      return Status::InvalidArgument(path +
                                     ": compressed section size mismatch");
    }
    if (!has_names && file_size != min_size + compressed_bytes) {
      return Status::InvalidArgument(path + ": trailing bytes after payload");
    }
    compressed.byte_offsets.clear();
    if (!ReadArray(f, &hasher, num_nodes + 1, &compressed.byte_offsets) ||
        !ReadArray(f, &hasher, compressed_bytes, &compressed.bytes)) {
      return Status::IoError(path + ": truncated");
    }
  }

  std::vector<std::string> names;
  if (has_names) {
    char blob_header[8];
    f.read(blob_header, sizeof(blob_header));
    if (!f) return Status::IoError(path + ": truncated");
    hasher.Update(blob_header, sizeof(blob_header));
    uint64_t blob_size = 0;
    std::memcpy(&blob_size, blob_header, sizeof(blob_size));
    if (file_size != min_size + compressed_bytes + blob_size) {
      return Status::InvalidArgument(path + ": host-name blob size mismatch");
    }
    std::vector<uint64_t> name_offsets;
    std::vector<char> blob;
    if (!ReadArray(f, &hasher, num_nodes + 1, &name_offsets) ||
        !ReadArray(f, &hasher, blob_size, &blob)) {
      return Status::IoError(path + ": truncated");
    }
    if (name_offsets.front() != 0 || name_offsets.back() != blob_size) {
      return Status::InvalidArgument(path + ": bad host-name offsets");
    }
    names.reserve(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) {
      if (name_offsets[i] > name_offsets[i + 1]) {
        return Status::InvalidArgument(path + ": bad host-name offsets");
      }
      names.emplace_back(blob.data() + name_offsets[i],
                         name_offsets[i + 1] - name_offsets[i]);
    }
  }

  uint64_t stored_digest = 0;
  if (!ReadPod(f, &stored_digest)) {
    return Status::IoError(path + ": truncated");
  }
  if (stored_digest != hasher.digest()) {
    return Status::InvalidArgument(path + ": checksum mismatch");
  }

  // The bytes are intact; now check each direction is a well-formed CSR
  // before adopting (this is the only structural pass — no edge-pair
  // vector, no re-sort, no transpose rebuild). Well-formedness bounds
  // every index the algorithms will follow; that the in-arrays really are
  // the transpose of the out-arrays is an integrity property covered by
  // the checksum (and fully cross-checked in debug builds, see
  // WebGraph::FromCsrPair).
  Status csr = ValidateCsr(static_cast<NodeId>(num_nodes), out_offsets,
                           targets, "out");
  if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
  csr = ValidateCsr(static_cast<NodeId>(num_nodes), in_offsets, sources,
                    "in");
  if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
  if (has_compressed) {
    // The section must decode to exactly the in-CSR just validated; only
    // then may the sweeps trust its unchecked decode path.
    Status comp = ValidateCompressedAdjacency(
        compressed, static_cast<NodeId>(num_nodes), in_offsets, sources);
    if (!comp.ok()) {
      return Status(comp.code(), path + ": " + comp.message());
    }
  }

  WebGraph g = WebGraph::FromCsrPair(
      static_cast<NodeId>(num_nodes), std::move(out_offsets),
      std::move(targets), std::move(in_offsets), std::move(sources), pool);
  if (has_names) g.set_host_names(std::move(names));
  if (has_compressed) g.AdoptCompressedInAdjacency(std::move(compressed));
  return g;
}

}  // namespace

util::Status WriteBinary(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  ChecksummingWriter out(f);
  out.Write(kMagic, sizeof(kMagic));
  out.WriteValue(kVersionCurrent);
  const bool has_names = !graph.host_names().empty();
  const bool has_compressed = graph.has_compressed_in();
  const uint32_t flags = (has_names ? kFlagHostNames : 0u) |
                         (has_compressed ? kFlagCompressedIn : 0u);
  out.WriteValue(flags);
  // Minor version in the former reserved word; stays 0 (the original
  // byte pattern) unless the compressed section follows.
  out.WriteValue(has_compressed ? kMinorCompressed : kMinorPlain);
  out.WriteValue(static_cast<uint64_t>(graph.num_nodes()));
  out.WriteValue(graph.num_edges());
  const auto offsets = graph.OutOffsets();
  const auto targets = graph.Targets();
  const auto in_offsets = graph.InOffsets();
  const auto sources = graph.Sources();
  out.Write(offsets.data(), offsets.size_bytes());
  out.Write(targets.data(), targets.size_bytes());
  out.Write(in_offsets.data(), in_offsets.size_bytes());
  out.Write(sources.data(), sources.size_bytes());
  if (has_compressed) {
    const CompressedAdjacency& compressed = graph.compressed_in();
    out.WriteValue(static_cast<uint64_t>(compressed.bytes.size()));
    out.Write(compressed.byte_offsets.data(),
              compressed.byte_offsets.size() * sizeof(uint64_t));
    out.Write(compressed.bytes.data(), compressed.bytes.size());
  }
  if (has_names) {
    const auto& names = graph.host_names();
    std::vector<uint64_t> name_offsets;
    name_offsets.reserve(names.size() + 1);
    uint64_t blob_size = 0;
    name_offsets.push_back(0);
    for (const std::string& name : names) {
      blob_size += name.size();
      name_offsets.push_back(blob_size);
    }
    out.WriteValue(blob_size);
    out.Write(name_offsets.data(), name_offsets.size() * sizeof(uint64_t));
    std::string blob;
    blob.reserve(blob_size);
    for (const std::string& name : names) blob += name;
    out.Write(blob.data(), blob.size());
  }
  WritePod(f, out.digest());
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Status WriteBinaryV1(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f.write(kMagic, sizeof(kMagic));
  WritePod(f, kVersionLegacy);
  WritePod(f, static_cast<uint64_t>(graph.num_nodes()));
  WritePod(f, graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    WritePod(f, static_cast<uint64_t>(graph.OutDegree(u)));
    for (NodeId v : graph.OutNeighbors(u)) WritePod(f, v);
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadBinary(const std::string& path,
                                  util::ThreadPool* pool) {
  SPAMMASS_TRACE_SPAN("graph.read_binary", "path", std::string_view(path));
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open: " + path);
  f.seekg(0, std::ios::end);
  const auto end_pos = f.tellg();
  if (end_pos < 0) return Status::IoError(path + ": cannot determine size");
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  f.seekg(0, std::ios::beg);

  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a spammass binary graph");
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version)) {
    return Status::IoError(path + ": truncated header");
  }
  if (version == kVersionLegacy) return ReadBinaryV1(f, path);
  if (version != kVersionCurrent) {
    return Status::InvalidArgument(path + ": unsupported version");
  }
  util::Fnv1a64x8 hasher;
  hasher.Update(magic, sizeof(magic));
  hasher.Update(&version, sizeof(version));
  return ReadBinaryV2(f, path, file_size, hasher, pool);
}

util::Status WriteHostNames(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::string buf;
  buf.reserve(kTextFlushThreshold + 64);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    AppendUint(&buf, u);
    buf += '\t';
    buf += graph.HostName(u);
    buf += '\n';
    if (buf.size() >= kTextFlushThreshold) {
      f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Status ReadHostNames(const std::string& path, WebGraph* graph) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  std::vector<std::string> names(graph->num_nodes());
  std::vector<bool> seen(graph->num_nodes(), false);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected '<id>\\t<host>'");
    }
    uint64_t id = 0;
    if (!util::ParseUint64(std::string_view(line).substr(0, tab), &id) ||
        id >= graph->num_nodes()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad node id");
    }
    names[id] = line.substr(tab + 1);
    seen[id] = true;
  }
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    if (!seen[u]) {
      return Status::InvalidArgument(path + ": missing host name for node " +
                                     std::to_string(u));
    }
  }
  graph->set_host_names(std::move(names));
  return Status::OK();
}

}  // namespace spammass::graph
