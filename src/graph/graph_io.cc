#include "graph/graph_io.h"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <memory>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_validate.h"
#include "obs/trace.h"
#include "util/checksum.h"
#include "util/debug.h"
#include "util/mmap_file.h"
#include "util/string_util.h"

namespace spammass::graph {

using util::Result;
using util::Status;

namespace {

// Text output is assembled in a buffer and flushed in slabs; the seed
// streamed one operator<< per field, which bottoms out in one virtual
// streambuf call per number.
constexpr size_t kTextFlushThreshold = 1u << 20;

void AppendUint(std::string* buf, uint64_t value) {
  char tmp[20];
  auto [ptr, ec] = std::to_chars(tmp, tmp + sizeof(tmp), value);
  (void)ec;  // Cannot fail: 20 chars hold any uint64.
  buf->append(tmp, static_cast<size_t>(ptr - tmp));
}

}  // namespace

util::Status WriteEdgeListText(const WebGraph& graph,
                               const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::string buf;
  buf.reserve(kTextFlushThreshold + 64);
  buf += "# spammass edge list\n# nodes: ";
  AppendUint(&buf, graph.num_nodes());
  buf += "\n# edges: ";
  AppendUint(&buf, graph.num_edges());
  buf += '\n';
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      AppendUint(&buf, u);
      buf += ' ';
      AppendUint(&buf, v);
      buf += '\n';
      if (buf.size() >= kTextFlushThreshold) {
        f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
        buf.clear();
      }
    }
  }
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadEdgeListText(const std::string& path,
                                        util::ThreadPool* pool) {
  SPAMMASS_TRACE_SPAN("graph.read_text", "path", std::string_view(path));
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  GraphBuilder builder;
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    std::string_view sv = util::Trim(line);
    if (sv.empty()) continue;
    if (sv[0] == '#') {
      // Honor an optional "# nodes: N" header so isolated trailing nodes
      // survive a round trip.
      constexpr std::string_view kNodesPrefix = "# nodes:";
      if (sv.substr(0, kNodesPrefix.size()) == kNodesPrefix) {
        std::string_view rest = sv.substr(kNodesPrefix.size());
        uint64_t declared = 0;
        if (util::ParseUint64(util::NextField(&rest), &declared) &&
            declared < kInvalidNode) {
          builder.EnsureNodes(static_cast<NodeId>(declared));
        }
      }
      continue;
    }
    std::string_view rest = sv;
    std::string_view source_field = util::NextField(&rest);
    std::string_view target_field = util::NextField(&rest);
    if (source_field.empty() || target_field.empty() ||
        !util::NextField(&rest).empty()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected 'source target'");
    }
    uint64_t u = 0;
    if (!util::ParseUint64(source_field, &u)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad source id '" +
                                     std::string(source_field) + "'");
    }
    uint64_t v = 0;
    if (!util::ParseUint64(target_field, &v)) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad target id '" +
                                     std::string(target_field) + "'");
    }
    if (u >= kInvalidNode || v >= kInvalidNode) {
      return Status::OutOfRange(path + ":" + std::to_string(lineno) +
                                ": node id exceeds 32-bit range");
    }
    NodeId max_id = static_cast<NodeId>(std::max(u, v));
    builder.EnsureNodes(max_id + 1);
    builder.AddEdge(static_cast<NodeId>(u), static_cast<NodeId>(v));
  }
  return builder.Build(pool);
}

namespace {

constexpr char kMagic[4] = {'S', 'M', 'W', 'G'};
constexpr uint32_t kVersionLegacy = 1;
constexpr uint32_t kVersionCurrent = 2;
constexpr uint32_t kFlagHostNames = 1u << 0;
// Format 2.1: optional delta+varint compressed in-adjacency section
// (csr_codec.h) between the CSR arrays and the host-name blob. The former
// reserved header word doubles as the minor version — written as 1 only
// when the section is present, so plain v2 files stay byte-identical to
// minor-version-0 output and old readers only reject files that actually
// carry the new section.
constexpr uint32_t kFlagCompressedIn = 1u << 1;
// Format 2.2: page-aligned paged layout for mmap loading. The flag and the
// minor version are both set so pre-2.2 readers reject paged files with a
// clean "unknown header flags" error instead of misparsing the section
// table as CSR data.
constexpr uint32_t kFlagPaged = 1u << 2;
constexpr uint32_t kMinorPlain = 0;
constexpr uint32_t kMinorCompressed = 1;
constexpr uint32_t kMinorPaged = 2;

// v2.2 geometry: the header page and every section start on a 4 KiB
// boundary (the ubiquitous page size; mappings of the file are at least
// page-aligned, so each section pointer is safely castable to its element
// type). Section checksums cover the full body (verified in debug and on
// the ReadBinary heap path) and a bounded head+tail sample (always
// verified, catches truncation and localized corruption at O(1) cost).
constexpr uint64_t kPageSize = 4096;
constexpr uint64_t kSampleBytes = 64 * 1024;
constexpr uint64_t kHeaderChecksumOffset = kPageSize - 8;
constexpr uint64_t kSectionTableOffset = 40;
constexpr uint64_t kSectionEntryBytes = 40;

enum SectionKind : uint32_t {
  kSecOutOffsets = 1,
  kSecTargets = 2,
  kSecInOffsets = 3,
  kSecSources = 4,
  kSecInvOutDegree = 5,
  kSecDangling = 6,
  kSecNameOffsets = 7,
  kSecNameBlob = 8,
};

constexpr uint64_t AlignUp(uint64_t v) {
  return (v + kPageSize - 1) / kPageSize * kPageSize;
}

template <typename T>
void WritePod(std::ofstream& f, const T& v) {
  f.write(reinterpret_cast<const char*>(&v), sizeof(v));
}

template <typename T>
bool ReadPod(std::ifstream& f, T* v) {
  f.read(reinterpret_cast<char*>(v), sizeof(*v));
  return static_cast<bool>(f);
}

/// Forwards every write into the running whole-file checksum. The digest
/// itself is written with WritePod (it must not hash itself).
class ChecksummingWriter {
 public:
  explicit ChecksummingWriter(std::ofstream& f) : f_(f) {}

  void Write(const void* data, size_t size) {
    hasher_.Update(data, size);
    f_.write(static_cast<const char*>(data),
             static_cast<std::streamsize>(size));
  }

  template <typename T>
  void WriteValue(const T& v) {
    Write(&v, sizeof(v));
  }

  uint64_t digest() const { return hasher_.digest(); }

 private:
  std::ofstream& f_;
  util::Fnv1a64x8 hasher_;
};

/// Bulk-reads `count` elements into a vector and feeds them to `hasher`.
template <typename T>
bool ReadArray(std::ifstream& f, util::Fnv1a64x8* hasher, uint64_t count,
               std::vector<T>* out) {
  out->resize(count);
  const size_t bytes = static_cast<size_t>(count) * sizeof(T);
  f.read(reinterpret_cast<char*>(out->data()),
         static_cast<std::streamsize>(bytes));
  if (!f) return false;
  hasher->Update(out->data(), bytes);
  return true;
}

Result<WebGraph> ReadBinaryV1(std::ifstream& f, const std::string& path) {
  uint64_t num_nodes = 0, num_edges = 0;
  if (!ReadPod(f, &num_nodes) || !ReadPod(f, &num_edges)) {
    return Status::IoError(path + ": truncated header");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  std::vector<std::pair<NodeId, NodeId>> edges;
  edges.reserve(num_edges);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    uint64_t deg = 0;
    if (!ReadPod(f, &deg)) return Status::IoError(path + ": truncated");
    for (uint64_t i = 0; i < deg; ++i) {
      NodeId v = 0;
      if (!ReadPod(f, &v)) return Status::IoError(path + ": truncated");
      if (v >= num_nodes) {
        return Status::OutOfRange(path + ": edge target out of range");
      }
      edges.emplace_back(static_cast<NodeId>(u), v);
    }
  }
  if (edges.size() != num_edges) {
    return Status::InvalidArgument(path + ": edge count mismatch");
  }
  return WebGraph::FromSortedEdges(static_cast<NodeId>(num_nodes), edges);
}

Result<WebGraph> ReadBinaryV22Heap(const std::string& path,
                                   util::ThreadPool* pool);

Result<WebGraph> ReadBinaryV2(std::ifstream& f, const std::string& path,
                              uint64_t file_size, util::Fnv1a64x8 hasher,
                              util::ThreadPool* pool) {
  // Fixed-width header tail: flags, reserved, node count, edge count.
  char head[24];
  f.read(head, sizeof(head));
  if (!f) return Status::IoError(path + ": truncated header");
  hasher.Update(head, sizeof(head));
  uint32_t flags = 0, reserved = 0;
  uint64_t num_nodes = 0, num_edges = 0;
  std::memcpy(&flags, head, sizeof(flags));
  std::memcpy(&reserved, head + 4, sizeof(reserved));
  std::memcpy(&num_nodes, head + 8, sizeof(num_nodes));
  std::memcpy(&num_edges, head + 16, sizeof(num_edges));
  // Paged (v2.2) files re-dispatch to the mmap-backed loader, which
  // validates everything and copies the arrays to the heap — ReadBinary's
  // contract is an owned graph regardless of on-disk layout.
  if ((flags & kFlagPaged) != 0 || reserved == kMinorPaged) {
    if ((flags & kFlagPaged) == 0 || reserved != kMinorPaged) {
      return Status::InvalidArgument(path + ": unknown header flags");
    }
    return ReadBinaryV22Heap(path, pool);
  }
  if ((flags & ~(kFlagHostNames | kFlagCompressedIn)) != 0) {
    return Status::InvalidArgument(path + ": unknown header flags");
  }
  const bool has_names = (flags & kFlagHostNames) != 0;
  const bool has_compressed = (flags & kFlagCompressedIn) != 0;
  // The minor version (former reserved word) and the section flag must
  // agree; anything else is a writer this reader does not know.
  if (reserved != (has_compressed ? kMinorCompressed : kMinorPlain)) {
    return Status::InvalidArgument(path + ": unknown header flags");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }

  // Size sanity before any allocation: the declared arrays plus trailer
  // must fit the actual file exactly (the compressed section and names add
  // variable-length blobs, each verified against the remaining bytes as
  // its size field is read). The per-element bounds also keep the size
  // arithmetic below from overflowing on garbage counts. Both adjacency
  // directions are stored, hence the doubled per-node / per-edge
  // footprints.
  if (num_nodes > file_size / 16 || num_edges > file_size / 8) {
    return Status::IoError(path + ": truncated");
  }
  const uint64_t csr_end = 32 + 2 * ((num_nodes + 1) * 8 + num_edges * 4);
  const uint64_t min_size = csr_end +
                            (has_compressed ? 8 + (num_nodes + 1) * 8 : 0) +
                            (has_names ? 8 + (num_nodes + 1) * 8 : 0) + 8;
  if (file_size < min_size) return Status::IoError(path + ": truncated");
  if (!has_names && !has_compressed && file_size != min_size) {
    return Status::InvalidArgument(path + ": trailing bytes after payload");
  }

  std::vector<uint64_t> out_offsets;
  std::vector<NodeId> targets;
  std::vector<uint64_t> in_offsets;
  std::vector<NodeId> sources;
  if (!ReadArray(f, &hasher, num_nodes + 1, &out_offsets) ||
      !ReadArray(f, &hasher, num_edges, &targets) ||
      !ReadArray(f, &hasher, num_nodes + 1, &in_offsets) ||
      !ReadArray(f, &hasher, num_edges, &sources)) {
    return Status::IoError(path + ": truncated");
  }

  CompressedAdjacency compressed;
  uint64_t compressed_bytes = 0;
  if (has_compressed) {
    char section_header[8];
    f.read(section_header, sizeof(section_header));
    if (!f) return Status::IoError(path + ": truncated");
    hasher.Update(section_header, sizeof(section_header));
    std::memcpy(&compressed_bytes, section_header, sizeof(compressed_bytes));
    if (compressed_bytes > file_size - min_size) {
      return Status::InvalidArgument(path +
                                     ": compressed section size mismatch");
    }
    if (!has_names && file_size != min_size + compressed_bytes) {
      return Status::InvalidArgument(path + ": trailing bytes after payload");
    }
    compressed.byte_offsets.clear();
    if (!ReadArray(f, &hasher, num_nodes + 1, &compressed.byte_offsets) ||
        !ReadArray(f, &hasher, compressed_bytes, &compressed.bytes)) {
      return Status::IoError(path + ": truncated");
    }
  }

  std::vector<std::string> names;
  if (has_names) {
    char blob_header[8];
    f.read(blob_header, sizeof(blob_header));
    if (!f) return Status::IoError(path + ": truncated");
    hasher.Update(blob_header, sizeof(blob_header));
    uint64_t blob_size = 0;
    std::memcpy(&blob_size, blob_header, sizeof(blob_size));
    if (file_size != min_size + compressed_bytes + blob_size) {
      return Status::InvalidArgument(path + ": host-name blob size mismatch");
    }
    std::vector<uint64_t> name_offsets;
    std::vector<char> blob;
    if (!ReadArray(f, &hasher, num_nodes + 1, &name_offsets) ||
        !ReadArray(f, &hasher, blob_size, &blob)) {
      return Status::IoError(path + ": truncated");
    }
    if (name_offsets.front() != 0 || name_offsets.back() != blob_size) {
      return Status::InvalidArgument(path + ": bad host-name offsets");
    }
    names.reserve(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) {
      if (name_offsets[i] > name_offsets[i + 1]) {
        return Status::InvalidArgument(path + ": bad host-name offsets");
      }
      names.emplace_back(blob.data() + name_offsets[i],
                         name_offsets[i + 1] - name_offsets[i]);
    }
  }

  uint64_t stored_digest = 0;
  if (!ReadPod(f, &stored_digest)) {
    return Status::IoError(path + ": truncated");
  }
  if (stored_digest != hasher.digest()) {
    return Status::InvalidArgument(path + ": checksum mismatch");
  }

  // The bytes are intact; now check each direction is a well-formed CSR
  // before adopting (this is the only structural pass — no edge-pair
  // vector, no re-sort, no transpose rebuild). Well-formedness bounds
  // every index the algorithms will follow; that the in-arrays really are
  // the transpose of the out-arrays is an integrity property covered by
  // the checksum (and fully cross-checked in debug builds, see
  // WebGraph::FromCsrPair).
  Status csr = ValidateCsr(static_cast<NodeId>(num_nodes), out_offsets,
                           targets, "out");
  if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
  csr = ValidateCsr(static_cast<NodeId>(num_nodes), in_offsets, sources,
                    "in");
  if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
  if (has_compressed) {
    // The section must decode to exactly the in-CSR just validated; only
    // then may the sweeps trust its unchecked decode path.
    Status comp = ValidateCompressedAdjacency(
        compressed, static_cast<NodeId>(num_nodes), in_offsets, sources);
    if (!comp.ok()) {
      return Status(comp.code(), path + ": " + comp.message());
    }
  }

  WebGraph g = WebGraph::FromCsrPair(
      static_cast<NodeId>(num_nodes), std::move(out_offsets),
      std::move(targets), std::move(in_offsets), std::move(sources), pool);
  if (has_names) g.set_host_names(std::move(names));
  if (has_compressed) g.AdoptCompressedInAdjacency(std::move(compressed));
  return g;
}

// ---- v2.2 paged layout ----------------------------------------------------

/// One row of the v2.2 section table (40 bytes on disk, see
/// docs/graph_format.md).
struct SectionEntry {
  uint32_t kind = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint64_t checksum_full = 0;
  uint64_t checksum_sample = 0;
};

void StoreEntry(const SectionEntry& e, uint8_t* out) {
  std::memcpy(out, &e.kind, 4);
  std::memcpy(out + 4, &e.reserved, 4);
  std::memcpy(out + 8, &e.offset, 8);
  std::memcpy(out + 16, &e.length, 8);
  std::memcpy(out + 24, &e.checksum_full, 8);
  std::memcpy(out + 32, &e.checksum_sample, 8);
}

SectionEntry LoadEntry(const uint8_t* in) {
  SectionEntry e;
  std::memcpy(&e.kind, in, 4);
  std::memcpy(&e.reserved, in + 4, 4);
  std::memcpy(&e.offset, in + 8, 8);
  std::memcpy(&e.length, in + 16, 8);
  std::memcpy(&e.checksum_full, in + 24, 8);
  std::memcpy(&e.checksum_sample, in + 32, 8);
  return e;
}

uint64_t FullSectionDigest(const uint8_t* data, uint64_t len) {
  util::Fnv1a64x8 hasher;
  if (len > 0) hasher.Update(data, len);
  return hasher.digest();
}

/// Bounded-sample digest: the first min(len, 64 KiB) bytes plus — when the
/// section is larger than one sample — its last 64 KiB. O(1) in the
/// section size; catches truncation, header/trailer damage, and any
/// corruption that lands in the sampled windows. Sections no larger than
/// the sample are covered in full, so the sample digest then equals a
/// whole-body check.
uint64_t SampleSectionDigest(const uint8_t* data, uint64_t len) {
  util::Fnv1a64x8 hasher;
  const uint64_t head = std::min(len, kSampleBytes);
  if (head > 0) hasher.Update(data, head);
  if (len > kSampleBytes) {
    hasher.Update(data + (len - kSampleBytes), kSampleBytes);
  }
  return hasher.digest();
}

/// A validated v2.2 mapping: typed views into the file plus the mapping
/// that keeps them alive. Host names are materialized (they are the one
/// non-bulk payload; zero-copy std::string is not possible anyway).
struct MappedV22 {
  std::shared_ptr<util::MmapFile> file;
  NodeId num_nodes = 0;
  uint64_t num_edges = 0;
  std::span<const uint64_t> out_offsets;
  std::span<const NodeId> targets;
  std::span<const uint64_t> in_offsets;
  std::span<const NodeId> sources;
  std::span<const double> inv_out_degree;
  std::span<const NodeId> dangling;
  bool has_names = false;
  std::vector<std::string> names;
};

template <typename T>
std::span<const T> SectionSpan(const uint8_t* base, const SectionEntry& e) {
  // Section offsets are 4 KiB-aligned within a page-aligned mapping, so
  // the pointer satisfies any element alignment.
  return {reinterpret_cast<const T*>(base + e.offset),
          static_cast<size_t>(e.length / sizeof(T))};
}

/// Maps `path` and validates it as a v2.2 file. Always verified: header
/// page checksum, the complete section-table geometry (every section
/// 4 KiB-aligned, in canonical order, with the exact length its kind
/// demands, inside the file — after this no array access can fault),
/// every section's bounded sample checksum, the dangling list's structure
/// (it indexes solver arrays), and the host-name sections in full (they
/// are copied anyway). With `full_validate` — debug builds and the
/// ReadBinary heap path — every full-section checksum and the O(n+m)
/// structural validators run too. Release mmap loads otherwise trust the
/// bulk array *contents* past their sample checksums; this is the same
/// trust model v2 applies to the transpose property, extended to the
/// paged arrays (docs/graph_format.md, "v2.2 trust model").
Result<MappedV22> MapV22(const std::string& path, bool full_validate) {
  auto open = util::MmapFile::Open(path);
  if (!open.ok()) return open.status();
  MappedV22 m;
  m.file = std::make_shared<util::MmapFile>(std::move(open).value());
  const uint8_t* base = m.file->data();
  const uint64_t file_size = m.file->size();
  if (file_size < kPageSize) {
    return Status::IoError(path + ": truncated (no v2.2 header page)");
  }

  // Header-page checksum before interpreting any field past the version.
  uint64_t stored_header_digest = 0;
  std::memcpy(&stored_header_digest, base + kHeaderChecksumOffset, 8);
  if (FullSectionDigest(base, kHeaderChecksumOffset) != stored_header_digest) {
    return Status::InvalidArgument(path + ": header page checksum mismatch");
  }

  uint32_t version = 0, flags = 0, minor = 0, section_count = 0;
  uint32_t page_size = 0;
  uint64_t num_nodes = 0, num_edges = 0;
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a spammass binary graph");
  }
  std::memcpy(&version, base + 4, 4);
  std::memcpy(&flags, base + 8, 4);
  std::memcpy(&minor, base + 12, 4);
  std::memcpy(&num_nodes, base + 16, 8);
  std::memcpy(&num_edges, base + 24, 8);
  std::memcpy(&section_count, base + 32, 4);
  std::memcpy(&page_size, base + 36, 4);
  if (version != kVersionCurrent || minor != kMinorPaged ||
      (flags & kFlagPaged) == 0) {
    return Status::InvalidArgument(path +
                                   ": not a v2.2 paged graph (use "
                                   "ReadBinary for v1/v2.0/v2.1 files)");
  }
  if ((flags & ~(kFlagHostNames | kFlagPaged)) != 0) {
    return Status::InvalidArgument(path + ": unknown header flags");
  }
  if (page_size != kPageSize) {
    return Status::InvalidArgument(path + ": unsupported page size");
  }
  if (num_nodes >= kInvalidNode) {
    return Status::OutOfRange(path + ": node count exceeds 32-bit range");
  }
  // Each edge occupies 4 bytes in `targets` alone; this bound also keeps
  // the length arithmetic below overflow-free on garbage counts.
  if (num_edges > file_size / 4 || num_nodes > file_size) {
    return Status::IoError(path + ": file shorter than header claims");
  }
  const bool has_names = (flags & kFlagHostNames) != 0;
  const uint32_t expected_sections = has_names ? 8 : 6;
  if (section_count != expected_sections) {
    return Status::InvalidArgument(path + ": unexpected section count");
  }

  const uint64_t offsets_len = (num_nodes + 1) * 8;
  const uint64_t ids_len = num_edges * 4;
  // kind, exact length (kInvalidLength = variable).
  constexpr uint64_t kVariableLength = ~uint64_t{0};
  struct ExpectedSection {
    uint32_t kind;
    uint64_t length;
  };
  const ExpectedSection expected[8] = {
      {kSecOutOffsets, offsets_len}, {kSecTargets, ids_len},
      {kSecInOffsets, offsets_len},  {kSecSources, ids_len},
      {kSecInvOutDegree, num_nodes * 8},
      {kSecDangling, kVariableLength},
      {kSecNameOffsets, offsets_len}, {kSecNameBlob, kVariableLength}};

  SectionEntry entries[8];
  uint64_t expected_offset = kPageSize;
  for (uint32_t i = 0; i < section_count; ++i) {
    const SectionEntry e =
        LoadEntry(base + kSectionTableOffset + i * kSectionEntryBytes);
    if (e.kind != expected[i].kind || e.reserved != 0) {
      return Status::InvalidArgument(path + ": unexpected section table");
    }
    if (e.offset % kPageSize != 0) {
      return Status::InvalidArgument(path + ": misaligned section " +
                                     std::to_string(e.kind));
    }
    if (e.offset != expected_offset) {
      return Status::InvalidArgument(path + ": non-canonical section layout");
    }
    if (expected[i].length != kVariableLength &&
        e.length != expected[i].length) {
      return Status::InvalidArgument(path + ": section " +
                                     std::to_string(e.kind) +
                                     " length mismatch");
    }
    if (e.kind == kSecDangling &&
        (e.length % 4 != 0 || e.length / 4 > num_nodes)) {
      return Status::InvalidArgument(path + ": dangling section malformed");
    }
    if (e.offset > file_size || e.length > file_size - e.offset) {
      return Status::IoError(path + ": file shorter than header claims");
    }
    entries[i] = e;
    expected_offset = AlignUp(e.offset + e.length);
  }
  if (file_size != expected_offset) {
    return Status::InvalidArgument(path + ": trailing bytes after payload");
  }

  // Every byte the spans below can reach is now inside the mapping, so no
  // access past this point can SIGBUS on a file matching its stat size.
  for (uint32_t i = 0; i < section_count; ++i) {
    const SectionEntry& e = entries[i];
    if (SampleSectionDigest(base + e.offset, e.length) != e.checksum_sample) {
      return Status::InvalidArgument(path + ": section " +
                                     std::to_string(e.kind) +
                                     " checksum mismatch");
    }
    if (full_validate &&
        FullSectionDigest(base + e.offset, e.length) != e.checksum_full) {
      return Status::InvalidArgument(path + ": section " +
                                     std::to_string(e.kind) +
                                     " checksum mismatch");
    }
  }

  m.num_nodes = static_cast<NodeId>(num_nodes);
  m.num_edges = num_edges;
  m.out_offsets = SectionSpan<uint64_t>(base, entries[0]);
  m.targets = SectionSpan<NodeId>(base, entries[1]);
  m.in_offsets = SectionSpan<uint64_t>(base, entries[2]);
  m.sources = SectionSpan<NodeId>(base, entries[3]);
  m.inv_out_degree = SectionSpan<double>(base, entries[4]);
  m.dangling = SectionSpan<NodeId>(base, entries[5]);
  m.has_names = has_names;

  // Cheap structural spot checks on the offset arrays (two pages each).
  if (m.out_offsets.front() != 0 || m.out_offsets.back() != num_edges ||
      m.in_offsets.front() != 0 || m.in_offsets.back() != num_edges) {
    return Status::InvalidArgument(path + ": CSR offsets corrupt");
  }
  // The dangling list indexes the solver's rank arrays, so its entries are
  // always fully bounds-checked (it is tiny next to the CSR).
  for (size_t i = 0; i < m.dangling.size(); ++i) {
    if (m.dangling[i] >= num_nodes ||
        (i > 0 && m.dangling[i] <= m.dangling[i - 1])) {
      return Status::InvalidArgument(path + ": dangling section malformed");
    }
  }

  if (full_validate) {
    Status csr = ValidateCsr(m.num_nodes, m.out_offsets, m.targets, "out");
    if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
    csr = ValidateCsr(m.num_nodes, m.in_offsets, m.sources, "in");
    if (!csr.ok()) return Status(csr.code(), path + ": " + csr.message());
    Status derived = ValidateDerivedArrays(m.num_nodes, m.out_offsets,
                                           m.inv_out_degree, m.dangling);
    if (!derived.ok()) {
      return Status(derived.code(), path + ": " + derived.message());
    }
  }

  if (has_names) {
    const SectionEntry& off_entry = entries[6];
    const SectionEntry& blob_entry = entries[7];
    // Fully verified: the names are materialized here regardless, so the
    // whole-body checksum costs nothing extra.
    if (!full_validate) {
      if (FullSectionDigest(base + off_entry.offset, off_entry.length) !=
              off_entry.checksum_full ||
          FullSectionDigest(base + blob_entry.offset, blob_entry.length) !=
              blob_entry.checksum_full) {
        return Status::InvalidArgument(path + ": host-name checksum mismatch");
      }
    }
    const auto name_offsets = SectionSpan<uint64_t>(base, off_entry);
    const uint8_t* blob = base + blob_entry.offset;
    const uint64_t blob_size = blob_entry.length;
    if (name_offsets.front() != 0 || name_offsets.back() != blob_size) {
      return Status::InvalidArgument(path + ": bad host-name offsets");
    }
    m.names.reserve(num_nodes);
    for (uint64_t i = 0; i < num_nodes; ++i) {
      if (name_offsets[i] > name_offsets[i + 1]) {
        return Status::InvalidArgument(path + ": bad host-name offsets");
      }
      m.names.emplace_back(reinterpret_cast<const char*>(blob) +
                               name_offsets[i],
                           name_offsets[i + 1] - name_offsets[i]);
    }
  }
  return m;
}

/// ReadBinary's owned-storage path for paged files: full validation, then
/// the arrays are copied out of a temporary mapping and the derived arrays
/// rebuilt exactly as for a v2.0 load.
Result<WebGraph> ReadBinaryV22Heap(const std::string& path,
                                   util::ThreadPool* pool) {
  auto mapped = MapV22(path, /*full_validate=*/true);
  if (!mapped.ok()) return mapped.status();
  MappedV22& m = mapped.value();
  WebGraph g = WebGraph::FromCsrPair(
      m.num_nodes,
      std::vector<uint64_t>(m.out_offsets.begin(), m.out_offsets.end()),
      std::vector<NodeId>(m.targets.begin(), m.targets.end()),
      std::vector<uint64_t>(m.in_offsets.begin(), m.in_offsets.end()),
      std::vector<NodeId>(m.sources.begin(), m.sources.end()), pool);
  if (m.has_names) g.set_host_names(std::move(m.names));
  return g;
}

}  // namespace

util::Status WriteBinary(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  ChecksummingWriter out(f);
  out.Write(kMagic, sizeof(kMagic));
  out.WriteValue(kVersionCurrent);
  const bool has_names = !graph.host_names().empty();
  const bool has_compressed = graph.has_compressed_in();
  const uint32_t flags = (has_names ? kFlagHostNames : 0u) |
                         (has_compressed ? kFlagCompressedIn : 0u);
  out.WriteValue(flags);
  // Minor version in the former reserved word; stays 0 (the original
  // byte pattern) unless the compressed section follows.
  out.WriteValue(has_compressed ? kMinorCompressed : kMinorPlain);
  out.WriteValue(static_cast<uint64_t>(graph.num_nodes()));
  out.WriteValue(graph.num_edges());
  const auto offsets = graph.OutOffsets();
  const auto targets = graph.Targets();
  const auto in_offsets = graph.InOffsets();
  const auto sources = graph.Sources();
  out.Write(offsets.data(), offsets.size_bytes());
  out.Write(targets.data(), targets.size_bytes());
  out.Write(in_offsets.data(), in_offsets.size_bytes());
  out.Write(sources.data(), sources.size_bytes());
  if (has_compressed) {
    const CompressedAdjacency& compressed = graph.compressed_in();
    out.WriteValue(static_cast<uint64_t>(compressed.bytes.size()));
    out.Write(compressed.byte_offsets.data(),
              compressed.byte_offsets.size() * sizeof(uint64_t));
    out.Write(compressed.bytes.data(), compressed.bytes.size());
  }
  if (has_names) {
    const auto& names = graph.host_names();
    std::vector<uint64_t> name_offsets;
    name_offsets.reserve(names.size() + 1);
    uint64_t blob_size = 0;
    name_offsets.push_back(0);
    for (const std::string& name : names) {
      blob_size += name.size();
      name_offsets.push_back(blob_size);
    }
    out.WriteValue(blob_size);
    out.Write(name_offsets.data(), name_offsets.size() * sizeof(uint64_t));
    std::string blob;
    blob.reserve(blob_size);
    for (const std::string& name : names) blob += name;
    out.Write(blob.data(), blob.size());
  }
  WritePod(f, out.digest());
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Status WriteBinaryV22(const WebGraph& graph, const std::string& path) {
  SPAMMASS_TRACE_SPAN("graph.write_paged", "path", std::string_view(path));
  const bool has_names = !graph.host_names().empty();

  // Materialize the host-name sections first so every section is a stable
  // (pointer, length) pair below.
  std::vector<uint64_t> name_offsets;
  std::string name_blob;
  if (has_names) {
    name_offsets.reserve(graph.host_names().size() + 1);
    name_offsets.push_back(0);
    for (const std::string& name : graph.host_names()) {
      name_blob += name;
      name_offsets.push_back(name_blob.size());
    }
  }

  struct Section {
    uint32_t kind;
    const void* data;
    uint64_t length;
  };
  const auto out_offsets = graph.OutOffsets();
  const auto targets = graph.Targets();
  const auto in_offsets = graph.InOffsets();
  const auto sources = graph.Sources();
  const auto inv = graph.InvOutDegrees();
  const auto dangling = graph.DanglingNodes();
  std::vector<Section> sections = {
      {kSecOutOffsets, out_offsets.data(), out_offsets.size_bytes()},
      {kSecTargets, targets.data(), targets.size_bytes()},
      {kSecInOffsets, in_offsets.data(), in_offsets.size_bytes()},
      {kSecSources, sources.data(), sources.size_bytes()},
      {kSecInvOutDegree, inv.data(), inv.size_bytes()},
      {kSecDangling, dangling.data(), dangling.size_bytes()},
  };
  if (has_names) {
    sections.push_back({kSecNameOffsets, name_offsets.data(),
                        name_offsets.size() * sizeof(uint64_t)});
    sections.push_back({kSecNameBlob, name_blob.data(), name_blob.size()});
  }

  // Header page: fixed fields, section table, trailing page checksum.
  std::vector<uint8_t> page(kPageSize, 0);
  std::memcpy(page.data(), kMagic, sizeof(kMagic));
  const uint32_t version = kVersionCurrent;
  const uint32_t flags = kFlagPaged | (has_names ? kFlagHostNames : 0u);
  const uint32_t minor = kMinorPaged;
  const uint64_t num_nodes = graph.num_nodes();
  const uint64_t num_edges = graph.num_edges();
  const uint32_t section_count = static_cast<uint32_t>(sections.size());
  const uint32_t page_size = static_cast<uint32_t>(kPageSize);
  std::memcpy(page.data() + 4, &version, 4);
  std::memcpy(page.data() + 8, &flags, 4);
  std::memcpy(page.data() + 12, &minor, 4);
  std::memcpy(page.data() + 16, &num_nodes, 8);
  std::memcpy(page.data() + 24, &num_edges, 8);
  std::memcpy(page.data() + 32, &section_count, 4);
  std::memcpy(page.data() + 36, &page_size, 4);

  uint64_t cursor = kPageSize;
  for (size_t i = 0; i < sections.size(); ++i) {
    const Section& s = sections[i];
    const auto* bytes = static_cast<const uint8_t*>(s.data);
    SectionEntry entry;
    entry.kind = s.kind;
    entry.offset = cursor;
    entry.length = s.length;
    entry.checksum_full = FullSectionDigest(bytes, s.length);
    entry.checksum_sample = SampleSectionDigest(bytes, s.length);
    StoreEntry(entry,
               page.data() + kSectionTableOffset + i * kSectionEntryBytes);
    cursor = AlignUp(cursor + s.length);
  }
  const uint64_t header_digest =
      FullSectionDigest(page.data(), kHeaderChecksumOffset);
  std::memcpy(page.data() + kHeaderChecksumOffset, &header_digest, 8);

  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f.write(reinterpret_cast<const char*>(page.data()),
          static_cast<std::streamsize>(page.size()));
  const std::vector<char> zeros(kPageSize, 0);
  for (const Section& s : sections) {
    if (s.length > 0) {
      f.write(static_cast<const char*>(s.data),
              static_cast<std::streamsize>(s.length));
    }
    const uint64_t padding = AlignUp(s.length) - s.length;
    if (padding > 0) {
      f.write(zeros.data(), static_cast<std::streamsize>(padding));
    }
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadBinaryMmap(const std::string& path) {
  SPAMMASS_TRACE_SPAN("graph.read_mmap", "path", std::string_view(path));
  auto mapped = MapV22(path, /*full_validate=*/util::kDebugBuild);
  if (!mapped.ok()) return mapped.status();
  MappedV22& m = mapped.value();
  WebGraph g = WebGraph::FromMappedSections(
      m.num_nodes, m.out_offsets, m.targets, m.in_offsets, m.sources,
      m.inv_out_degree, m.dangling, m.file);
  if (m.has_names) g.set_host_names(std::move(m.names));
  // Load-time residency baseline; snapshot points (CLI stats, manifest
  // build) republish so exports see the post-compute state.
  PublishMappedResidency(g);
  return g;
}

util::Status WriteBinaryV1(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  f.write(kMagic, sizeof(kMagic));
  WritePod(f, kVersionLegacy);
  WritePod(f, static_cast<uint64_t>(graph.num_nodes()));
  WritePod(f, graph.num_edges());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    WritePod(f, static_cast<uint64_t>(graph.OutDegree(u)));
    for (NodeId v : graph.OutNeighbors(u)) WritePod(f, v);
  }
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Result<WebGraph> ReadBinary(const std::string& path,
                                  util::ThreadPool* pool) {
  SPAMMASS_TRACE_SPAN("graph.read_binary", "path", std::string_view(path));
  std::ifstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open: " + path);
  f.seekg(0, std::ios::end);
  const auto end_pos = f.tellg();
  if (end_pos < 0) return Status::IoError(path + ": cannot determine size");
  const uint64_t file_size = static_cast<uint64_t>(end_pos);
  f.seekg(0, std::ios::beg);

  char magic[4];
  f.read(magic, sizeof(magic));
  if (!f || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a spammass binary graph");
  }
  uint32_t version = 0;
  if (!ReadPod(f, &version)) {
    return Status::IoError(path + ": truncated header");
  }
  if (version == kVersionLegacy) return ReadBinaryV1(f, path);
  if (version != kVersionCurrent) {
    return Status::InvalidArgument(path + ": unsupported version");
  }
  util::Fnv1a64x8 hasher;
  hasher.Update(magic, sizeof(magic));
  hasher.Update(&version, sizeof(version));
  return ReadBinaryV2(f, path, file_size, hasher, pool);
}

util::Status WriteHostNames(const WebGraph& graph, const std::string& path) {
  std::ofstream f(path, std::ios::binary);
  if (!f) return Status::IoError("cannot open for writing: " + path);
  std::string buf;
  buf.reserve(kTextFlushThreshold + 64);
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    AppendUint(&buf, u);
    buf += '\t';
    buf += graph.HostName(u);
    buf += '\n';
    if (buf.size() >= kTextFlushThreshold) {
      f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
      buf.clear();
    }
  }
  f.write(buf.data(), static_cast<std::streamsize>(buf.size()));
  if (!f) return Status::IoError("write failed: " + path);
  return Status::OK();
}

util::Status ReadHostNames(const std::string& path, WebGraph* graph) {
  std::ifstream f(path);
  if (!f) return Status::IoError("cannot open: " + path);
  std::vector<std::string> names(graph->num_nodes());
  std::vector<bool> seen(graph->num_nodes(), false);
  std::string line;
  uint64_t lineno = 0;
  while (std::getline(f, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    size_t tab = line.find('\t');
    if (tab == std::string::npos) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": expected '<id>\\t<host>'");
    }
    uint64_t id = 0;
    if (!util::ParseUint64(std::string_view(line).substr(0, tab), &id) ||
        id >= graph->num_nodes()) {
      return Status::InvalidArgument(path + ":" + std::to_string(lineno) +
                                     ": bad node id");
    }
    names[id] = line.substr(tab + 1);
    seen[id] = true;
  }
  for (NodeId u = 0; u < graph->num_nodes(); ++u) {
    if (!seen[u]) {
      return Status::InvalidArgument(path + ": missing host name for node " +
                                     std::to_string(u));
    }
  }
  graph->set_host_names(std::move(names));
  return Status::OK();
}

}  // namespace spammass::graph
