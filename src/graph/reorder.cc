#include "graph/reorder.h"

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_validate.h"
#include "util/debug.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace spammass::graph {

const char* ReorderKindToString(ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kNone:
      return "none";
    case ReorderKind::kDegreeDesc:
      return "degree";
    case ReorderKind::kBfs:
      return "bfs";
    case ReorderKind::kRcm:
      return "rcm";
  }
  return "none";
}

util::Result<ReorderKind> ReorderKindFromString(std::string_view name) {
  if (name == "none") return ReorderKind::kNone;
  if (name == "degree") return ReorderKind::kDegreeDesc;
  if (name == "bfs") return ReorderKind::kBfs;
  if (name == "rcm") return ReorderKind::kRcm;
  return util::Status::InvalidArgument(util::StringPrintf(
      "unknown reordering '%.*s' (want none | degree | bfs | rcm)",
      static_cast<int>(name.size()), name.data()));
}

namespace {

Reordering IdentityReordering(NodeId n) {
  Reordering r;
  r.perm.resize(n);
  r.inverse.resize(n);
  for (NodeId x = 0; x < n; ++x) {
    r.perm[x] = x;
    r.inverse[x] = x;
  }
  return r;
}

Reordering FromInverse(std::vector<NodeId> inverse) {
  Reordering r;
  r.perm.resize(inverse.size());
  for (NodeId pos = 0; pos < inverse.size(); ++pos) {
    r.perm[inverse[pos]] = pos;
  }
  r.inverse = std::move(inverse);
  return r;
}

Reordering DegreeDescReordering(const WebGraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<NodeId> order(n);
  for (NodeId x = 0; x < n; ++x) order[x] = x;
  // stable_sort + ascending-id input gives the documented tie-break.
  std::stable_sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
    const uint64_t da =
        static_cast<uint64_t>(graph.OutDegree(a)) + graph.InDegree(a);
    const uint64_t db =
        static_cast<uint64_t>(graph.OutDegree(b)) + graph.InDegree(b);
    return da > db;
  });
  return FromInverse(std::move(order));
}

Reordering BfsReordering(const WebGraph& graph) {
  const NodeId n = graph.num_nodes();
  // Visit order: BFS over the union (out + in) adjacency so link direction
  // does not hide locality; neighbors enqueue in ascending original ID for
  // determinism. Unreached components restart from their highest-degree
  // unvisited node, scanned in one degree-sorted pass.
  const Reordering by_degree = DegreeDescReordering(graph);
  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<NodeId> queue;
  std::vector<NodeId> merged;
  size_t restart_scan = 0;
  while (order.size() < n) {
    while (restart_scan < n && visited[by_degree.inverse[restart_scan]]) {
      ++restart_scan;
    }
    CHECK_LT(restart_scan, static_cast<size_t>(n));
    const NodeId start = by_degree.inverse[restart_scan];
    visited[start] = true;
    queue.clear();
    queue.push_back(start);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      order.push_back(x);
      const auto outs = graph.OutNeighbors(x);
      const auto ins = graph.InNeighbors(x);
      merged.clear();
      merged.reserve(outs.size() + ins.size());
      std::merge(outs.begin(), outs.end(), ins.begin(), ins.end(),
                 std::back_inserter(merged));
      for (const NodeId y : merged) {
        if (!visited[y]) {
          visited[y] = true;
          queue.push_back(y);
        }
      }
    }
  }
  return FromInverse(std::move(order));
}

Reordering RcmReordering(const WebGraph& graph) {
  const NodeId n = graph.num_nodes();
  std::vector<uint64_t> degree(n);
  for (NodeId x = 0; x < n; ++x) {
    degree[x] = static_cast<uint64_t>(graph.OutDegree(x)) + graph.InDegree(x);
  }
  // Component starts: minimum-degree unvisited node (lowest ID on ties —
  // stable_sort over ascending-id input), scanned in one sorted pass like
  // BfsReordering's restart scan.
  std::vector<NodeId> restart(n);
  for (NodeId x = 0; x < n; ++x) restart[x] = x;
  std::stable_sort(restart.begin(), restart.end(),
                   [&](NodeId a, NodeId b) { return degree[a] < degree[b]; });

  std::vector<NodeId> order;
  order.reserve(n);
  std::vector<bool> visited(n, false);
  std::vector<NodeId> queue;
  std::vector<NodeId> merged;
  std::vector<NodeId> frontier;
  size_t restart_scan = 0;
  while (order.size() < n) {
    while (restart_scan < n && visited[restart[restart_scan]]) {
      ++restart_scan;
    }
    CHECK_LT(restart_scan, static_cast<size_t>(n));
    const NodeId start = restart[restart_scan];
    visited[start] = true;
    queue.clear();
    queue.push_back(start);
    for (size_t head = 0; head < queue.size(); ++head) {
      const NodeId x = queue[head];
      order.push_back(x);
      const auto outs = graph.OutNeighbors(x);
      const auto ins = graph.InNeighbors(x);
      merged.clear();
      merged.reserve(outs.size() + ins.size());
      std::merge(outs.begin(), outs.end(), ins.begin(), ins.end(),
                 std::back_inserter(merged));
      // Cuthill–McKee expansion: the unvisited union-neighbors of x enqueue
      // in ascending-degree order, lowest ID on ties (merged is
      // id-ascending and the sort is stable).
      frontier.clear();
      for (const NodeId y : merged) {
        if (!visited[y]) {
          visited[y] = true;
          frontier.push_back(y);
        }
      }
      std::stable_sort(
          frontier.begin(), frontier.end(),
          [&](NodeId a, NodeId b) { return degree[a] < degree[b]; });
      queue.insert(queue.end(), frontier.begin(), frontier.end());
    }
  }
  std::reverse(order.begin(), order.end());
  return FromInverse(std::move(order));
}

}  // namespace

Reordering ComputeReordering(const WebGraph& graph, ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kNone:
      return IdentityReordering(graph.num_nodes());
    case ReorderKind::kDegreeDesc:
      return DegreeDescReordering(graph);
    case ReorderKind::kBfs:
      return BfsReordering(graph);
    case ReorderKind::kRcm:
      return RcmReordering(graph);
  }
  return IdentityReordering(graph.num_nodes());
}

WebGraph ApplyReordering(const WebGraph& graph, const Reordering& reordering,
                         util::ThreadPool* pool) {
  const NodeId n = graph.num_nodes();
  CHECK_EQ(reordering.perm.size(), static_cast<size_t>(n));
  CHECK_EQ(reordering.inverse.size(), static_cast<size_t>(n));
  std::vector<uint64_t> out_offsets(static_cast<size_t>(n) + 1, 0);
  std::vector<NodeId> targets;
  targets.reserve(graph.num_edges());
  std::vector<NodeId> row;
  for (NodeId x = 0; x < n; ++x) {
    const NodeId old = reordering.inverse[x];
    const auto nbrs = graph.OutNeighbors(old);
    row.clear();
    row.reserve(nbrs.size());
    for (const NodeId y : nbrs) row.push_back(reordering.perm[y]);
    std::sort(row.begin(), row.end());
    targets.insert(targets.end(), row.begin(), row.end());
    out_offsets[x + 1] = targets.size();
  }
  WebGraph result =
      WebGraph::FromCsr(n, std::move(out_offsets), std::move(targets), pool);
  if (!graph.host_names().empty()) {
    std::vector<std::string> names(n);
    for (NodeId x = 0; x < n; ++x) {
      names[x] = graph.host_names()[reordering.inverse[x]];
    }
    result.set_host_names(std::move(names));
  }
  if (graph.has_compressed_in()) result.BuildCompressedInAdjacency();
  DCHECK_OK(ValidateGraph(result));
  return result;
}

std::vector<NodeId> MapNodeIds(std::span<const NodeId> nodes,
                               const std::vector<NodeId>& mapping) {
  std::vector<NodeId> out;
  out.reserve(nodes.size());
  for (const NodeId x : nodes) out.push_back(mapping[x]);
  return out;
}

}  // namespace spammass::graph
