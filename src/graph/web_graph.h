// Immutable, compact web-graph representation (Section 2.1 of the paper):
// unweighted directed links between nodes (pages, hosts, or sites), no
// self-links, at most one link per ordered pair. Stored as CSR in both
// directions so that PageRank iterations and contribution analyses can scan
// either out-neighbors or in-neighbors sequentially.
//
// Storage model: every accessor reads through span *views*. For graphs
// built in memory the views point at the owned std::vector storage
// (SyncViews); for graphs loaded via the v2.2 mmap path
// (FromMappedSections) they point straight into a read-only file mapping
// and the vectors stay empty — the graph is then zero-copy and the page
// cache, not the heap, holds the arrays.

#ifndef SPAMMASS_GRAPH_WEB_GRAPH_H_
#define SPAMMASS_GRAPH_WEB_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_codec.h"

namespace spammass::util {
class MmapFile;
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Immutable directed graph in compressed-sparse-row form. Construct via
/// GraphBuilder (which normalizes edges), FromSortedEdges, or FromCsr for
/// trusted input. Both the forward (out-neighbor) and the transposed
/// (in-neighbor) adjacency are materialized.
class WebGraph {
 public:
  /// Empty graph.
  WebGraph() { SyncViews(); }

  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  // Moves transfer the vector heap buffers (or the file mapping), so the
  // copied span views remain valid in the destination.
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;

  /// Builds from edges sorted by (source, target) with no duplicates and no
  /// self-loops; `num_nodes` must exceed every endpoint. Invariants are
  /// CHECK-enforced (use GraphBuilder for untrusted edge streams).
  static WebGraph FromSortedEdges(NodeId num_nodes,
                                  const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Adopts already-built forward CSR arrays and derives the transpose and
  /// the solver-support arrays from them, in parallel when `pool` is
  /// non-null. The arrays must satisfy ValidateCsr (graph_validate.h):
  /// offsets monotonically non-decreasing from 0 to targets.size(), every
  /// row strictly ascending with in-range targets, no self-links. Trusted
  /// input only — debug builds re-validate, release builds do not; callers
  /// ingesting untrusted bytes (the binary loader) must run ValidateCsr
  /// first. The derived arrays are bit-identical for every pool size,
  /// including none.
  static WebGraph FromCsr(NodeId num_nodes, std::vector<uint64_t> out_offsets,
                          std::vector<NodeId> targets,
                          util::ThreadPool* pool = nullptr);

  /// Adopts BOTH adjacency directions — the forward CSR and its transpose
  /// — and only derives the cheap solver-support arrays (inverse
  /// out-degrees, dangling list). This is the zero-rebuild load path of
  /// the v2 binary format: no edge scan, no counting sort. Both array
  /// pairs must individually satisfy ValidateCsr and the in-arrays must be
  /// the exact transpose of the out-arrays; debug builds CHECK the full
  /// cross-consistency (ValidateGraph), release builds trust the caller.
  static WebGraph FromCsrPair(NodeId num_nodes,
                              std::vector<uint64_t> out_offsets,
                              std::vector<NodeId> targets,
                              std::vector<uint64_t> in_offsets,
                              std::vector<NodeId> sources,
                              util::ThreadPool* pool = nullptr);

  /// Zero-copy construction over sections of a read-only file mapping (the
  /// v2.2 load path, graph_io.h). All six arrays — both CSR directions plus
  /// the persisted derived arrays — are adopted as views into `mapping`,
  /// which the graph keeps alive. The caller (graph::ReadBinaryMmap) must
  /// have validated section sizes against the mapping bounds and the
  /// structural invariants per the v2.2 trust model (docs/graph_format.md);
  /// debug builds re-run the full O(n+m) ValidateGraph.
  static WebGraph FromMappedSections(
      NodeId num_nodes, std::span<const uint64_t> out_offsets,
      std::span<const NodeId> targets, std::span<const uint64_t> in_offsets,
      std::span<const NodeId> sources, std::span<const double> inv_out_degree,
      std::span<const NodeId> dangling_nodes,
      std::shared_ptr<const util::MmapFile> mapping);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return targets_v_.size(); }

  /// Out-neighbors of x, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId x) const {
    return {targets_v_.data() + out_offsets_v_[x],
            targets_v_.data() + out_offsets_v_[x + 1]};
  }

  /// In-neighbors of x, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId x) const {
    return {sources_v_.data() + in_offsets_v_[x],
            sources_v_.data() + in_offsets_v_[x + 1]};
  }

  uint32_t OutDegree(NodeId x) const {
    return static_cast<uint32_t>(out_offsets_v_[x + 1] - out_offsets_v_[x]);
  }

  uint32_t InDegree(NodeId x) const {
    return static_cast<uint32_t>(in_offsets_v_[x + 1] - in_offsets_v_[x]);
  }

  /// True if the directed edge (x, y) exists; O(log outdeg(x)).
  bool HasEdge(NodeId x, NodeId y) const;

  /// A node with no outlinks ("dangling" in PageRank terms).
  bool IsDangling(NodeId x) const { return OutDegree(x) == 0; }

  /// Nodes with neither inlinks nor outlinks.
  bool IsIsolated(NodeId x) const {
    return OutDegree(x) == 0 && InDegree(x) == 0;
  }

  /// Returns the transposed graph (every edge reversed) as a new graph.
  /// `pool` parallelizes the derived-array rebuild when non-null. The
  /// result always owns heap storage, even when this graph is mapped.
  WebGraph Transposed(util::ThreadPool* pool = nullptr) const;

  /// Raw CSR views (offset arrays have num_nodes()+1 entries). Exposed for
  /// the invariant validators (graph_validate.h) and bulk kernels that scan
  /// the arrays directly.
  std::span<const uint64_t> OutOffsets() const { return out_offsets_v_; }
  std::span<const NodeId> Targets() const { return targets_v_; }
  std::span<const uint64_t> InOffsets() const { return in_offsets_v_; }
  std::span<const NodeId> Sources() const { return sources_v_; }

  /// Precomputed 1/outdeg(x) per node, exactly 0.0 for dangling nodes.
  /// Built once at construction so PageRank sweeps replace the per-edge
  /// division p[x]/outdeg(x) with a multiply (pagerank/kernel.h).
  std::span<const double> InvOutDegrees() const { return inv_out_degree_v_; }

  /// 1/outdeg(x), or 0.0 when x is dangling.
  double InvOutDegree(NodeId x) const { return inv_out_degree_v_[x]; }

  /// Ascending list of all dangling nodes (outdeg == 0), built once at
  /// construction so per-sweep dangling-mass sums scan |dangling| entries
  /// instead of all n nodes.
  std::span<const NodeId> DanglingNodes() const { return dangling_v_; }

  uint32_t num_dangling() const {
    return static_cast<uint32_t>(dangling_v_.size());
  }

  /// True when the CSR arrays are views into a file mapping
  /// (FromMappedSections) rather than owned heap vectors.
  bool is_mapped() const { return mapping_ != nullptr; }

  /// Size of the backing file mapping in bytes; 0 for heap graphs.
  uint64_t mapped_bytes() const;

  /// Bytes of the backing mapping currently resident in memory (mincore);
  /// 0 for heap graphs. Advisory — see util::MmapFile::ResidentBytes.
  uint64_t resident_bytes() const;

  /// Mapped vs. resident bytes of one array section of a mapped graph.
  struct SectionResidency {
    /// Section name as in the v2.2 format ("targets", "in_offsets", ...).
    const char* name;
    uint64_t mapped_bytes;
    uint64_t resident_bytes;
  };

  /// Per-section residency of the six mapped arrays, in file order.
  /// Empty for heap graphs. Advisory like resident_bytes(): the kernel may
  /// evict or fault pages between the probe and any use of the numbers.
  /// Sections sharing a page at their boundary each count that page's
  /// resident overlap (ResidentBytesInRange), so the per-section bytes sum
  /// to at most one page more than a whole-mapping probe per boundary.
  std::vector<SectionResidency> MappedSectionResidency() const;

  /// Optional delta+varint compressed form of the in-neighbor adjacency
  /// (csr_codec.h), used by the bandwidth-optimized PageRank sweeps when
  /// SolverOptions::compressed_gather is on. Absent unless built or adopted.
  bool has_compressed_in() const { return !compressed_in_.empty(); }
  const CompressedAdjacency& compressed_in() const { return compressed_in_; }

  /// Builds the compressed in-adjacency from the plain CSR arrays.
  /// Idempotent; costs one pass over the edges. Works for mapped graphs
  /// too (the compressed form is heap-owned; v2.2 files don't persist it).
  void BuildCompressedInAdjacency();

  /// Adopts an already-validated compressed in-adjacency (the v2 binary
  /// loader's zero-rebuild path). The section must decode to exactly the
  /// in-CSR arrays; debug builds re-validate, release builds trust the
  /// caller (the loader validates untrusted bytes before adopting).
  void AdoptCompressedInAdjacency(CompressedAdjacency compressed);

  /// Optional per-node host names (empty when unset). When set, the vector
  /// has exactly num_nodes() entries.
  const std::vector<std::string>& host_names() const { return host_names_; }
  void set_host_names(std::vector<std::string> names);

  /// Host name of x, or "node<i>" when names are unset. When names are set
  /// the view points into the graph's name table and stays valid for the
  /// graph's lifetime; the synthesized fallback lives in a thread-local
  /// buffer that the next fallback HostName call on the same thread
  /// overwrites — copy it if it must outlive the expression.
  std::string_view HostName(NodeId x) const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  // Owned storage for heap-built graphs; empty when mapped. CSR forward:
  // out_offsets_ has num_nodes_+1 entries; targets_ holds the concatenated
  // sorted out-neighbor lists. in_offsets_/sources_ are the transpose.
  std::vector<uint64_t> out_offsets_{0};
  std::vector<NodeId> targets_;
  std::vector<uint64_t> in_offsets_{0};
  std::vector<NodeId> sources_;
  // Derived solver-support arrays, kept consistent with the CSR arrays by
  // construction (graph_validate re-checks in debug builds).
  std::vector<double> inv_out_degree_;
  std::vector<NodeId> dangling_nodes_;

  // The views every accessor reads. SyncViews points them at the owned
  // vectors; FromMappedSections points them into mapping_.
  std::span<const uint64_t> out_offsets_v_;
  std::span<const NodeId> targets_v_;
  std::span<const uint64_t> in_offsets_v_;
  std::span<const NodeId> sources_v_;
  std::span<const double> inv_out_degree_v_;
  std::span<const NodeId> dangling_v_;

  // Keeps the file mapping alive for mapped graphs; null for heap graphs.
  std::shared_ptr<const util::MmapFile> mapping_;

  // Optional compressed in-adjacency; empty (one zero offset) unless
  // BuildCompressedInAdjacency or AdoptCompressedInAdjacency ran.
  CompressedAdjacency compressed_in_;
  std::vector<std::string> host_names_;

  /// Re-points all views at the owned vectors. Must run after any build
  /// step that may have (re)allocated a vector and before accessors are
  /// used; every factory and build helper ends with it.
  void SyncViews();

  // Both builders produce output bit-identical to their serial versions
  // for every pool size: all scatter positions are computed exactly from
  // per-chunk counts, never raced, and per-chunk partial results are
  // combined in chunk order.
  void BuildTranspose(util::ThreadPool* pool = nullptr);
  void BuildDerivedArrays(util::ThreadPool* pool = nullptr);
};

/// Publishes the mapped graph's residency into the global MetricsRegistry:
/// gauges graph.mmap_mapped_bytes / graph.mmap_resident_bytes for the whole
/// mapping plus graph.mmap_resident_bytes.<section> per array section.
/// No-op for heap graphs. Called by the mmap load path and by telemetry
/// snapshots (CLI stats, manifest building) so exported metrics carry
/// residency at the moment of the snapshot, not just at load.
void PublishMappedResidency(const WebGraph& graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_WEB_GRAPH_H_
