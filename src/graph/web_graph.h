// Immutable, compact web-graph representation (Section 2.1 of the paper):
// unweighted directed links between nodes (pages, hosts, or sites), no
// self-links, at most one link per ordered pair. Stored as CSR in both
// directions so that PageRank iterations and contribution analyses can scan
// either out-neighbors or in-neighbors sequentially.

#ifndef SPAMMASS_GRAPH_WEB_GRAPH_H_
#define SPAMMASS_GRAPH_WEB_GRAPH_H_

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "graph/csr_codec.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Node identifier; dense in [0, num_nodes).
using NodeId = uint32_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNode = 0xffffffffu;

/// Immutable directed graph in compressed-sparse-row form. Construct via
/// GraphBuilder (which normalizes edges), FromSortedEdges, or FromCsr for
/// trusted input. Both the forward (out-neighbor) and the transposed
/// (in-neighbor) adjacency are materialized.
class WebGraph {
 public:
  /// Empty graph.
  WebGraph() = default;

  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;

  /// Builds from edges sorted by (source, target) with no duplicates and no
  /// self-loops; `num_nodes` must exceed every endpoint. Invariants are
  /// CHECK-enforced (use GraphBuilder for untrusted edge streams).
  static WebGraph FromSortedEdges(NodeId num_nodes,
                                  const std::vector<std::pair<NodeId, NodeId>>& edges);

  /// Adopts already-built forward CSR arrays and derives the transpose and
  /// the solver-support arrays from them, in parallel when `pool` is
  /// non-null. The arrays must satisfy ValidateCsr (graph_validate.h):
  /// offsets monotonically non-decreasing from 0 to targets.size(), every
  /// row strictly ascending with in-range targets, no self-links. Trusted
  /// input only — debug builds re-validate, release builds do not; callers
  /// ingesting untrusted bytes (the binary loader) must run ValidateCsr
  /// first. The derived arrays are bit-identical for every pool size,
  /// including none.
  static WebGraph FromCsr(NodeId num_nodes, std::vector<uint64_t> out_offsets,
                          std::vector<NodeId> targets,
                          util::ThreadPool* pool = nullptr);

  /// Adopts BOTH adjacency directions — the forward CSR and its transpose
  /// — and only derives the cheap solver-support arrays (inverse
  /// out-degrees, dangling list). This is the zero-rebuild load path of
  /// the v2 binary format: no edge scan, no counting sort. Both array
  /// pairs must individually satisfy ValidateCsr and the in-arrays must be
  /// the exact transpose of the out-arrays; debug builds CHECK the full
  /// cross-consistency (ValidateGraph), release builds trust the caller.
  static WebGraph FromCsrPair(NodeId num_nodes,
                              std::vector<uint64_t> out_offsets,
                              std::vector<NodeId> targets,
                              std::vector<uint64_t> in_offsets,
                              std::vector<NodeId> sources,
                              util::ThreadPool* pool = nullptr);

  NodeId num_nodes() const { return num_nodes_; }
  uint64_t num_edges() const { return targets_.size(); }

  /// Out-neighbors of x, sorted ascending.
  std::span<const NodeId> OutNeighbors(NodeId x) const {
    return {targets_.data() + out_offsets_[x],
            targets_.data() + out_offsets_[x + 1]};
  }

  /// In-neighbors of x, sorted ascending.
  std::span<const NodeId> InNeighbors(NodeId x) const {
    return {sources_.data() + in_offsets_[x],
            sources_.data() + in_offsets_[x + 1]};
  }

  uint32_t OutDegree(NodeId x) const {
    return static_cast<uint32_t>(out_offsets_[x + 1] - out_offsets_[x]);
  }

  uint32_t InDegree(NodeId x) const {
    return static_cast<uint32_t>(in_offsets_[x + 1] - in_offsets_[x]);
  }

  /// True if the directed edge (x, y) exists; O(log outdeg(x)).
  bool HasEdge(NodeId x, NodeId y) const;

  /// A node with no outlinks ("dangling" in PageRank terms).
  bool IsDangling(NodeId x) const { return OutDegree(x) == 0; }

  /// Nodes with neither inlinks nor outlinks.
  bool IsIsolated(NodeId x) const {
    return OutDegree(x) == 0 && InDegree(x) == 0;
  }

  /// Returns the transposed graph (every edge reversed) as a new graph.
  /// `pool` parallelizes the derived-array rebuild when non-null.
  WebGraph Transposed(util::ThreadPool* pool = nullptr) const;

  /// Raw CSR views (offset arrays have num_nodes()+1 entries). Exposed for
  /// the invariant validators (graph_validate.h) and bulk kernels that scan
  /// the arrays directly.
  std::span<const uint64_t> OutOffsets() const { return out_offsets_; }
  std::span<const NodeId> Targets() const { return targets_; }
  std::span<const uint64_t> InOffsets() const { return in_offsets_; }
  std::span<const NodeId> Sources() const { return sources_; }

  /// Precomputed 1/outdeg(x) per node, exactly 0.0 for dangling nodes.
  /// Built once at construction so PageRank sweeps replace the per-edge
  /// division p[x]/outdeg(x) with a multiply (pagerank/kernel.h).
  std::span<const double> InvOutDegrees() const { return inv_out_degree_; }

  /// 1/outdeg(x), or 0.0 when x is dangling.
  double InvOutDegree(NodeId x) const { return inv_out_degree_[x]; }

  /// Ascending list of all dangling nodes (outdeg == 0), built once at
  /// construction so per-sweep dangling-mass sums scan |dangling| entries
  /// instead of all n nodes.
  std::span<const NodeId> DanglingNodes() const { return dangling_nodes_; }

  uint32_t num_dangling() const {
    return static_cast<uint32_t>(dangling_nodes_.size());
  }

  /// Optional delta+varint compressed form of the in-neighbor adjacency
  /// (csr_codec.h), used by the bandwidth-optimized PageRank sweeps when
  /// SolverOptions::compressed_gather is on. Absent unless built or adopted.
  bool has_compressed_in() const { return !compressed_in_.empty(); }
  const CompressedAdjacency& compressed_in() const { return compressed_in_; }

  /// Builds the compressed in-adjacency from the plain CSR arrays.
  /// Idempotent; costs one pass over the edges.
  void BuildCompressedInAdjacency();

  /// Adopts an already-validated compressed in-adjacency (the v2 binary
  /// loader's zero-rebuild path). The section must decode to exactly the
  /// in-CSR arrays; debug builds re-validate, release builds trust the
  /// caller (the loader validates untrusted bytes before adopting).
  void AdoptCompressedInAdjacency(CompressedAdjacency compressed);

  /// Optional per-node host names (empty when unset). When set, the vector
  /// has exactly num_nodes() entries.
  const std::vector<std::string>& host_names() const { return host_names_; }
  void set_host_names(std::vector<std::string> names);

  /// Host name of x, or "node<i>" when names are unset. When names are set
  /// the view points into the graph's name table and stays valid for the
  /// graph's lifetime; the synthesized fallback lives in a thread-local
  /// buffer that the next fallback HostName call on the same thread
  /// overwrites — copy it if it must outlive the expression.
  std::string_view HostName(NodeId x) const;

 private:
  friend class GraphBuilder;

  NodeId num_nodes_ = 0;
  // CSR forward: out_offsets_ has num_nodes_+1 entries; targets_ holds the
  // concatenated sorted out-neighbor lists.
  std::vector<uint64_t> out_offsets_{0};
  std::vector<NodeId> targets_;
  // CSR transposed.
  std::vector<uint64_t> in_offsets_{0};
  std::vector<NodeId> sources_;
  // Derived solver-support arrays, kept consistent with the CSR arrays by
  // construction (graph_validate re-checks in debug builds).
  std::vector<double> inv_out_degree_;
  std::vector<NodeId> dangling_nodes_;
  // Optional compressed in-adjacency; empty (one zero offset) unless
  // BuildCompressedInAdjacency or AdoptCompressedInAdjacency ran.
  CompressedAdjacency compressed_in_;
  std::vector<std::string> host_names_;

  // Both builders produce output bit-identical to their serial versions
  // for every pool size: all scatter positions are computed exactly from
  // per-chunk counts, never raced, and per-chunk partial results are
  // combined in chunk order.
  void BuildTranspose(util::ThreadPool* pool = nullptr);
  void BuildDerivedArrays(util::ThreadPool* pool = nullptr);
};

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_WEB_GRAPH_H_
