// Induced subgraph extraction, used to slice a synthetic crawl down to a
// region or component for focused experiments.

#ifndef SPAMMASS_GRAPH_SUBGRAPH_H_
#define SPAMMASS_GRAPH_SUBGRAPH_H_

#include <vector>

#include "graph/web_graph.h"

namespace spammass::graph {

/// Result of extracting an induced subgraph.
struct Subgraph {
  WebGraph graph;
  /// to_original[new_id] = id in the parent graph.
  std::vector<NodeId> to_original;
  /// to_sub[original_id] = new id, or kInvalidNode when excluded.
  std::vector<NodeId> to_sub;
};

/// Keeps exactly the nodes with keep[id] == true and the edges between them.
/// Node order (and thus the id mapping) follows the original order. Host
/// names are carried over when present.
Subgraph InducedSubgraph(const WebGraph& graph, const std::vector<bool>& keep);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_SUBGRAPH_H_
