#include "graph/web_graph.h"

#include <algorithm>

#include "graph/graph_validate.h"
#include "obs/metrics.h"
#include "util/debug.h"
#include "util/logging.h"
#include "util/mmap_file.h"
#include "util/thread_pool.h"

namespace spammass::graph {

namespace {

// Below this many edges the cross-thread hops cost more than the serial
// scan; the parallel transpose/derived paths fall back to serial.
constexpr uint64_t kParallelIngestMinEdges = 1u << 14;

// Per-chunk histograms cost chunks * num_nodes counter slots, so the chunk
// count is capped independently of the worker count.
constexpr uint64_t kMaxIngestChunks = 16;

// One contiguous source-node range per chunk. Returns the node count per
// chunk; the chunk count follows as ceil(n / chunk_nodes).
uint64_t IngestChunkNodes(uint64_t num_nodes, util::ThreadPool* pool) {
  const uint64_t chunks = std::max<uint64_t>(
      1, std::min<uint64_t>({pool->num_threads(), kMaxIngestChunks,
                             num_nodes}));
  return (num_nodes + chunks - 1) / chunks;
}

}  // namespace

void WebGraph::SyncViews() {
  out_offsets_v_ = out_offsets_;
  targets_v_ = targets_;
  in_offsets_v_ = in_offsets_;
  sources_v_ = sources_;
  inv_out_degree_v_ = inv_out_degree_;
  dangling_v_ = dangling_nodes_;
}

WebGraph WebGraph::FromSortedEdges(
    NodeId num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  WebGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  g.targets_.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    CHECK_LT(u, num_nodes);
    CHECK_LT(v, num_nodes);
    CHECK_NE(u, v) << "self-links are disallowed (Section 2.1)";
    if (i > 0) {
      CHECK(edges[i - 1] < edges[i]) << "edges must be sorted and unique";
    }
    g.out_offsets_[u + 1]++;
    g.targets_.push_back(v);
  }
  for (size_t i = 1; i < g.out_offsets_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  g.SyncViews();
  g.BuildTranspose();
  g.BuildDerivedArrays();
  DCHECK_OK(ValidateGraph(g));
  return g;
}

WebGraph WebGraph::FromCsr(NodeId num_nodes,
                           std::vector<uint64_t> out_offsets,
                           std::vector<NodeId> targets,
                           util::ThreadPool* pool) {
  CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CHECK_EQ(out_offsets.back(), targets.size());
  WebGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_ = std::move(out_offsets);
  g.targets_ = std::move(targets);
  g.SyncViews();
  g.BuildTranspose(pool);
  g.BuildDerivedArrays(pool);
  DCHECK_OK(ValidateGraph(g));
  return g;
}

WebGraph WebGraph::FromCsrPair(NodeId num_nodes,
                               std::vector<uint64_t> out_offsets,
                               std::vector<NodeId> targets,
                               std::vector<uint64_t> in_offsets,
                               std::vector<NodeId> sources,
                               util::ThreadPool* pool) {
  CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CHECK_EQ(out_offsets.back(), targets.size());
  CHECK_EQ(in_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CHECK_EQ(in_offsets.back(), sources.size());
  CHECK_EQ(targets.size(), sources.size());
  WebGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_ = std::move(out_offsets);
  g.targets_ = std::move(targets);
  g.in_offsets_ = std::move(in_offsets);
  g.sources_ = std::move(sources);
  g.SyncViews();
  g.BuildDerivedArrays(pool);
  DCHECK_OK(ValidateGraph(g));
  return g;
}

WebGraph WebGraph::FromMappedSections(
    NodeId num_nodes, std::span<const uint64_t> out_offsets,
    std::span<const NodeId> targets, std::span<const uint64_t> in_offsets,
    std::span<const NodeId> sources, std::span<const double> inv_out_degree,
    std::span<const NodeId> dangling_nodes,
    std::shared_ptr<const util::MmapFile> mapping) {
  CHECK(mapping != nullptr);
  CHECK_EQ(out_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CHECK_EQ(in_offsets.size(), static_cast<size_t>(num_nodes) + 1);
  CHECK_EQ(targets.size(), sources.size());
  CHECK_EQ(inv_out_degree.size(), static_cast<size_t>(num_nodes));
  WebGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_.clear();
  g.in_offsets_.clear();
  g.out_offsets_v_ = out_offsets;
  g.targets_v_ = targets;
  g.in_offsets_v_ = in_offsets;
  g.sources_v_ = sources;
  g.inv_out_degree_v_ = inv_out_degree;
  g.dangling_v_ = dangling_nodes;
  g.mapping_ = std::move(mapping);
  DCHECK_OK(ValidateGraph(g));
  return g;
}

uint64_t WebGraph::mapped_bytes() const {
  return mapping_ == nullptr ? 0 : mapping_->size();
}

uint64_t WebGraph::resident_bytes() const {
  return mapping_ == nullptr ? 0 : mapping_->ResidentBytes();
}

std::vector<WebGraph::SectionResidency> WebGraph::MappedSectionResidency()
    const {
  std::vector<SectionResidency> sections;
  if (mapping_ == nullptr) return sections;
  const uint8_t* base = mapping_->data();
  const auto probe = [&](const char* name, const void* data,
                         uint64_t length) {
    if (length == 0 || data == nullptr) {
      sections.push_back({name, 0, 0});
      return;
    }
    // Every view points into the mapping, so pointer arithmetic against
    // the base recovers the section's file offset.
    const uint64_t offset = static_cast<uint64_t>(
        reinterpret_cast<const uint8_t*>(data) - base);
    sections.push_back(
        {name, length, mapping_->ResidentBytesInRange(offset, length)});
  };
  probe("out_offsets", out_offsets_v_.data(), out_offsets_v_.size_bytes());
  probe("targets", targets_v_.data(), targets_v_.size_bytes());
  probe("in_offsets", in_offsets_v_.data(), in_offsets_v_.size_bytes());
  probe("sources", sources_v_.data(), sources_v_.size_bytes());
  probe("inv_out_degree", inv_out_degree_v_.data(),
        inv_out_degree_v_.size_bytes());
  probe("dangling", dangling_v_.data(), dangling_v_.size_bytes());
  return sections;
}

void WebGraph::BuildTranspose(util::ThreadPool* pool) {
  const uint64_t n = num_nodes_;
  in_offsets_.assign(n + 1, 0);
  sources_.assign(targets_.size(), 0);
  // The assigns above may reallocate; re-point the in-direction views (the
  // out-direction views feeding OutNeighbors below are already current).
  SyncViews();
  if (n == 0) return;

  if (pool == nullptr || pool->num_threads() <= 1 ||
      targets_.size() < kParallelIngestMinEdges) {
    for (NodeId v : targets_) in_offsets_[v + 1]++;
    for (size_t i = 1; i < in_offsets_.size(); ++i) {
      in_offsets_[i] += in_offsets_[i - 1];
    }
    std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
    for (NodeId u = 0; u < num_nodes_; ++u) {
      for (NodeId v : OutNeighbors(u)) {
        sources_[cursor[v]++] = u;
      }
    }
    // Out-neighbor lists are scanned in ascending source order, so each
    // in-neighbor list comes out sorted already.
    return;
  }

  // Parallel counting sort over contiguous source-node chunks. Every
  // scatter position is computed exactly from the per-chunk histograms, so
  // the output arrays are bit-identical to the serial path for any chunk
  // count — and the chunks write disjoint slots, so no write races.
  const uint64_t chunk_nodes = IngestChunkNodes(n, pool);
  const uint64_t num_chunks = (n + chunk_nodes - 1) / chunk_nodes;

  // Phase 1: per-chunk in-degree histograms, counts[c * n + v]. A node's
  // total in-degree is below 2^32 (at most one link per ordered source
  // pair), so 32-bit per-chunk counters cannot overflow.
  std::vector<uint32_t> counts(num_chunks * n, 0);
  pool->ParallelForChunked(
      n, chunk_nodes, [&](uint64_t c, uint64_t begin, uint64_t end) {
        uint32_t* local = counts.data() + c * n;
        for (uint64_t u = begin; u < end; ++u) {
          for (NodeId v : OutNeighbors(static_cast<NodeId>(u))) local[v]++;
        }
      });

  // Phase 2: fold the histograms into global in_offsets_ and rewrite each
  // counts slot into the chunk's starting offset within node v's row
  // (exclusive prefix over chunks in source order — this is what keeps
  // every in-neighbor list sorted by source).
  for (uint64_t v = 0; v < n; ++v) {
    uint32_t running = 0;
    for (uint64_t c = 0; c < num_chunks; ++c) {
      const uint32_t count = counts[c * n + v];
      counts[c * n + v] = running;
      running += count;
    }
    in_offsets_[v + 1] = running;
  }
  for (size_t i = 1; i < in_offsets_.size(); ++i) {
    in_offsets_[i] += in_offsets_[i - 1];
  }

  // Phase 3: scatter. Chunk c's edge (u, v) lands at
  // in_offsets_[v] + counts[c * n + v]++, a slot no other chunk touches.
  pool->ParallelForChunked(
      n, chunk_nodes, [&](uint64_t c, uint64_t begin, uint64_t end) {
        uint32_t* local = counts.data() + c * n;
        for (uint64_t u = begin; u < end; ++u) {
          for (NodeId v : OutNeighbors(static_cast<NodeId>(u))) {
            sources_[in_offsets_[v] + local[v]++] = static_cast<NodeId>(u);
          }
        }
      });
}

void WebGraph::BuildDerivedArrays(util::ThreadPool* pool) {
  const uint64_t n = num_nodes_;
  inv_out_degree_.assign(n, 0.0);
  dangling_nodes_.clear();
  if (n == 0) {
    SyncViews();
    return;
  }

  if (pool == nullptr || pool->num_threads() <= 1 ||
      n < kParallelIngestMinEdges) {
    for (NodeId x = 0; x < num_nodes_; ++x) {
      const uint32_t d = OutDegree(x);
      if (d == 0) {
        dangling_nodes_.push_back(x);
      } else {
        inv_out_degree_[x] = 1.0 / d;
      }
    }
    SyncViews();
    return;
  }

  // Per-chunk dangling lists land in chunk-indexed slots and concatenate
  // in chunk order, so the combined list is ascending and identical to the
  // serial scan for any chunk count.
  const uint64_t chunk_nodes = IngestChunkNodes(n, pool);
  const uint64_t num_chunks = (n + chunk_nodes - 1) / chunk_nodes;
  std::vector<std::vector<NodeId>> chunk_dangling(num_chunks);
  pool->ParallelForChunked(
      n, chunk_nodes, [&](uint64_t c, uint64_t begin, uint64_t end) {
        std::vector<NodeId>& local = chunk_dangling[c];
        for (uint64_t u = begin; u < end; ++u) {
          const auto x = static_cast<NodeId>(u);
          const uint32_t d = OutDegree(x);
          if (d == 0) {
            local.push_back(x);
          } else {
            inv_out_degree_[x] = 1.0 / d;
          }
        }
      });
  size_t total = 0;
  for (const auto& local : chunk_dangling) total += local.size();
  dangling_nodes_.reserve(total);
  for (const auto& local : chunk_dangling) {
    dangling_nodes_.insert(dangling_nodes_.end(), local.begin(), local.end());
  }
  SyncViews();
}

void WebGraph::BuildCompressedInAdjacency() {
  if (has_compressed_in()) return;
  compressed_in_ = EncodeAdjacency(num_nodes_, in_offsets_v_, sources_v_);
}

void WebGraph::AdoptCompressedInAdjacency(CompressedAdjacency compressed) {
  DCHECK_OK(ValidateCompressedAdjacency(compressed, num_nodes_,
                                        in_offsets_v_, sources_v_));
  compressed_in_ = std::move(compressed);
}

bool WebGraph::HasEdge(NodeId x, NodeId y) const {
  auto nbrs = OutNeighbors(x);
  return std::binary_search(nbrs.begin(), nbrs.end(), y);
}

WebGraph WebGraph::Transposed(util::ThreadPool* pool) const {
  WebGraph g;
  g.num_nodes_ = num_nodes_;
  // Copy through the views so mapped graphs transpose into heap storage.
  g.out_offsets_.assign(in_offsets_v_.begin(), in_offsets_v_.end());
  g.targets_.assign(sources_v_.begin(), sources_v_.end());
  g.in_offsets_.assign(out_offsets_v_.begin(), out_offsets_v_.end());
  g.sources_.assign(targets_v_.begin(), targets_v_.end());
  g.host_names_ = host_names_;
  g.SyncViews();
  g.BuildDerivedArrays(pool);
  DCHECK_OK(ValidateGraph(g));
  return g;
}

void WebGraph::set_host_names(std::vector<std::string> names) {
  CHECK_EQ(names.size(), static_cast<size_t>(num_nodes_));
  host_names_ = std::move(names);
}

std::string_view WebGraph::HostName(NodeId x) const {
  CHECK_LT(x, num_nodes_);
  if (!host_names_.empty()) return host_names_[x];
  thread_local std::string fallback;
  fallback = "node";
  fallback += std::to_string(x);
  return fallback;
}

void PublishMappedResidency(const WebGraph& graph) {
  if (!graph.is_mapped()) return;
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
  registry.GetGauge("graph.mmap_mapped_bytes")
      ->Set(static_cast<double>(graph.mapped_bytes()));
  registry.GetGauge("graph.mmap_resident_bytes")
      ->Set(static_cast<double>(graph.resident_bytes()));
  // Cold path (one probe per load/snapshot), so the dynamic gauge names
  // are looked up rather than cached.
  for (const WebGraph::SectionResidency& s : graph.MappedSectionResidency()) {
    registry.GetGauge(std::string("graph.mmap_resident_bytes.") + s.name)
        ->Set(static_cast<double>(s.resident_bytes));
  }
}

}  // namespace spammass::graph
