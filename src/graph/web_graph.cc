#include "graph/web_graph.h"

#include <algorithm>

#include "graph/graph_validate.h"
#include "util/debug.h"
#include "util/logging.h"

namespace spammass::graph {

WebGraph WebGraph::FromSortedEdges(
    NodeId num_nodes, const std::vector<std::pair<NodeId, NodeId>>& edges) {
  WebGraph g;
  g.num_nodes_ = num_nodes;
  g.out_offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  g.targets_.reserve(edges.size());
  for (size_t i = 0; i < edges.size(); ++i) {
    auto [u, v] = edges[i];
    CHECK_LT(u, num_nodes);
    CHECK_LT(v, num_nodes);
    CHECK_NE(u, v) << "self-links are disallowed (Section 2.1)";
    if (i > 0) {
      CHECK(edges[i - 1] < edges[i]) << "edges must be sorted and unique";
    }
    g.out_offsets_[u + 1]++;
    g.targets_.push_back(v);
  }
  for (size_t i = 1; i < g.out_offsets_.size(); ++i) {
    g.out_offsets_[i] += g.out_offsets_[i - 1];
  }
  g.BuildTranspose();
  g.BuildDerivedArrays();
  DCHECK_OK(ValidateGraph(g));
  return g;
}

void WebGraph::BuildTranspose() {
  in_offsets_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (NodeId v : targets_) in_offsets_[v + 1]++;
  for (size_t i = 1; i < in_offsets_.size(); ++i) {
    in_offsets_[i] += in_offsets_[i - 1];
  }
  sources_.assign(targets_.size(), 0);
  std::vector<uint64_t> cursor(in_offsets_.begin(), in_offsets_.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    for (NodeId v : OutNeighbors(u)) {
      sources_[cursor[v]++] = u;
    }
  }
  // Out-neighbor lists are scanned in ascending source order, so each
  // in-neighbor list comes out sorted already.
}

void WebGraph::BuildDerivedArrays() {
  inv_out_degree_.assign(num_nodes_, 0.0);
  dangling_nodes_.clear();
  for (NodeId x = 0; x < num_nodes_; ++x) {
    const uint32_t d = OutDegree(x);
    if (d == 0) {
      dangling_nodes_.push_back(x);
    } else {
      inv_out_degree_[x] = 1.0 / d;
    }
  }
}

bool WebGraph::HasEdge(NodeId x, NodeId y) const {
  auto nbrs = OutNeighbors(x);
  return std::binary_search(nbrs.begin(), nbrs.end(), y);
}

WebGraph WebGraph::Transposed() const {
  WebGraph g;
  g.num_nodes_ = num_nodes_;
  g.out_offsets_ = in_offsets_;
  g.targets_ = sources_;
  g.in_offsets_ = out_offsets_;
  g.sources_ = targets_;
  g.host_names_ = host_names_;
  g.BuildDerivedArrays();
  DCHECK_OK(ValidateGraph(g));
  return g;
}

void WebGraph::set_host_names(std::vector<std::string> names) {
  CHECK_EQ(names.size(), static_cast<size_t>(num_nodes_));
  host_names_ = std::move(names);
}

std::string WebGraph::HostName(NodeId x) const {
  CHECK_LT(x, num_nodes_);
  if (host_names_.empty()) return "node" + std::to_string(x);
  return host_names_[x];
}

}  // namespace spammass::graph
