#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include "graph/graph_validate.h"
#include "obs/trace.h"
#include "util/debug.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace spammass::graph {

namespace {

// Below this many pending edges the serial sort wins over the partition /
// per-shard-sort / merge pipeline (cross-thread hops plus one extra copy of
// the edge array).
constexpr uint64_t kParallelBuildMinEdges = 1u << 14;

// More shards than workers keeps the per-shard sorts load-balanced when the
// source distribution is skewed (web graphs are power-law); capped so the
// per-chunk histograms stay tiny.
constexpr uint64_t kShardsPerWorker = 4;
constexpr uint64_t kMaxBuildShards = 64;

}  // namespace

NodeId GraphBuilder::AddNode() {
  if (any_names_) host_names_.emplace_back();
  return num_nodes_++;
}

NodeId GraphBuilder::AddNode(std::string host_name) {
  if (!any_names_) {
    any_names_ = true;
    host_names_.resize(num_nodes_);
  }
  host_names_.push_back(std::move(host_name));
  return num_nodes_++;
}

void GraphBuilder::EnsureNodes(NodeId n) {
  if (n > num_nodes_) {
    if (any_names_) host_names_.resize(n);
    num_nodes_ = n;
  }
}

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  CHECK_LT(from, num_nodes_);
  CHECK_LT(to, num_nodes_);
  if (from == to) return;  // Self-links disallowed by the model.
  edges_.emplace_back(from, to);
}

WebGraph GraphBuilder::Build(util::ThreadPool* pool) {
  SPAMMASS_TRACE_SPAN("graph.build", "pending_edges",
                      static_cast<uint64_t>(edges_.size()), "nodes",
                      static_cast<uint64_t>(num_nodes_));
  WebGraph g;
  if (pool != nullptr && pool->num_threads() > 1 &&
      edges_.size() >= kParallelBuildMinEdges) {
    g = BuildParallel(pool);
  } else {
    std::sort(edges_.begin(), edges_.end());
    edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
    g = WebGraph::FromSortedEdges(num_nodes_, edges_);
  }
  if (any_names_) g.set_host_names(std::move(host_names_));
  edges_.clear();
  edges_.shrink_to_fit();
  host_names_.clear();
  any_names_ = false;
  num_nodes_ = 0;
  DCHECK_OK(ValidateGraph(g));
  return g;
}

WebGraph GraphBuilder::BuildParallel(util::ThreadPool* pool) {
  // Every shard owns a contiguous source-id range, so (a) duplicates of an
  // edge always land in the same shard and per-shard dedup equals global
  // dedup, and (b) concatenating the sorted shards yields the globally
  // sorted unique edge list — the same list the serial path produces. All
  // scatter positions below are computed exactly from per-chunk histograms
  // (never raced), so the output is bit-identical for any pool size.
  const uint64_t n = num_nodes_;
  const uint64_t num_edges = edges_.size();
  const uint64_t want_shards = std::max<uint64_t>(
      1, std::min<uint64_t>(
             {n, kMaxBuildShards, pool->num_threads() * kShardsPerWorker}));
  const uint64_t shard_nodes = (n + want_shards - 1) / want_shards;
  const uint64_t num_shards = (n + shard_nodes - 1) / shard_nodes;

  // Phase 1: per-(edge-chunk, shard) histogram.
  const uint64_t chunk_size =
      std::max<uint64_t>(1u << 14, (num_edges + 63) / 64);
  const uint64_t num_chunks = (num_edges + chunk_size - 1) / chunk_size;
  std::vector<uint64_t> cursors(num_chunks * num_shards, 0);
  pool->ParallelForChunked(
      num_edges, chunk_size, [&](uint64_t c, uint64_t begin, uint64_t end) {
        uint64_t* local = cursors.data() + c * num_shards;
        for (uint64_t i = begin; i < end; ++i) {
          local[edges_[i].first / shard_nodes]++;
        }
      });

  // Exclusive prefix in (shard, chunk) order turns the histogram into the
  // scatter cursor for chunk c's first edge of shard s, and yields the
  // shard boundaries as a byproduct.
  std::vector<uint64_t> shard_begin(num_shards + 1, 0);
  uint64_t running = 0;
  for (uint64_t s = 0; s < num_shards; ++s) {
    shard_begin[s] = running;
    for (uint64_t c = 0; c < num_chunks; ++c) {
      const uint64_t count = cursors[c * num_shards + s];
      cursors[c * num_shards + s] = running;
      running += count;
    }
  }
  shard_begin[num_shards] = running;

  // Phase 2: scatter edges into shard-grouped order.
  std::vector<std::pair<NodeId, NodeId>> partitioned(num_edges);
  pool->ParallelForChunked(
      num_edges, chunk_size, [&](uint64_t c, uint64_t begin, uint64_t end) {
        uint64_t* local = cursors.data() + c * num_shards;
        for (uint64_t i = begin; i < end; ++i) {
          partitioned[local[edges_[i].first / shard_nodes]++] = edges_[i];
        }
      });

  // Phase 3: sort + dedup each shard independently.
  std::vector<uint64_t> shard_unique(num_shards, 0);
  pool->ParallelForChunked(
      num_shards, 1, [&](uint64_t s, uint64_t, uint64_t) {
        auto first = partitioned.begin() +
                     static_cast<ptrdiff_t>(shard_begin[s]);
        auto last = partitioned.begin() +
                    static_cast<ptrdiff_t>(shard_begin[s + 1]);
        std::sort(first, last);
        shard_unique[s] =
            static_cast<uint64_t>(std::unique(first, last) - first);
      });

  // Phase 4: prefix-sum the deduped shard sizes into output bases, then
  // emit per-node degree counts and the target array. Shards own disjoint
  // source ranges, so the offsets writes don't overlap.
  std::vector<uint64_t> out_base(num_shards + 1, 0);
  for (uint64_t s = 0; s < num_shards; ++s) {
    out_base[s + 1] = out_base[s] + shard_unique[s];
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  std::vector<NodeId> targets(out_base[num_shards]);
  pool->ParallelForChunked(
      num_shards, 1, [&](uint64_t s, uint64_t, uint64_t) {
        const auto* shard = partitioned.data() + shard_begin[s];
        uint64_t pos = out_base[s];
        for (uint64_t i = 0; i < shard_unique[s]; ++i) {
          offsets[shard[i].first + 1]++;
          targets[pos++] = shard[i].second;
        }
      });
  for (size_t i = 1; i < offsets.size(); ++i) offsets[i] += offsets[i - 1];

  return WebGraph::FromCsr(num_nodes_, std::move(offsets),
                           std::move(targets), pool);
}

}  // namespace spammass::graph
