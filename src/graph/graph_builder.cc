#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include "graph/graph_validate.h"
#include "util/debug.h"
#include "util/logging.h"

namespace spammass::graph {

NodeId GraphBuilder::AddNode() {
  if (any_names_) host_names_.emplace_back();
  return num_nodes_++;
}

NodeId GraphBuilder::AddNode(std::string host_name) {
  if (!any_names_) {
    any_names_ = true;
    host_names_.resize(num_nodes_);
  }
  host_names_.push_back(std::move(host_name));
  return num_nodes_++;
}

void GraphBuilder::EnsureNodes(NodeId n) {
  if (n > num_nodes_) {
    if (any_names_) host_names_.resize(n);
    num_nodes_ = n;
  }
}

void GraphBuilder::AddEdge(NodeId from, NodeId to) {
  CHECK_LT(from, num_nodes_);
  CHECK_LT(to, num_nodes_);
  if (from == to) return;  // Self-links disallowed by the model.
  edges_.emplace_back(from, to);
}

WebGraph GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end());
  edges_.erase(std::unique(edges_.begin(), edges_.end()), edges_.end());
  WebGraph g = WebGraph::FromSortedEdges(num_nodes_, edges_);
  if (any_names_) g.set_host_names(std::move(host_names_));
  edges_.clear();
  edges_.shrink_to_fit();
  host_names_.clear();
  any_names_ = false;
  num_nodes_ = 0;
  DCHECK_OK(ValidateGraph(g));
  return g;
}

}  // namespace spammass::graph
