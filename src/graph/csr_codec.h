// Delta + varint compression for CSR adjacency rows (WebGraph-framework
// style, PAPERS.md). Each row's strictly-ascending neighbor list is stored
// as LEB128 varints of the gaps: with prev starting at 0, each id encodes
// as `id - prev` and advances prev to `id + 1`, so every gap (including the
// first) fits the same uniform loop and consecutive ids cost one byte.
//
// The compressed form halves-or-better the edge traffic of the PageRank
// sweep (4 B/edge raw vs ~1.2 B/edge on power-law webs) at the cost of a
// sequential decode; pagerank/kernel.cc decodes on the fly with the
// unchecked inline helpers below. Untrusted bytes (the binary loader) must
// go through the bounds-checked DecodeRow / ValidateCompressedAdjacency.

#ifndef SPAMMASS_GRAPH_CSR_CODEC_H_
#define SPAMMASS_GRAPH_CSR_CODEC_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace spammass::graph {

/// Node identifier; identical to the WebGraph declaration (web_graph.h) —
/// redeclared here so the codec stays includable from the kernel without
/// pulling in the full graph type.
using NodeId = uint32_t;

/// One compressed adjacency direction: `bytes` holds the concatenated
/// varint-encoded rows, `byte_offsets` (num_nodes + 1 entries) frames row x
/// as bytes[byte_offsets[x], byte_offsets[x + 1]).
struct CompressedAdjacency {
  std::vector<uint64_t> byte_offsets{0};
  std::vector<uint8_t> bytes;

  bool empty() const { return byte_offsets.size() <= 1; }
  uint32_t num_rows() const {
    return static_cast<uint32_t>(byte_offsets.size() - 1);
  }
};

/// Appends the LEB128 encoding of `value` (1..5 bytes) to `out`.
inline void AppendVarint32(uint32_t value, std::vector<uint8_t>* out) {
  while (value >= 0x80u) {
    out->push_back(static_cast<uint8_t>(value | 0x80u));
    value >>= 7;
  }
  out->push_back(static_cast<uint8_t>(value));
}

/// Decodes one varint from `p`, advancing it. No bounds checking — callers
/// guarantee a whole well-formed varint is present (the sweep decodes rows
/// that EncodeAdjacency produced or that DecodeRow already validated).
inline uint32_t DecodeVarint32Unchecked(const uint8_t** p) {
  const uint8_t* s = *p;
  uint32_t value = *s & 0x7fu;
  uint32_t shift = 7;
  while (*s & 0x80u) {
    ++s;
    value |= static_cast<uint32_t>(*s & 0x7fu) << shift;
    shift += 7;
  }
  *p = s + 1;
  return value;
}

/// Encodes `num_nodes` CSR rows (offsets has num_nodes + 1 entries,
/// adjacency holds the concatenated strictly-ascending rows) into the
/// delta+varint form. Trusted input: rows must already satisfy ValidateCsr.
CompressedAdjacency EncodeAdjacency(NodeId num_nodes,
                                    std::span<const uint64_t> offsets,
                                    std::span<const NodeId> adjacency);

/// Bounds-checked decode of row `node` into `out` (resized to `degree`).
/// Fails on truncated/overlong varints, ids that are not strictly
/// ascending, ids >= num_nodes, or rows that do not consume exactly their
/// framed byte range. Safe on hostile bytes.
util::Status DecodeRow(const CompressedAdjacency& compressed, NodeId node,
                       uint32_t degree, NodeId num_nodes,
                       std::vector<NodeId>* out);

/// Full-structure validation against the plain CSR it claims to encode:
/// frame shape, then every row decoded (checked) and compared
/// element-for-element. Used by the binary loader before adopting an
/// untrusted compressed section.
util::Status ValidateCompressedAdjacency(const CompressedAdjacency& compressed,
                                         NodeId num_nodes,
                                         std::span<const uint64_t> offsets,
                                         std::span<const NodeId> adjacency);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_CSR_CODEC_H_
