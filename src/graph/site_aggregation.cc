#include "graph/site_aggregation.h"

#include <array>
#include <string_view>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace spammass::graph {

using util::Result;
using util::Status;

namespace {

/// Country-code second-level registries under which the third label is the
/// registrable part ("example.co.uk"). A pragmatic subset of the public
/// suffix list covering the registries common in host-level crawls.
constexpr std::array<std::string_view, 22> kSecondLevelSuffixes = {
    "co.uk",  "org.uk", "ac.uk",  "gov.uk", "com.br", "org.br", "net.br",
    "com.cn", "org.cn", "net.cn", "com.au", "org.au", "co.jp",  "or.jp",
    "ac.jp",  "co.kr",  "com.mx", "com.ar", "co.in",  "edu.pl", "com.pl",
    "org.pl",
};

bool IsSecondLevelSuffix(std::string_view suffix) {
  for (std::string_view candidate : kSecondLevelSuffixes) {
    if (suffix == candidate) return true;
  }
  return false;
}

}  // namespace

std::string RegisteredDomain(std::string_view host) {
  // Collect label boundaries from the right.
  size_t last_dot = host.rfind('.');
  if (last_dot == std::string_view::npos) return std::string(host);
  size_t second_dot = last_dot > 0 ? host.rfind('.', last_dot - 1)
                                   : std::string_view::npos;
  if (second_dot == std::string_view::npos) {
    return std::string(host);  // already two labels
  }
  std::string_view two_label = host.substr(second_dot + 1);
  size_t third_dot = second_dot > 0 ? host.rfind('.', second_dot - 1)
                                    : std::string_view::npos;
  if (IsSecondLevelSuffix(two_label)) {
    if (third_dot == std::string_view::npos) {
      return std::string(host);  // e.g. "example.co.uk"
    }
    return std::string(host.substr(third_dot + 1));
  }
  return std::string(host.substr(second_dot + 1));
}

Result<SiteAggregationResult> AggregateToSites(const WebGraph& graph) {
  if (graph.host_names().empty() && graph.num_nodes() > 0) {
    return Status::FailedPrecondition(
        "site aggregation needs host names on the graph");
  }
  SiteAggregationResult result;
  result.to_site.assign(graph.num_nodes(), kInvalidNode);
  std::unordered_map<std::string, NodeId> sites;
  GraphBuilder builder;
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    std::string domain = RegisteredDomain(graph.HostName(x));
    auto [it, inserted] = sites.emplace(domain, 0);
    if (inserted) {
      it->second = builder.AddNode(domain);
      result.site_sizes.push_back(0);
    }
    result.to_site[x] = it->second;
    result.site_sizes[it->second]++;
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      builder.AddEdge(result.to_site[u], result.to_site[v]);
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace spammass::graph
