#include "graph/graph_stats.h"

#include <algorithm>

namespace spammass::graph {

GraphStats ComputeGraphStats(const WebGraph& graph) {
  GraphStats s;
  s.num_nodes = graph.num_nodes();
  s.num_edges = graph.num_edges();
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t in = graph.InDegree(u);
    uint32_t out = graph.OutDegree(u);
    if (in == 0) s.no_inlinks++;
    if (out == 0) s.no_outlinks++;
    if (in == 0 && out == 0) s.isolated++;
    s.max_indegree = std::max(s.max_indegree, in);
    s.max_outdegree = std::max(s.max_outdegree, out);
  }
  s.mean_indegree = s.num_nodes ? static_cast<double>(s.num_edges) /
                                      static_cast<double>(s.num_nodes)
                                : 0;
  return s;
}

std::vector<uint64_t> InDegreeDistribution(const WebGraph& graph) {
  std::vector<uint64_t> counts;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t d = graph.InDegree(u);
    if (d >= counts.size()) counts.resize(d + 1, 0);
    counts[d]++;
  }
  return counts;
}

std::vector<uint64_t> OutDegreeDistribution(const WebGraph& graph) {
  std::vector<uint64_t> counts;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t d = graph.OutDegree(u);
    if (d >= counts.size()) counts.resize(d + 1, 0);
    counts[d]++;
  }
  return counts;
}

}  // namespace spammass::graph
