// Locality-aware vertex reordering (ROADMAP items 3-4). Crawl-order node
// IDs scatter a sweep's gather stream across the whole score array; both
// orderings here cluster high-traffic nodes so the gathered cache lines
// stay hot, and the same permutation machinery is the prerequisite for
// host-range sharding. PageRank scores are permutation-equivariant, so
// solving on the reordered graph and mapping IDs back through the inverse
// permutation changes nothing observable (asserted by
// graph_reorder_test.cc / pipeline_variant_equivalence_test.cc).

#ifndef SPAMMASS_GRAPH_REORDER_H_
#define SPAMMASS_GRAPH_REORDER_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::util {
class ThreadPool;
}  // namespace spammass::util

namespace spammass::graph {

/// Which permutation to apply before solving.
enum class ReorderKind {
  kNone = 0,
  /// Descending total degree (in + out), id-ascending tie-break: hubs —
  /// the nodes every gather touches — pack into the first cache lines.
  kDegreeDesc,
  /// BFS from the highest-degree node over the union adjacency (restarted
  /// per weakly connected component): neighbors land near each other.
  kBfs,
  /// Reverse Cuthill–McKee over the union adjacency: Cuthill–McKee visits
  /// each component from a minimum-degree start, expanding neighbors in
  /// ascending-degree order, and the whole order is reversed — the classic
  /// bandwidth-minimizing permutation. Narrow bandwidth means a sweep's
  /// gather window is a short, mostly-resident slice of the score array;
  /// it also concentrates each host-range shard's ghosts near its
  /// boundaries (docs/performance.md).
  kRcm,
};

/// Stable lowercase name ("none", "degree", "bfs", "rcm").
const char* ReorderKindToString(ReorderKind kind);

/// Inverse of ReorderKindToString. Fails with InvalidArgument on unknown
/// names.
util::Result<ReorderKind> ReorderKindFromString(std::string_view name);

/// A node permutation and its inverse. perm[old] = new maps original IDs
/// into the reordered graph; inverse[new] = old maps solver/detector
/// output back to the IDs the host-facing layers report.
struct Reordering {
  std::vector<NodeId> perm;
  std::vector<NodeId> inverse;

  NodeId num_nodes() const { return static_cast<NodeId>(perm.size()); }
};

/// Computes the permutation for `kind` (kNone yields identity). The result
/// is deterministic: no randomness, ties broken by ascending original ID.
Reordering ComputeReordering(const WebGraph& graph, ReorderKind kind);

/// Applies `reordering` to `graph`: node x of the result is node
/// inverse[x] of the input, every adjacency relabeled and re-sorted. Host
/// names follow the permutation; the compressed in-adjacency is rebuilt
/// when the input carries one. `pool` parallelizes the transpose rebuild.
WebGraph ApplyReordering(const WebGraph& graph, const Reordering& reordering,
                         util::ThreadPool* pool = nullptr);

/// Maps a node list through perm (old IDs -> reordered IDs), preserving
/// order. Also used with `inverse` to translate back.
std::vector<NodeId> MapNodeIds(std::span<const NodeId> nodes,
                               const std::vector<NodeId>& mapping);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_REORDER_H_
