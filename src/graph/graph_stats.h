// Structural statistics of a web graph. Section 4.1 of the paper
// characterizes the Yahoo! host graph by the fractions of hosts without
// inlinks (35%), without outlinks (66.4%) and completely isolated (25.8%);
// ComputeGraphStats reproduces that table for any graph, and the degree
// distributions feed the power-law checks of Sections 4.3 and 4.6.

#ifndef SPAMMASS_GRAPH_GRAPH_STATS_H_
#define SPAMMASS_GRAPH_GRAPH_STATS_H_

#include <cstdint>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::graph {

/// Aggregate structural statistics.
struct GraphStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t no_inlinks = 0;    // indegree == 0
  uint64_t no_outlinks = 0;   // outdegree == 0 (dangling)
  uint64_t isolated = 0;      // both
  uint32_t max_indegree = 0;
  uint32_t max_outdegree = 0;
  double mean_indegree = 0;   // == mean outdegree == edges / nodes
  double FractionNoInlinks() const {
    return num_nodes
               ? static_cast<double>(no_inlinks) / static_cast<double>(num_nodes)
               : 0;
  }
  double FractionNoOutlinks() const {
    return num_nodes
               ? static_cast<double>(no_outlinks) / static_cast<double>(num_nodes)
               : 0;
  }
  double FractionIsolated() const {
    return num_nodes
               ? static_cast<double>(isolated) / static_cast<double>(num_nodes)
               : 0;
  }
};

/// Single pass over the graph.
GraphStats ComputeGraphStats(const WebGraph& graph);

/// Returns counts[d] = number of nodes with indegree d (d up to the max).
std::vector<uint64_t> InDegreeDistribution(const WebGraph& graph);

/// Returns counts[d] = number of nodes with outdegree d.
std::vector<uint64_t> OutDegreeDistribution(const WebGraph& graph);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_GRAPH_STATS_H_
