#include "graph/host_normalize.h"

#include <algorithm>
#include <cctype>
#include <unordered_map>

#include "graph/graph_builder.h"

namespace spammass::graph {

using util::Result;
using util::Status;

std::string NormalizeHostName(std::string_view host,
                              const HostNormalizeOptions& options) {
  std::string out(host);
  if (options.case_fold) {
    std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
  }
  if (options.strip_trailing_dot && !out.empty() && out.back() == '.') {
    out.pop_back();
  }
  if (options.strip_port) {
    size_t colon = out.rfind(':');
    if (colon != std::string::npos) {
      bool digits = colon + 1 < out.size();
      for (size_t i = colon + 1; i < out.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(out[i]))) {
          digits = false;
          break;
        }
      }
      if (digits) out.erase(colon);
    }
  }
  auto strip_prefix = [&out](const std::string& prefix) {
    // Only fold when a domain of at least two labels remains.
    if (out.rfind(prefix, 0) == 0 &&
        out.find('.', prefix.size()) != std::string::npos) {
      out.erase(0, prefix.size());
      return true;
    }
    return false;
  };
  if (options.fold_www) {
    strip_prefix("www.");
  }
  if (options.fold_www_variants && out.rfind("www", 0) == 0) {
    // "www<digits>." or "www-": find the separator after the www token.
    size_t i = 3;
    while (i < out.size() && std::isdigit(static_cast<unsigned char>(out[i]))) {
      ++i;
    }
    if (i < out.size() && (out[i] == '.' || out[i] == '-')) {
      std::string candidate = out.substr(i + 1);
      if (candidate.find('.') != std::string::npos) out = candidate;
    }
  }
  return out;
}

Result<AliasMergeResult> MergeHostAliases(
    const WebGraph& graph, const HostNormalizeOptions& options) {
  if (graph.host_names().empty() && graph.num_nodes() > 0) {
    return Status::FailedPrecondition(
        "alias merging needs host names on the graph");
  }
  AliasMergeResult result;
  result.to_merged.assign(graph.num_nodes(), kInvalidNode);

  std::unordered_map<std::string, NodeId> canonical;
  GraphBuilder builder;
  std::vector<uint64_t> group_sizes;
  for (NodeId x = 0; x < graph.num_nodes(); ++x) {
    std::string name = NormalizeHostName(graph.HostName(x), options);
    auto [it, inserted] = canonical.emplace(name, 0);
    if (inserted) {
      it->second = builder.AddNode(name);
      group_sizes.push_back(0);
    }
    result.to_merged[x] = it->second;
    group_sizes[it->second]++;
  }
  for (uint64_t size : group_sizes) {
    if (size > 1) result.merged_groups++;
  }
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) {
      builder.AddEdge(result.to_merged[u], result.to_merged[v]);
    }
  }
  result.graph = builder.Build();
  return result;
}

}  // namespace spammass::graph
