#include "graph/graph_algorithms.h"

#include <deque>
#include <numeric>

#include "util/logging.h"

namespace spammass::graph {

namespace {

std::vector<bool> Bfs(const WebGraph& graph, const std::vector<NodeId>& seeds,
                      bool forward) {
  std::vector<bool> visited(graph.num_nodes(), false);
  std::deque<NodeId> queue;
  for (NodeId s : seeds) {
    CHECK_LT(s, graph.num_nodes());
    if (!visited[s]) {
      visited[s] = true;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    auto nbrs = forward ? graph.OutNeighbors(u) : graph.InNeighbors(u);
    for (NodeId v : nbrs) {
      if (!visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
  }
  return visited;
}

}  // namespace

std::vector<bool> ReachableFrom(const WebGraph& graph,
                                const std::vector<NodeId>& sources) {
  return Bfs(graph, sources, /*forward=*/true);
}

std::vector<bool> CanReach(const WebGraph& graph,
                           const std::vector<NodeId>& targets) {
  return Bfs(graph, targets, /*forward=*/false);
}

std::vector<uint32_t> BfsDistances(const WebGraph& graph,
                                   const std::vector<NodeId>& sources) {
  std::vector<uint32_t> dist(graph.num_nodes(), kUnreachableDistance);
  std::deque<NodeId> queue;
  for (NodeId s : sources) {
    CHECK_LT(s, graph.num_nodes());
    if (dist[s] == kUnreachableDistance) {
      dist[s] = 0;
      queue.push_back(s);
    }
  }
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (NodeId v : graph.OutNeighbors(u)) {
      if (dist[v] == kUnreachableDistance) {
        dist[v] = dist[u] + 1;
        queue.push_back(v);
      }
    }
  }
  return dist;
}

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(uint32_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<uint32_t> parent_;
  std::vector<uint32_t> size_;
};

}  // namespace

std::vector<uint32_t> WeaklyConnectedComponents(const WebGraph& graph,
                                                uint32_t* num_components) {
  UnionFind uf(graph.num_nodes());
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    for (NodeId v : graph.OutNeighbors(u)) uf.Union(u, v);
  }
  std::vector<uint32_t> component(graph.num_nodes(), 0);
  std::vector<uint32_t> remap(graph.num_nodes(), kInvalidNode);
  uint32_t next = 0;
  for (NodeId u = 0; u < graph.num_nodes(); ++u) {
    uint32_t root = uf.Find(u);
    if (remap[root] == kInvalidNode) remap[root] = next++;
    component[u] = remap[root];
  }
  if (num_components != nullptr) *num_components = next;
  return component;
}

}  // namespace spammass::graph
