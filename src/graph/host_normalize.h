// Host-name normalization and alias grouping. Section 4.1 of the paper
// notes that no alias detection was performed ("www-cs.stanford.edu and
// cs.stanford.edu counted as two separate hosts"); production deployments
// want the opposite. This module canonicalizes host names (case folding,
// trailing-dot and port stripping, optional "www." folding) and merges
// alias nodes of a graph into canonical representatives.

#ifndef SPAMMASS_GRAPH_HOST_NORMALIZE_H_
#define SPAMMASS_GRAPH_HOST_NORMALIZE_H_

#include <string>
#include <string_view>
#include <vector>

#include "graph/web_graph.h"
#include "util/status.h"

namespace spammass::graph {

/// Normalization behavior.
struct HostNormalizeOptions {
  /// Lower-case the entire host name (DNS is case-insensitive).
  bool case_fold = true;
  /// Drop a single trailing '.' (absolute DNS form).
  bool strip_trailing_dot = true;
  /// Drop an explicit ":port" suffix.
  bool strip_port = true;
  /// Fold a leading "www." onto the bare domain ("www.x.com" -> "x.com").
  bool fold_www = true;
  /// Additionally fold "www<digits>." and "www-" prefixes (mirror hosts).
  bool fold_www_variants = false;
};

/// Canonicalizes one host name.
std::string NormalizeHostName(std::string_view host,
                              const HostNormalizeOptions& options);

/// Result of merging aliases.
struct AliasMergeResult {
  WebGraph graph;
  /// to_merged[old_id] = node id in the merged graph.
  std::vector<NodeId> to_merged;
  /// Number of alias groups that had more than one member.
  uint64_t merged_groups = 0;
};

/// Groups nodes whose normalized host names coincide and collapses each
/// group into one node (keeping the first member's name, normalized).
/// Edges are redirected and deduplicated; self-links created by merging
/// disappear. Requires host names on the graph.
util::Result<AliasMergeResult> MergeHostAliases(
    const WebGraph& graph, const HostNormalizeOptions& options);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_HOST_NORMALIZE_H_
