// Host-range sharding of a WebGraph: the node range is cut into
// contiguous source-id shards and every cross-shard in-edge is rerouted
// through a per-shard "ghost" table, so a sharded PageRank sweep can run
// each shard against a compact working set and exchange only the boundary
// rank values between sweeps (ROADMAP item 3).
//
// The plan is pure data about the partition — which rows each shard owns,
// which foreign nodes it reads (its ghosts), and the per-producer exchange
// lists, stored delta+varint-compressed with the csr_codec scheme exactly
// as a future multi-process boundary exchange would put them on the wire.
// The sweep loop that consumes the plan lives one layer up
// (pagerank/shard_sweep.h), where the bit-identity argument is made.
//
// Determinism: everything here is derived from sorted scans of the CSR —
// no hashing, no thread-order dependence — so the same (graph, shard
// count, alignment) always yields byte-identical plans.

#ifndef SPAMMASS_GRAPH_SHARD_H_
#define SPAMMASS_GRAPH_SHARD_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/web_graph.h"

namespace spammass::graph {

/// Contiguous node range [begin, end) owned by one shard. May be empty
/// when the graph has fewer aligned cut points than requested shards.
struct ShardRange {
  NodeId begin = 0;
  NodeId end = 0;
  uint64_t size() const { return static_cast<uint64_t>(end) - begin; }
};

/// Per-shard partition statistics, for the cache-blocking heuristics, the
/// obs gauges, and `spammass_cli graph stats`.
struct ShardStats {
  /// In-edges gathered by this shard's rows (the sweep's work measure;
  /// ranges are balanced on it).
  uint64_t in_edges = 0;
  /// Distinct foreign nodes this shard reads (its ghost table size).
  uint64_t ghosts = 0;
  /// In-edge entries whose source is foreign — every one is a gather
  /// through a ghost slot during a sweep (>= ghosts: a popular foreign
  /// node is gathered once per referencing edge, not once per table slot).
  uint64_t ghost_in_edges = 0;
  /// Varint-encoded bytes of all exchange lists consumed by this shard —
  /// the per-sweep boundary traffic a multi-process run would receive.
  uint64_t boundary_bytes = 0;
  /// Estimated bytes the shard touches per single-vector sweep: owned
  /// rows of the three rank arrays (prev/next/scaled) + ghost reads +
  /// in-offsets + inverse out-degrees + the sources entries it gathers.
  /// The cache-blocking rule of thumb: sweeps scale once this fits LLC.
  uint64_t working_set_bytes = 0;
};

/// One boundary-exchange list: `count` nodes owned by shard `producer`,
/// ascending, whose rank values shard `consumer` reads through ghost slots
/// [slot_begin, slot_begin + count). `nodes` is decoded from `encoded`
/// (delta+varint, csr_codec scheme: first id as-is, then id − prev − 1),
/// which is the canonical wire form of the list.
struct ShardExchange {
  uint32_t producer = 0;
  uint32_t consumer = 0;
  uint64_t slot_begin = 0;
  std::vector<uint8_t> encoded;
  std::vector<NodeId> nodes;
};

/// Encodes an ascending node list with the csr_codec gap scheme.
std::vector<uint8_t> EncodeExchangeList(std::span<const NodeId> nodes);

/// Decodes an EncodeExchangeList blob back into the ascending list.
std::vector<NodeId> DecodeExchangeList(std::span<const uint8_t> encoded,
                                       uint64_t count);

/// An immutable sharding of one graph. Built once, reused across solves
/// (pagerank::SolverWorkspace caches it per graph + shard count).
class ShardPlan {
 public:
  /// Partitions `graph` into `num_shards` contiguous source ranges with
  /// every boundary a multiple of `alignment`, balancing the per-shard
  /// in-edge counts. The caller picks the alignment; the sharded sweep
  /// passes its deterministic-reduction chunk size so no reduction chunk
  /// ever straddles a shard boundary (the bit-identity requirement —
  /// splitting a chunk would re-associate its float sum).
  static ShardPlan Build(const WebGraph& graph, uint32_t num_shards,
                         uint64_t alignment);

  uint32_t num_shards() const {
    return static_cast<uint32_t>(ranges_.size());
  }
  NodeId num_nodes() const { return num_nodes_; }
  uint64_t alignment() const { return alignment_; }
  const std::vector<ShardRange>& ranges() const { return ranges_; }

  /// Shard owning node y (binary search over the range boundaries).
  uint32_t ShardOf(NodeId y) const;

  /// The graph's in-CSR `sources` array with every cross-shard entry
  /// remapped to its ghost slot id: an entry e in a row of shard s is
  /// either the original global id (same shard) or
  /// num_nodes() + ghost slot. Edge positions are untouched, so a gather
  /// that walks this array visits exactly the same edge sequence as the
  /// unsharded kernel — the heart of the bit-identity argument.
  std::span<const NodeId> sources_local() const { return sources_local_; }

  /// Total ghost slots across all shards. Rank buffers extended for
  /// sharded sweeps hold (num_nodes() + total_ghosts()) rows.
  uint64_t total_ghosts() const { return ghost_nodes_.size(); }

  /// Global node behind each ghost slot; shard s owns the slot range
  /// [ghost_slot_begin(s), ghost_slot_begin(s) + stats()[s].ghosts),
  /// ascending by global id within a shard.
  std::span<const NodeId> ghost_nodes() const { return ghost_nodes_; }
  uint64_t ghost_slot_begin(uint32_t shard) const {
    return ghost_base_[shard];
  }

  /// All boundary-exchange lists, grouped by consumer shard, producers
  /// ascending within a consumer. Pairs with an empty list are omitted.
  const std::vector<ShardExchange>& exchanges() const { return exchanges_; }

  const std::vector<ShardStats>& stats() const { return stats_; }

  /// Largest per-shard working-set estimate (see ShardStats).
  uint64_t max_working_set_bytes() const;

 private:
  NodeId num_nodes_ = 0;
  uint64_t alignment_ = 1;
  std::vector<ShardRange> ranges_;
  std::vector<NodeId> boundaries_;  // ranges_[s].begin, plus num_nodes_.
  std::vector<NodeId> sources_local_;
  std::vector<NodeId> ghost_nodes_;
  std::vector<uint64_t> ghost_base_;  // per shard, plus total.
  std::vector<ShardExchange> exchanges_;
  std::vector<ShardStats> stats_;
};

/// Smallest power-of-two shard count (≤ 64) whose estimated per-shard
/// working set fits `llc_bytes`, ignoring ghost overhead (a few percent on
/// locality-ordered webs — reorder with kRcm first; see
/// docs/performance.md). Returns 1 when the whole graph already fits.
uint32_t PickShardCount(const WebGraph& graph, uint64_t llc_bytes);

}  // namespace spammass::graph

#endif  // SPAMMASS_GRAPH_SHARD_H_
