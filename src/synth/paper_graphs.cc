#include "synth/paper_graphs.h"

#include "graph/graph_builder.h"

namespace spammass::synth {

using core::LabelStore;
using core::NodeLabel;
using graph::GraphBuilder;
using graph::NodeId;

Figure1Graph MakeFigure1Graph(uint32_t k) {
  Figure1Graph fig;
  GraphBuilder builder;
  fig.x = builder.AddNode("x.example.com");
  fig.g0 = builder.AddNode("g0.example.org");
  fig.g1 = builder.AddNode("g1.example.org");
  fig.s0 = builder.AddNode("s0.spam.biz");
  for (uint32_t i = 1; i <= k; ++i) {
    fig.boosters.push_back(
        builder.AddNode("s" + std::to_string(i) + ".spam.biz"));
  }
  builder.AddEdge(fig.g0, fig.x);
  builder.AddEdge(fig.g1, fig.x);
  builder.AddEdge(fig.s0, fig.x);
  for (NodeId s : fig.boosters) builder.AddEdge(s, fig.s0);
  fig.graph = builder.Build();

  fig.labels = LabelStore(fig.graph.num_nodes());
  fig.labels.Set(fig.x, NodeLabel::kSpam);
  fig.labels.Set(fig.s0, NodeLabel::kSpam);
  for (NodeId s : fig.boosters) fig.labels.Set(s, NodeLabel::kSpam);
  return fig;
}

Figure2Graph MakeFigure2Graph() {
  Figure2Graph fig;
  GraphBuilder builder;
  fig.x = builder.AddNode("x.example.com");
  fig.g0 = builder.AddNode("g0.example.org");
  fig.g1 = builder.AddNode("g1.example.org");
  fig.g2 = builder.AddNode("g2.example.org");
  fig.g3 = builder.AddNode("g3.example.org");
  fig.s0 = builder.AddNode("s0.spam.biz");
  fig.s1 = builder.AddNode("s1.spam.biz");
  fig.s2 = builder.AddNode("s2.spam.biz");
  fig.s3 = builder.AddNode("s3.spam.biz");
  fig.s4 = builder.AddNode("s4.spam.biz");
  fig.s5 = builder.AddNode("s5.spam.biz");
  fig.s6 = builder.AddNode("s6.spam.biz");

  builder.AddEdge(fig.g0, fig.x);
  builder.AddEdge(fig.g2, fig.x);
  builder.AddEdge(fig.s0, fig.x);
  builder.AddEdge(fig.g1, fig.g0);
  builder.AddEdge(fig.s5, fig.g0);
  builder.AddEdge(fig.g3, fig.g2);
  builder.AddEdge(fig.s6, fig.g2);
  builder.AddEdge(fig.s1, fig.s0);
  builder.AddEdge(fig.s2, fig.s0);
  builder.AddEdge(fig.s3, fig.s0);
  builder.AddEdge(fig.s4, fig.s0);
  fig.graph = builder.Build();

  fig.labels = LabelStore(fig.graph.num_nodes());
  // Table 1 computes the actual mass with V⁻ = {x, s0..s6}: the spam target
  // itself belongs to the spam side of the partition.
  for (NodeId s : {fig.x, fig.s0, fig.s1, fig.s2, fig.s3, fig.s4, fig.s5,
                   fig.s6}) {
    fig.labels.Set(s, NodeLabel::kSpam);
  }
  fig.good_core = {fig.g0, fig.g1, fig.g3};
  return fig;
}

}  // namespace spammass::synth
