// Deterministic synthetic host names. Host names make experiment reports
// and examples legible ("www214.shop.pl" instead of "node 83121") and mark
// the host category the good-core assembly relies on.

#ifndef SPAMMASS_SYNTH_HOST_NAME_GEN_H_
#define SPAMMASS_SYNTH_HOST_NAME_GEN_H_

#include <cstdint>
#include <string>

#include "util/random.h"

namespace spammass::synth {

/// Category of a generated host, reflected in its name.
enum class HostCategory : uint8_t {
  kPlain = 0,      // www<i>.<word>.<tld>
  kDirectory = 1,  // dir<i>.<word>.<tld>
  kGov = 2,        // agency<i>.<word>.gov[.<cc>]
  kEdu = 3,        // www.uni<i>.edu[.<cc>]
  kHub = 4,        // hub<i>.<word>.<tld>
  kSpamBooster = 5,
  kSpamTarget = 6,
  kExpiredDomain = 7,
};

/// Generates a plausible host name for region `region_name` with TLD `tld`
/// (".com", ".pl", ...). `index` disambiguates within the category; `rng`
/// picks the word stem.
std::string GenerateHostName(HostCategory category,
                             const std::string& region_name,
                             const std::string& tld, uint32_t index,
                             util::Rng* rng);

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_HOST_NAME_GEN_H_
