// Canonical experiment scenarios. Yahoo2004Scenario mirrors (at reduced,
// configurable scale) the setting of Section 4: a dominant generic web, a
// governmental and several national-educational communities with varying
// good-core coverage — including the three anomaly archetypes of Section
// 4.4.1 (a poorly covered country "pl", an isolated commerce community
// "cn-mall" with identifiable hub hosts, and an isolated blog community
// "br-blog" with no identifiable hubs) — plus spam farms, alliances,
// honey pots, expired-domain spam and isolated good cliques.

#ifndef SPAMMASS_SYNTH_SCENARIO_H_
#define SPAMMASS_SYNTH_SCENARIO_H_

#include "synth/web_model.h"

namespace spammass::synth {

/// Builds the default evaluation configuration. `scale` multiplies every
/// population (hosts per region, farm count, clique count); scale = 1.0
/// yields roughly 170k hosts and 600k edges — large enough for the
/// distributional effects, small enough for laptop iteration.
WebModelConfig Yahoo2004Scenario(double scale = 1.0, uint64_t seed = 42);

/// A small smoke-test configuration (~4k hosts) for unit/integration tests.
WebModelConfig TinyScenario(uint64_t seed = 7);

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_SCENARIO_H_
