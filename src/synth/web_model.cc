#include "synth/web_model.h"

namespace spammass::synth {

using util::Status;

namespace {

bool InUnit(double x) { return x >= 0.0 && x <= 1.0; }

}  // namespace

Status WebModelConfig::Validate() const {
  if (regions.empty()) {
    return Status::InvalidArgument("at least one region is required");
  }
  for (const RegionConfig& r : regions) {
    if (r.name.empty()) {
      return Status::InvalidArgument("region name must not be empty");
    }
    if (r.num_hosts == 0) {
      return Status::InvalidArgument("region '" + r.name + "' has no hosts");
    }
    if (!InUnit(r.directory_fraction) || !InUnit(r.gov_fraction) ||
        !InUnit(r.edu_fraction) || !InUnit(r.core_coverage) ||
        !InUnit(r.cross_region_link_prob) || !InUnit(r.hub_target_fraction)) {
      return Status::InvalidArgument("region '" + r.name +
                                     "' has a fraction outside [0, 1]");
    }
    if (r.num_hubs > r.num_hosts) {
      return Status::InvalidArgument("region '" + r.name +
                                     "' has more hubs than hosts");
    }
  }
  if (spam.num_farms > 0) {
    if (spam.min_boosters == 0 || spam.max_boosters < spam.min_boosters) {
      return Status::InvalidArgument("bad booster count range");
    }
    if (spam.booster_exponent <= 1.0) {
      return Status::InvalidArgument("booster_exponent must exceed 1");
    }
    if (!InUnit(spam.interlink_prob) || !InUnit(spam.alliance_fraction) ||
        !InUnit(spam.honeypot_fraction)) {
      return Status::InvalidArgument("spam fraction outside [0, 1]");
    }
    if (spam.alliance_size < 2 && spam.alliance_fraction > 0) {
      return Status::InvalidArgument("alliances need at least two farms");
    }
  }
  if (spam.num_expired_domain_targets > 0 &&
      (spam.expired_inlinks_min == 0 ||
       spam.expired_inlinks_max < spam.expired_inlinks_min)) {
    return Status::InvalidArgument("bad expired-domain inlink range");
  }
  if (mean_outdegree <= 0) {
    return Status::InvalidArgument("mean_outdegree must be positive");
  }
  if (zipf_exponent <= 0) {
    return Status::InvalidArgument("zipf_exponent must be positive");
  }
  if (!InUnit(no_outlink_fraction) || !InUnit(unpopular_fraction) ||
      !InUnit(unpopular_dangling_bias)) {
    return Status::InvalidArgument("structure fraction outside [0, 1]");
  }
  if (num_isolated_cliques > 0 &&
      (clique_min_size < 2 || clique_max_size < clique_min_size)) {
    return Status::InvalidArgument("bad clique size range");
  }
  return Status::OK();
}

}  // namespace spammass::synth
