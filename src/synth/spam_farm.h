// Spam-farm construction (Section 2.3). A farm has a single target node
// whose ranking the spammer boosts, plus boosting nodes linking to it; the
// optimal structure has the target recirculate its PageRank back to the
// boosters ("Link spam alliances", reference [8] of the paper). Farms can
// also collect "stray" links from reputable nodes — blog-comment spam,
// honey pots, purchased expired domains — which the generator wires in on
// top of these helpers.

#ifndef SPAMMASS_SYNTH_SPAM_FARM_H_
#define SPAMMASS_SYNTH_SPAM_FARM_H_

#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "util/random.h"

namespace spammass::synth {

/// Shape of a single farm.
struct FarmSpec {
  /// Number of boosting nodes.
  uint32_t num_boosters = 10;
  /// Target links back to every booster (optimal farm).
  bool target_links_back = true;
  /// When false, the boosters do NOT link to the target directly — the
  /// caller wires them through good intermediaries (laundered farm).
  bool boosters_link_target = true;
  /// Probability of each ordered booster→booster link.
  double interlink_prob = 0.0;
};

/// A constructed farm: node ids inside the host graph.
struct FarmInfo {
  graph::NodeId target = graph::kInvalidNode;
  std::vector<graph::NodeId> boosters;
  /// True when the farm runs a honey pot / comment spam and has hijacked
  /// inlinks from good nodes.
  bool honeypot = false;
  /// Good hosts that (unknowingly) link to the target.
  std::vector<graph::NodeId> hijacked_sources;
  /// True when the farm launders its boost through good intermediaries
  /// (Figure 2 structure): boosters point at `intermediaries`, which link
  /// to the target, so the target's direct in-neighbors look reputable.
  bool laundered = false;
  std::vector<graph::NodeId> intermediaries;
  /// Index of the alliance this farm belongs to, or -1.
  int alliance = -1;
};

/// Appends the farm's nodes (target first, then boosters) to the builder
/// and wires the internal links. Host names are attached by the caller via
/// the builder's named AddNode (this helper uses the provided names).
FarmInfo BuildSpamFarm(graph::GraphBuilder* builder, const FarmSpec& spec,
                       const std::string& target_name,
                       const std::string& booster_name_prefix,
                       util::Rng* rng,
                       const std::string& booster_name_suffix = "");

/// Links the targets of an alliance in a ring (each target points to the
/// next), modeling collaborating spammers who exchange links.
void LinkAllianceTargets(graph::GraphBuilder* builder,
                         const std::vector<graph::NodeId>& targets);

/// Fully interconnects the alliance targets (every ordered pair) — the
/// maximal collaboration structure of "Link spam alliances" [8]. Stronger
/// mutual boost than the ring at quadratic link cost.
void LinkAllianceComplete(graph::GraphBuilder* builder,
                          const std::vector<graph::NodeId>& targets);

/// Alliance by booster sharing: every booster of every member farm links
/// to every member target (boosters multi-home instead of targets
/// exchanging links). The farms' FarmInfo is not modified.
void ShareAllianceBoosters(graph::GraphBuilder* builder,
                           const std::vector<const FarmInfo*>& farms);

/// Closed-form scaled PageRank (n/(1−c) scaling, leak dangling policy) of
/// an isolated optimal farm's target with k boosters when the target links
/// back to all of them:
///   p̂_target = (1 + c·k) / (1 − c²).
/// Used by tests and by the farm-anatomy example to compare measured
/// against predicted amplification. With target_links_back = false the
/// target is dangling and p̂_target = 1 + c·k.
double PredictedTargetScaledPageRank(uint32_t k, double damping,
                                     bool target_links_back);

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_SPAM_FARM_H_
