#include "synth/spam_farm.h"

#include "util/logging.h"

namespace spammass::synth {

using graph::GraphBuilder;
using graph::NodeId;

FarmInfo BuildSpamFarm(GraphBuilder* builder, const FarmSpec& spec,
                       const std::string& target_name,
                       const std::string& booster_name_prefix,
                       util::Rng* rng,
                       const std::string& booster_name_suffix) {
  CHECK_GT(spec.num_boosters, 0u);
  FarmInfo farm;
  farm.target = builder->AddNode(target_name);
  farm.boosters.reserve(spec.num_boosters);
  for (uint32_t i = 0; i < spec.num_boosters; ++i) {
    farm.boosters.push_back(builder->AddNode(
        booster_name_prefix + std::to_string(i) + booster_name_suffix));
  }
  for (NodeId b : farm.boosters) {
    if (spec.boosters_link_target) builder->AddEdge(b, farm.target);
    if (spec.target_links_back) builder->AddEdge(farm.target, b);
  }
  if (spec.interlink_prob > 0 && spec.num_boosters > 1) {
    const uint64_t k = spec.num_boosters;
    if (k <= 64) {
      for (NodeId a : farm.boosters) {
        for (NodeId b : farm.boosters) {
          if (a != b && rng->Bernoulli(spec.interlink_prob)) {
            builder->AddEdge(a, b);
          }
        }
      }
    } else {
      // Large farms: sample the expected number of interlinks instead of
      // testing all k² ordered pairs (duplicates collapse in the builder).
      uint64_t expected =
          static_cast<uint64_t>(spec.interlink_prob * static_cast<double>(k) *
                                static_cast<double>(k - 1));
      for (uint64_t i = 0; i < expected; ++i) {
        NodeId a = farm.boosters[rng->UniformIndex(k)];
        NodeId b = farm.boosters[rng->UniformIndex(k)];
        if (a != b) builder->AddEdge(a, b);
      }
    }
  }
  return farm;
}

void LinkAllianceTargets(GraphBuilder* builder,
                         const std::vector<NodeId>& targets) {
  if (targets.size() < 2) return;
  for (size_t i = 0; i < targets.size(); ++i) {
    builder->AddEdge(targets[i], targets[(i + 1) % targets.size()]);
  }
}

void LinkAllianceComplete(GraphBuilder* builder,
                          const std::vector<NodeId>& targets) {
  for (NodeId a : targets) {
    for (NodeId b : targets) {
      if (a != b) builder->AddEdge(a, b);
    }
  }
}

void ShareAllianceBoosters(GraphBuilder* builder,
                           const std::vector<const FarmInfo*>& farms) {
  for (const FarmInfo* source : farms) {
    for (NodeId booster : source->boosters) {
      for (const FarmInfo* member : farms) {
        builder->AddEdge(booster, member->target);
      }
    }
  }
}

double PredictedTargetScaledPageRank(uint32_t k, double damping,
                                     bool target_links_back) {
  const double c = damping;
  if (!target_links_back) {
    // Boosters have no inlinks (p̂ = 1) and a single outlink each.
    return 1.0 + c * k;
  }
  // With recirculation each booster has p̂_b = 1 + c·p̂_t/k, so
  // p̂_t = 1 + c·k·p̂_b = 1 + c·k + c²·p̂_t.
  return (1.0 + c * k) / (1.0 - c * c);
}

}  // namespace spammass::synth
