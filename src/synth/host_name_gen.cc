#include "synth/host_name_gen.h"

namespace spammass::synth {

namespace {

constexpr const char* kStems[] = {
    "alpha",  "breeze", "cedar",  "delta", "ember",  "flint",  "grove",
    "harbor", "iris",   "jade",   "krill", "lumen",  "maple",  "nectar",
    "onyx",   "pine",   "quartz", "reef",  "spruce", "tundra", "umber",
    "vertex", "willow", "xenon",  "yarrow", "zephyr",
};
constexpr size_t kNumStems = sizeof(kStems) / sizeof(kStems[0]);

}  // namespace

std::string GenerateHostName(HostCategory category,
                             const std::string& region_name,
                             const std::string& tld, uint32_t index,
                             util::Rng* rng) {
  const char* stem = kStems[rng->UniformIndex(kNumStems)];
  const std::string idx = std::to_string(index);
  switch (category) {
    case HostCategory::kPlain:
      // Unique registered domain per host (most sites have one host).
      return "www." + std::string(stem) + idx + "-" + region_name + tld;
    case HostCategory::kDirectory:
      return "www.dir-" + std::string(stem) + idx + tld;
    case HostCategory::kGov:
      return "agency" + idx + "." + stem + ".gov" +
             (tld == ".com" ? "" : tld);
    case HostCategory::kEdu:
      return "www.uni" + idx + "-" + stem + ".edu" +
             (tld == ".com" ? "" : tld);
    case HostCategory::kHub:
      return "hub" + idx + "." + region_name + "-portal" + tld;
    case HostCategory::kSpamBooster:
      // Each boosting host sits on its own throwaway domain — the paper
      // notes farms "span tens, hundreds, or even thousands of different
      // domain names".
      return "www." + std::string(stem) + "-deals" + idx + tld;
    case HostCategory::kSpamTarget:
      return "www.buy-" + std::string(stem) + idx + tld;
    case HostCategory::kExpiredDomain:
      return "www.old-" + std::string(stem) + idx + tld;
  }
  return "host" + idx + tld;
}

}  // namespace spammass::synth
