#include "synth/generator.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.h"
#include "synth/host_name_gen.h"
#include "util/logging.h"

namespace spammass::synth {

using core::LabelStore;
using core::NodeLabel;
using graph::GraphBuilder;
using graph::NodeId;
using util::Result;
using util::Rng;
using util::Status;
using util::ZipfSampler;

namespace {

/// Per-region bookkeeping during generation.
struct RegionNodes {
  /// All node ids of the region.
  std::vector<NodeId> hosts;
  /// Hosts ordered by popularity rank (most popular first), truncated to
  /// the "popular" prefix that may receive inlinks.
  std::vector<NodeId> popular;
  /// Hub hosts (prefix of `popular`).
  std::vector<NodeId> hubs;
  /// Hosts that emit links (not dangling).
  std::vector<NodeId> linking;
};

/// Picks an out-degree around the configured mean with a power-law tail.
uint32_t SampleOutDegree(double mean, Rng* rng) {
  // Discrete power law with exponent 2.5 has mean 3·xmin; cap the tail so a
  // single host cannot dominate the edge budget.
  uint64_t xmin = std::max<uint64_t>(1, static_cast<uint64_t>(mean / 3.0));
  uint64_t d = rng->DiscretePowerLaw(xmin, 2.5);
  return static_cast<uint32_t>(std::min<uint64_t>(d, 300));
}

}  // namespace

std::vector<NodeId> SyntheticWeb::AssembledGoodCore() const {
  std::vector<NodeId> core;
  for (size_t x = 0; x < listed.size(); ++x) {
    if (listed[x]) core.push_back(static_cast<NodeId>(x));
  }
  return core;
}

bool SyntheticWeb::IsAnomalousRegion(uint32_t region) const {
  if (region >= config.regions.size()) return false;  // pseudo-regions
  const RegionConfig& r = config.regions[region];
  // The paper's anomalies are near-total coverage absences (12 Polish
  // educational hosts in a half-million core; no Alibaba or Brazilian-blog
  // hosts at all) — regions with merely partial lists are ordinary.
  return r.isolated_community || r.core_coverage < 0.05;
}

bool SyntheticWeb::IsAnomalousGoodNode(NodeId x) const {
  return labels.IsGood(x) && IsAnomalousRegion(region_of_node[x]);
}

uint32_t SyntheticWeb::RegionIndex(const std::string& name) const {
  for (uint32_t i = 0; i < region_names.size(); ++i) {
    if (region_names[i] == name) return i;
  }
  return static_cast<uint32_t>(region_names.size());
}

Result<SyntheticWeb> GenerateWeb(const WebModelConfig& config) {
  SPAMMASS_RETURN_NOT_OK(config.Validate());

  Rng rng(config.seed);
  // Separate stream for host-name stems so that naming choices never
  // perturb the structural randomness.
  Rng name_rng(config.seed ^ 0xda3e39cb94b95bdbULL);
  GraphBuilder builder;
  SyntheticWeb web;
  web.config = config;

  const uint32_t num_regions = static_cast<uint32_t>(config.regions.size());
  std::vector<RegionNodes> region_nodes(num_regions);

  // --- Phase 1: create good hosts region by region -------------------------
  for (uint32_t r = 0; r < num_regions; ++r) {
    const RegionConfig& rc = config.regions[r];
    web.region_names.push_back(rc.name);
    RegionNodes& rn = region_nodes[r];
    rn.hosts.reserve(rc.num_hosts);
    for (uint32_t i = 0; i < rc.num_hosts; ++i) {
      HostCategory cat = HostCategory::kPlain;
      bool hub = i < rc.num_hubs;
      bool dir = false, gov = false, edu = false;
      if (hub) {
        cat = HostCategory::kHub;
      } else if (rng.Bernoulli(rc.directory_fraction)) {
        cat = HostCategory::kDirectory;
        dir = true;
      } else if (rng.Bernoulli(rc.gov_fraction)) {
        cat = HostCategory::kGov;
        gov = true;
      } else if (rng.Bernoulli(rc.edu_fraction)) {
        cat = HostCategory::kEdu;
        edu = true;
      }
      std::string host_name;
      if (rc.isolated_community && cat == HostCategory::kPlain) {
        // Isolated communities live under one registered domain, like the
        // paper's *.alibaba.com hosts and *.blogger.com.br blogs.
        host_name = "w" + std::to_string(i) + "." + rc.name + rc.tld;
      } else {
        host_name = GenerateHostName(cat, rc.name, rc.tld, i, &name_rng);
      }
      NodeId id = builder.AddNode(std::move(host_name));
      rn.hosts.push_back(id);
      web.region_of_node.push_back(r);
      web.is_directory.push_back(dir);
      web.is_gov.push_back(gov);
      web.is_edu.push_back(edu);
      web.is_hub.push_back(hub);
      // Coverage filter: eligible hosts make it onto the assembled lists
      // only with the region's coverage probability.
      bool eligible = dir || gov || edu;
      web.listed.push_back(eligible && rng.Bernoulli(rc.core_coverage));
    }

    // Popularity order: hubs first, then a random permutation of the rest.
    std::vector<NodeId> order = rn.hosts;
    // Hubs occupy the first rc.num_hubs slots already (created first);
    // shuffle only the non-hub suffix.
    if (order.size() > rc.num_hubs) {
      std::vector<NodeId> tail(order.begin() + rc.num_hubs, order.end());
      util::Shuffle(&tail, &rng);
      std::copy(tail.begin(), tail.end(), order.begin() + rc.num_hubs);
    }
    rn.hubs.assign(order.begin(), order.begin() + rc.num_hubs);
    // The "popular" prefix that can receive inlinks.
    uint64_t popular_count = std::max<uint64_t>(
        1, static_cast<uint64_t>(
               std::llround((1.0 - config.unpopular_fraction) *
                            static_cast<double>(order.size()))));
    popular_count = std::min<uint64_t>(popular_count, order.size());
    rn.popular.assign(order.begin(), order.begin() + popular_count);

    // Dangling selection, biased toward unpopular hosts so that no-inlink
    // and no-outlink correlate (the paper's 25.8% isolated hosts).
    std::vector<NodeId> unpopular(order.begin() + popular_count, order.end());
    std::vector<NodeId> popular_pool = rn.popular;
    util::Shuffle(&unpopular, &rng);
    util::Shuffle(&popular_pool, &rng);
    uint64_t dangling_budget = static_cast<uint64_t>(std::llround(
        config.no_outlink_fraction * static_cast<double>(order.size())));
    std::vector<bool> dangling_local(order.size(), false);
    std::vector<NodeId> dangling;
    size_t ui = 0, pi = 0;
    for (uint64_t d = 0; d < dangling_budget; ++d) {
      bool take_unpopular = rng.Bernoulli(config.unpopular_dangling_bias);
      if (take_unpopular && ui < unpopular.size()) {
        dangling.push_back(unpopular[ui++]);
      } else if (pi < popular_pool.size()) {
        dangling.push_back(popular_pool[pi++]);
      } else if (ui < unpopular.size()) {
        dangling.push_back(unpopular[ui++]);
      }
    }
    std::vector<bool> is_dangling_region(builder.num_nodes(), false);
    for (NodeId d : dangling) is_dangling_region[d] = true;
    for (NodeId h : rn.hosts) {
      if (!is_dangling_region[h]) rn.linking.push_back(h);
    }
  }

  web.clique_region = num_regions;
  web.spam_region = num_regions + 1;
  web.region_names.push_back("cliques");
  web.region_names.push_back("spam");

  // Region weights for cross-region targeting (isolated communities are
  // excluded from global linking entirely).
  std::vector<uint32_t> open_regions;
  std::vector<double> open_weights;
  for (uint32_t r = 0; r < num_regions; ++r) {
    if (!config.regions[r].isolated_community) {
      open_regions.push_back(r);
      open_weights.push_back(config.regions[r].num_hosts);
    }
  }
  if (open_regions.empty()) {
    return Status::InvalidArgument("at least one non-isolated region needed");
  }
  double total_open = 0;
  for (double w : open_weights) total_open += w;

  auto pick_open_region = [&]() -> uint32_t {
    double t = rng.Uniform01() * total_open;
    for (size_t i = 0; i < open_regions.size(); ++i) {
      t -= open_weights[i];
      if (t <= 0) return open_regions[i];
    }
    return open_regions.back();
  };

  // Per-region Zipf samplers over the popular prefix.
  std::vector<ZipfSampler> zipf;
  zipf.reserve(num_regions);
  for (uint32_t r = 0; r < num_regions; ++r) {
    zipf.emplace_back(region_nodes[r].popular.size(), config.zipf_exponent);
  }

  auto pick_target_in_region = [&](uint32_t r) -> NodeId {
    const RegionNodes& rn = region_nodes[r];
    const RegionConfig& rc = config.regions[r];
    if (!rn.hubs.empty() && rng.Bernoulli(rc.hub_target_fraction)) {
      return rn.hubs[rng.UniformIndex(rn.hubs.size())];
    }
    return rn.popular[zipf[r].Sample(&rng)];
  };

  // --- Phase 2: good-web links ---------------------------------------------
  for (uint32_t r = 0; r < num_regions; ++r) {
    const RegionConfig& rc = config.regions[r];
    for (NodeId u : region_nodes[r].linking) {
      uint32_t outdeg = SampleOutDegree(config.mean_outdegree, &rng);
      for (uint32_t e = 0; e < outdeg; ++e) {
        uint32_t target_region = r;
        if (!rc.isolated_community &&
            rng.Bernoulli(rc.cross_region_link_prob)) {
          target_region = pick_open_region();
        }
        NodeId v = pick_target_in_region(target_region);
        if (v != u) builder.AddEdge(u, v);
      }
    }
    // Listed (core) hosts link broadly: a trusted directory's purpose is to
    // point at many hosts globally, while governmental/educational hosts
    // mostly endorse their own community with some international links.
    // This gives the good core the reach of Section 4.2's real-world core
    // while keeping per-region coverage differences meaningful.
    for (NodeId u : region_nodes[r].hosts) {
      if (!web.listed[u]) continue;
      uint32_t extra = static_cast<uint32_t>(
          config.mean_outdegree * (web.is_directory[u] ? 2 : 1));
      for (uint32_t e = 0; e < extra; ++e) {
        uint32_t target_region = r;
        if (!rc.isolated_community &&
            (web.is_directory[u] || rng.Bernoulli(0.25))) {
          target_region = pick_open_region();
        }
        NodeId v = pick_target_in_region(target_region);
        if (v != u) builder.AddEdge(u, v);
      }
    }
  }

  // Pool of linking good hosts for hijacked/stray links and the cliques'
  // sparse external inlinks.
  std::vector<NodeId> good_linkers;
  for (uint32_t r = 0; r < num_regions; ++r) {
    if (config.regions[r].isolated_community) continue;
    good_linkers.insert(good_linkers.end(), region_nodes[r].linking.begin(),
                        region_nodes[r].linking.end());
  }
  if (good_linkers.empty()) {
    return Status::InvalidArgument("no linking good hosts available");
  }
  // Pool of good hosts without outlinks: abandoned guestbooks / dormant
  // pages. Laundered farms hijack these as intermediaries — the harvested
  // spam link becomes the page's only outlink, so it transmits the full
  // boosted PageRank (the out-degree-1 g0/g2 of the paper's Figure 2).
  // Obscure dormant pages only: neither linking (the spam link becomes
  // their sole outlink) nor popular (no inlinks, hence no good-core
  // support to funnel into the farm).
  std::vector<NodeId> good_danglers;
  {
    std::vector<bool> excluded(builder.num_nodes(), false);
    for (uint32_t r = 0; r < num_regions; ++r) {
      for (NodeId u : region_nodes[r].linking) excluded[u] = true;
      for (NodeId u : region_nodes[r].popular) excluded[u] = true;
    }
    for (uint32_t r = 0; r < num_regions; ++r) {
      if (config.regions[r].isolated_community) continue;
      for (NodeId u : region_nodes[r].hosts) {
        if (!excluded[u]) good_danglers.push_back(u);
      }
    }
  }

  // --- Phase 3: isolated good cliques (web-design / gaming communities) ----
  for (uint32_t q = 0; q < config.num_isolated_cliques; ++q) {
    uint32_t size = static_cast<uint32_t>(rng.UniformInt(
        config.clique_min_size, config.clique_max_size));
    std::vector<NodeId> members;
    // Center (the web-design company) + clients, mutually linked: clients
    // point at the center, the center links back — the pattern of Section
    // 4.4.3 observation 1 that concentrates PageRank in the center.
    NodeId center = builder.AddNode(
        GenerateHostName(HostCategory::kPlain, "clique" + std::to_string(q),
                         ".net", 0, &name_rng));
    members.push_back(center);
    web.region_of_node.push_back(web.clique_region);
    for (uint32_t i = 1; i < size; ++i) {
      NodeId m = builder.AddNode(
          GenerateHostName(HostCategory::kPlain, "clique" + std::to_string(q),
                           ".net", i, &name_rng));
      members.push_back(m);
      web.region_of_node.push_back(web.clique_region);
      builder.AddEdge(m, center);
      builder.AddEdge(center, m);
    }
    // Ring among clients for cohesion.
    for (uint32_t i = 1; i < size; ++i) {
      uint32_t j = (i % (size - 1)) + 1;
      if (j != i) builder.AddEdge(members[i], members[j]);
    }
    // "Very few or no external links pointed to either" (Section 4.4.3,
    // observation 1): most cliques get one or two stray inlinks, which
    // keeps their relative mass high but below the saturated 1.0.
    if (rng.Bernoulli(0.9)) {
      uint32_t stray = 3 + static_cast<uint32_t>(rng.UniformIndex(4));
      for (uint32_t e = 0; e < stray; ++e) {
        NodeId g = good_linkers[rng.UniformIndex(good_linkers.size())];
        builder.AddEdge(g, center);
      }
    }
    web.isolated_cliques.push_back(std::move(members));
    for (uint32_t i = 0; i < size; ++i) {
      web.is_directory.push_back(false);
      web.is_gov.push_back(false);
      web.is_edu.push_back(false);
      web.is_hub.push_back(false);
      web.listed.push_back(false);
    }
  }

  // --- Phase 4: spam farms ---------------------------------------------------
  std::vector<NodeId> spam_nodes;
  const SpamConfig& sc = config.spam;
  for (uint32_t f = 0; f < sc.num_farms; ++f) {
    FarmSpec spec;
    spec.num_boosters = static_cast<uint32_t>(std::min<uint64_t>(
        rng.DiscretePowerLaw(sc.min_boosters, sc.booster_exponent),
        sc.max_boosters));
    spec.target_links_back = sc.target_links_back;
    spec.interlink_prob = sc.interlink_prob;
    const bool laundered = rng.Bernoulli(sc.laundered_fraction);
    spec.boosters_link_target = !laundered;
    // A laundered target keeps its outlink profile clean (linking back to
    // the boosters would expose it) — and without recirculation the
    // hijacked relay pages stay below the PageRank radar themselves.
    if (laundered) spec.target_links_back = false;
    const std::string tld =
        config.regions[pick_open_region()].tld;
    FarmInfo farm = BuildSpamFarm(
        &builder, spec,
        GenerateHostName(HostCategory::kSpamTarget, "spam", tld, f,
                         &name_rng),
        "www.b", &rng,
        /*booster_name_suffix=*/"-farm" + std::to_string(f) + tld);
    if (laundered) {
      // Figure 2 structure: boosters inflate hijacked good intermediaries,
      // which link to the target. Direct in-neighbors of the target are
      // reputable, defeating any detector that stops at one hop.
      farm.laundered = true;
      // Spread the boost over enough hijacked pages that no single
      // intermediary accumulates conspicuous PageRank itself (roughly
      // three boosters per page).
      uint32_t j = std::max<uint32_t>(
          std::max<uint32_t>(1, sc.laundered_intermediaries),
          spec.num_boosters / 3);
      for (uint32_t i = 0; i < j; ++i) {
        // Prefer dormant pages (the spam link becomes their only outlink);
        // fall back to ordinary linking hosts when none are available.
        NodeId g = !good_danglers.empty()
                       ? good_danglers[rng.UniformIndex(good_danglers.size())]
                       : good_linkers[rng.UniformIndex(good_linkers.size())];
        farm.intermediaries.push_back(g);
        builder.AddEdge(g, farm.target);
      }
      for (size_t b = 0; b < farm.boosters.size(); ++b) {
        builder.AddEdge(farm.boosters[b],
                        farm.intermediaries[b % farm.intermediaries.size()]);
      }
    }
    spam_nodes.push_back(farm.target);
    spam_nodes.insert(spam_nodes.end(), farm.boosters.begin(),
                      farm.boosters.end());
    web.region_of_node.push_back(web.spam_region);
    for (size_t i = 0; i < farm.boosters.size(); ++i) {
      web.region_of_node.push_back(web.spam_region);
    }
    // Camouflage: farm nodes link out to popular reputable hosts, handing
    // them (estimated and actual) spam mass — the paper's Figure 2 has
    // exactly this shape with s5→g0 and s6→g2.
    for (uint32_t cl = 0; cl < sc.camouflage_links_per_farm; ++cl) {
      NodeId src = farm.boosters[rng.UniformIndex(farm.boosters.size())];
      NodeId dst = pick_target_in_region(pick_open_region());
      builder.AddEdge(src, dst);
    }
    // Honey pots / comment spam: stray links from good hosts.
    if (rng.Bernoulli(sc.honeypot_fraction)) {
      farm.honeypot = true;
      for (uint32_t h = 0; h < sc.hijacked_links_per_farm; ++h) {
        NodeId g = good_linkers[rng.UniformIndex(good_linkers.size())];
        builder.AddEdge(g, farm.target);
        farm.hijacked_sources.push_back(g);
      }
    }
    web.farms.push_back(std::move(farm));
  }

  // Alliances: shuffle farm indices, group the allied fraction into rings.
  if (sc.alliance_fraction > 0 && web.farms.size() >= 2) {
    std::vector<uint32_t> farm_idx(web.farms.size());
    for (uint32_t i = 0; i < farm_idx.size(); ++i) farm_idx[i] = i;
    util::Shuffle(&farm_idx, &rng);
    uint64_t allied = static_cast<uint64_t>(
        sc.alliance_fraction * static_cast<double>(web.farms.size()));
    uint32_t alliance_id = 0;
    for (uint64_t start = 0; start + 2 <= allied;
         start += sc.alliance_size, ++alliance_id) {
      uint64_t end = std::min<uint64_t>(start + sc.alliance_size, allied);
      std::vector<NodeId> targets;
      for (uint64_t i = start; i < end; ++i) {
        web.farms[farm_idx[i]].alliance = static_cast<int>(alliance_id);
        targets.push_back(web.farms[farm_idx[i]].target);
      }
      LinkAllianceTargets(&builder, targets);
    }
  }

  // --- Phase 5: expired-domain spam ------------------------------------------
  for (uint32_t i = 0; i < sc.num_expired_domain_targets; ++i) {
    const std::string tld = config.regions[pick_open_region()].tld;
    NodeId t = builder.AddNode(GenerateHostName(
        HostCategory::kExpiredDomain, "spam", tld, i, &name_rng));
    web.region_of_node.push_back(web.spam_region);
    uint32_t inlinks = static_cast<uint32_t>(rng.UniformInt(
        sc.expired_inlinks_min, sc.expired_inlinks_max));
    for (uint32_t e = 0; e < inlinks; ++e) {
      NodeId g = good_linkers[rng.UniformIndex(good_linkers.size())];
      builder.AddEdge(g, t);
    }
    web.expired_domain_targets.push_back(t);
    spam_nodes.push_back(t);
  }

  // Metadata arrays for spam nodes (appended after clique handling).
  size_t meta_deficit = builder.num_nodes() - web.is_directory.size();
  for (size_t i = 0; i < meta_deficit; ++i) {
    web.is_directory.push_back(false);
    web.is_gov.push_back(false);
    web.is_edu.push_back(false);
    web.is_hub.push_back(false);
    web.listed.push_back(false);
  }

  // --- Finalize ----------------------------------------------------------------
  web.graph = builder.Build();
  CHECK_EQ(web.region_of_node.size(), static_cast<size_t>(web.graph.num_nodes()));
  CHECK_EQ(web.listed.size(), static_cast<size_t>(web.graph.num_nodes()));

  web.labels = LabelStore(web.graph.num_nodes());
  for (NodeId s : spam_nodes) web.labels.Set(s, NodeLabel::kSpam);

  return web;
}

}  // namespace spammass::synth
