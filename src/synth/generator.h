// Synthetic host-level web generator — the stand-in for the 2004 Yahoo!
// host graph (73.3M hosts / 979M edges) the paper evaluates on. See
// DESIGN.md ("Key data substitution") for the substitution argument; the
// generated graph matches the structural properties the detection method
// interacts with: power-law popularity, large dangling/no-inlink/isolated
// fractions (Section 4.1), regional communities with configurable good-core
// coverage (the anomalies of Section 4.4.1), spam farms and alliances
// (Section 2.3), expired-domain spam and isolated good cliques (Section
// 4.4.3 observations).

#ifndef SPAMMASS_SYNTH_GENERATOR_H_
#define SPAMMASS_SYNTH_GENERATOR_H_

#include <string>
#include <vector>

#include "core/labels.h"
#include "graph/web_graph.h"
#include "synth/spam_farm.h"
#include "synth/web_model.h"
#include "util/status.h"

namespace spammass::synth {

/// A generated web with full ground truth and core-assembly metadata.
struct SyntheticWeb {
  graph::WebGraph graph;
  /// Ground truth: spam targets, boosters and expired-domain hosts are
  /// kSpam; everything else kGood.
  core::LabelStore labels;

  /// Region index per node. Real regions come first (indices into
  /// `config.regions`); two pseudo-regions follow: `clique_region` for
  /// isolated good cliques and `spam_region` for farm nodes.
  std::vector<uint32_t> region_of_node;
  std::vector<std::string> region_names;
  uint32_t clique_region = 0;
  uint32_t spam_region = 0;

  /// Host-category flags (good-core eligibility, Section 4.2).
  std::vector<bool> is_directory;
  std::vector<bool> is_gov;
  std::vector<bool> is_edu;
  /// Core-eligible hosts that actually appear on the lists available for
  /// core assembly (after per-region coverage filtering).
  std::vector<bool> listed;
  /// Regional hub hosts (e.g. the identifiable Alibaba hub hosts).
  std::vector<bool> is_hub;

  std::vector<FarmInfo> farms;
  std::vector<graph::NodeId> expired_domain_targets;
  std::vector<std::vector<graph::NodeId>> isolated_cliques;

  WebModelConfig config;

  /// The good core Ṽ⁺ assembled from the available lists: every `listed`
  /// host (Section 4.2's directory + gov + edu construction).
  std::vector<graph::NodeId> AssembledGoodCore() const;

  /// True when the region is a known coverage anomaly: an isolated
  /// community or a region with core coverage below 50%. Good hosts from
  /// anomalous regions are the gray bars of Figure 3.
  bool IsAnomalousRegion(uint32_t region) const;

  /// True for good nodes whose large relative mass is attributable to a
  /// core-coverage anomaly (region-level attribution).
  bool IsAnomalousGoodNode(graph::NodeId x) const;

  /// Region index by name, or num regions if absent.
  uint32_t RegionIndex(const std::string& name) const;
};

/// Generates a web from the model configuration. Deterministic in
/// config.seed.
util::Result<SyntheticWeb> GenerateWeb(const WebModelConfig& config);

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_GENERATOR_H_
