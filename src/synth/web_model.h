// Configuration model for the synthetic host-level web. The generator
// stands in for the 2004 Yahoo! host graph (see DESIGN.md, "Key data
// substitution"): a scale-free good web partitioned into regions with
// different good-core coverage, plus configurable spam structures.

#ifndef SPAMMASS_SYNTH_WEB_MODEL_H_
#define SPAMMASS_SYNTH_WEB_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace spammass::synth {

/// One regional community of good hosts (a country, a TLD, a large
/// provider). Regions reproduce the coverage anomalies of Section 4.4.1:
/// a region whose reputable hosts are badly covered by the good core shows
/// up as good hosts with large relative mass.
struct RegionConfig {
  /// Short identifier ("generic", "pl", "cn-mall", ...), also used in host
  /// names.
  std::string name;
  /// TLD suffix for generated host names (".com", ".pl", ...).
  std::string tld = ".com";
  /// Number of good hosts in the region.
  uint32_t num_hosts = 0;
  /// Fractions of hosts carrying the core-eligible categories the paper's
  /// core is assembled from (Section 4.2): trusted-directory listings,
  /// governmental hosts, educational hosts.
  double directory_fraction = 0.0;
  double gov_fraction = 0.0;
  double edu_fraction = 0.0;
  /// Probability that a core-eligible host actually appears on the lists
  /// available for core assembly. Poland-like regions have low coverage —
  /// the lists exist but are incomplete (Section 4.4.1).
  double core_coverage = 1.0;
  /// Probability that an outlink of a host in this region points to a
  /// uniform-region global target rather than an intra-region one.
  double cross_region_link_prob = 0.2;
  /// Isolated communities (Alibaba-like host farms, Brazilian blogs)
  /// neither link out of the region nor receive links from other regions.
  bool isolated_community = false;
  /// Number of hub hosts inside the region that concentrate intra-region
  /// popularity (e.g. the 12 identifiable alibaba.com hub hosts of Section
  /// 4.4.2). 0 means popularity is plain Zipf over all hosts.
  uint32_t num_hubs = 0;
  /// Fraction of intra-region link targets that go to hubs when present.
  double hub_target_fraction = 0.5;
};

/// Spam-side configuration (Section 2.3 structures).
struct SpamConfig {
  /// Number of independent spam farms (one target each).
  uint32_t num_farms = 0;
  /// Farm sizes (number of boosting nodes) follow a discrete power law on
  /// [min_boosters, ∞) with this exponent, capped at max_boosters.
  uint32_t min_boosters = 5;
  uint32_t max_boosters = 2000;
  double booster_exponent = 2.0;
  /// Probability of each booster→booster link inside a farm.
  double interlink_prob = 0.0;
  /// When true the target links back to every booster — the optimal farm
  /// structure of "Link spam alliances" [8].
  bool target_links_back = true;
  /// Fraction of farms grouped into alliances whose targets exchange links.
  double alliance_fraction = 0.2;
  uint32_t alliance_size = 4;
  /// Fraction of farms that run a honey pot: `hijacked_links_per_farm`
  /// good hosts point at the farm target ("stray" links: blog comments,
  /// honey pots, bought expired domains — Section 2.3).
  double honeypot_fraction = 0.15;
  uint32_t hijacked_links_per_farm = 3;
  /// Camouflage links from farm nodes to reputable hosts (the s5→g0 /
  /// s6→g2 pattern of the paper's Figure 2): spammers link to popular good
  /// pages to mimic organic sites, which hands those pages real spam mass.
  uint32_t camouflage_links_per_farm = 0;
  /// Fraction of farms that launder their boosting through good
  /// intermediaries — the exact structure of the paper's Figure 2, where x
  /// is supported by good g0/g2 which are in turn inflated by spam s5/s6.
  /// Boosters link to hijacked good hosts that link to the target instead
  /// of linking to the target directly; detectors that only inspect direct
  /// in-neighbors (the naive schemes of Section 3.1) are blind to it.
  double laundered_fraction = 0.0;
  /// Number of good intermediaries per laundered farm.
  uint32_t laundered_intermediaries = 4;
  /// Spam targets of the *expired domains* flavor (Section 4.4.3, obs. 2):
  /// hosts whose inlinks come almost exclusively from good hosts, so their
  /// spam mass is small — known false negatives of the method.
  uint32_t num_expired_domain_targets = 0;
  uint32_t expired_inlinks_min = 10;
  uint32_t expired_inlinks_max = 60;
};

/// Full model configuration.
struct WebModelConfig {
  uint64_t seed = 42;
  std::vector<RegionConfig> regions;
  SpamConfig spam;
  /// Mean outdegree of good hosts that link at all (outdegree is
  /// 1 + Poisson-ish power-law around this mean).
  double mean_outdegree = 10.0;
  /// Zipf exponent of link-target popularity.
  double zipf_exponent = 0.9;
  /// Fraction of good hosts that emit no outlinks (the paper's graph has
  /// 66.4% such hosts — uncrawled or extinct URLs, Section 4.1).
  double no_outlink_fraction = 0.664;
  /// Fraction of good hosts that are never link targets (part of the 35%
  /// of hosts with no inlinks).
  double unpopular_fraction = 0.30;
  /// Bias: probability that an unpopular (never-targeted) host is chosen
  /// among the dangling ones, correlating no-inlink with no-outlink to
  /// match the paper's 25.8% isolated hosts.
  double unpopular_dangling_bias = 0.75;
  /// Isolated good cliques (Section 4.4.3, obs. 1: gaming communities and
  /// web-design rings only weakly connected to the rest) — false-positive
  /// generators.
  uint32_t num_isolated_cliques = 0;
  uint32_t clique_min_size = 4;
  uint32_t clique_max_size = 12;

  /// Validates invariants (non-empty regions, fractions in range, ...).
  util::Status Validate() const;
};

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_WEB_MODEL_H_
