// Exact reconstructions of the example graphs in the paper (Figures 1 and
// 2), with ground-truth labels and the good cores used in the worked
// examples. These graphs anchor the analytic unit tests: the paper derives
// closed-form PageRank and spam-mass values for them (Section 3.1 and
// Table 1), which our solvers must reproduce to numerical precision.

#ifndef SPAMMASS_SYNTH_PAPER_GRAPHS_H_
#define SPAMMASS_SYNTH_PAPER_GRAPHS_H_

#include <vector>

#include "core/labels.h"
#include "graph/web_graph.h"

namespace spammass::synth {

/// Figure 1: good nodes g0, g1 and spam node s0 link to x; boosting nodes
/// s1..sk link to s0. The paper shows p_x = (1+3c+kc²)(1−c)/n, of which
/// (c+kc²)(1−c)/n is due to spamming.
struct Figure1Graph {
  graph::WebGraph graph;
  core::LabelStore labels;  // x and s* spam; g* good
  graph::NodeId x = 0;
  graph::NodeId g0 = 0, g1 = 0;
  graph::NodeId s0 = 0;
  std::vector<graph::NodeId> boosters;  // s1..sk
};

/// Builds Figure 1 with k boosting nodes (k >= 0); n = k + 4 nodes total.
Figure1Graph MakeFigure1Graph(uint32_t k);

/// Figure 2: n = 12 nodes. Good g0..g3, spam target x, spam s0..s6.
/// Edges: g0→x, g2→x, s0→x, g1→g0, s5→g0, g3→g2, s6→g2, s1..s4→s0.
/// The paper's worked example uses good core Ṽ⁺ = {g0, g1, g3} and c = 0.85
/// and derives the values of Table 1.
struct Figure2Graph {
  graph::WebGraph graph;
  core::LabelStore labels;  // V⁻ = {x, s0..s6} per Table 1's ground truth
  graph::NodeId x = 0;
  graph::NodeId g0 = 0, g1 = 0, g2 = 0, g3 = 0;
  graph::NodeId s0 = 0, s1 = 0, s2 = 0, s3 = 0, s4 = 0, s5 = 0, s6 = 0;
  /// The example's good core {g0, g1, g3}.
  std::vector<graph::NodeId> good_core;
};

Figure2Graph MakeFigure2Graph();

}  // namespace spammass::synth

#endif  // SPAMMASS_SYNTH_PAPER_GRAPHS_H_
