#include "synth/scenario.h"

#include <algorithm>
#include <cmath>

namespace spammass::synth {

namespace {

uint32_t Scaled(double base, double scale) {
  return std::max<uint32_t>(1, static_cast<uint32_t>(std::llround(base * scale)));
}

}  // namespace

WebModelConfig Yahoo2004Scenario(double scale, uint64_t seed) {
  WebModelConfig cfg;
  cfg.seed = seed;

  // The generic commercial web: hosts the bulk of popularity, well covered
  // by the trusted directory.
  RegionConfig generic;
  generic.name = "generic";
  generic.tld = ".com";
  generic.num_hosts = Scaled(60000, scale);
  generic.directory_fraction = 0.004;
  generic.edu_fraction = 0.002;
  generic.core_coverage = 0.90;
  generic.cross_region_link_prob = 0.15;
  cfg.regions.push_back(generic);

  // US governmental hosts: fully core-eligible (Section 4.2 includes all
  // .gov hosts).
  RegionConfig gov;
  gov.name = "usgov";
  gov.tld = ".us";
  gov.num_hosts = Scaled(1500, scale);
  gov.gov_fraction = 1.0;
  gov.core_coverage = 0.95;
  gov.cross_region_link_prob = 0.40;
  cfg.regions.push_back(gov);

  // Mid-coverage national communities: their reputable hosts get partial
  // good-core support, populating the intermediate relative-mass range
  // (the 0.1-0.7 groups of Figure 3).
  RegionConfig de;
  de.name = "de";
  de.tld = ".de";
  de.num_hosts = Scaled(15000, scale);
  de.edu_fraction = 0.0024;
  de.core_coverage = 0.5;
  de.cross_region_link_prob = 0.10;
  cfg.regions.push_back(de);

  RegionConfig fr;
  fr.name = "fr";
  fr.tld = ".fr";
  fr.num_hosts = Scaled(12000, scale);
  fr.edu_fraction = 0.004;
  fr.core_coverage = 0.5;
  fr.cross_region_link_prob = 0.10;
  cfg.regions.push_back(fr);

  RegionConfig es;
  es.name = "es";
  es.tld = ".es";
  es.num_hosts = Scaled(13000, scale);
  es.edu_fraction = 0.0052;
  es.core_coverage = 0.5;
  es.cross_region_link_prob = 0.10;
  cfg.regions.push_back(es);

  RegionConfig jp;
  jp.name = "jp";
  jp.tld = ".jp";
  jp.num_hosts = Scaled(14000, scale);
  jp.edu_fraction = 0.0064;
  jp.core_coverage = 0.5;
  jp.cross_region_link_prob = 0.10;
  cfg.regions.push_back(jp);

  RegionConfig uk;
  uk.name = "uk";
  uk.tld = ".uk";
  uk.num_hosts = Scaled(15000, scale);
  uk.edu_fraction = 0.008;
  uk.core_coverage = 0.5;
  uk.cross_region_link_prob = 0.10;
  cfg.regions.push_back(uk);

  // A well-covered national community (the paper notes 4020 Czech
  // educational hosts in the core).
  RegionConfig cz;
  cz.name = "cz";
  cz.tld = ".cz";
  cz.num_hosts = Scaled(6000, scale);
  cz.edu_fraction = 0.07;
  cz.core_coverage = 0.90;
  cz.cross_region_link_prob = 0.10;
  cfg.regions.push_back(cz);

  // Poland-like anomaly: four times the population, yet only ~12 of its
  // educational hosts ended up in the paper's core.
  RegionConfig pl;
  pl.name = "pl";
  pl.tld = ".pl";
  pl.num_hosts = Scaled(24000, scale);
  pl.edu_fraction = 0.015;
  pl.core_coverage = 0.035;
  pl.cross_region_link_prob = 0.10;
  cfg.regions.push_back(pl);

  // Italy: medium community with a solid educational presence — the
  // regional core of the Figure 5 coverage experiment (9747 .it
  // educational hosts in the paper).
  RegionConfig it;
  it.name = "it";
  it.tld = ".it";
  it.num_hosts = Scaled(9000, scale);
  it.edu_fraction = 0.11;
  it.core_coverage = 0.95;
  it.cross_region_link_prob = 0.10;
  cfg.regions.push_back(it);

  // Alibaba-like isolated commerce community: very large, with a handful
  // of identifiable hub hosts, invisible to the core (Section 4.4.1-2).
  RegionConfig mall;
  mall.name = "cn-mall";
  mall.tld = ".cn";
  mall.num_hosts = Scaled(8000, scale);
  mall.isolated_community = true;
  mall.core_coverage = 0.0;
  mall.num_hubs = 12;
  mall.hub_target_fraction = 0.6;
  cfg.regions.push_back(mall);

  // Brazilian-blog-like isolated community: no identifiable hubs at all.
  RegionConfig blog;
  blog.name = "br-blog";
  blog.tld = ".br";
  blog.num_hosts = Scaled(10000, scale);
  blog.isolated_community = true;
  blog.core_coverage = 0.0;
  blog.cross_region_link_prob = 0.0;
  cfg.regions.push_back(blog);

  cfg.mean_outdegree = 28.0;
  cfg.zipf_exponent = 0.95;
  cfg.no_outlink_fraction = 0.78;    // good-web share; graph-wide lands near the paper's 66.4%
  cfg.unpopular_fraction = 0.25;     // drives the 35% no-inlink fraction
  cfg.unpopular_dangling_bias = 0.45;

  cfg.num_isolated_cliques = Scaled(40, scale);
  cfg.clique_min_size = 5;
  cfg.clique_max_size = 14;

  SpamConfig& spam = cfg.spam;
  spam.num_farms = Scaled(400, scale);
  spam.min_boosters = 5;
  spam.max_boosters = 2000;
  spam.booster_exponent = 2.0;
  spam.interlink_prob = 0.02;
  spam.target_links_back = true;
  spam.alliance_fraction = 0.25;
  spam.alliance_size = 4;
  spam.honeypot_fraction = 0.45;
  spam.hijacked_links_per_farm = 3;
  spam.camouflage_links_per_farm = 5;
  spam.laundered_fraction = 0.3;
  spam.laundered_intermediaries = 4;
  spam.num_expired_domain_targets = Scaled(60, scale);
  spam.expired_inlinks_min = 12;
  spam.expired_inlinks_max = 60;

  return cfg;
}

WebModelConfig TinyScenario(uint64_t seed) {
  WebModelConfig cfg = Yahoo2004Scenario(0.02, seed);
  cfg.spam.max_boosters = 200;
  return cfg;
}

}  // namespace spammass::synth
