// Micro-benchmarks of the graph substrate: CSR construction (serial and
// ThreadPool-parallel), transpose, binary load (v1 per-record vs v2
// bulk-array), BFS, statistics, and synthetic-web generation throughput.

#include <benchmark/benchmark.h>

#include "bench_json_main.h"

#include <cstdio>
#include <cstdlib>

#include "graph/graph_algorithms.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/graph_stats.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

// The ingest benchmarks run on a ~100k-node, ~800k-edge random web — the
// scale the PR's acceptance numbers (build/transpose speedup at 4 threads,
// v2-vs-v1 load) are quoted at.
constexpr uint32_t kIngestNodes = 100000;
constexpr double kIngestMeanDegree = 8.0;

void FillRandomEdges(graph::GraphBuilder* b, uint32_t n, double mean_degree,
                     uint64_t seed) {
  util::Rng rng(seed);
  uint64_t edges = static_cast<uint64_t>(n * mean_degree);
  for (uint64_t e = 0; e < edges; ++e) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    auto v = static_cast<graph::NodeId>(rng.UniformIndex(n));
    if (u != v) b->AddEdge(u, v);
  }
}

graph::WebGraph RandomGraph(uint32_t n, double mean_degree, uint64_t seed) {
  graph::GraphBuilder b(n);
  FillRandomEdges(&b, n, mean_degree, seed);
  return b.Build();
}

// Shared ingest fixture graph, built once.
const graph::WebGraph& IngestGraph() {
  static const graph::WebGraph* g = new graph::WebGraph(
      RandomGraph(kIngestNodes, kIngestMeanDegree, 31));
  return *g;
}

std::string BenchTempPath(const char* name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

void BM_GraphBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    graph::WebGraph g = RandomGraph(n, 8.0, 11);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_Transpose(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 8.0, 13);
  for (auto _ : state) {
    graph::WebGraph t = g.Transposed();
    benchmark::DoNotOptimize(t.num_edges());
  }
}
BENCHMARK(BM_Transpose)->Unit(benchmark::kMillisecond);

// -- Parallel ingest pipeline ------------------------------------------------
// Serial baselines and their ThreadPool counterparts at 1/2/4/8 workers on
// the shared 100k-node web. The edge-stream refill is excluded via
// Pause/ResumeTiming so only GraphBuilder::Build is measured.

void BM_CsrBuildSerial(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    graph::GraphBuilder b(kIngestNodes);
    FillRandomEdges(&b, kIngestNodes, kIngestMeanDegree, 31);
    state.ResumeTiming();
    graph::WebGraph g = b.Build();
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_CsrBuildSerial)->Unit(benchmark::kMillisecond);

void BM_CsrBuildParallel(benchmark::State& state) {
  util::ThreadPool pool(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    graph::GraphBuilder b(kIngestNodes);
    FillRandomEdges(&b, kIngestNodes, kIngestMeanDegree, 31);
    state.ResumeTiming();
    graph::WebGraph g = b.Build(&pool);
    benchmark::DoNotOptimize(g.num_edges());
  }
}
BENCHMARK(BM_CsrBuildParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// The transpose benches go through FromCsr, which rebuilds the in-CSR
// (counting sort + scatter) and the derived arrays from the forward
// arrays — `Transposed()` itself only swaps the two directions. The
// array copies handed to FromCsr are excluded from the timed region.

void BM_TransposeSerial(benchmark::State& state) {
  const graph::WebGraph& g = IngestGraph();
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> off(g.OutOffsets().begin(), g.OutOffsets().end());
    std::vector<graph::NodeId> tg(g.Targets().begin(), g.Targets().end());
    state.ResumeTiming();
    graph::WebGraph t =
        graph::WebGraph::FromCsr(g.num_nodes(), std::move(off), std::move(tg));
    benchmark::DoNotOptimize(t.num_edges());
  }
}
BENCHMARK(BM_TransposeSerial)->Unit(benchmark::kMillisecond);

void BM_TransposeParallel(benchmark::State& state) {
  const graph::WebGraph& g = IngestGraph();
  util::ThreadPool pool(static_cast<uint32_t>(state.range(0)));
  for (auto _ : state) {
    state.PauseTiming();
    std::vector<uint64_t> off(g.OutOffsets().begin(), g.OutOffsets().end());
    std::vector<graph::NodeId> tg(g.Targets().begin(), g.Targets().end());
    state.ResumeTiming();
    graph::WebGraph t = graph::WebGraph::FromCsr(g.num_nodes(), std::move(off),
                                                 std::move(tg), &pool);
    benchmark::DoNotOptimize(t.num_edges());
  }
}
BENCHMARK(BM_TransposeParallel)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// -- Binary format: v1 per-record load vs v2 bulk-array load -----------------

void BM_BinaryLoadV1(benchmark::State& state) {
  std::string path = BenchTempPath("spammass_bench_graph_v1.bin");
  CHECK_OK(graph::WriteBinaryV1(IngestGraph(), path));
  for (auto _ : state) {
    auto g = graph::ReadBinary(path);
    CHECK_OK(g.status());
    benchmark::DoNotOptimize(g.value().num_edges());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BinaryLoadV1)->Unit(benchmark::kMillisecond);

void BM_BinaryLoadV2(benchmark::State& state) {
  std::string path = BenchTempPath("spammass_bench_graph_v2.bin");
  CHECK_OK(graph::WriteBinary(IngestGraph(), path));
  for (auto _ : state) {
    auto g = graph::ReadBinary(path);
    CHECK_OK(g.status());
    benchmark::DoNotOptimize(g.value().num_edges());
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BinaryLoadV2)->Unit(benchmark::kMillisecond);

void BM_BinaryWriteV2(benchmark::State& state) {
  std::string path = BenchTempPath("spammass_bench_graph_w.bin");
  for (auto _ : state) {
    CHECK_OK(graph::WriteBinary(IngestGraph(), path));
  }
  std::remove(path.c_str());
}
BENCHMARK(BM_BinaryWriteV2)->Unit(benchmark::kMillisecond);

void BM_MultiSourceBfs(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 8.0, 17);
  std::vector<graph::NodeId> sources;
  for (graph::NodeId s = 0; s < 100; ++s) sources.push_back(s * 97);
  for (auto _ : state) {
    auto reach = graph::ReachableFrom(g, sources);
    benchmark::DoNotOptimize(reach);
  }
}
BENCHMARK(BM_MultiSourceBfs)->Unit(benchmark::kMillisecond);

void BM_GraphStats(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(100000, 8.0, 19);
  for (auto _ : state) {
    auto stats = graph::ComputeGraphStats(g);
    benchmark::DoNotOptimize(stats.isolated);
  }
}
BENCHMARK(BM_GraphStats)->Unit(benchmark::kMillisecond);

void BM_WeaklyConnectedComponents(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 4.0, 23);
  for (auto _ : state) {
    uint32_t num = 0;
    auto comp = graph::WeaklyConnectedComponents(g, &num);
    benchmark::DoNotOptimize(comp);
  }
}
BENCHMARK(BM_WeaklyConnectedComponents)->Unit(benchmark::kMillisecond);

void BM_SyntheticWebGeneration(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(scale, 29));
    CHECK_OK(web.status());
    benchmark::DoNotOptimize(web.value().graph.num_edges());
  }
}
BENCHMARK(BM_SyntheticWebGeneration)
    ->Arg(2)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
