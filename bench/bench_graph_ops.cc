// Micro-benchmarks of the graph substrate: CSR construction, transpose,
// BFS, statistics, and synthetic-web generation throughput.

#include <benchmark/benchmark.h>

#include "graph/graph_algorithms.h"
#include "graph/graph_builder.h"
#include "graph/graph_stats.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"
#include "util/random.h"

namespace spammass {
namespace {

graph::WebGraph RandomGraph(uint32_t n, double mean_degree, uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphBuilder b(n);
  uint64_t edges = static_cast<uint64_t>(n * mean_degree);
  for (uint64_t e = 0; e < edges; ++e) {
    auto u = static_cast<graph::NodeId>(rng.UniformIndex(n));
    auto v = static_cast<graph::NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

void BM_GraphBuild(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    graph::WebGraph g = RandomGraph(n, 8.0, 11);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(state.iterations() * n * 8);
}
BENCHMARK(BM_GraphBuild)->Arg(10000)->Arg(50000)->Unit(benchmark::kMillisecond);

void BM_Transpose(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 8.0, 13);
  for (auto _ : state) {
    graph::WebGraph t = g.Transposed();
    benchmark::DoNotOptimize(t.num_edges());
  }
}
BENCHMARK(BM_Transpose)->Unit(benchmark::kMillisecond);

void BM_MultiSourceBfs(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 8.0, 17);
  std::vector<graph::NodeId> sources;
  for (graph::NodeId s = 0; s < 100; ++s) sources.push_back(s * 97);
  for (auto _ : state) {
    auto reach = graph::ReachableFrom(g, sources);
    benchmark::DoNotOptimize(reach);
  }
}
BENCHMARK(BM_MultiSourceBfs)->Unit(benchmark::kMillisecond);

void BM_GraphStats(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(100000, 8.0, 19);
  for (auto _ : state) {
    auto stats = graph::ComputeGraphStats(g);
    benchmark::DoNotOptimize(stats.isolated);
  }
}
BENCHMARK(BM_GraphStats)->Unit(benchmark::kMillisecond);

void BM_WeaklyConnectedComponents(benchmark::State& state) {
  graph::WebGraph g = RandomGraph(50000, 4.0, 23);
  for (auto _ : state) {
    uint32_t num = 0;
    auto comp = graph::WeaklyConnectedComponents(g, &num);
    benchmark::DoNotOptimize(comp);
  }
}
BENCHMARK(BM_WeaklyConnectedComponents)->Unit(benchmark::kMillisecond);

void BM_SyntheticWebGeneration(benchmark::State& state) {
  const double scale = static_cast<double>(state.range(0)) / 100.0;
  for (auto _ : state) {
    auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(scale, 29));
    CHECK_OK(web.status());
    benchmark::DoNotOptimize(web.value().graph.num_edges());
  }
}
BENCHMARK(BM_SyntheticWebGeneration)
    ->Arg(2)
    ->Arg(10)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

BENCHMARK_MAIN();
