// E5: reproduces Table 2 — the judged evaluation sample sorted by
// estimated relative mass and split into 20 near-equal groups, reporting
// each group's smallest/largest mass and size. The paper's sample of 892
// hosts spans relative masses from −67.90 to 1.00 with group sizes 40-48.

#include <cstdio>

#include "bench_common.h"
#include "eval/grouping.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  std::printf("== Table 2: relative mass thresholds for sample groups ==\n\n");
  auto groups = eval::SplitIntoGroups(r.sample, 20);
  util::TextTable table;
  table.SetHeader({"group", "smallest m~", "largest m~", "size"});
  for (size_t g = 0; g < groups.size(); ++g) {
    table.AddRow({std::to_string(g + 1),
                  util::FormatDouble(groups[g].smallest_mass, 2),
                  util::FormatDouble(groups[g].largest_mass, 2),
                  std::to_string(groups[g].size)});
  }
  std::printf("%s\n", table.ToString().c_str());

  double lo = groups.front().smallest_mass;
  double hi = groups.back().largest_mass;
  std::printf(
      "measured mass range: %.2f .. %.2f  (paper: -67.90 .. 1.00)\n"
      "shape checks: the range is strongly asymmetric (deep negative tail\n"
      "from core members and their neighborhoods, positive tail capped at\n"
      "1), and group sizes are near-equal by construction.\n",
      lo, hi);
  return 0;
}
