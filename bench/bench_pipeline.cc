// Pipeline artifact-cache perf: running two detectors (spam mass +
// TrustRank) over ONE shared PipelineContext vs. two independent runs
// that each load their own artifacts. The shared context computes base
// PageRank once and fuses every forward solve into a single multi-RHS
// stream; the independent runs pay for the base solve twice. The
// BENCH_pipeline.json ratio `pipeline_two_detector_cache_speedup` tracks
// the win.

#include <benchmark/benchmark.h>

#include "bench_json_main.h"

#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "util/logging.h"

namespace spammass {
namespace {

constexpr double kScale = 0.15;
constexpr uint64_t kSeed = 42;

/// One shared fixture web; generated once per process.
const pipeline::LoadedGraph& FixtureWeb() {
  static pipeline::LoadedGraph* loaded = [] {
    pipeline::GraphSource source =
        pipeline::GraphSource::Scenario(kScale, kSeed);
    auto result = source.Load();
    CHECK_OK(result.status());
    return new pipeline::LoadedGraph(std::move(result.value()));
  }();
  return *loaded;
}

pipeline::PipelineConfig BenchConfig() {
  pipeline::PipelineConfig config;
  // Jacobi so the multi-RHS fusion engages; the Gauss-Seidel preset would
  // still share the cached base solve but not the per-sweep traversal.
  config.solver.method = pagerank::Method::kJacobi;
  return config;
}

void RunDetectorOnOwnContext(const char* name) {
  const pipeline::LoadedGraph& web = FixtureWeb();
  pipeline::PipelineConfig config = BenchConfig();
  pipeline::PipelineContext context(web, config);
  auto detector = pipeline::DetectorRegistry::Global().Create(name);
  CHECK_OK(detector.status());
  CHECK_OK(context.Prepare(detector.value()->Needs(context)));
  auto output = detector.value()->Run(context);
  CHECK_OK(output.status());
  benchmark::DoNotOptimize(output.value().flagged_count);
}

/// Baseline: each detector prepares its own context — the base PageRank
/// runs twice and no solve shares a CSR traversal with another.
void BM_TwoDetectorsIndependentRuns(benchmark::State& state) {
  FixtureWeb();  // exclude generation from timing
  for (auto _ : state) {
    RunDetectorOnOwnContext("spam_mass");
    RunDetectorOnOwnContext("trustrank");
  }
}
BENCHMARK(BM_TwoDetectorsIndependentRuns)->Unit(benchmark::kMillisecond);

/// Shared context: union the needs, prepare once, run both detectors
/// against the cached artifacts (exactly one base PageRank solve).
void BM_TwoDetectorsSharedContext(benchmark::State& state) {
  FixtureWeb();
  for (auto _ : state) {
    const pipeline::LoadedGraph& web = FixtureWeb();
    pipeline::PipelineConfig config = BenchConfig();
    pipeline::PipelineContext context(web, config);
    auto spam_mass = pipeline::DetectorRegistry::Global().Create("spam_mass");
    auto trustrank = pipeline::DetectorRegistry::Global().Create("trustrank");
    CHECK_OK(spam_mass.status());
    CHECK_OK(trustrank.status());
    CHECK_OK(context.Prepare(spam_mass.value()->Needs(context).Union(
        trustrank.value()->Needs(context))));
    CHECK_EQ(context.base_pagerank_solves(), 1u);
    auto mass_output = spam_mass.value()->Run(context);
    auto trust_output = trustrank.value()->Run(context);
    CHECK_OK(mass_output.status());
    CHECK_OK(trust_output.status());
    benchmark::DoNotOptimize(mass_output.value().flagged_count);
    benchmark::DoNotOptimize(trust_output.value().flagged_count);
  }
}
BENCHMARK(BM_TwoDetectorsSharedContext)->Unit(benchmark::kMillisecond);

/// Context reuse across detector sets: a third detector added after the
/// first Prepare only fills the artifact gap. Measures the incremental
/// cost of widening a prepared context (should be far below a fresh run).
void BM_WidenPreparedContext(benchmark::State& state) {
  FixtureWeb();
  for (auto _ : state) {
    const pipeline::LoadedGraph& web = FixtureWeb();
    pipeline::PipelineConfig config = BenchConfig();
    pipeline::PipelineContext context(web, config);
    pipeline::ArtifactNeeds needs;
    needs.mass_estimates = true;
    CHECK_OK(context.Prepare(needs));
    needs.graph_stats = true;
    CHECK_OK(context.Prepare(needs));
    benchmark::DoNotOptimize(context.GraphStats().num_edges);
  }
}
BENCHMARK(BM_WidenPreparedContext)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
