// Convergence study of the solver suite (supporting the Section 2.2 claim
// that the linear-system formulation admits faster solvers than power
// iteration): per-iteration L1 residuals for Jacobi, Gauss-Seidel, SOR and
// power iteration on the same synthetic web, plus sweeps-to-tolerance.

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "pagerank/solver.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"
#include "util/table.h"

using namespace spammass;

namespace {

pagerank::PageRankResult Run(const graph::WebGraph& graph,
                             pagerank::Method method, double omega = 1.1) {
  pagerank::SolverOptions opt;
  opt.method = method;
  opt.sor_omega = omega;
  opt.tolerance = 1e-12;
  opt.max_iterations = 300;
  opt.track_residuals = true;
  auto r = pagerank::ComputeUniformPageRank(graph, opt);
  CHECK_OK(r.status());
  return std::move(r.value());
}

}  // namespace

int main(int argc, char** argv) {
  double scale = argc > 1 ? std::atof(argv[1]) : 0.1;
  uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  auto web = synth::GenerateWeb(synth::Yahoo2004Scenario(scale, seed));
  CHECK_OK(web.status());
  const graph::WebGraph& g = web.value().graph;
  std::printf("# graph: %u hosts, %llu edges\n\n", g.num_nodes(),
              static_cast<unsigned long long>(g.num_edges()));

  struct Variant {
    const char* name;
    pagerank::Method method;
    double omega;
  };
  const Variant variants[] = {
      {"jacobi", pagerank::Method::kJacobi, 1.0},
      {"gauss-seidel", pagerank::Method::kGaussSeidel, 1.0},
      {"sor w=1.1", pagerank::Method::kSor, 1.1},
      {"sor w=0.8", pagerank::Method::kSor, 0.8},
      {"power iteration", pagerank::Method::kPowerIteration, 1.0},
  };

  std::vector<pagerank::PageRankResult> results;
  util::TextTable summary;
  summary.SetHeader({"method", "sweeps to 1e-12", "final residual"});
  for (const Variant& v : variants) {
    results.push_back(Run(g, v.method, v.omega));
    summary.AddRow({v.name, std::to_string(results.back().iterations),
                    util::FormatDouble(std::log10(results.back().residual),
                                       1) + " (log10)"});
  }
  std::printf("== sweeps to tolerance ==\n\n%s\n", summary.ToString().c_str());

  std::printf("== residual decay (log10 of L1 residual per sweep) ==\n\n");
  util::TextTable decay;
  std::vector<std::string> header = {"sweep"};
  for (const Variant& v : variants) header.push_back(v.name);
  decay.SetHeader(header);
  for (int sweep : {1, 2, 4, 8, 16, 32, 64, 128}) {
    std::vector<std::string> row = {std::to_string(sweep)};
    for (const auto& result : results) {
      if (static_cast<size_t>(sweep) <= result.residual_history.size()) {
        row.push_back(util::FormatDouble(
            std::log10(result.residual_history[sweep - 1]), 2));
      } else {
        row.push_back("-");
      }
    }
    decay.AddRow(row);
  }
  std::printf("%s\n", decay.ToString().c_str());
  std::printf(
      "expected shape: Gauss-Seidel needs roughly half the sweeps of\n"
      "Jacobi; power iteration tracks Jacobi's rate (both are damped by\n"
      "c per step) but pays extra normalization work; mild over-relaxation\n"
      "is between Gauss-Seidel and Jacobi on web-like graphs.\n");
  return 0;
}
