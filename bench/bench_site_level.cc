// E15 (extension): granularity study. Section 2.1 abstracts the web to
// "pages, hosts, or sites"; the paper's experiments run at host level.
// This bench aggregates the synthetic host graph to the site level
// (registered domains) and reruns the full mass pipeline there, comparing
// separation quality. Site-level graphs are smaller and cheaper; the
// question is how much detection signal survives the condensation.

#include <cstdio>

#include "bench_common.h"
#include "core/detector.h"
#include "eval/metrics.h"
#include "graph/site_aggregation.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv, /*default_scale=*/0.25);
  auto r = bench::MustRunPipeline(options);

  auto sites = graph::AggregateToSites(r.web.graph);
  CHECK_OK(sites.status());
  const graph::SiteAggregationResult& s = sites.value();

  // Site ground truth and core, mapped through the aggregation: a site is
  // spam when any member host is spam; core sites have every member listed.
  std::vector<bool> site_spam(s.graph.num_nodes(), false);
  std::vector<bool> site_all_listed(s.graph.num_nodes(), true);
  for (graph::NodeId h = 0; h < r.web.graph.num_nodes(); ++h) {
    if (r.web.labels.IsSpam(h)) site_spam[s.to_site[h]] = true;
    if (!r.web.listed[h]) site_all_listed[s.to_site[h]] = false;
  }
  std::vector<graph::NodeId> site_core;
  for (graph::NodeId x = 0; x < s.graph.num_nodes(); ++x) {
    if (site_all_listed[x] && !site_spam[x]) site_core.push_back(x);
  }
  CHECK(!site_core.empty());

  core::SpamMassOptions mass = options.mass;
  mass.gamma = r.gamma_used;
  auto site_est = core::EstimateSpamMass(s.graph, site_core, mass);
  CHECK_OK(site_est.status());

  auto evaluate = [](const core::MassEstimates& est,
                     const std::vector<bool>& spam, double rho) {
    const double scale = static_cast<double>(est.pagerank.size()) /
                         (1.0 - est.damping);
    std::vector<eval::ScoredExample> examples;
    uint64_t population = 0, spam_in_t = 0;
    for (size_t x = 0; x < est.pagerank.size(); ++x) {
      if (est.pagerank[x] * scale < rho) continue;
      ++population;
      spam_in_t += spam[x];
      examples.push_back({est.relative_mass[x], static_cast<bool>(spam[x])});
    }
    double auc = eval::ComputeAuc(examples);
    // Precision at tau = 0.95.
    uint64_t tp = 0, flagged = 0;
    for (const auto& e : examples) {
      if (e.score >= 0.95) {
        ++flagged;
        tp += e.positive;
      }
    }
    struct Out {
      uint64_t population, spam_in_t, flagged;
      double precision, auc;
    };
    return Out{population, spam_in_t, flagged,
               flagged ? static_cast<double>(tp) / flagged : 0, auc};
  };

  std::vector<bool> host_spam(r.web.graph.num_nodes(), false);
  for (graph::NodeId x = 0; x < r.web.graph.num_nodes(); ++x) {
    host_spam[x] = r.web.labels.IsSpam(x);
  }
  auto host_q = evaluate(r.estimates, host_spam, options.scaled_rho);
  auto site_q = evaluate(site_est.value(), site_spam, options.scaled_rho);

  std::printf("== Granularity: host level vs site level ==\n\n");
  util::TextTable table;
  table.SetHeader({"granularity", "nodes", "edges", "|core|", "|T|",
                   "spam in T", "prec@0.95", "AUC over T"});
  table.AddRow({"hosts", util::FormatWithCommas(r.web.graph.num_nodes()),
                util::FormatWithCommas(r.web.graph.num_edges()),
                util::FormatWithCommas(r.good_core.size()),
                util::FormatWithCommas(host_q.population),
                util::FormatWithCommas(host_q.spam_in_t),
                util::FormatDouble(host_q.precision, 3),
                util::FormatDouble(host_q.auc, 3)});
  table.AddRow({"sites", util::FormatWithCommas(s.graph.num_nodes()),
                util::FormatWithCommas(s.graph.num_edges()),
                util::FormatWithCommas(site_core.size()),
                util::FormatWithCommas(site_q.population),
                util::FormatWithCommas(site_q.spam_in_t),
                util::FormatDouble(site_q.precision, 3),
                util::FormatDouble(site_q.auc, 3)});
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape: the site graph is a fraction of the host graph yet the\n"
      "mass-based separation persists — the method is granularity-agnostic\n"
      "as Section 2.1 claims, so operators can trade resolution (which\n"
      "specific host) for cost (PageRank on a much smaller graph).\n");
  return 0;
}
