// Ablations of the design choices DESIGN.md calls out:
//   * γ-scaled core jump w vs the raw v^Ṽ⁺ (Section 3.5 / 4.3) — without
//     scaling, ‖p′‖ ≪ ‖p‖ and nearly every host's relative mass
//     saturates, destroying the separation;
//   * relative vs absolute mass as the detection signal (Section 4.6);
//   * the PageRank threshold ρ (Section 3.6) — dropping it floods the
//     candidate set with low-evidence hosts.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "core/detector.h"
#include "core/spam_mass.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

namespace {

struct DetectorScore {
  uint64_t flagged = 0;
  uint64_t tp = 0;
  double Precision() const {
    return flagged ? static_cast<double>(tp) / flagged : 0;
  }
};

DetectorScore ScoreCandidates(const std::vector<core::SpamCandidate>& cands,
                              const core::LabelStore& labels) {
  DetectorScore s;
  s.flagged = cands.size();
  for (const auto& c : cands) s.tp += labels.IsSpam(c.node);
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv, /*default_scale=*/0.25);
  auto r = bench::MustRunPipeline(options);

  // --- Ablation 1: jump scaling. -------------------------------------------
  std::printf("== Ablation: gamma-scaled jump w vs raw v^core ==\n\n");
  core::SpamMassOptions unscaled_options = options.mass;
  unscaled_options.gamma = r.gamma_used;
  unscaled_options.scale_core_jump = false;
  auto unscaled =
      core::EstimateSpamMass(r.web.graph, r.good_core, unscaled_options);
  CHECK_OK(unscaled.status());

  auto count_saturated = [](const core::MassEstimates& est) {
    uint64_t saturated = 0;
    for (double m : est.relative_mass) saturated += m > 0.99;
    return saturated;
  };
  double p_norm = 0, scaled_norm = 0, raw_norm = 0;
  for (size_t i = 0; i < r.estimates.pagerank.size(); ++i) {
    p_norm += r.estimates.pagerank[i];
    scaled_norm += r.estimates.core_pagerank[i];
    raw_norm += unscaled.value().core_pagerank[i];
  }
  util::TextTable jump_table;
  jump_table.SetHeader({"variant", "||p'|| / ||p||", "hosts with m~ > 0.99"});
  jump_table.AddRow({"scaled w (gamma)",
                     util::FormatDouble(scaled_norm / p_norm, 3),
                     util::FormatWithCommas(count_saturated(r.estimates))});
  jump_table.AddRow({"raw v^core",
                     util::FormatDouble(raw_norm / p_norm, 4),
                     util::FormatWithCommas(
                         count_saturated(unscaled.value()))});
  std::printf("%s\n", jump_table.ToString().c_str());
  std::printf(
      "paper (Section 4.3): with the raw jump the absolute mass estimates\n"
      "were 'virtually identical to the PageRank scores' — i.e. m~ ~ 1 for\n"
      "almost everything, as the saturation count shows.\n\n");

  // --- Ablation 2: relative vs absolute mass. -------------------------------
  std::printf("== Ablation: relative vs absolute mass as the signal ==\n\n");
  // Top-k by each signal among the PageRank-filtered set.
  const size_t k = std::min<size_t>(200, r.filtered.size());
  std::vector<graph::NodeId> by_rel = r.filtered;
  std::sort(by_rel.begin(), by_rel.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return r.estimates.relative_mass[a] >
                     r.estimates.relative_mass[b];
            });
  std::vector<graph::NodeId> by_abs = r.filtered;
  std::sort(by_abs.begin(), by_abs.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return r.estimates.absolute_mass[a] >
                     r.estimates.absolute_mass[b];
            });
  uint64_t rel_spam = 0, abs_spam = 0;
  for (size_t i = 0; i < k; ++i) {
    rel_spam += r.web.labels.IsSpam(by_rel[i]);
    abs_spam += r.web.labels.IsSpam(by_abs[i]);
  }
  util::TextTable signal_table;
  signal_table.SetHeader({"signal", "spam in top-" + std::to_string(k)});
  signal_table.AddRow({"relative mass m~",
                       util::FormatDouble(100.0 * rel_spam / k, 1) + "%"});
  signal_table.AddRow({"absolute mass M~",
                       util::FormatDouble(100.0 * abs_spam / k, 1) + "%"});
  std::printf("%s\n", signal_table.ToString().c_str());
  std::printf(
      "paper (Section 4.6): sorting by absolute mass intermixes reputable\n"
      "high-PageRank hosts with spam; relative mass separates them.\n\n");

  // --- Ablation 3: the PageRank threshold ρ. --------------------------------
  std::printf("== Ablation: PageRank threshold rho ==\n\n");
  util::TextTable rho_table;
  rho_table.SetHeader({"rho", "candidates", "precision"});
  for (double rho : {0.0, 2.0, 10.0, 50.0}) {
    core::DetectorConfig config;
    config.scaled_pagerank_threshold = rho;
    config.relative_mass_threshold = 0.98;
    auto candidates = core::DetectSpamCandidates(r.estimates, config);
    DetectorScore s = ScoreCandidates(candidates, r.web.labels);
    rho_table.AddRow({util::FormatDouble(rho, 0),
                      util::FormatWithCommas(s.flagged),
                      util::FormatDouble(s.Precision(), 3)});
  }
  std::printf("%s\n", rho_table.ToString().c_str());
  std::printf(
      "dropping rho floods the candidate set with hosts whose tiny\n"
      "PageRank makes the mass ratio noisy and who are not 'beneficiaries\n"
      "of significant boosting' anyway (the three reasons of Section 3.6).\n");
  return 0;
}
