// Bandwidth-variant matrix for the multi-RHS sweep: every combination of
// instruction set (scalar vs. the best vector backend), lane precision
// (f64 vs. mixed f32), and successor encoding (plain CSR vs.
// delta/varint-compressed) at the k=4 lane count the two-solve mass
// estimation plus TrustRank batch actually issues — on a power-law web
// whose working set defeats the last-level cache, so the sweep is
// memory-bound and byte savings translate to wall-clock. Also times the
// locality reorderings (degree-descending, BFS) both as a preprocessing
// cost and as a sweep-speed effect.
//
// Every variant entry carries a `bytes_per_edge` counter: the traffic
// model documented in docs/performance.md (successor-id bytes per edge,
// exact for both encodings, plus k lane reads at the storage width).
// tools/bench_to_json.py pairs the entries into speedup ratios and a
// bytes-per-edge reduction for BENCH_solver.json.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <vector>

#include "bench_json_main.h"
#include "graph/graph_builder.h"
#include "graph/reorder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/simd.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::ReorderKind;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::SimdPolicy;
using pagerank::SweepPrecision;
namespace simd = pagerank::simd;

constexpr uint32_t kLanes = 4;

/// Power-law out-degrees (Zipf-ish source sampling over a shuffled rank
/// order) with uniform targets: a few hub rows with thousands of
/// successors and a long tail of near-dangling nodes, the shape crawls
/// produce and the regime the compressed gather is built for.
WebGraph BuildVariantGraph() {
  constexpr uint32_t n = 300'000;
  constexpr uint32_t m = 3'000'000;
  util::Rng rng(4242);
  graph::GraphBuilder b(n);
  for (uint32_t e = 0; e < m; ++e) {
    // Inverse-CDF-style skew: u^5 piles sources onto the high ranks,
    // giving a heavy hub head and a long near-dangling tail.
    const double u = rng.Uniform01();
    const double rank = (n - 1) * (1.0 - u * u * u * u * u);
    auto src = static_cast<NodeId>(rank);
    auto dst = static_cast<NodeId>(rng.UniformIndex(n));
    if (src != dst) b.AddEdge(src, dst);
  }
  return b.Build();
}

const WebGraph& VariantGraph() {
  static WebGraph* graph = new WebGraph(BuildVariantGraph());
  return *graph;
}

// Same structure (same seed), with the compressed in-adjacency attached.
// WebGraph is move-only, so the compressed twin is built independently.
const WebGraph& CompressedVariantGraph() {
  static WebGraph* graph = [] {
    auto* g = new WebGraph(BuildVariantGraph());
    g->BuildCompressedInAdjacency();
    return g;
  }();
  return *graph;
}

/// The k=4 jump batch of a full detection pass: uniform PageRank, the
/// γ-scaled good-core jump, and two alternative-core lanes.
const std::vector<JumpVector>& VariantJumps() {
  static std::vector<JumpVector>* jumps = [] {
    const WebGraph& g = VariantGraph();
    const NodeId n = g.num_nodes();
    auto* v = new std::vector<JumpVector>();
    v->push_back(JumpVector::Uniform(n));
    for (uint32_t j = 0; j < kLanes - 1; ++j) {
      std::vector<NodeId> core;
      for (NodeId x = j; x < n; x += 5 + j) core.push_back(x);
      v->push_back(JumpVector::ScaledCore(n, core, 0.85));
    }
    return v;
  }();
  return *jumps;
}

pagerank::SolverOptions VariantOptions(SimdPolicy simd_policy,
                                       SweepPrecision precision,
                                       bool compressed) {
  pagerank::SolverOptions opt;
  opt.method = pagerank::Method::kJacobi;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  opt.simd = simd_policy;
  opt.precision = precision;
  opt.compressed_gather = compressed;
  return opt;
}

/// Modelled sweep traffic per edge (docs/performance.md): successor-id
/// bytes (exact — 4 for plain CSR, measured blob bytes per edge when
/// compressed) plus k lane-value reads at the storage width.
double BytesPerEdge(const WebGraph& g, SweepPrecision precision,
                    bool compressed) {
  const double id_bytes =
      compressed ? static_cast<double>(g.compressed_in().bytes.size()) /
                       static_cast<double>(g.num_edges())
                 : static_cast<double>(sizeof(NodeId));
  const double lane_width =
      precision == SweepPrecision::kMixedF32 ? sizeof(float) : sizeof(double);
  return id_bytes + static_cast<double>(kLanes) * lane_width;
}

void RunVariant(benchmark::State& state, SimdPolicy simd_policy,
                SweepPrecision precision, bool compressed) {
  if (simd_policy == SimdPolicy::kAuto &&
      simd::Best() == simd::Level::kScalar) {
    state.SkipWithError("no vector backend on this host");
    return;
  }
  const WebGraph& g =
      compressed ? CompressedVariantGraph() : VariantGraph();
  const auto& jumps = VariantJumps();
  const auto opt = VariantOptions(simd_policy, precision, compressed);
  pagerank::SolverWorkspace ws;
  int sweeps = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
    CHECK_OK(r.status());
    sweeps = r.value()[0].iterations;
    benchmark::DoNotOptimize(r.value());
  }
  state.counters["sweeps"] = sweeps;
  state.counters["lanes"] = kLanes;
  state.counters["bytes_per_edge"] = BytesPerEdge(g, precision, compressed);
}

void BM_SweepScalarF64Plain(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kScalar, SweepPrecision::kFloat64, false);
}
BENCHMARK(BM_SweepScalarF64Plain)->Unit(benchmark::kMillisecond);

void BM_SweepSimdF64Plain(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kAuto, SweepPrecision::kFloat64, false);
}
BENCHMARK(BM_SweepSimdF64Plain)->Unit(benchmark::kMillisecond);

void BM_SweepScalarF64Compressed(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kScalar, SweepPrecision::kFloat64, true);
}
BENCHMARK(BM_SweepScalarF64Compressed)->Unit(benchmark::kMillisecond);

void BM_SweepSimdF64Compressed(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kAuto, SweepPrecision::kFloat64, true);
}
BENCHMARK(BM_SweepSimdF64Compressed)->Unit(benchmark::kMillisecond);

void BM_SweepScalarF32Plain(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kScalar, SweepPrecision::kMixedF32, false);
}
BENCHMARK(BM_SweepScalarF32Plain)->Unit(benchmark::kMillisecond);

void BM_SweepSimdF32Plain(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kAuto, SweepPrecision::kMixedF32, false);
}
BENCHMARK(BM_SweepSimdF32Plain)->Unit(benchmark::kMillisecond);

void BM_SweepScalarF32Compressed(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kScalar, SweepPrecision::kMixedF32, true);
}
BENCHMARK(BM_SweepScalarF32Compressed)->Unit(benchmark::kMillisecond);

void BM_SweepSimdF32Compressed(benchmark::State& state) {
  RunVariant(state, SimdPolicy::kAuto, SweepPrecision::kMixedF32, true);
}
BENCHMARK(BM_SweepSimdF32Compressed)->Unit(benchmark::kMillisecond);

// ---- Locality reordering: preprocessing cost and sweep effect. ----

void BM_ReorderCompute(benchmark::State& state) {
  const WebGraph& g = VariantGraph();
  const auto kind =
      state.range(0) == 0 ? ReorderKind::kDegreeDesc : ReorderKind::kBfs;
  for (auto _ : state) {
    graph::Reordering r = graph::ComputeReordering(g, kind);
    benchmark::DoNotOptimize(r);
  }
  state.SetLabel(graph::ReorderKindToString(kind));
}
BENCHMARK(BM_ReorderCompute)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void RunReorderedSweep(benchmark::State& state, ReorderKind kind) {
  static WebGraph* degree_graph = nullptr;
  static WebGraph* bfs_graph = nullptr;
  WebGraph** slot =
      kind == ReorderKind::kDegreeDesc ? &degree_graph : &bfs_graph;
  if (*slot == nullptr) {
    graph::Reordering r = graph::ComputeReordering(VariantGraph(), kind);
    *slot = new WebGraph(graph::ApplyReordering(VariantGraph(), r));
  }
  const WebGraph& g = **slot;
  const auto& jumps = VariantJumps();  // equivariant: timing only
  const auto opt =
      VariantOptions(SimdPolicy::kScalar, SweepPrecision::kFloat64, false);
  pagerank::SolverWorkspace ws;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value());
  }
  state.SetLabel(graph::ReorderKindToString(kind));
}

void BM_SweepReorderedDegree(benchmark::State& state) {
  RunReorderedSweep(state, ReorderKind::kDegreeDesc);
}
BENCHMARK(BM_SweepReorderedDegree)->Unit(benchmark::kMillisecond);

void BM_SweepReorderedBfs(benchmark::State& state) {
  RunReorderedSweep(state, ReorderKind::kBfs);
}
BENCHMARK(BM_SweepReorderedBfs)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
