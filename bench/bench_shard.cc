// Out-of-core scale benches: the v2.2 mmap load path against the heap
// loaders (the PR 8 acceptance metric `mmap_load_speedup` — the zero-copy
// load must beat full-validation ReadBinary by ≥10× on a web whose CSR is
// tens of megabytes), and the host-range sharded Jacobi sweep across
// shard counts on a power-law web whose working set defeats the LLC.
// tools/bench_to_json.py --suite shard derives the ratios into
// BENCH_shard.json; the sharded entries also report the plan's
// max_working_set_bytes so the cache-blocking story is visible next to
// the timings.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "bench_json_main.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/shard.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;

constexpr uint32_t kLanes = 4;
constexpr uint32_t kThreads = 4;

/// Power-law web, same shape as the sweep-variant benches: hub-heavy
/// sources, uniform targets, a long near-dangling tail. Big enough that
/// the CSR (~50 MB both directions) defeats typical LLCs and makes the
/// load path measurable.
WebGraph BuildBenchGraph() {
  constexpr uint32_t n = 300'000;
  constexpr uint32_t m = 3'000'000;
  util::Rng rng(4242);
  graph::GraphBuilder b(n);
  for (uint32_t e = 0; e < m; ++e) {
    const double u = rng.Uniform01();
    const double rank = (n - 1) * (1.0 - u * u * u * u * u);
    auto src = static_cast<NodeId>(rank);
    auto dst = static_cast<NodeId>(rng.UniformIndex(n));
    if (src != dst) b.AddEdge(src, dst);
  }
  return b.Build();
}

const WebGraph& BenchGraph() {
  static WebGraph* graph = new WebGraph(BuildBenchGraph());
  return *graph;
}

/// The bench graph serialized once per format; later iterations reuse the
/// files (the writes are not part of any timed region).
const std::string& V2Path() {
  static std::string* path = [] {
    auto* p = new std::string(
        (std::filesystem::temp_directory_path() / "bench_shard_v2.smwg")
            .string());
    CHECK_OK(graph::WriteBinary(BenchGraph(), *p));
    return p;
  }();
  return *path;
}

const std::string& V22Path() {
  static std::string* path = [] {
    auto* p = new std::string(
        (std::filesystem::temp_directory_path() / "bench_shard_v22.smwg")
            .string());
    CHECK_OK(graph::WriteBinaryV22(BenchGraph(), *p));
    return p;
  }();
  return *path;
}

// ---- Load path: heap readers vs. the zero-copy mmap loader. ----

void BM_BinaryLoadV2Heap(benchmark::State& state) {
  const std::string& path = V2Path();
  for (auto _ : state) {
    auto g = graph::ReadBinary(path);
    CHECK_OK(g.status());
    benchmark::DoNotOptimize(g.value());
  }
}
BENCHMARK(BM_BinaryLoadV2Heap)->Unit(benchmark::kMillisecond);

void BM_PagedLoadHeap(benchmark::State& state) {
  const std::string& path = V22Path();
  for (auto _ : state) {
    auto g = graph::ReadBinary(path);
    CHECK_OK(g.status());
    benchmark::DoNotOptimize(g.value());
  }
}
BENCHMARK(BM_PagedLoadHeap)->Unit(benchmark::kMillisecond);

void BM_PagedLoadMmap(benchmark::State& state) {
  const std::string& path = V22Path();
  uint64_t mapped = 0;
  for (auto _ : state) {
    auto g = graph::ReadBinaryMmap(path);
    CHECK_OK(g.status());
    mapped = g.value().mapped_bytes();
    benchmark::DoNotOptimize(g.value());
  }
  state.counters["mapped_bytes"] = static_cast<double>(mapped);
}
BENCHMARK(BM_PagedLoadMmap)->Unit(benchmark::kMillisecond);

// ---- Sharded sweeps: the k=4 multi-RHS batch across shard counts. ----

const std::vector<JumpVector>& BenchJumps() {
  static std::vector<JumpVector>* jumps = [] {
    const NodeId n = BenchGraph().num_nodes();
    auto* v = new std::vector<JumpVector>();
    v->push_back(JumpVector::Uniform(n));
    for (uint32_t j = 0; j < kLanes - 1; ++j) {
      std::vector<NodeId> core;
      for (NodeId x = j; x < n; x += 5 + j) core.push_back(x);
      v->push_back(JumpVector::ScaledCore(n, core, 0.85));
    }
    return v;
  }();
  return *jumps;
}

void BM_ShardedSweep(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  const WebGraph& g = BenchGraph();
  pagerank::SolverOptions opt;
  opt.method = pagerank::Method::kJacobi;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  opt.num_threads = kThreads;
  opt.shards = shards;
  pagerank::SolverWorkspace ws(kThreads);
  int sweeps = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, BenchJumps(), opt, &ws);
    CHECK_OK(r.status());
    sweeps = r.value()[0].iterations;
    benchmark::DoNotOptimize(r.value());
  }
  state.counters["sweeps"] = sweeps;
  state.counters["lanes"] = kLanes;
  if (shards > 1) {
    // The plan the solve used (the workspace caches it); its working-set
    // ceiling is the number the cache-blocking heuristic steers on.
    graph::ShardPlan plan =
        graph::ShardPlan::Build(g, shards, /*alignment=*/256);
    state.counters["max_working_set_bytes"] =
        static_cast<double>(plan.max_working_set_bytes());
    state.counters["total_ghosts"] =
        static_cast<double>(plan.total_ghosts());
  }
}
BENCHMARK(BM_ShardedSweep)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

/// Plan construction cost — paid once per (graph, shard count) and
/// amortized across every solve through the workspace cache.
void BM_ShardPlanBuild(benchmark::State& state) {
  const auto shards = static_cast<uint32_t>(state.range(0));
  const WebGraph& g = BenchGraph();
  for (auto _ : state) {
    graph::ShardPlan plan = graph::ShardPlan::Build(g, shards, 256);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_ShardPlanBuild)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
