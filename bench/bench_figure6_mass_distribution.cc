// E9: reproduces Figure 6 — the distribution of estimated (scaled)
// absolute spam mass, split into its negative and positive branches on
// log-log axes, plus the power-law fit of the positive tail. Paper:
// positive mass follows a power law with exponent −2.31; the negative
// branch superimposes a "natural" curve and the biased core-member curve;
// the overall range on the Yahoo! graph was −268,099 to +132,332.
// Also reproduces the Section 4.6 finding that absolute mass is unusable
// for detection: the top-|M̃| list mixes popular good hosts with spam.

#include <cstdio>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "bench_common.h"
#include "eval/mass_distribution.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

namespace {

void PrintBranch(const char* title,
                 const std::vector<util::HistogramBin>& bins) {
  std::printf("%s\n", title);
  util::TextTable table;
  table.SetHeader({"mass bin", "hosts", "fraction", "log-log bar"});
  for (const auto& bin : bins) {
    if (bin.count == 0) continue;
    int ticks = bin.fraction > 0
                    ? std::max(1, static_cast<int>(40 + 8 * std::log10(
                                                            bin.fraction)))
                    : 0;
    table.AddRow({util::FormatDouble(bin.lower, 1) + " .. " +
                      util::FormatDouble(bin.upper, 1),
                  std::to_string(bin.count),
                  util::FormatDouble(bin.fraction, 6),
                  std::string(std::max(ticks, 0), '*')});
  }
  std::printf("%s\n", table.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  std::printf("== Figure 6: absolute mass distribution ==\n\n");
  auto dist = eval::ComputeMassDistribution(r.estimates, 2.0, 0.5);
  std::printf("scaled mass range: %.0f .. %.0f (paper: -268,099 .. 132,332)\n",
              dist.min_scaled_mass, dist.max_scaled_mass);
  std::printf("hosts with negative mass: %s, positive: %s\n\n",
              util::FormatWithCommas(dist.num_negative).c_str(),
              util::FormatWithCommas(dist.num_positive).c_str());
  PrintBranch("negative branch (|mass|, log bins):", dist.negative);
  PrintBranch("positive branch (log bins):", dist.positive);
  std::printf(
      "positive-tail power-law fit: exponent %.2f over %zu hosts "
      "(xmin = %.1f, KS = %.3f)\npaper: exponent -2.31.\n\n",
      -dist.positive_fit.alpha, dist.positive_fit.tail_size,
      dist.positive_fit.xmin, dist.positive_fit.ks_distance);

  // Section 4.6: absolute mass alone is not a spam signal — rank by M̃ and
  // inspect the top of the list.
  std::vector<graph::NodeId> order(r.web.graph.num_nodes());
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return r.estimates.absolute_mass[a] >
                     r.estimates.absolute_mass[b];
            });
  uint64_t good_in_top = 0;
  const size_t top_k = std::min<size_t>(50, order.size());
  util::TextTable table;
  table.SetHeader({"rank by |M~|", "host", "ground truth"});
  for (size_t i = 0; i < top_k; ++i) {
    if (r.web.labels.IsGood(order[i])) ++good_in_top;
    if (i < 10) {
      table.AddRow({std::to_string(i + 1),
                    std::string(r.web.graph.HostName(order[i])),
                    core::NodeLabelToString(r.web.labels.Get(order[i]))});
    }
  }
  std::printf("top hosts by estimated absolute mass:\n%s\n",
              table.ToString().c_str());
  std::printf(
      "%llu of the top %zu hosts by absolute mass are good (popular hosts\n"
      "with huge PageRank, like the paper's www.macromedia.com at rank 3):\n"
      "good and spam intermix with no usable separation point — Section\n"
      "4.6's conclusion that detection must use *relative* mass.\n",
      static_cast<unsigned long long>(good_in_top), top_k);
  return 0;
}
