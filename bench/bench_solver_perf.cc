// E11 (performance half): google-benchmark timings of the PageRank solver
// suite on synthetic webs — the Section 2.2 claim that linear-system
// solvers (Jacobi / Gauss-Seidel) are "regularly faster than the
// algorithms available for solving eigensystems (power iterations)", plus
// the cost of the full mass-estimation step (two PageRank solves).
//
// The BM_Seed* benchmarks reimplement the pre-kernel (seed) solver inline —
// per-edge division p[x]/outdeg(x), full-n dangling scans, fresh scratch
// (and, in the parallel case, a fresh thread pool) per solve — as the
// baseline the optimized kernel path (pagerank/kernel.h + SolverWorkspace)
// is measured against. tools/bench_to_json.py derives the speedup ratios
// from the paired entries and records them in BENCH_solver.json.

#include <benchmark/benchmark.h>

#include "bench_json_main.h"

#include <cmath>
#include <cstdint>
#include <vector>

#include "core/spam_mass.h"
#include "graph/graph_builder.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;

const synth::SyntheticWeb& SharedWeb() {
  static synth::SyntheticWeb* web = [] {
    auto r = synth::GenerateWeb(synth::TinyScenario(3));
    CHECK_OK(r.status());
    return new synth::SyntheticWeb(std::move(r.value()));
  }();
  return *web;
}

/// Larger random web for the kernel-vs-seed comparisons: enough edges that
/// the CSR gather dominates, with a dangling tail (ids in the top quarter
/// have no outlinks), matching the shape the kernels optimize for.
const WebGraph& PerfGraph() {
  static WebGraph* graph = [] {
    constexpr uint32_t n = 200'000;
    constexpr uint32_t m = 2'000'000;
    util::Rng rng(1234);
    graph::GraphBuilder b(n);
    for (uint32_t e = 0; e < m; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
      auto v = static_cast<NodeId>(rng.UniformIndex(n));
      if (u != v) b.AddEdge(u, v);
    }
    return new WebGraph(b.Build());
  }();
  return *graph;
}

/// The good-core jump pair of the §4.2 two-solve mass estimation on
/// PerfGraph: uniform v and the γ-scaled core w.
const std::vector<JumpVector>& MassJumps() {
  static std::vector<JumpVector>* jumps = [] {
    const WebGraph& g = PerfGraph();
    std::vector<NodeId> core;
    for (NodeId x = 0; x < g.num_nodes(); x += 7) core.push_back(x);
    auto* v = new std::vector<JumpVector>();
    v->push_back(JumpVector::Uniform(g.num_nodes()));
    v->push_back(JumpVector::ScaledCore(g.num_nodes(), core, 0.85));
    return v;
  }();
  return *jumps;
}

/// Seed-style Jacobi solve, reproduced as the baseline: fresh iterate /
/// next vectors per call, one integer division per edge visit, and a
/// full-n IsDangling scan per sweep.
std::vector<double> SeedJacobiSolve(const WebGraph& g, const JumpVector& v,
                                    const pagerank::SolverOptions& opt,
                                    int* iterations) {
  const NodeId n = g.num_nodes();
  const double c = opt.damping;
  const bool redistribute =
      opt.dangling == pagerank::DanglingPolicy::kRedistributeToJump;
  std::vector<double> p(v.values());
  std::vector<double> next(n);
  for (int i = 0; i < opt.max_iterations; ++i) {
    double dangling = 0;
    if (redistribute) {
      for (NodeId x = 0; x < n; ++x) {
        if (g.IsDangling(x)) dangling += p[x];
      }
    }
    double diff = 0;
    for (NodeId y = 0; y < n; ++y) {
      double in_sum = 0;
      for (NodeId x : g.InNeighbors(y)) {
        in_sum += p[x] / g.OutDegree(x);
      }
      const double out = c * (in_sum + v[y] * dangling) + (1.0 - c) * v[y];
      diff += std::abs(out - p[y]);
      next[y] = out;
    }
    p.swap(next);
    *iterations = i + 1;
    if (diff < opt.tolerance) break;
  }
  return p;
}

pagerank::SolverOptions PerfOptions() {
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  opt.dangling = pagerank::DanglingPolicy::kRedistributeToJump;
  return opt;
}

// ---- Single-threaded Jacobi: seed baseline vs. weighted kernel. ----

void BM_SeedJacobiBaseline(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const JumpVector v = JumpVector::Uniform(g.num_nodes());
  const auto opt = PerfOptions();
  int iterations = 0;
  for (auto _ : state) {
    auto scores = SeedJacobiSolve(g, v, opt, &iterations);
    benchmark::DoNotOptimize(scores);
  }
  state.counters["sweeps"] = iterations;
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_SeedJacobiBaseline)->Unit(benchmark::kMillisecond);

void BM_WeightedJacobi(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const JumpVector v = JumpVector::Uniform(g.num_nodes());
  const auto opt = PerfOptions();
  pagerank::SolverWorkspace ws;
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRank(g, v, opt, &ws);
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_WeightedJacobi)->Unit(benchmark::kMillisecond);

// ---- Spam-mass two-solve path: seed baseline vs. fused multi-vector. ----

void BM_SeedMassEstimationBaseline(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const auto& jumps = MassJumps();
  const auto opt = PerfOptions();
  int iterations = 0;
  for (auto _ : state) {
    // Two fully independent seed-style solves, exactly as the seed
    // EstimateSpamMass issued them (p for the uniform jump, p′ for the
    // core jump), each paying its own CSR traversals and scratch.
    auto p = SeedJacobiSolve(g, jumps[0], opt, &iterations);
    auto pp = SeedJacobiSolve(g, jumps[1], opt, &iterations);
    benchmark::DoNotOptimize(p);
    benchmark::DoNotOptimize(pp);
  }
  state.counters["sweeps"] = iterations;
}
BENCHMARK(BM_SeedMassEstimationBaseline)->Unit(benchmark::kMillisecond);

void BM_FusedMassEstimation(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const auto& jumps = MassJumps();
  const auto opt = PerfOptions();
  pagerank::SolverWorkspace ws;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_FusedMassEstimation)->Unit(benchmark::kMillisecond);

/// The same two-solve pair on the shared synthetic web (the scenario graph
/// every paper-table bench uses, small enough to sit in cache — the regime
/// where the seed's per-edge division dominates the sweep).
const std::vector<JumpVector>& SharedWebMassJumps() {
  static std::vector<JumpVector>* jumps = [] {
    const auto& web = SharedWeb();
    const NodeId n = web.graph.num_nodes();
    auto* v = new std::vector<JumpVector>();
    v->push_back(JumpVector::Uniform(n));
    v->push_back(JumpVector::ScaledCore(n, web.AssembledGoodCore(), 0.85));
    return v;
  }();
  return *jumps;
}

void BM_SeedMassEstimationSharedWeb(benchmark::State& state) {
  const WebGraph& g = SharedWeb().graph;
  const auto& jumps = SharedWebMassJumps();
  const auto opt = PerfOptions();
  int iterations = 0;
  for (auto _ : state) {
    auto p = SeedJacobiSolve(g, jumps[0], opt, &iterations);
    auto pp = SeedJacobiSolve(g, jumps[1], opt, &iterations);
    benchmark::DoNotOptimize(p);
    benchmark::DoNotOptimize(pp);
  }
  state.counters["sweeps"] = iterations;
  state.counters["edges"] = static_cast<double>(g.num_edges());
}
BENCHMARK(BM_SeedMassEstimationSharedWeb)->Unit(benchmark::kMillisecond);

void BM_FusedMassEstimationSharedWeb(benchmark::State& state) {
  const WebGraph& g = SharedWeb().graph;
  const auto& jumps = SharedWebMassJumps();
  const auto opt = PerfOptions();
  pagerank::SolverWorkspace ws;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value());
  }
}
BENCHMARK(BM_FusedMassEstimationSharedWeb)->Unit(benchmark::kMillisecond);

// ---- Parallel Jacobi: fresh pool per solve vs. workspace-cached pool. ----

void BM_ParallelJacobiFreshPool(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const JumpVector v = JumpVector::Uniform(g.num_nodes());
  auto opt = PerfOptions();
  opt.num_threads = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    // A fresh workspace per solve spawns (and joins) a fresh pool each
    // time — the seed solver's behavior.
    pagerank::SolverWorkspace ws;
    auto r = pagerank::ComputePageRank(g, v, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().scores);
  }
}
BENCHMARK(BM_ParallelJacobiFreshPool)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ParallelJacobiWorkspace(benchmark::State& state) {
  const WebGraph& g = PerfGraph();
  const JumpVector v = JumpVector::Uniform(g.num_nodes());
  auto opt = PerfOptions();
  opt.num_threads = static_cast<uint32_t>(state.range(0));
  pagerank::SolverWorkspace ws(opt.num_threads);
  for (auto _ : state) {
    auto r = pagerank::ComputePageRank(g, v, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().scores);
  }
}
BENCHMARK(BM_ParallelJacobiWorkspace)
    ->Arg(2)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond);

pagerank::SolverOptions Options(pagerank::Method method) {
  pagerank::SolverOptions opt;
  opt.method = method;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  return opt;
}

void BM_PageRankJacobi(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kJacobi));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
  state.counters["edges"] = static_cast<double>(web.graph.num_edges());
}
BENCHMARK(BM_PageRankJacobi)->Unit(benchmark::kMillisecond);

void BM_PageRankGaussSeidel(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kGaussSeidel));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
}
BENCHMARK(BM_PageRankGaussSeidel)->Unit(benchmark::kMillisecond);

void BM_PageRankPowerIteration(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kPowerIteration));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
}
BENCHMARK(BM_PageRankPowerIteration)->Unit(benchmark::kMillisecond);

void BM_MassEstimation(benchmark::State& state) {
  const auto& web = SharedWeb();
  auto good_core = web.AssembledGoodCore();
  core::SpamMassOptions options;
  options.solver = Options(pagerank::Method::kGaussSeidel);
  for (auto _ : state) {
    auto r = core::EstimateSpamMass(web.graph, good_core, options);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().relative_mass);
  }
}
BENCHMARK(BM_MassEstimation)->Unit(benchmark::kMillisecond);

void BM_SolverToleranceSweep(benchmark::State& state) {
  const auto& web = SharedWeb();
  pagerank::SolverOptions opt = Options(pagerank::Method::kGaussSeidel);
  opt.tolerance = std::pow(10.0, -state.range(0));
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(web.graph, opt);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().scores);
  }
}
BENCHMARK(BM_SolverToleranceSweep)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
