// E11 (performance half): google-benchmark timings of the PageRank solver
// suite on synthetic webs — the Section 2.2 claim that linear-system
// solvers (Jacobi / Gauss-Seidel) are "regularly faster than the
// algorithms available for solving eigensystems (power iterations)", plus
// the cost of the full mass-estimation step (two PageRank solves).

#include <benchmark/benchmark.h>

#include <cmath>

#include "core/spam_mass.h"
#include "pagerank/solver.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

const synth::SyntheticWeb& SharedWeb() {
  static synth::SyntheticWeb* web = [] {
    auto r = synth::GenerateWeb(synth::TinyScenario(3));
    CHECK_OK(r.status());
    return new synth::SyntheticWeb(std::move(r.value()));
  }();
  return *web;
}

pagerank::SolverOptions Options(pagerank::Method method) {
  pagerank::SolverOptions opt;
  opt.method = method;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  return opt;
}

void BM_PageRankJacobi(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kJacobi));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
  state.counters["edges"] = static_cast<double>(web.graph.num_edges());
}
BENCHMARK(BM_PageRankJacobi)->Unit(benchmark::kMillisecond);

void BM_PageRankGaussSeidel(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kGaussSeidel));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
}
BENCHMARK(BM_PageRankGaussSeidel)->Unit(benchmark::kMillisecond);

void BM_PageRankPowerIteration(benchmark::State& state) {
  const auto& web = SharedWeb();
  int iterations = 0;
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(
        web.graph, Options(pagerank::Method::kPowerIteration));
    CHECK_OK(r.status());
    iterations = r.value().iterations;
    benchmark::DoNotOptimize(r.value().scores);
  }
  state.counters["sweeps"] = iterations;
}
BENCHMARK(BM_PageRankPowerIteration)->Unit(benchmark::kMillisecond);

void BM_MassEstimation(benchmark::State& state) {
  const auto& web = SharedWeb();
  auto good_core = web.AssembledGoodCore();
  core::SpamMassOptions options;
  options.solver = Options(pagerank::Method::kGaussSeidel);
  for (auto _ : state) {
    auto r = core::EstimateSpamMass(web.graph, good_core, options);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().relative_mass);
  }
}
BENCHMARK(BM_MassEstimation)->Unit(benchmark::kMillisecond);

void BM_SolverToleranceSweep(benchmark::State& state) {
  const auto& web = SharedWeb();
  pagerank::SolverOptions opt = Options(pagerank::Method::kGaussSeidel);
  opt.tolerance = std::pow(10.0, -state.range(0));
  for (auto _ : state) {
    auto r = pagerank::ComputeUniformPageRank(web.graph, opt);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().scores);
  }
}
BENCHMARK(BM_SolverToleranceSweep)
    ->Arg(6)
    ->Arg(8)
    ->Arg(10)
    ->Arg(12)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

BENCHMARK_MAIN();
