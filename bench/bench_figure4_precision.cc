// E7: reproduces Figure 4 — precision of mass-based detection as a
// function of the relative-mass threshold τ, with the anomalous hosts
// counted as false positives ("included") and disregarded ("excluded"),
// plus the total number of hosts in T above each threshold (the counts
// along the top of the paper's figure). Paper shape: ~100% precision at
// τ = 0.98 excluding anomalies, 94% at τ = 0.91 with ~100k hosts, never
// below the base spam rate at τ = 0.

#include <cstdio>

#include "bench_common.h"
#include "eval/grouping.h"
#include "eval/precision.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  std::printf("== Figure 4: detection precision vs relative-mass threshold ==\n\n");
  auto groups = eval::SplitIntoGroups(r.sample, 20);
  auto thresholds = eval::ThresholdsFromGroups(groups);
  auto curve = eval::ComputePrecisionCurve(r.sample, thresholds,
                                           &r.estimates, options.scaled_rho);
  util::TextTable table;
  table.SetHeader({"tau", "hosts in T above", "sample spam", "sample good",
                   "sample anomalous", "prec (anom. incl.)",
                   "prec (anom. excl.)"});
  for (const auto& point : curve) {
    table.AddRow({util::FormatDouble(point.threshold, 2),
                  util::FormatWithCommas(point.hosts_above),
                  std::to_string(point.sample_spam),
                  std::to_string(point.sample_good),
                  std::to_string(point.sample_anomalous),
                  util::FormatDouble(point.precision_including_anomalous, 3),
                  util::FormatDouble(point.precision_excluding_anomalous,
                                     3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper reference points: prec(0.98) ~ 1.0 excluding anomalies,\n"
      "prec(0.91) ~ 0.94 with ~100,000 qualifying hosts, and the curve\n"
      "never drops below the ~48%% base rate of spam among positive-mass\n"
      "hosts. The gap between the two curves is entirely attributable to\n"
      "core-coverage anomalies (Section 4.4.2 shows how to fix them).\n");
  return 0;
}
