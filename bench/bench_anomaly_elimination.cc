// E10: reproduces the Section 4.4.2 anomaly-elimination experiment. The
// paper added 12 identifiable Alibaba hub hosts to the 504,150-host core
// and recomputed: the Alibaba sample hosts' relative mass collapsed
// (0.9989 -> 0.5298, 0.9923 -> 0.3488, others below 0.3) while everything
// else barely moved (mean absolute change 0.0298 among positive-mass
// hosts). We do the same with the synthetic "cn-mall" community's hubs.

#include <cstdio>

#include <algorithm>
#include <cmath>

#include "bench_common.h"
#include "core/good_core.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  uint32_t mall = r.web.RegionIndex("cn-mall");
  CHECK_LT(mall, r.web.config.regions.size());
  std::vector<graph::NodeId> hubs;
  for (graph::NodeId x = 0; x < r.web.graph.num_nodes(); ++x) {
    if (r.web.region_of_node[x] == mall && r.web.is_hub[x]) hubs.push_back(x);
  }
  std::printf("== Section 4.4.2: eliminating a coverage anomaly ==\n\n");
  std::printf("adding %zu identifiable 'cn-mall' hub hosts to the core\n"
              "(paper: 12 alibaba.com hub hosts such as china.alibaba.com)\n\n",
              hubs.size());

  auto reestimate = eval::ReestimateWithCore(
      r, core::ExpandCore(r.good_core, hubs), options);
  CHECK_OK(reestimate.status());
  const core::MassEstimates& fixed = reestimate.value().estimates;

  // Mean relative mass of the community's high-PageRank hosts, before and
  // after, plus the collateral movement of everyone else.
  double before_sum = 0, after_sum = 0;
  uint64_t mall_count = 0;
  double drift_sum = 0;
  uint64_t drift_count = 0;
  for (graph::NodeId x : r.filtered) {
    if (r.web.region_of_node[x] == mall) {
      before_sum += r.estimates.relative_mass[x];
      after_sum += fixed.relative_mass[x];
      ++mall_count;
    } else if (r.estimates.relative_mass[x] > 0) {
      drift_sum += std::abs(fixed.relative_mass[x] -
                            r.estimates.relative_mass[x]);
      ++drift_count;
    }
  }
  util::TextTable table;
  table.SetHeader({"metric", "before", "after", "paper"});
  table.AddRow({"mean m~ of community hosts in T",
                util::FormatDouble(mall_count ? before_sum / mall_count : 0, 3),
                util::FormatDouble(mall_count ? after_sum / mall_count : 0, 3),
                "0.99 -> 0.3-0.5"});
  table.AddRow({"mean |delta m~| of other positive-mass hosts", "-",
                util::FormatDouble(drift_count ? drift_sum / drift_count : 0,
                                   4),
                "0.0298"});
  std::printf("%s\n", table.ToString().c_str());

  // The most-boosted community hosts individually (the paper lists the two
  // group-20 Alibaba hosts explicitly).
  std::vector<graph::NodeId> mall_hosts;
  for (graph::NodeId x : r.filtered) {
    if (r.web.region_of_node[x] == mall) mall_hosts.push_back(x);
  }
  std::sort(mall_hosts.begin(), mall_hosts.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return r.estimates.relative_mass[a] >
                     r.estimates.relative_mass[b];
            });
  util::TextTable host_table;
  host_table.SetHeader({"host", "m~ before", "m~ after"});
  for (size_t i = 0; i < mall_hosts.size() && i < 8; ++i) {
    graph::NodeId x = mall_hosts[i];
    host_table.AddRow({std::string(r.web.graph.HostName(x)),
                       util::FormatDouble(r.estimates.relative_mass[x], 4),
                       util::FormatDouble(fixed.relative_mass[x], 4)});
  }
  std::printf("top community hosts by pre-fix relative mass:\n%s\n",
              host_table.ToString().c_str());
  std::printf(
      "shape check: a handful of core additions collapses the whole\n"
      "community's relative mass while leaving the rest of the web nearly\n"
      "untouched — core anomalies are cheap to fix incrementally.\n");
  return 0;
}
