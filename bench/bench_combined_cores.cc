// Section 3.4 extension experiment: combining the good-core estimate M̃
// with a spam-core estimate M̂ = PR(v^Ṽ⁻). The spam core is harvested by
// the detector itself (high-τ candidates), so no manual black-list is
// needed. Reports ranking quality (AUC over T) and precision/recall of the
// good-only, spam-only and combined estimators.

#include <cstdio>

#include "bench_common.h"
#include "core/bootstrap.h"
#include "eval/metrics.h"
#include "util/table.h"

using namespace spammass;

namespace {

/// AUC of a mass-estimate ranking restricted to the ρ-filtered set.
double AucOverT(const core::MassEstimates& estimates,
                const std::vector<graph::NodeId>& filtered,
                const core::LabelStore& labels) {
  std::vector<eval::ScoredExample> examples;
  examples.reserve(filtered.size());
  for (graph::NodeId x : filtered) {
    examples.push_back({estimates.relative_mass[x], labels.IsSpam(x)});
  }
  return eval::ComputeAuc(examples);
}

struct PrecisionRecall {
  double precision = 0;
  double recall = 0;
};

PrecisionRecall DetectorQuality(const core::MassEstimates& estimates,
                                const std::vector<graph::NodeId>& filtered,
                                const core::LabelStore& labels, double tau) {
  core::DetectorConfig config;
  config.relative_mass_threshold = tau;
  auto candidates = core::DetectSpamCandidates(estimates, config);
  uint64_t tp = 0;
  for (const auto& c : candidates) tp += labels.IsSpam(c.node);
  uint64_t total_spam = 0;
  for (graph::NodeId x : filtered) total_spam += labels.IsSpam(x);
  PrecisionRecall pr;
  pr.precision = candidates.empty()
                     ? 0
                     : static_cast<double>(tp) / candidates.size();
  pr.recall = total_spam ? static_cast<double>(tp) / total_spam : 0;
  return pr;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv, /*default_scale=*/0.25);
  auto r = bench::MustRunPipeline(options);

  core::BootstrapOptions bootstrap;
  bootstrap.mass = options.mass;
  bootstrap.mass.gamma = r.gamma_used;
  bootstrap.seed_detector.relative_mass_threshold = 0.99;
  bootstrap.seed_detector.scaled_pagerank_threshold = options.scaled_rho;
  auto result =
      core::BootstrapSpamCore(r.web.graph, r.good_core, bootstrap);
  CHECK_OK(result.status());
  const core::BootstrapResult& b = result.value();

  uint64_t seed_true_spam = 0;
  for (graph::NodeId x : b.spam_core) {
    seed_true_spam += r.web.labels.IsSpam(x);
  }
  std::printf(
      "== Section 3.4: combining good-core and harvested spam-core ==\n\n"
      "harvested spam core: %zu hosts, %.1f%% true spam (tau = 0.99 seed)\n\n",
      b.spam_core.size(),
      b.spam_core.empty() ? 0.0 : 100.0 * seed_true_spam / b.spam_core.size());

  util::TextTable table;
  table.SetHeader({"estimator", "AUC over T", "prec@0.9", "recall@0.9",
                   "prec@0.5", "recall@0.5"});
  struct Variant {
    const char* name;
    const core::MassEstimates* estimates;
  };
  for (const Variant& v :
       {Variant{"good core only (M~)", &b.from_good_core},
        Variant{"spam core only (M^)", &b.from_spam_core},
        Variant{"combined (average)", &b.combined}}) {
    auto q90 = DetectorQuality(*v.estimates, r.filtered, r.web.labels, 0.9);
    auto q50 = DetectorQuality(*v.estimates, r.filtered, r.web.labels, 0.5);
    table.AddRow({v.name,
                  util::FormatDouble(
                      AucOverT(*v.estimates, r.filtered, r.web.labels), 3),
                  util::FormatDouble(q90.precision, 3),
                  util::FormatDouble(q90.recall, 3),
                  util::FormatDouble(q50.precision, 3),
                  util::FormatDouble(q50.recall, 3)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "shape: the spam-core-only estimator is precise on re-finding the\n"
      "seeded structures but blind to unseeded farms (low recall); the\n"
      "combination keeps the good-core estimator's coverage while damping\n"
      "its anomaly-driven false positives (Section 3.4's suggestion).\n");
  return 0;
}
