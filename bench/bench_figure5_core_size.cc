// E8: reproduces Figure 5 — detection precision for good cores of varying
// size and coverage: the full core, uniform 10% / 1% / 0.1% subsamples,
// and a single-region ("Italian educational hosts only") core. Paper
// shape: performance degrades gradually with uniform shrinking (10% is
// nearly as good as 100%), but the narrow regional core is consistently
// the worst — breadth of coverage beats size.

#include <cstdio>

#include "bench_common.h"
#include "core/good_core.h"
#include "eval/grouping.h"
#include "eval/precision.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);
  util::Rng rng(options.seed + 17);

  auto groups = eval::SplitIntoGroups(r.sample, 20);
  auto thresholds = eval::ThresholdsFromGroups(groups);

  struct Variant {
    std::string name;
    std::vector<graph::NodeId> core;
  };
  std::vector<Variant> variants;
  variants.push_back({"100% core", r.good_core});
  variants.push_back({"10% core", core::SubsampleCore(r.good_core, 0.1, &rng)});
  variants.push_back({"1% core", core::SubsampleCore(r.good_core, 0.01, &rng)});
  variants.push_back(
      {"0.1% core", core::SubsampleCore(r.good_core, 0.001, &rng)});
  uint32_t it_region = r.web.RegionIndex("it");
  variants.push_back({".it core", core::FilterCoreByRegion(
                                      r.good_core, r.web.region_of_node,
                                      it_region)});

  std::printf("== Figure 5: precision for various cores ==\n\n");
  util::TextTable table;
  std::vector<std::string> header = {"core", "|core|"};
  for (double tau : thresholds) {
    header.push_back("t=" + util::FormatDouble(tau, 2));
  }
  table.SetHeader(header);
  for (const auto& variant : variants) {
    if (variant.core.empty()) {
      std::printf("skipping empty core variant '%s'\n", variant.name.c_str());
      continue;
    }
    auto sample = eval::ReestimateWithCore(r, variant.core, options);
    CHECK_OK(sample.status());
    auto curve =
        eval::ComputePrecisionCurve(sample.value().sample, thresholds);
    std::vector<std::string> row = {variant.name,
                                    std::to_string(variant.core.size())};
    for (const auto& point : curve) {
      row.push_back(
          util::FormatDouble(point.precision_including_anomalous, 3));
    }
    table.AddRow(row);
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper shape: 100%% ~ 10%% >> 1%% > 0.1%%, and the regional .it core\n"
      "is worse than a uniform core 19x smaller — the core's breadth of\n"
      "coverage matters more than its sheer size (Section 4.5). Precision\n"
      "here is the anomalies-included variant, as in the paper's Figure 5.\n");
  return 0;
}
