// Overhead of the observability layer (src/obs) on the hot solver path.
//
// The PR 5 acceptance criterion is that telemetry in its default state —
// metrics counters compiled in, thread-pool hooks installed, tracing
// disabled — costs ≤2% on the parallel Jacobi sweep relative to the seed
// configuration (no hooks installed at all). The paired benches here feed
// tools/bench_to_json.py --suite obs, which derives the overhead ratios
// into BENCH_obs.json:
//
//   BM_JacobiSweepNoHooks/<T>         seed baseline: hooks uninstalled
//   BM_JacobiSweepObsDisabled/<T>     hooks installed, tracing off
//   BM_JacobiSweepTracingEnabled/<T>  hooks installed, tracing on
//   BM_JacobiSweepSampler10ms/<T>     + resource sampler at 10 ms
//   BM_JacobiSweepSampler100ms/<T>    + resource sampler at 100 ms (the
//                                     CLI default)
//
// plus micro-op costs of the primitives themselves (counter increment,
// histogram observe, disabled/enabled span, perf-counter scope, one
// /proc resource sample).

#include <benchmark/benchmark.h>

#include "bench_json_main.h"

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "obs/metrics.h"
#include "obs/perf_counters.h"
#include "obs/resource.h"
#include "obs/trace.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::WebGraph;

/// Random web sized so a parallel sweep issues enough pool tasks for the
/// hook overhead to be visible if it exists, while one solve still stays
/// in benchmark-friendly territory.
const WebGraph& ObsGraph() {
  static WebGraph* graph = [] {
    constexpr uint32_t n = 100'000;
    constexpr uint32_t m = 1'000'000;
    util::Rng rng(97);
    graph::GraphBuilder b(n);
    for (uint32_t e = 0; e < m; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
      auto v = static_cast<NodeId>(rng.UniformIndex(n));
      if (u != v) b.AddEdge(u, v);
    }
    return new WebGraph(b.Build());
  }();
  return *graph;
}

pagerank::SolverOptions ObsOptions(uint32_t threads) {
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-8;
  opt.max_iterations = 200;
  opt.num_threads = threads;
  return opt;
}

void RunJacobiSolve(benchmark::State& state) {
  const WebGraph& g = ObsGraph();
  const pagerank::JumpVector v =
      pagerank::JumpVector::Uniform(g.num_nodes());
  const auto opt = ObsOptions(static_cast<uint32_t>(state.range(0)));
  pagerank::SolverWorkspace ws(opt.num_threads);
  for (auto _ : state) {
    auto r = pagerank::ComputePageRank(g, v, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value().scores);
  }
}

// ---- Paired solve benches: the overhead-ratio numerators/denominators. --

void BM_JacobiSweepNoHooks(benchmark::State& state) {
  obs::StopTracing();
  util::SetThreadPoolHooks(nullptr);  // seed configuration
  RunJacobiSolve(state);
}
BENCHMARK(BM_JacobiSweepNoHooks)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_JacobiSweepObsDisabled(benchmark::State& state) {
  obs::StopTracing();
  obs::InstallThreadPoolTelemetry();  // default telemetry state
  RunJacobiSolve(state);
}
BENCHMARK(BM_JacobiSweepObsDisabled)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_JacobiSweepTracingEnabled(benchmark::State& state) {
  obs::StartTracing();
  RunJacobiSolve(state);
  obs::StopTracing();
}
BENCHMARK(BM_JacobiSweepTracingEnabled)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// The sampler thread competes for nothing the sweep uses (it reads /proc
// and touches registry shards the solver threads do not), so its overhead
// should be indistinguishable from ObsDisabled even at an aggressive
// period; bench_to_json.py derives sampler ratios vs the NoHooks seed
// under the same ≤1.02 budget.

void BM_JacobiSweepSampler10ms(benchmark::State& state) {
  obs::StopTracing();
  obs::InstallThreadPoolTelemetry();
  obs::ResourceSampler sampler(obs::ResourceSampler::Options{10});
  sampler.Start();
  RunJacobiSolve(state);
  sampler.Stop();
}
BENCHMARK(BM_JacobiSweepSampler10ms)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

void BM_JacobiSweepSampler100ms(benchmark::State& state) {
  obs::StopTracing();
  obs::InstallThreadPoolTelemetry();
  obs::ResourceSampler sampler(obs::ResourceSampler::Options{100});
  sampler.Start();
  RunJacobiSolve(state);
  sampler.Stop();
}
BENCHMARK(BM_JacobiSweepSampler100ms)->Arg(2)->Arg(4)->Unit(
    benchmark::kMillisecond);

// ---- Primitive micro-ops. ----------------------------------------------

void BM_CounterIncrement(benchmark::State& state) {
  obs::Counter* counter =
      obs::MetricsRegistry::Global().GetCounter("bench.counter");
  for (auto _ : state) {
    counter->Increment();
  }
}
BENCHMARK(BM_CounterIncrement);

void BM_HistogramObserve(benchmark::State& state) {
  obs::Histogram* histogram = obs::MetricsRegistry::Global().GetHistogram(
      "bench.histogram", {1, 2, 5, 10, 20, 50, 100, 200, 400, 800});
  int64_t value = 0;
  for (auto _ : state) {
    histogram->Observe(value);
    value = (value + 37) % 1000;
  }
}
BENCHMARK(BM_HistogramObserve);

void BM_ScopedSpanDisabled(benchmark::State& state) {
  obs::StopTracing();
  for (auto _ : state) {
    SPAMMASS_TRACE_SPAN("bench.span", "arg", 1);
  }
}
BENCHMARK(BM_ScopedSpanDisabled);

void BM_ScopedSpanEnabled(benchmark::State& state) {
  obs::StartTracing();
  for (auto _ : state) {
    SPAMMASS_TRACE_SPAN("bench.span", "arg", 1);
  }
  obs::StopTracing();
}
BENCHMARK(BM_ScopedSpanEnabled);

void BM_PerfCounterScope(benchmark::State& state) {
  // Two group-read syscalls per iteration on supporting hosts; a pair of
  // early-outs where perf_event_open is unavailable. Label the run so the
  // JSON records which cost this machine measured.
  state.SetLabel(obs::PerfCountersSupported() ? "hw" : "unsupported");
  for (auto _ : state) {
    obs::ScopedPerfCounters scope;
    benchmark::DoNotOptimize(scope.Stop());
  }
}
BENCHMARK(BM_PerfCounterScope);

void BM_ResourceSampleOnce(benchmark::State& state) {
  // Full /proc read + parse + registry publish — the per-period cost of
  // the background sampler.
  for (auto _ : state) {
    obs::PublishResourceUsage(obs::SampleResourceUsage());
  }
}
BENCHMARK(BM_ResourceSampleOnce);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
