// Shared plumbing for the experiment bench binaries: command-line scale /
// seed handling and the standard pipeline invocation. Each bench binary
// reproduces one table or figure of the paper; see DESIGN.md for the
// experiment index and EXPERIMENTS.md for paper-vs-measured records.

#ifndef SPAMMASS_BENCH_BENCH_COMMON_H_
#define SPAMMASS_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <cstdlib>

#include "eval/experiment.h"
#include "util/logging.h"
#include "util/timer.h"

namespace spammass::bench {

/// Parses "[scale] [seed]" from argv. The default scale keeps every bench
/// under roughly a minute on a laptop core while preserving the paper's
/// distributional regime.
inline eval::PipelineOptions OptionsFromArgs(int argc, char** argv,
                                             double default_scale = 0.5) {
  eval::PipelineOptions options;
  options.scale = argc > 1 ? std::atof(argv[1]) : default_scale;
  options.seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;
  return options;
}

/// Runs the standard pipeline, aborting the bench on failure (benches are
/// experiment scripts; there is nothing sensible to continue with).
inline eval::PipelineResult MustRunPipeline(
    const eval::PipelineOptions& options) {
  util::WallTimer timer;
  std::printf("# pipeline: scale %.2f, seed %llu\n", options.scale,
              static_cast<unsigned long long>(options.seed));
  auto result = eval::RunPipeline(options);
  CHECK_OK(result.status());
  std::printf("# %u hosts, %llu edges, |core| = %zu, gamma = %.3f, "
              "|T| = %zu, sample = %zu (%.1fs)\n\n",
              result.value().web.graph.num_nodes(),
              static_cast<unsigned long long>(
                  result.value().web.graph.num_edges()),
              result.value().good_core.size(), result.value().gamma_used,
              result.value().filtered.size(),
              result.value().sample.hosts.size(), timer.Seconds());
  return std::move(result.value());
}

}  // namespace spammass::bench

#endif  // SPAMMASS_BENCH_BENCH_COMMON_H_
