// E3 + E4: reproduces the dataset characterization of Sections 4.1 and 4.3
// on the synthetic crawl:
//   * host/edge counts and the no-inlink / no-outlink / isolated fractions
//     (paper: 73.3M hosts, 979M edges, 35% / 66.4% / 25.8%);
//   * the PageRank distribution facts: ~91% of hosts below twice the
//     minimal score, and a small elite 100x above it (power law).

#include <cstdio>

#include "bench_common.h"
#include "graph/graph_stats.h"
#include "pagerank/solver.h"
#include "util/power_law.h"
#include "util/string_util.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  std::printf("== Section 4.1: data set structure ==\n\n");
  auto stats = graph::ComputeGraphStats(r.web.graph);
  util::TextTable table;
  table.SetHeader({"metric", "measured", "paper (Yahoo! 2004)"});
  table.AddRow({"hosts", util::FormatWithCommas(stats.num_nodes),
                "73,300,000"});
  table.AddRow({"edges", util::FormatWithCommas(stats.num_edges),
                "979,000,000"});
  table.AddRow({"no inlinks",
                util::FormatDouble(100 * stats.FractionNoInlinks(), 1) + "%",
                "35%"});
  table.AddRow({"no outlinks",
                util::FormatDouble(100 * stats.FractionNoOutlinks(), 1) + "%",
                "66.4%"});
  table.AddRow({"isolated",
                util::FormatDouble(100 * stats.FractionIsolated(), 1) + "%",
                "25.8%"});
  std::printf("%s\n", table.ToString().c_str());

  std::printf("== Section 4.3: PageRank score distribution ==\n\n");
  auto scaled = pagerank::ScaledScores(r.estimates.pagerank,
                                       r.estimates.damping);
  uint64_t below2 = 0, above100 = 0;
  for (double p : scaled) {
    if (p < 2.0) ++below2;
    if (p >= 100.0) ++above100;
  }
  util::TextTable pr_table;
  pr_table.SetHeader({"metric", "measured", "paper"});
  pr_table.AddRow(
      {"hosts with scaled PR < 2",
       util::FormatDouble(100.0 * below2 / scaled.size(), 1) + "%", "91.1%"});
  pr_table.AddRow({"hosts with scaled PR >= 100",
                   util::FormatWithCommas(above100),
                   "~64,000 (0.09% of hosts)"});
  auto fit = util::FitPowerLaw(scaled, 2.0);
  pr_table.AddRow({"PageRank power-law exponent (tail >= 2)",
                   util::FormatDouble(-fit.alpha, 2), "power law (~ -2.1)"});
  std::printf("%s\n", pr_table.ToString().c_str());
  std::printf(
      "shape check: the filtered set T (scaled PR >= 10) holds %zu hosts —\n"
      "a small fraction of the web, as the paper argues spam targets with\n"
      "large PageRank must be.\n",
      r.filtered.size());
  return 0;
}
