// E16 (extension): the robustness argument of the paper's conclusion —
// "knowledgeable spammers could attempt to collect a large number of links
// from good nodes", and that is the only evasion that works. This bench
// fixes a farm (100 boosters) inside a good background web and sweeps the
// number of hijacked good links pointing at the target, reporting the
// target's PageRank, relative mass, and detector verdicts. Evasion demands
// so many genuine good links that the boosting itself becomes redundant —
// the expired-domain regime (Section 4.4.3, observation 2).

#include <cstdio>
#include <cstdlib>

#include "core/spam_mass.h"
#include "graph/graph_builder.h"
#include "pagerank/solver.h"
#include "synth/spam_farm.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/table.h"

using namespace spammass;

namespace {

constexpr uint32_t kBackground = 4000;
constexpr uint32_t kBoosters = 100;

struct TrialResult {
  double scaled_pagerank = 0;
  double relative_mass = 0;
  double good_link_share = 0;  // fraction of p_target contributed by good
};

/// Builds background + farm + `hijacked` good->target links; returns the
/// target's metrics.
TrialResult RunTrial(uint32_t hijacked, uint64_t seed) {
  util::Rng rng(seed);
  graph::GraphBuilder builder;
  for (uint32_t i = 0; i < kBackground; ++i) {
    builder.AddNode("good" + std::to_string(i) + ".example.org");
  }
  // Scale-free-ish background: chain plus random chords.
  for (uint32_t i = 0; i < kBackground; ++i) {
    builder.AddEdge(i, (i + 1) % kBackground);
    for (int e = 0; e < 3; ++e) {
      auto v = static_cast<graph::NodeId>(rng.UniformIndex(kBackground));
      if (v != i) builder.AddEdge(i, v);
    }
  }
  synth::FarmSpec spec;
  spec.num_boosters = kBoosters;
  synth::FarmInfo farm =
      synth::BuildSpamFarm(&builder, spec, "target.spam.biz", "b", &rng);
  for (uint32_t h = 0; h < hijacked; ++h) {
    auto g = static_cast<graph::NodeId>(rng.UniformIndex(kBackground));
    builder.AddEdge(g, farm.target);
  }
  graph::WebGraph web = builder.Build();

  // Good core: a uniform 5% slice of the background.
  std::vector<graph::NodeId> good_core;
  for (graph::NodeId x = 0; x < kBackground; x += 20) good_core.push_back(x);

  core::SpamMassOptions options;
  options.solver.method = pagerank::Method::kGaussSeidel;
  options.solver.tolerance = 1e-12;
  options.solver.max_iterations = 600;
  options.gamma = static_cast<double>(kBackground) / web.num_nodes();
  auto est = core::EstimateSpamMass(web, good_core, options);
  CHECK_OK(est.status());

  TrialResult out;
  const double scale = static_cast<double>(web.num_nodes()) /
                       (1.0 - est.value().damping);
  out.scaled_pagerank = est.value().pagerank[farm.target] * scale;
  out.relative_mass = est.value().relative_mass[farm.target];
  // Actual good contribution share (ground truth): everything but the farm.
  core::LabelStore labels(web.num_nodes());
  labels.Set(farm.target, core::NodeLabel::kSpam);
  for (graph::NodeId b : farm.boosters) labels.Set(b, core::NodeLabel::kSpam);
  auto actual = core::ComputeActualSpamMass(web, labels, options.solver);
  CHECK_OK(actual.status());
  out.good_link_share =
      1.0 - actual.value().relative_mass[farm.target];
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 42;
  std::printf(
      "== Evasion study: hijacked good links vs detectability ==\n"
      "farm: %u boosters (recirculating); background: %u good hosts;\n"
      "core: uniform 5%% of the background.\n\n",
      kBoosters, kBackground);
  util::TextTable table;
  table.SetHeader({"hijacked good links", "target scaled PR",
                   "rel mass m~", "good share of PR", "tau=0.98", "tau=0.9"});
  for (uint32_t hijacked : {0u, 2u, 8u, 32u, 128u, 512u}) {
    TrialResult t = RunTrial(hijacked, seed);
    table.AddRow({std::to_string(hijacked),
                  util::FormatDouble(t.scaled_pagerank, 1),
                  util::FormatDouble(t.relative_mass, 3),
                  util::FormatDouble(t.good_link_share, 3),
                  t.relative_mass >= 0.98 ? "DETECTED" : "missed",
                  t.relative_mass >= 0.9 ? "DETECTED" : "missed"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "the exact boundary: the detector at threshold tau misses a target\n"
      "precisely when genuine good links contribute more than (1 - tau) of\n"
      "its PageRank (m~ is the spam share). Evasion therefore costs real\n"
      "organic endorsement in proportion to the PageRank being faked —\n"
      "the paper's conclusion that informed spammers cannot cheaply tamper\n"
      "with the method, with the expired-domain false-negative regime\n"
      "(Section 4.4.3) as the boundary case.\n");
  return 0;
}
