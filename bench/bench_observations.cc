// E12: reproduces the three observations of Section 4.4.3 about the
// composition of the positive-mass population:
//   1. isolated cliques — good communities (gaming / web-design rings)
//      weakly connected to the core show up with positive mass;
//   2. expired domains — spam whose inlinks come from good hosts gets
//      small or negative mass and escapes detection (false negatives);
//   3. good-core members receive very large negative mass from the biased
//      scaled jump vector.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);
  const auto& est = r.estimates;
  const double scale = static_cast<double>(est.pagerank.size()) /
                       (1.0 - est.damping);

  std::printf("== Section 4.4.3 observation 1: isolated cliques ==\n\n");
  util::TextTable clique_table;
  clique_table.SetHeader(
      {"clique center", "members", "scaled PR", "relative mass"});
  uint64_t high_mass = 0;
  for (size_t q = 0; q < r.web.isolated_cliques.size(); ++q) {
    graph::NodeId center = r.web.isolated_cliques[q][0];
    if (est.relative_mass[center] > 0.9) ++high_mass;
    if (q < 6) {
      clique_table.AddRow(
          {std::string(r.web.graph.HostName(center)),
           std::to_string(r.web.isolated_cliques[q].size()),
           util::FormatDouble(est.pagerank[center] * scale, 1),
           util::FormatDouble(est.relative_mass[center], 3)});
    }
  }
  std::printf("%s\n", clique_table.ToString().c_str());
  std::printf(
      "%llu of %zu clique centers have relative mass > 0.9: good hosts in\n"
      "communities the core cannot reach are inherent false positives\n"
      "(paper: ~10%% of positive-mass sample hosts were such cliques).\n\n",
      static_cast<unsigned long long>(high_mass),
      r.web.isolated_cliques.size());

  std::printf("== Observation 2: expired-domain spam ==\n\n");
  util::TextTable expired_table;
  expired_table.SetHeader(
      {"host", "good inlinks", "scaled PR", "relative mass"});
  double max_mass = -1e18;
  for (size_t i = 0; i < r.web.expired_domain_targets.size(); ++i) {
    graph::NodeId t = r.web.expired_domain_targets[i];
    max_mass = std::max(max_mass, est.relative_mass[t]);
    if (i < 6) {
      expired_table.AddRow({std::string(r.web.graph.HostName(t)),
                            std::to_string(r.web.graph.InDegree(t)),
                            util::FormatDouble(est.pagerank[t] * scale, 1),
                            util::FormatDouble(est.relative_mass[t], 3)});
    }
  }
  std::printf("%s\n", expired_table.ToString().c_str());
  std::printf(
      "max relative mass over %zu expired-domain spam hosts: %.3f — all\n"
      "escape the tau = 0.98 detector because good hosts contribute their\n"
      "PageRank; the paper explicitly does not expect to catch these.\n\n",
      r.web.expired_domain_targets.size(), max_mass);

  std::printf("== Observation 3: good-core members ==\n\n");
  std::vector<graph::NodeId> by_mass = r.good_core;
  std::sort(by_mass.begin(), by_mass.end(),
            [&](graph::NodeId a, graph::NodeId b) {
              return est.absolute_mass[a] < est.absolute_mass[b];
            });
  util::TextTable core_table;
  core_table.SetHeader({"core member", "scaled abs mass", "relative mass"});
  for (size_t i = 0; i < by_mass.size() && i < 6; ++i) {
    graph::NodeId x = by_mass[i];
    core_table.AddRow({std::string(r.web.graph.HostName(x)),
                       util::FormatDouble(est.absolute_mass[x] * scale, 1),
                       util::FormatDouble(est.relative_mass[x], 2)});
  }
  std::printf("%s\n", core_table.ToString().c_str());
  uint64_t negative = 0;
  for (graph::NodeId x : r.good_core) negative += est.absolute_mass[x] < 0;
  std::printf(
      "%llu of %zu core members have negative estimated mass (paper: the\n"
      "most negative sample groups consisted of educational/governmental\n"
      "core hosts, a direct artifact of the scaled jump vector w).\n",
      static_cast<unsigned long long>(negative), r.good_core.size());
  return 0;
}
