// Multi-vector (multi-RHS) sweep scaling: how the per-vector cost of a
// fused ComputePageRankMulti falls as k vectors share one CSR traversal
// per sweep, against k independent single-vector solves. The dominant
// solve cost is the graph's memory traffic, so the fused path approaches
// "k vectors for the price of one" until the interleaved iterate stops
// fitting in cache. Emits per-vector millisecond counters so the JSON
// collector can chart the amortization curve.

#include <benchmark/benchmark.h>

#include "bench_json_main.h"

#include <cstdint>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "pagerank/workspace.h"
#include "util/logging.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;

const WebGraph& BenchGraph() {
  static WebGraph* graph = [] {
    constexpr uint32_t n = 100'000;
    constexpr uint32_t m = 1'000'000;
    util::Rng rng(99);
    graph::GraphBuilder b(n);
    for (uint32_t e = 0; e < m; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
      auto v = static_cast<NodeId>(rng.UniformIndex(n));
      if (u != v) b.AddEdge(u, v);
    }
    return new WebGraph(b.Build());
  }();
  return *graph;
}

/// k distinct core jump vectors (disjoint strides, so every lane converges
/// on its own schedule).
std::vector<JumpVector> MakeJumps(uint32_t k) {
  const WebGraph& g = BenchGraph();
  std::vector<JumpVector> jumps;
  for (uint32_t j = 0; j < k; ++j) {
    std::vector<NodeId> core;
    for (NodeId x = j; x < g.num_nodes(); x += 2 * k) core.push_back(x);
    jumps.push_back(JumpVector::Core(g.num_nodes(), core));
  }
  return jumps;
}

pagerank::SolverOptions Options() {
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-10;
  opt.max_iterations = 500;
  return opt;
}

void BM_FusedMultiSolve(benchmark::State& state) {
  const WebGraph& g = BenchGraph();
  const auto k = static_cast<uint32_t>(state.range(0));
  const auto jumps = MakeJumps(k);
  const auto opt = Options();
  pagerank::SolverWorkspace ws;
  for (auto _ : state) {
    auto r = pagerank::ComputePageRankMulti(g, jumps, opt, &ws);
    CHECK_OK(r.status());
    benchmark::DoNotOptimize(r.value());
  }
  state.counters["vectors"] = k;
}
BENCHMARK(BM_FusedMultiSolve)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_IndependentSolves(benchmark::State& state) {
  const WebGraph& g = BenchGraph();
  const auto k = static_cast<uint32_t>(state.range(0));
  const auto jumps = MakeJumps(k);
  const auto opt = Options();
  pagerank::SolverWorkspace ws;
  for (auto _ : state) {
    for (const JumpVector& v : jumps) {
      auto r = pagerank::ComputePageRank(g, v, opt, &ws);
      CHECK_OK(r.status());
      benchmark::DoNotOptimize(r.value().scores);
    }
  }
  state.counters["vectors"] = k;
}
BENCHMARK(BM_IndependentSolves)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace spammass

SPAMMASS_BENCHMARK_MAIN();
