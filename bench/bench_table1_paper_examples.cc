// E1 + E2: reproduces the paper's analytic examples.
//   * Figure 1 (Section 3.1): p_x = (1 + 3c + kc²)(1−c)/n and the spam
//     share (c + kc²)(1−c)/n, swept over k.
//   * Table 1: every feature column for the Figure 2 graph (PageRank,
//     core-based PageRank, actual and estimated absolute/relative mass).
// Expected output matches the paper's printed values to rounding.

#include <cstdio>

#include "core/detector.h"
#include "core/spam_mass.h"
#include "pagerank/contribution.h"
#include "pagerank/solver.h"
#include "synth/paper_graphs.h"
#include "util/logging.h"
#include "util/table.h"

using namespace spammass;

namespace {

constexpr double kC = 0.85;

pagerank::SolverOptions Precise() {
  pagerank::SolverOptions opt;
  opt.damping = kC;
  opt.tolerance = 1e-15;
  opt.max_iterations = 3000;
  return opt;
}

void Figure1Sweep() {
  std::printf("== Figure 1 (Section 3.1): closed-form vs measured ==\n\n");
  util::TextTable table;
  table.SetHeader({"k", "p^_x measured", "p^_x closed form", "spam contrib",
                   "good contrib", "verdict"});
  for (uint32_t k : {0u, 1u, 2u, 3u, 5u, 10u, 100u}) {
    auto fig = synth::MakeFigure1Graph(k);
    auto pr = pagerank::ComputeUniformPageRank(fig.graph, Precise());
    CHECK_OK(pr.status());
    double n = fig.graph.num_nodes();
    auto scaled = pagerank::ScaledScores(pr.value().scores, kC);
    double closed = 1.0 + 3.0 * kC + k * kC * kC;
    auto spam_q = pagerank::ComputeSetContribution(
        fig.graph, fig.labels.SpamNodes(), Precise());
    auto good_q = pagerank::ComputeSetContribution(
        fig.graph, {fig.g0, fig.g1}, Precise());
    CHECK_OK(spam_q.status());
    CHECK_OK(good_q.status());
    // Exclude x's self-contribution to isolate the boosting, and compare
    // the spam-attributable part against the good links' part (the paper
    // labels x spam once the former dominates, i.e. k >= ceil(1/c) = 2).
    double scale = n / (1 - kC);
    double spam_part =
        (spam_q.value().scores[fig.x] - (1 - kC) / n) * scale;
    double good_part = good_q.value().scores[fig.x] * scale;
    table.AddRow({std::to_string(k), util::FormatDouble(scaled[fig.x], 4),
                  util::FormatDouble(closed, 4),
                  util::FormatDouble(spam_part, 3),
                  util::FormatDouble(good_part, 3),
                  spam_part > good_part ? "spam" : "good"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper: the spam part (c + kc^2 scaled) overtakes the good part (2c)\n"
      "once k >= ceil(1/c) = 2, so x should be labeled spam from k = 2 on.\n\n");
}

void Table1() {
  std::printf("== Table 1 (Figure 2 graph, c = 0.85, n = 12) ==\n\n");
  auto fig = synth::MakeFigure2Graph();
  auto pr = pagerank::ComputeUniformPageRank(fig.graph, Precise());
  CHECK_OK(pr.status());
  core::SpamMassOptions options;
  options.solver = Precise();
  options.scale_core_jump = false;  // the worked example uses w = v^core
  auto est = core::EstimateSpamMass(fig.graph, fig.good_core, options);
  CHECK_OK(est.status());
  auto actual =
      core::ComputeActualSpamMass(fig.graph, fig.labels, Precise());
  CHECK_OK(actual.status());

  auto p = pagerank::ScaledScores(pr.value().scores, kC);
  auto p0 = pagerank::ScaledScores(est.value().core_pagerank, kC);
  auto m = pagerank::ScaledScores(actual.value().absolute_mass, kC);
  auto m_est = pagerank::ScaledScores(est.value().absolute_mass, kC);

  const char* names[] = {"x",  "g0", "g1", "g2", "g3", "s0",
                         "s1", "s2", "s3", "s4", "s5", "s6"};
  util::TextTable table;
  table.SetHeader({"node", "PageRank p", "core PR p'", "abs mass M",
                   "est. M~", "rel mass m", "est. m~"});
  for (graph::NodeId i = 0; i < fig.graph.num_nodes(); ++i) {
    table.AddRow({names[i], util::FormatDouble(p[i], 3),
                  util::FormatDouble(p0[i], 3), util::FormatDouble(m[i], 3),
                  util::FormatDouble(m_est[i], 3),
                  util::FormatDouble(actual.value().relative_mass[i], 2),
                  util::FormatDouble(est.value().relative_mass[i], 2)});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "paper row x: p 9.33, p' 2.295, M 6.185, M~ 7.035, m 0.66, m~ 0.75.\n"
      "paper rows g0/g2 show the overestimation of mass for good nodes\n"
      "outside the core (g2: M 0 vs M~ 1.85, m 0 vs m~ 0.69).\n\n");

  // Algorithm 2's worked example (Section 3.6).
  core::DetectorConfig config;
  config.scaled_pagerank_threshold = 1.5;
  config.relative_mass_threshold = 0.5;
  auto candidates = core::DetectSpamCandidates(est.value(), config);
  std::printf("Algorithm 2 with rho=1.5, tau=0.5 labels:");
  for (const auto& c : candidates) std::printf(" %s", names[c.node]);
  std::printf("   (paper: x, s0, and the false positive g2)\n");
}

}  // namespace

int main() {
  Figure1Sweep();
  Table1();
  return 0;
}
