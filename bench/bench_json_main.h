// Shared main() for the google-benchmark perf binaries. Besides the stock
// initialization, it stamps `spammass_build_type` (release/debug, from
// NDEBUG of THIS translation unit) into the benchmark context so
// tools/bench_to_json.py can refuse to publish numbers from a debug
// build. google-benchmark's own `library_build_type` context key reports
// how the *library* was compiled, which can disagree with how the bench
// code itself was compiled — the committed BENCH_solver.json regression
// this guards against.
#ifndef SPAMMASS_BENCH_BENCH_JSON_MAIN_H_
#define SPAMMASS_BENCH_BENCH_JSON_MAIN_H_

#include <benchmark/benchmark.h>

#ifdef NDEBUG
#define SPAMMASS_BENCH_BUILD_TYPE "release"
#else
#define SPAMMASS_BENCH_BUILD_TYPE "debug"
#endif

#define SPAMMASS_BENCHMARK_MAIN()                                          \
  int main(int argc, char** argv) {                                        \
    benchmark::AddCustomContext("spammass_build_type",                     \
                                SPAMMASS_BENCH_BUILD_TYPE);                \
    benchmark::Initialize(&argc, argv);                                    \
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;      \
    benchmark::RunSpecifiedBenchmarks();                                   \
    benchmark::Shutdown();                                                 \
    return 0;                                                              \
  }                                                                        \
  static_assert(true, "require a trailing semicolon")

#endif  // SPAMMASS_BENCH_BENCH_JSON_MAIN_H_
