// E11 (quality half): compares mass-based detection against the baselines
// the paper discusses — the two naive labeling schemes of Section 3.1
// (which need oracle labels of every in-neighbor), TrustRank (Section 5:
// demotion, not detection), and a Fetterly-style degree-outlier detector
// (Section 5: catches regular farms, misses organic-looking spam) — all
// run as registered pipeline detectors over ONE shared context, so every
// method scores the same artifacts and the base PageRank is solved once.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "eval/metrics.h"
#include "core/detector.h"
#include "pipeline/context.h"
#include "pipeline/detector.h"
#include "pipeline/graph_source.h"
#include "util/table.h"

using namespace spammass;

namespace {

struct Score {
  uint64_t tp = 0, fp = 0, fn = 0;
  double Precision() const {
    return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0;
  }
  double Recall() const {
    return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0;
  }
};

Score Evaluate(const std::vector<graph::NodeId>& population,
               const std::vector<bool>& flagged,
               const core::LabelStore& labels) {
  Score s;
  for (graph::NodeId x : population) {
    bool spam = labels.IsSpam(x);
    if (flagged[x] && spam) ++s.tp;
    if (flagged[x] && !spam) ++s.fp;
    if (!flagged[x] && spam) ++s.fn;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv, /*default_scale=*/0.25);

  pipeline::GraphSource source =
      pipeline::GraphSource::Scenario(options.scale, options.seed);
  auto loaded = source.Load();
  CHECK_OK(loaded.status());

  pipeline::PipelineConfig config;
  config.solver = options.mass.solver;
  pipeline::PipelineContext context(loaded.value(), config);

  // Prepare the union of every baseline's needs up front; the forward
  // solves (base PageRank, core PageRank, trust propagation) fuse into one
  // multi-RHS stream.
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  needs.trustrank = true;
  CHECK_OK(context.Prepare(needs));
  const core::MassEstimates& estimates = context.MassEstimates();
  const core::LabelStore& labels = loaded.value().labels();
  const auto population = core::PageRankFilteredNodes(
      estimates, config.detection.scaled_pagerank_threshold);

  util::TextTable table;
  table.SetHeader({"method", "flagged in T", "precision", "recall", "F1",
                   "oracle needed"});
  auto add = [&](const std::string& name, const std::vector<bool>& flagged,
                 const char* oracle) {
    Score s = Evaluate(population, flagged, labels);
    table.AddRow({name, std::to_string(s.tp + s.fp),
                  util::FormatDouble(s.Precision(), 3),
                  util::FormatDouble(s.Recall(), 3),
                  util::FormatDouble(s.F1(), 3), oracle});
  };

  // Registered detectors over the shared context.
  struct Baseline {
    const char* detector;
    const char* display;
    const char* oracle;
  };
  const Baseline baselines[] = {
      {"spam_mass", "spam mass tau=0.98", "good core only"},
      {"naive_scheme1", "naive scheme 1 (majority)", "all in-neighbor labels"},
      {"naive_scheme2", "naive scheme 2 (contribution)",
       "all in-neighbor labels"},
      {"trustrank", "trustrank lowest quartile", "good core only"},
      {"degree_outlier", "degree outliers (Fetterly-style)", "none"},
  };
  for (const Baseline& b : baselines) {
    auto detector = pipeline::DetectorRegistry::Global().Create(b.detector);
    CHECK_OK(detector.status());
    auto output = detector.value()->Run(context);
    CHECK_OK(output.status());
    add(b.display, output.value().flagged, b.oracle);
  }

  // Spam mass at a relaxed threshold (pure function over the cached
  // estimates; no extra solve).
  {
    core::DetectorConfig relaxed = config.detection;
    relaxed.relative_mass_threshold = 0.85;
    auto candidates = core::DetectSpamCandidates(estimates, relaxed);
    std::vector<bool> flagged(context.graph().num_nodes(), false);
    for (const auto& c : candidates) flagged[c.node] = true;
    add("spam mass tau=0.85", flagged, "good core only");
  }

  std::printf(
      "== Baseline comparison on T (scaled PR >= 10) ==\n"
      "   (%llu base PageRank solve shared by %zu methods)\n\n%s\n",
      static_cast<unsigned long long>(context.base_pagerank_solves()),
      sizeof(baselines) / sizeof(baselines[0]) + 1, table.ToString().c_str());

  // Threshold-free ranking quality for the two score-based signals.
  const std::vector<double>& trust = context.TrustRank().trust;
  std::vector<eval::ScoredExample> mass_examples, trust_examples;
  for (graph::NodeId x : population) {
    bool spam = labels.IsSpam(x);
    mass_examples.push_back({estimates.relative_mass[x], spam});
    // Lower trust/PageRank ratio = more suspicious; negate for scoring.
    trust_examples.push_back({-trust[x] / estimates.pagerank[x], spam});
  }
  std::printf("AUC over T: relative mass %.3f, negative trust ratio %.3f\n\n",
              eval::ComputeAuc(mass_examples),
              eval::ComputeAuc(trust_examples));
  std::printf(
      "expected shape (Section 5): spam mass is competitive without any\n"
      "per-neighbor oracle (its false positives are the documented anomaly\n"
      "and clique classes); the naive schemes only see direct in-links;\n"
      "TrustRank separates trusted from untrusted but lumps unpopular good\n"
      "hosts with spam; degree outliers catch only the regularly-shaped\n"
      "farms.\n");
  return 0;
}
