// E11 (quality half): compares mass-based detection against the baselines
// the paper discusses — the two naive labeling schemes of Section 3.1
// (which need oracle labels of every in-neighbor), TrustRank (Section 5:
// demotion, not detection), and a Fetterly-style degree-outlier detector
// (Section 5: catches regular farms, misses organic-looking spam) — all on
// the same synthetic web, scored on the high-PageRank population T.

#include <cstdio>

#include <algorithm>

#include "bench_common.h"
#include "eval/metrics.h"
#include "core/degree_outlier.h"
#include "core/detector.h"
#include "core/naive_schemes.h"
#include "core/trustrank.h"
#include "util/table.h"

using namespace spammass;

namespace {

struct Score {
  uint64_t tp = 0, fp = 0, fn = 0;
  double Precision() const {
    return tp + fp ? static_cast<double>(tp) / (tp + fp) : 0;
  }
  double Recall() const {
    return tp + fn ? static_cast<double>(tp) / (tp + fn) : 0;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r > 0 ? 2 * p * r / (p + r) : 0;
  }
};

Score Evaluate(const std::vector<graph::NodeId>& population,
               const std::vector<bool>& flagged,
               const core::LabelStore& labels) {
  Score s;
  for (graph::NodeId x : population) {
    bool spam = labels.IsSpam(x);
    if (flagged[x] && spam) ++s.tp;
    if (flagged[x] && !spam) ++s.fp;
    if (!flagged[x] && spam) ++s.fn;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv, /*default_scale=*/0.25);
  auto r = bench::MustRunPipeline(options);
  const graph::WebGraph& web = r.web.graph;
  const auto& population = r.filtered;

  util::TextTable table;
  table.SetHeader({"method", "flagged in T", "precision", "recall", "F1",
                   "oracle needed"});
  auto add = [&](const char* name, const std::vector<bool>& flagged,
                 const char* oracle) {
    Score s = Evaluate(population, flagged, r.web.labels);
    table.AddRow({name, std::to_string(s.tp + s.fp),
                  util::FormatDouble(s.Precision(), 3),
                  util::FormatDouble(s.Recall(), 3),
                  util::FormatDouble(s.F1(), 3), oracle});
  };

  // Spam mass at two thresholds.
  for (double tau : {0.98, 0.85}) {
    core::DetectorConfig config;
    config.relative_mass_threshold = tau;
    auto candidates = core::DetectSpamCandidates(r.estimates, config);
    std::vector<bool> flagged(web.num_nodes(), false);
    for (const auto& c : candidates) flagged[c.node] = true;
    std::string name = "spam mass tau=" + util::FormatDouble(tau, 2);
    add(name.c_str(), flagged, "good core only");
  }

  // Naive schemes with full oracle labels.
  add("naive scheme 1 (majority)",
      core::FirstLabelingSchemeAll(web, r.web.labels),
      "all in-neighbor labels");
  auto second =
      core::SecondLabelingSchemeAll(web, r.web.labels, options.mass.solver);
  CHECK_OK(second.status());
  add("naive scheme 2 (contribution)", second.value(),
      "all in-neighbor labels");

  // TrustRank demotion retrofitted as detection: flag the lowest
  // trust/PageRank quartile of T.
  auto trust = core::ComputeTrustRank(web, r.good_core, options.mass.solver);
  CHECK_OK(trust.status());
  {
    std::vector<graph::NodeId> by_ratio = population;
    std::sort(by_ratio.begin(), by_ratio.end(),
              [&](graph::NodeId a, graph::NodeId b) {
                return trust.value()[a] / r.estimates.pagerank[a] <
                       trust.value()[b] / r.estimates.pagerank[b];
              });
    std::vector<bool> flagged(web.num_nodes(), false);
    for (size_t i = 0; i < by_ratio.size() / 4; ++i) {
      flagged[by_ratio[i]] = true;
    }
    add("trustrank lowest quartile", flagged, "good core only");
  }

  // Degree-outlier baseline.
  {
    core::DegreeOutlierConfig config;
    config.min_degree = 3;
    config.min_bucket_size = 30;
    auto outliers = core::DetectDegreeOutliers(web, config);
    add("degree outliers (Fetterly-style)", outliers.suspected, "none");
  }

  std::printf("== Baseline comparison on T (scaled PR >= 10) ==\n\n%s\n",
              table.ToString().c_str());

  // Threshold-free ranking quality for the two score-based signals.
  std::vector<eval::ScoredExample> mass_examples, trust_examples;
  for (graph::NodeId x : population) {
    bool spam = r.web.labels.IsSpam(x);
    mass_examples.push_back({r.estimates.relative_mass[x], spam});
    // Lower trust/PageRank ratio = more suspicious; negate for scoring.
    trust_examples.push_back(
        {-trust.value()[x] / r.estimates.pagerank[x], spam});
  }
  std::printf("AUC over T: relative mass %.3f, negative trust ratio %.3f\n\n",
              eval::ComputeAuc(mass_examples),
              eval::ComputeAuc(trust_examples));
  std::printf(
      "expected shape (Section 5): spam mass is competitive without any\n"
      "per-neighbor oracle (its false positives are the documented anomaly\n"
      "and clique classes); the naive schemes only see direct in-links;\n"
      "TrustRank separates trusted from untrusted but lumps unpopular good\n"
      "hosts with spam; degree outliers catch only the regularly-shaped\n"
      "farms.\n");
  return 0;
}
