// E6: reproduces Figure 3 — the composition (good / spam / anomalous) of
// the 20 relative-mass sample groups, after discarding unknown and
// non-existent hosts. In the paper, spam prevalence grows monotonically
// with relative mass, reaching 80-100% in the top groups, and the gray
// "anomalous" hosts (Alibaba / Brazilian blogs / Polish web) cluster in
// groups 15-20.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "eval/grouping.h"
#include "util/table.h"

using namespace spammass;

int main(int argc, char** argv) {
  auto options = bench::OptionsFromArgs(argc, argv);
  auto r = bench::MustRunPipeline(options);

  std::printf("== Figure 3: sample composition by relative-mass group ==\n\n");
  auto groups = eval::SplitIntoGroups(r.sample, 20);
  util::TextTable table;
  table.SetHeader({"group", "mass range", "evaluated", "good", "anomalous",
                   "spam", "spam %", "bar"});
  for (size_t g = 0; g < groups.size(); ++g) {
    const auto& grp = groups[g];
    std::string bar;
    uint32_t n = grp.EvaluatedSize();
    if (n > 0) {
      int spam_ticks = static_cast<int>(20.0 * grp.spam / n + 0.5);
      int anom_ticks = static_cast<int>(20.0 * grp.anomalous / n + 0.5);
      bar = std::string(spam_ticks, '#') + std::string(anom_ticks, '+') +
            std::string(20 - spam_ticks - anom_ticks > 0
                            ? 20 - spam_ticks - anom_ticks
                            : 0,
                        '.');
    }
    table.AddRow({std::to_string(g + 1),
                  util::FormatDouble(grp.smallest_mass, 2) + " .. " +
                      util::FormatDouble(grp.largest_mass, 2),
                  std::to_string(n), std::to_string(grp.good),
                  std::to_string(grp.anomalous), std::to_string(grp.spam),
                  util::FormatDouble(100 * grp.SpamFraction(), 0) + "%",
                  bar});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "legend: '#' spam, '+' anomalous good (core-coverage anomalies:\n"
      "isolated communities and under-covered regions), '.' plain good.\n"
      "paper shape: spam prevalence rises from ~5%% in the negative-mass\n"
      "groups to 80-100%% in groups 18-20; anomalous hosts concentrate in\n"
      "the top groups and explain most non-spam there.\n");
  return 0;
}
