// Tests for the annotated mutex wrappers (util/mutex.h): mutual exclusion
// under contention, TryLock semantics, and CondVar hand-off. These are the
// primitives every SPAMMASS_GUARDED_BY annotation in the tree leans on.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace spammass::util {
namespace {

struct CounterState {
  Mutex mu;
  int64_t counter SPAMMASS_GUARDED_BY(mu) = 0;
};

TEST(MutexTest, MutualExclusionUnderContention) {
  CounterState state;
  constexpr int kThreads = 4;
  constexpr int kIters = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&state] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(&state.mu);
        ++state.counter;
      }
    });
  }
  for (auto& t : threads) t.join();
  MutexLock lock(&state.mu);
  EXPECT_EQ(state.counter, int64_t{kThreads} * kIters);
}

TEST(MutexTest, TryLockFailsWhileHeldElsewhere) {
  Mutex mu;
  mu.Lock();
  bool other_acquired = true;
  std::thread t([&] {
    if (mu.TryLock()) {
      other_acquired = true;
      mu.Unlock();
    } else {
      other_acquired = false;
    }
  });
  t.join();
  EXPECT_FALSE(other_acquired);
  mu.Unlock();
  // Uncontended again: TryLock must succeed.
  ASSERT_TRUE(mu.TryLock());
  mu.Unlock();
}

struct QueueState {
  Mutex mu;
  CondVar cv;
  std::vector<int> items SPAMMASS_GUARDED_BY(mu);
  bool done SPAMMASS_GUARDED_BY(mu) = false;
};

TEST(CondVarTest, WaitReturnsAfterNotify) {
  QueueState q;
  std::thread waiter([&q] {
    MutexLock lock(&q.mu);
    while (!q.done) q.cv.Wait(&q.mu);
  });
  {
    MutexLock lock(&q.mu);
    q.done = true;
  }
  q.cv.NotifyAll();
  waiter.join();
}

TEST(CondVarTest, HandsOffItemsInOrder) {
  QueueState q;
  constexpr int kItems = 200;
  std::vector<int> received;
  std::thread consumer([&] {
    for (;;) {
      MutexLock lock(&q.mu);
      while (q.items.empty() && !q.done) q.cv.Wait(&q.mu);
      if (q.items.empty()) return;  // done and drained
      received.push_back(q.items.front());
      q.items.erase(q.items.begin());
    }
  });
  for (int i = 0; i < kItems; ++i) {
    MutexLock lock(&q.mu);
    q.items.push_back(i);
    q.cv.NotifyOne();
  }
  {
    MutexLock lock(&q.mu);
    q.done = true;
  }
  q.cv.NotifyAll();
  consumer.join();
  // FIFO hand-off: one producer, one consumer, so order is exact.
  ASSERT_EQ(received.size(), static_cast<size_t>(kItems));
  for (int i = 0; i < kItems; ++i) EXPECT_EQ(received[i], i);
}

}  // namespace
}  // namespace spammass::util
