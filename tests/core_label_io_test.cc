// Tests of label and node-list persistence.

#include "core/label_io.h"

#include <gtest/gtest.h>

#include <fstream>

namespace spammass {
namespace {

using core::LabelStore;
using core::NodeLabel;
using graph::NodeId;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(LabelIoTest, RoundTrip) {
  LabelStore labels(5);
  labels.Set(1, NodeLabel::kSpam);
  labels.Set(2, NodeLabel::kUnknown);
  labels.Set(4, NodeLabel::kNonExistent);
  std::string path = TempPath("labels.tsv");
  ASSERT_TRUE(core::WriteLabels(labels, path).ok());
  auto loaded = core::ReadLabels(path, 5);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (NodeId x = 0; x < 5; ++x) {
    EXPECT_EQ(loaded.value().Get(x), labels.Get(x)) << "node " << x;
  }
}

TEST(LabelIoTest, UnlistedNodesDefaultGood) {
  std::string path = TempPath("partial_labels.tsv");
  {
    std::ofstream f(path);
    f << "2\tspam\n";
  }
  auto loaded = core::ReadLabels(path, 4);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().IsGood(0));
  EXPECT_TRUE(loaded.value().IsSpam(2));
}

TEST(LabelIoTest, CommentsAndBlanksSkipped) {
  std::string path = TempPath("commented_labels.tsv");
  {
    std::ofstream f(path);
    f << "# ground truth\n\n0\tspam\n";
  }
  auto loaded = core::ReadLabels(path, 1);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().IsSpam(0));
}

TEST(LabelIoTest, RejectsBadInput) {
  std::string path = TempPath("bad_labels.tsv");
  {
    std::ofstream f(path);
    f << "0\tbogus-label\n";
  }
  EXPECT_FALSE(core::ReadLabels(path, 2).ok());
  {
    std::ofstream f(path);
    f << "9\tspam\n";
  }
  EXPECT_FALSE(core::ReadLabels(path, 2).ok());
  {
    std::ofstream f(path);
    f << "just-one-field\n";
  }
  EXPECT_FALSE(core::ReadLabels(path, 2).ok());
  EXPECT_FALSE(core::ReadLabels(TempPath("missing-file.tsv"), 2).ok());
}

TEST(NodeListIoTest, RoundTripSortedDeduped) {
  std::string path = TempPath("core.list");
  ASSERT_TRUE(core::WriteNodeList({5, 1, 3, 1}, path).ok());
  auto loaded = core::ReadNodeList(path, 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value(), (std::vector<NodeId>{1, 3, 5}));
}

TEST(NodeListIoTest, RejectsOutOfRangeAndGarbage) {
  std::string path = TempPath("bad_core.list");
  {
    std::ofstream f(path);
    f << "42\n";
  }
  EXPECT_FALSE(core::ReadNodeList(path, 10).ok());
  {
    std::ofstream f(path);
    f << "not-a-number\n";
  }
  EXPECT_FALSE(core::ReadNodeList(path, 10).ok());
}

TEST(NodeListIoTest, EmptyFileGivesEmptyList) {
  std::string path = TempPath("empty_core.list");
  { std::ofstream f(path); }
  auto loaded = core::ReadNodeList(path, 10);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().empty());
}

}  // namespace
}  // namespace spammass
