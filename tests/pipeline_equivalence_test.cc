// Regression guard for the pipeline port: the artifact-cache path (fused
// multi-RHS solves through PipelineContext) must produce BIT-IDENTICAL
// results to the direct seed implementation (core::EstimateSpamMass,
// pagerank::ComputeUniformPageRank) — not merely close. Exercised at 1
// and 4 solver threads and under both the Gauss-Seidel bench preset and
// multi-threaded Jacobi, since the fused kernel only engages for Jacobi.

#include <gtest/gtest.h>

#include "core/spam_mass.h"
#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/graph_source.h"
#include "util/logging.h"

namespace spammass {
namespace {

struct Case {
  pagerank::Method method;
  uint32_t threads;
};

class PipelineEquivalenceTest : public ::testing::TestWithParam<Case> {};

TEST_P(PipelineEquivalenceTest, MassEstimatesBitIdenticalToSeedPath) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.03, 17);
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());

  pipeline::PipelineConfig config;
  config.solver.method = GetParam().method;
  config.solver.num_threads = GetParam().threads;
  config.gamma = 0.8;

  // Seed implementation: direct EstimateSpamMass.
  core::SpamMassOptions seed_options;
  seed_options.solver = config.solver;
  seed_options.gamma = config.gamma;
  seed_options.scale_core_jump = config.scale_core_jump;
  auto seed = core::EstimateSpamMass(loaded.value().graph(),
                                     loaded.value().good_core, seed_options);
  ASSERT_TRUE(seed.ok()) << seed.status().ToString();

  // Ported implementation: the shared context, with the TrustRank lane
  // fused alongside — an extra lane must not perturb the others.
  pipeline::PipelineContext context(loaded.value(), config);
  pipeline::ArtifactNeeds needs;
  needs.mass_estimates = true;
  needs.trustrank = true;
  ASSERT_TRUE(context.Prepare(needs).ok());
  const core::MassEstimates& ported = context.MassEstimates();

  ASSERT_EQ(ported.pagerank.size(), seed.value().pagerank.size());
  for (size_t i = 0; i < ported.pagerank.size(); ++i) {
    ASSERT_EQ(ported.pagerank[i], seed.value().pagerank[i]) << "node " << i;
    ASSERT_EQ(ported.core_pagerank[i], seed.value().core_pagerank[i])
        << "node " << i;
    ASSERT_EQ(ported.absolute_mass[i], seed.value().absolute_mass[i])
        << "node " << i;
    ASSERT_EQ(ported.relative_mass[i], seed.value().relative_mass[i])
        << "node " << i;
  }

  // Base PageRank equals the standalone solver too.
  auto standalone = pagerank::ComputeUniformPageRank(loaded.value().graph(),
                                                     config.solver);
  ASSERT_TRUE(standalone.ok());
  EXPECT_EQ(context.BasePageRank().iterations,
            standalone.value().iterations);
  for (size_t i = 0; i < standalone.value().scores.size(); ++i) {
    ASSERT_EQ(context.BasePageRank().scores[i],
              standalone.value().scores[i])
        << "node " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndThreads, PipelineEquivalenceTest,
    ::testing::Values(Case{pagerank::Method::kGaussSeidel, 1},
                      Case{pagerank::Method::kGaussSeidel, 4},
                      Case{pagerank::Method::kJacobi, 1},
                      Case{pagerank::Method::kJacobi, 4}),
    [](const ::testing::TestParamInfo<Case>& info) {
      return std::string(pagerank::MethodToString(info.param.method) ==
                                 std::string("jacobi")
                             ? "Jacobi"
                             : "GaussSeidel") +
             std::to_string(info.param.threads) + "Threads";
    });

}  // namespace
}  // namespace spammass
