// Tests of spam-farm construction and the closed-form target PageRank.

#include "synth/spam_farm.h"

#include <gtest/gtest.h>

#include "pagerank/solver.h"
#include "util/logging.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using synth::BuildSpamFarm;
using synth::FarmInfo;
using synth::FarmSpec;
using synth::LinkAllianceTargets;
using synth::PredictedTargetScaledPageRank;

TEST(SpamFarmTest, StructureWithRecirculation) {
  GraphBuilder b;
  util::Rng rng(1);
  FarmSpec spec;
  spec.num_boosters = 5;
  spec.target_links_back = true;
  FarmInfo farm = BuildSpamFarm(&b, spec, "target.spam", "booster", &rng);
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_nodes(), 6u);
  EXPECT_EQ(farm.boosters.size(), 5u);
  for (NodeId booster : farm.boosters) {
    EXPECT_TRUE(g.HasEdge(booster, farm.target));
    EXPECT_TRUE(g.HasEdge(farm.target, booster));
  }
  EXPECT_EQ(g.HostName(farm.target), "target.spam");
  EXPECT_EQ(g.HostName(farm.boosters[0]), "booster0");
}

TEST(SpamFarmTest, StructureWithoutRecirculation) {
  GraphBuilder b;
  util::Rng rng(2);
  FarmSpec spec;
  spec.num_boosters = 4;
  spec.target_links_back = false;
  FarmInfo farm = BuildSpamFarm(&b, spec, "t", "b", &rng);
  WebGraph g = b.Build();
  EXPECT_TRUE(g.IsDangling(farm.target));
  EXPECT_EQ(g.num_edges(), 4u);
}

class FarmPageRankTest
    : public ::testing::TestWithParam<std::tuple<uint32_t, bool>> {};

TEST_P(FarmPageRankTest, TargetMatchesClosedForm) {
  auto [k, links_back] = GetParam();
  GraphBuilder b;
  util::Rng rng(3);
  FarmSpec spec;
  spec.num_boosters = k;
  spec.target_links_back = links_back;
  FarmInfo farm = BuildSpamFarm(&b, spec, "t", "b", &rng);
  WebGraph g = b.Build();

  pagerank::SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  auto pr = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(pr.ok());
  auto scaled = pagerank::ScaledScores(pr.value().scores, opt.damping);
  EXPECT_NEAR(scaled[farm.target],
              PredictedTargetScaledPageRank(k, opt.damping, links_back),
              1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, FarmPageRankTest,
    ::testing::Combine(::testing::Values(1u, 5u, 20u, 100u),
                       ::testing::Bool()));

TEST(SpamFarmTest, RecirculationAmplifies) {
  // The optimal farm's 1/(1−c²) amplification (reference [8]).
  for (uint32_t k : {10u, 100u}) {
    double with = PredictedTargetScaledPageRank(k, 0.85, true);
    double without = PredictedTargetScaledPageRank(k, 0.85, false);
    EXPECT_NEAR(with / without, 1.0 / (1.0 - 0.85 * 0.85), 1e-12);
  }
}

TEST(SpamFarmTest, InterlinksAdded) {
  GraphBuilder b;
  util::Rng rng(5);
  FarmSpec spec;
  spec.num_boosters = 20;
  spec.interlink_prob = 0.5;
  FarmInfo farm = BuildSpamFarm(&b, spec, "t", "b", &rng);
  WebGraph g = b.Build();
  // 20 booster->target + 20 back + ~0.5 * 20 * 19 interlinks.
  EXPECT_GT(g.num_edges(), 40u + 100u);
}

TEST(SpamFarmTest, LargeFarmInterlinkSampling) {
  GraphBuilder b;
  util::Rng rng(6);
  FarmSpec spec;
  spec.num_boosters = 200;  // > 64 triggers the sampling path
  spec.interlink_prob = 0.001;
  FarmInfo farm = BuildSpamFarm(&b, spec, "t", "b", &rng);
  WebGraph g = b.Build();
  uint64_t base = 400;  // boosters + recirculation
  EXPECT_GT(g.num_edges(), base);
  EXPECT_LT(g.num_edges(), base + 200);  // ~40 expected interlinks
}

TEST(SpamFarmTest, AllianceRing) {
  GraphBuilder b(4);
  LinkAllianceTargets(&b, {0, 1, 2, 3});
  WebGraph g = b.Build();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 2));
  EXPECT_TRUE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 0));
  EXPECT_EQ(g.num_edges(), 4u);
}

TEST(SpamFarmTest, AllianceOfOneIsNoop) {
  GraphBuilder b(1);
  LinkAllianceTargets(&b, {0});
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 0u);
}


TEST(SpamFarmTest, CompleteAllianceLinksAllPairs) {
  GraphBuilder b(3);
  synth::LinkAllianceComplete(&b, {0, 1, 2});
  WebGraph g = b.Build();
  EXPECT_EQ(g.num_edges(), 6u);
  for (NodeId a = 0; a < 3; ++a) {
    for (NodeId c = 0; c < 3; ++c) {
      if (a != c) {
        EXPECT_TRUE(g.HasEdge(a, c));
      }
    }
  }
}

TEST(SpamFarmTest, CompleteAllianceBeatsRing) {
  // With more than two members, full interconnection boosts each target
  // more than the ring (each target receives |A|-1 donated links instead
  // of one).
  auto build = [](bool complete) {
    GraphBuilder b;
    util::Rng rng(9);
    std::vector<FarmInfo> farms;
    std::vector<NodeId> targets;
    for (int f = 0; f < 4; ++f) {
      FarmSpec spec;
      spec.num_boosters = 10;
      farms.push_back(BuildSpamFarm(&b, spec, "t" + std::to_string(f),
                                    "b" + std::to_string(f), &rng));
      targets.push_back(farms.back().target);
    }
    if (complete) {
      synth::LinkAllianceComplete(&b, targets);
    } else {
      LinkAllianceTargets(&b, targets);
    }
    WebGraph g = b.Build();
    pagerank::SolverOptions opt;
    opt.tolerance = 1e-14;
    opt.max_iterations = 5000;
    auto pr = pagerank::ComputeUniformPageRank(g, opt);
    CHECK_OK(pr.status());
    return pagerank::ScaledScores(pr.value().scores, opt.damping)[targets[0]];
  };
  EXPECT_GT(build(true), build(false));
}

TEST(SpamFarmTest, SharedBoostersLinkEveryTarget) {
  GraphBuilder b;
  util::Rng rng(10);
  FarmSpec spec;
  spec.num_boosters = 3;
  FarmInfo f1 = BuildSpamFarm(&b, spec, "t1", "b1-", &rng);
  FarmInfo f2 = BuildSpamFarm(&b, spec, "t2", "b2-", &rng);
  synth::ShareAllianceBoosters(&b, {&f1, &f2});
  WebGraph g = b.Build();
  for (NodeId booster : f1.boosters) {
    EXPECT_TRUE(g.HasEdge(booster, f2.target));
  }
  for (NodeId booster : f2.boosters) {
    EXPECT_TRUE(g.HasEdge(booster, f1.target));
  }
}

TEST(SpamFarmTest, SharedBoostersSplitTheBoost) {
  // Sharing k boosters across two targets halves each booster's per-target
  // contribution: both targets end up weaker than an unshared farm of the
  // same booster count, but the alliance ranks two targets for the price
  // of one farm's nodes.
  GraphBuilder solo_b;
  util::Rng rng(11);
  FarmSpec spec;
  spec.num_boosters = 12;
  spec.target_links_back = false;
  FarmInfo solo = BuildSpamFarm(&solo_b, spec, "t", "b", &rng);
  WebGraph solo_g = solo_b.Build();

  GraphBuilder shared_b;
  FarmInfo s1 = BuildSpamFarm(&shared_b, spec, "t1", "b1-", &rng);
  FarmInfo s2 = BuildSpamFarm(&shared_b, spec, "t2", "b2-", &rng);
  synth::ShareAllianceBoosters(&shared_b, {&s1, &s2});
  WebGraph shared_g = shared_b.Build();

  pagerank::SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  auto solo_pr = pagerank::ComputeUniformPageRank(solo_g, opt);
  auto shared_pr = pagerank::ComputeUniformPageRank(shared_g, opt);
  CHECK_OK(solo_pr.status());
  CHECK_OK(shared_pr.status());
  auto solo_scaled =
      pagerank::ScaledScores(solo_pr.value().scores, opt.damping);
  auto shared_scaled =
      pagerank::ScaledScores(shared_pr.value().scores, opt.damping);
  // Each shared target is fed by 24 boosters at weight 1/2 -> same
  // first-order boost as 12 dedicated boosters, so the scaled PageRanks
  // are close (slightly differing via n).
  EXPECT_NEAR(shared_scaled[s1.target], solo_scaled[solo.target], 0.5);
  EXPECT_NEAR(shared_scaled[s2.target], shared_scaled[s1.target], 1e-9);
}

TEST(SpamFarmTest, AllianceBoostsTargets) {
  // Two allied farms: each target's PageRank exceeds the isolated-farm
  // closed form because of the partner's donated link.
  GraphBuilder b;
  util::Rng rng(7);
  FarmSpec spec;
  spec.num_boosters = 10;
  FarmInfo f1 = BuildSpamFarm(&b, spec, "t1", "b1-", &rng);
  FarmInfo f2 = BuildSpamFarm(&b, spec, "t2", "b2-", &rng);
  LinkAllianceTargets(&b, {f1.target, f2.target});
  WebGraph g = b.Build();
  pagerank::SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  auto pr = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(pr.ok());
  auto scaled = pagerank::ScaledScores(pr.value().scores, opt.damping);
  double isolated = PredictedTargetScaledPageRank(10, 0.85, true);
  EXPECT_GT(scaled[f1.target], isolated);
  EXPECT_GT(scaled[f2.target], isolated);
}

}  // namespace
}  // namespace spammass
