// Metrics-registry correctness: concurrent updates are exact (no lost
// increments across shards), snapshots are bit-identical for every thread
// count performing the same logical updates, and the snapshot JSON is
// well-formed. The concurrent tests double as the TSan targets (the CI
// tsan job runs -R '...|Obs').

#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "json_test_util.h"

namespace spammass::obs {
namespace {

TEST(ObsMetricsTest, ConcurrentCounterIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("test.counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 100'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter] {
      for (uint64_t i = 0; i < kPerThread; ++i) counter->Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter->Value(), kThreads * kPerThread);
}

TEST(ObsMetricsTest, ConcurrentHistogramObservationsAreExact) {
  MetricsRegistry registry;
  Histogram* histogram =
      registry.GetHistogram("test.histogram", {10, 100, 1000});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        histogram->Observe((t * kPerThread + i) % 2000);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram->TotalCount(), kThreads * kPerThread);
  // Every thread observed the same value multiset ({0..1999} x 200 in
  // total across threads), so bucket totals are fully determined.
  const std::vector<uint64_t> counts = histogram->BucketCounts();
  ASSERT_EQ(counts.size(), 4u);  // (-inf,10) [10,100) [100,1000) [1000,inf)
  constexpr uint64_t kCycles = kThreads * kPerThread / 2000;
  EXPECT_EQ(counts[0], 10 * kCycles);
  EXPECT_EQ(counts[1], 90 * kCycles);
  EXPECT_EQ(counts[2], 900 * kCycles);
  EXPECT_EQ(counts[3], 1000 * kCycles);
}

TEST(ObsMetricsTest, ConcurrentGaugeWritesLandOnAWrittenValue) {
  MetricsRegistry registry;
  Gauge* gauge = registry.GetGauge("test.gauge");
  std::vector<std::thread> threads;
  for (int t = 1; t <= 4; ++t) {
    threads.emplace_back([gauge, t] {
      for (int i = 0; i < 10'000; ++i) gauge->Set(t);
    });
  }
  for (auto& thread : threads) thread.join();
  const double value = gauge->Value();
  EXPECT_GE(value, 1.0);
  EXPECT_LE(value, 4.0);
}

/// Runs the same logical updates split across `num_threads` workers and
/// returns the registry snapshot.
std::string SnapshotWithThreads(int num_threads) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("determinism.counter");
  Histogram* histogram =
      registry.GetHistogram("determinism.histogram", {1, 2, 5, 10});
  Gauge* gauge = registry.GetGauge("determinism.gauge");
  gauge->Set(42.5);
  constexpr int kTotal = 12'000;  // divisible by 1..4
  std::vector<std::thread> threads;
  for (int t = 0; t < num_threads; ++t) {
    const int begin = kTotal / num_threads * t;
    const int end = kTotal / num_threads * (t + 1);
    threads.emplace_back([&, begin, end] {
      for (int i = begin; i < end; ++i) {
        counter->Add(2);
        histogram->Observe(i % 12);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  return registry.SnapshotJson();
}

TEST(ObsMetricsTest, SnapshotIsIdenticalAcrossThreadCounts) {
  const std::string baseline = SnapshotWithThreads(1);
  EXPECT_EQ(SnapshotWithThreads(2), baseline);
  EXPECT_EQ(SnapshotWithThreads(3), baseline);
  EXPECT_EQ(SnapshotWithThreads(4), baseline);
}

TEST(ObsMetricsTest, SnapshotJsonIsWellFormedAndExact) {
  MetricsRegistry registry;
  registry.GetCounter("a.counter")->Add(7);
  registry.GetGauge("b.gauge")->Set(2.5);
  Histogram* histogram = registry.GetHistogram("c.histogram", {5, 50});
  histogram->Observe(1);
  histogram->Observe(25);
  histogram->Observe(75);
  histogram->Observe(75);

  testutil::JsonValue root;
  std::string error;
  ASSERT_TRUE(testutil::JsonParser::Parse(registry.SnapshotJson(), &root,
                                          &error))
      << error;
  EXPECT_EQ(root["counters"]["a.counter"].number, 7);
  EXPECT_EQ(root["gauges"]["b.gauge"].number, 2.5);
  const testutil::JsonValue& hist = root["histograms"]["c.histogram"];
  EXPECT_EQ(hist["total"].number, 4);
  ASSERT_EQ(hist["boundaries"].array.size(), 2u);
  ASSERT_EQ(hist["counts"].array.size(), 3u);
  EXPECT_EQ(hist["counts"][0].number, 1);
  EXPECT_EQ(hist["counts"][1].number, 1);
  EXPECT_EQ(hist["counts"][2].number, 2);
}

TEST(ObsMetricsTest, SnapshotPrometheusFormatsAndMangles) {
  MetricsRegistry registry;
  registry.GetCounter("a.counter")->Add(7);
  registry.GetGauge("b.gauge")->Set(2.5);
  Histogram* histogram = registry.GetHistogram("c.histogram", {5, 50});
  histogram->Observe(1);
  histogram->Observe(25);
  histogram->Observe(75);
  histogram->Observe(75);
  registry.GetCounter("0leading-digit")->Increment();

  const std::string text = registry.SnapshotPrometheus();
  // Dots and dashes mangle to underscores; counters get _total; a
  // leading digit gets a protective underscore prefix.
  // TYPE names the sample family, so a counter's header carries _total.
  EXPECT_NE(text.find("# TYPE a_counter_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("a_counter_total 7\n"), std::string::npos);
  EXPECT_NE(text.find("_0leading_digit_total 1\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE b_gauge gauge\n"), std::string::npos);
  EXPECT_NE(text.find("b_gauge 2.5\n"), std::string::npos);
  // Histogram buckets are cumulative with a final +Inf == _count.
  EXPECT_NE(text.find("# TYPE c_histogram histogram\n"), std::string::npos);
  EXPECT_NE(text.find("c_histogram_bucket{le=\"5\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("c_histogram_bucket{le=\"50\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("c_histogram_bucket{le=\"+Inf\"} 4\n"),
            std::string::npos);
  EXPECT_NE(text.find("c_histogram_count 4\n"), std::string::npos);
  // No _sum line: the shard-striped histogram does not track one.
  EXPECT_EQ(text.find("c_histogram_sum"), std::string::npos);
  // Exposition text must end in a newline (format 0.0.4 requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(ObsMetricsTest, SnapshotPrometheusEveryHelpHasASample) {
  MetricsRegistry registry;
  registry.GetCounter("x")->Increment();
  registry.GetGauge("y")->Set(1);
  const std::string text = registry.SnapshotPrometheus();
  // Diff-stability contract: two snapshots of the same state are equal.
  EXPECT_EQ(text, registry.SnapshotPrometheus());
  // Each metric emits exactly one HELP and one TYPE header.
  size_t help_lines = 0, pos = 0;
  while ((pos = text.find("# HELP ", pos)) != std::string::npos) {
    ++help_lines;
    pos += 7;
  }
  EXPECT_EQ(help_lines, 2u);
}

TEST(ObsMetricsTest, MetricPointersAreStable) {
  MetricsRegistry registry;
  Counter* first = registry.GetCounter("stable.counter");
  first->Add(3);
  Counter* second = registry.GetCounter("stable.counter");
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->Value(), 3u);
}

TEST(ObsMetricsTest, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace spammass::obs
