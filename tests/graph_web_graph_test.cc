// Tests of the CSR WebGraph core.

#include "graph/web_graph.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

TEST(WebGraphTest, EmptyGraph) {
  WebGraph g;
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(WebGraphTest, FromSortedEdges) {
  WebGraph g = WebGraph::FromSortedEdges(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}});
  EXPECT_EQ(g.num_nodes(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.OutDegree(0), 2u);
  EXPECT_EQ(g.InDegree(1), 2u);
  EXPECT_EQ(g.OutDegree(1), 0u);
  EXPECT_TRUE(g.IsDangling(1));
  EXPECT_FALSE(g.IsDangling(0));
}

TEST(WebGraphTest, NeighborsAreSorted) {
  GraphBuilder b(5);
  b.AddEdge(0, 4);
  b.AddEdge(0, 1);
  b.AddEdge(0, 3);
  b.AddEdge(2, 1);
  b.AddEdge(4, 1);
  WebGraph g = b.Build();
  auto out = g.OutNeighbors(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
  auto in = g.InNeighbors(1);
  ASSERT_EQ(in.size(), 3u);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
}

TEST(WebGraphTest, HasEdge) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  WebGraph g = b.Build();
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(WebGraphTest, InOutDegreeSumsMatch) {
  GraphBuilder b(6);
  b.AddEdge(0, 1);
  b.AddEdge(0, 2);
  b.AddEdge(3, 2);
  b.AddEdge(4, 5);
  b.AddEdge(5, 0);
  WebGraph g = b.Build();
  uint64_t in_sum = 0, out_sum = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    in_sum += g.InDegree(x);
    out_sum += g.OutDegree(x);
  }
  EXPECT_EQ(in_sum, g.num_edges());
  EXPECT_EQ(out_sum, g.num_edges());
}

TEST(WebGraphTest, TransposeReversesEdges) {
  GraphBuilder b(4);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(3, 1);
  WebGraph g = b.Build();
  WebGraph t = g.Transposed();
  EXPECT_EQ(t.num_edges(), g.num_edges());
  EXPECT_TRUE(t.HasEdge(1, 0));
  EXPECT_TRUE(t.HasEdge(2, 1));
  EXPECT_TRUE(t.HasEdge(1, 3));
  EXPECT_FALSE(t.HasEdge(0, 1));
  // Double transpose is the identity.
  WebGraph tt = t.Transposed();
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    auto a = g.OutNeighbors(x);
    auto c = tt.OutNeighbors(x);
    ASSERT_EQ(a.size(), c.size());
    EXPECT_TRUE(std::equal(a.begin(), a.end(), c.begin()));
  }
}

TEST(WebGraphTest, IsolatedNode) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_TRUE(g.IsIsolated(2));
  EXPECT_FALSE(g.IsIsolated(0));
  EXPECT_FALSE(g.IsIsolated(1));
}

TEST(WebGraphTest, DerivedArraysMatchDegrees) {
  // 0 -> {1, 2}, 2 -> {1}, 3 -> {0}; node 1 is dangling.
  WebGraph g = WebGraph::FromSortedEdges(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}});
  ASSERT_EQ(g.InvOutDegrees().size(), 4u);
  EXPECT_EQ(g.InvOutDegree(0), 0.5);
  EXPECT_EQ(g.InvOutDegree(1), 0.0);  // dangling: exactly zero
  EXPECT_EQ(g.InvOutDegree(2), 1.0);
  EXPECT_EQ(g.InvOutDegree(3), 1.0);
  ASSERT_EQ(g.num_dangling(), 1u);
  EXPECT_EQ(g.DanglingNodes()[0], 1u);
}

TEST(WebGraphTest, DerivedArraysOnTransposedGraph) {
  WebGraph g = WebGraph::FromSortedEdges(4, {{0, 1}, {0, 2}, {2, 1}, {3, 0}});
  WebGraph t = g.Transposed();
  // In the transpose, out-degrees are the original in-degrees: node 3 has
  // no inlinks in g, so it is dangling in t.
  ASSERT_EQ(t.num_dangling(), 1u);
  EXPECT_EQ(t.DanglingNodes()[0], 3u);
  EXPECT_EQ(t.InvOutDegree(1), 0.5);  // in-degree 2 in g
  EXPECT_EQ(t.InvOutDegree(3), 0.0);
}

TEST(WebGraphTest, DanglingListIsAscendingAndComplete) {
  GraphBuilder b(8);
  b.AddEdge(1, 0);
  b.AddEdge(3, 2);
  b.AddEdge(6, 5);
  WebGraph g = b.Build();
  std::vector<NodeId> want;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    if (g.IsDangling(x)) want.push_back(x);
  }
  auto got = g.DanglingNodes();
  ASSERT_EQ(got.size(), want.size());
  EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin()));
  EXPECT_TRUE(std::is_sorted(got.begin(), got.end()));
}

TEST(WebGraphTest, HostNames) {
  GraphBuilder b;
  NodeId a = b.AddNode("www.example.com");
  NodeId c = b.AddNode("www.stanford.edu");
  b.AddEdge(a, c);
  WebGraph g = b.Build();
  EXPECT_EQ(g.HostName(a), "www.example.com");
  EXPECT_EQ(g.HostName(c), "www.stanford.edu");
}

TEST(WebGraphTest, DefaultHostNames) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_EQ(g.HostName(0), "node0");
  EXPECT_EQ(g.HostName(1), "node1");
}

TEST(WebGraphDeathTest, SelfLoopInSortedEdgesAborts) {
  EXPECT_DEATH(WebGraph::FromSortedEdges(2, {{1, 1}}), "self-links");
}

TEST(WebGraphDeathTest, UnsortedEdgesAbort) {
  EXPECT_DEATH(WebGraph::FromSortedEdges(3, {{1, 2}, {0, 1}}), "sorted");
}

TEST(WebGraphDeathTest, DuplicateEdgesAbort) {
  EXPECT_DEATH(WebGraph::FromSortedEdges(3, {{0, 1}, {0, 1}}), "sorted");
}

}  // namespace
}  // namespace spammass
