// Property-based tests of PageRank invariants on randomized graphs:
//   * linearity in the jump vector (Section 2.2),
//   * Theorem 1: p_y = Σ_x q_y^x over any partition of V,
//   * agreement of the iterative solvers with the truncated Neumann series
//     within the analytic truncation bound,
//   * monotonicity and positivity properties.

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "pagerank/contribution.h"
#include "pagerank/jump_vector.h"
#include "pagerank/neumann.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::ComputePageRank;
using pagerank::ComputeSetContribution;
using pagerank::ComputeUniformPageRank;
using pagerank::JumpVector;
using pagerank::Method;
using pagerank::SolverOptions;

SolverOptions Precise(Method method = Method::kJacobi) {
  SolverOptions opt;
  opt.tolerance = 1e-14;
  opt.max_iterations = 5000;
  opt.method = method;
  return opt;
}

/// Random graph with n nodes and roughly mean_degree outlinks per node.
WebGraph RandomGraph(uint32_t n, double mean_degree, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  uint64_t edges = static_cast<uint64_t>(n * mean_degree);
  for (uint64_t e = 0; e < edges; ++e) {
    NodeId u = static_cast<NodeId>(rng.UniformIndex(n));
    NodeId v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

class PageRankPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PageRankPropertyTest, LinearityInJumpVector) {
  const uint64_t seed = GetParam();
  WebGraph g = RandomGraph(40, 2.5, seed);
  util::Rng rng(seed + 1);
  // Two random non-negative jump vectors with combined norm <= 1.
  std::vector<double> v1(g.num_nodes()), v2(g.num_nodes());
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    v1[i] = rng.Uniform01() / g.num_nodes() * 0.5;
    v2[i] = rng.Uniform01() / g.num_nodes() * 0.5;
  }
  auto p1 = ComputePageRank(g, JumpVector::FromDense(v1), Precise());
  auto p2 = ComputePageRank(g, JumpVector::FromDense(v2), Precise());
  auto p12 = ComputePageRank(
      g, JumpVector::FromDense(v1).Plus(JumpVector::FromDense(v2)),
      Precise());
  ASSERT_TRUE(p1.ok() && p2.ok() && p12.ok());
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_NEAR(p1.value().scores[i] + p2.value().scores[i],
                p12.value().scores[i], 1e-10);
  }
}

TEST_P(PageRankPropertyTest, Theorem1ContributionsSumToPageRank) {
  const uint64_t seed = GetParam();
  WebGraph g = RandomGraph(30, 2.0, seed);
  util::Rng rng(seed + 2);
  // Random 3-way partition of V.
  std::vector<std::vector<NodeId>> parts(3);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    parts[rng.UniformIndex(3)].push_back(x);
  }
  auto p = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(p.ok());
  std::vector<double> sum(g.num_nodes(), 0.0);
  for (const auto& part : parts) {
    auto q = ComputeSetContribution(g, part, Precise());
    ASSERT_TRUE(q.ok());
    for (uint32_t i = 0; i < g.num_nodes(); ++i) {
      sum[i] += q.value().scores[i];
    }
  }
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_NEAR(sum[i], p.value().scores[i], 1e-10);
  }
}

TEST_P(PageRankPropertyTest, NeumannSeriesAgreesWithinBound) {
  const uint64_t seed = GetParam();
  WebGraph g = RandomGraph(35, 2.5, seed);
  JumpVector v = JumpVector::Uniform(g.num_nodes());
  auto p = ComputePageRank(g, v, Precise());
  ASSERT_TRUE(p.ok());
  for (int terms : {5, 20, 80}) {
    std::vector<double> series =
        pagerank::NeumannSeries(g, v, 0.85, terms);
    double bound = pagerank::NeumannTruncationBound(v, 0.85, terms);
    double err = 0;
    for (uint32_t i = 0; i < g.num_nodes(); ++i) {
      err += std::abs(series[i] - p.value().scores[i]);
    }
    EXPECT_LE(err, bound + 1e-10) << "terms=" << terms;
  }
}

TEST_P(PageRankPropertyTest, SolversAgreeOnRandomGraphs) {
  const uint64_t seed = GetParam();
  WebGraph g = RandomGraph(60, 3.0, seed);
  auto jacobi = ComputeUniformPageRank(g, Precise(Method::kJacobi));
  auto gs = ComputeUniformPageRank(g, Precise(Method::kGaussSeidel));
  ASSERT_TRUE(jacobi.ok() && gs.ok());
  for (uint32_t i = 0; i < g.num_nodes(); ++i) {
    EXPECT_NEAR(jacobi.value().scores[i], gs.value().scores[i], 1e-9);
  }
}

TEST_P(PageRankPropertyTest, ScoresArePositiveAndBounded) {
  const uint64_t seed = GetParam();
  WebGraph g = RandomGraph(50, 2.0, seed);
  auto p = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(p.ok());
  double norm = 0;
  for (double x : p.value().scores) {
    EXPECT_GT(x, 0.0);  // every node receives at least (1−c)·v_x
    norm += x;
  }
  EXPECT_LE(norm, 1.0 + 1e-9);  // ‖p‖ ≤ ‖v‖ under the leak policy
}

TEST_P(PageRankPropertyTest, AddingInlinkNeverDecreasesPageRank) {
  const uint64_t seed = GetParam();
  util::Rng rng(seed + 3);
  WebGraph g = RandomGraph(25, 2.0, seed);
  auto before = ComputeUniformPageRank(g, Precise());
  ASSERT_TRUE(before.ok());
  // Add one link from a fresh node (so no existing flows are rerouted).
  GraphBuilder b(g.num_nodes() + 1);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (NodeId v : g.OutNeighbors(u)) b.AddEdge(u, v);
  }
  NodeId target = static_cast<NodeId>(rng.UniformIndex(g.num_nodes()));
  b.AddEdge(g.num_nodes(), target);
  WebGraph g2 = b.Build();
  auto after = ComputeUniformPageRank(g2, Precise());
  ASSERT_TRUE(after.ok());
  // Compare unscaled-but-per-node jump-adjusted scores: use the same v_x by
  // comparing n·p (the jump per node changed from 1/n to 1/(n+1)).
  double pn_before = before.value().scores[target] * g.num_nodes();
  double pn_after = after.value().scores[target] * g2.num_nodes();
  EXPECT_GE(pn_after, pn_before - 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PageRankPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u));

}  // namespace
}  // namespace spammass
