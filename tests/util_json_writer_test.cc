// JsonWriter: nesting, comma placement, escaping, numeric formatting, and
// raw-value splicing.

#include "util/json_writer.h"

#include <gtest/gtest.h>

#include <cmath>

namespace spammass::util {
namespace {

TEST(JsonWriterTest, EmptyObjectAndArray) {
  JsonWriter w;
  w.BeginObject().EndObject();
  EXPECT_EQ(w.TakeString(), "{}");
  JsonWriter a;
  a.BeginArray().EndArray();
  EXPECT_EQ(a.TakeString(), "[]");
}

TEST(JsonWriterTest, ObjectWithMixedValues) {
  JsonWriter w;
  w.BeginObject()
      .KV("name", "spammass")
      .KV("count", 3)
      .KV("ratio", 0.5)
      .KV("ok", true)
      .Key("missing")
      .Null()
      .EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"name\":\"spammass\",\"count\":3,\"ratio\":0.5,"
            "\"ok\":true,\"missing\":null}");
}

TEST(JsonWriterTest, NestedContainersPlaceCommasCorrectly) {
  JsonWriter w;
  w.BeginObject().Key("rows").BeginArray();
  for (int i = 0; i < 3; ++i) {
    w.BeginObject().KV("i", i).EndObject();
  }
  w.EndArray().EndObject();
  EXPECT_EQ(w.TakeString(),
            "{\"rows\":[{\"i\":0},{\"i\":1},{\"i\":2}]}");
}

TEST(JsonWriterTest, EscapesControlCharactersAndQuotes) {
  JsonWriter w;
  w.BeginObject().KV("s", "a\"b\\c\nd\te").EndObject();
  EXPECT_EQ(w.TakeString(), "{\"s\":\"a\\\"b\\\\c\\nd\\te\"}");
}

TEST(JsonWriterTest, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::nan(""))
      .Double(INFINITY)
      .Double(1.5)
      .EndArray();
  EXPECT_EQ(w.TakeString(), "[null,null,1.5]");
}

TEST(JsonWriterTest, DoubleRoundTripsExactValue) {
  JsonWriter w;
  const double value = 0.1234567890123456789;
  w.BeginArray().Double(value).EndArray();
  std::string json = w.TakeString();
  // %.17g guarantees the emitted literal parses back to the same double.
  double parsed = std::stod(json.substr(1, json.size() - 2));
  EXPECT_EQ(parsed, value);
}

TEST(JsonWriterTest, RawValueSplicesNestedDocument) {
  JsonWriter inner;
  inner.BeginObject().KV("nested", 1).EndObject();
  std::string inner_json = inner.TakeString();

  JsonWriter outer;
  outer.BeginObject().Key("runs").BeginArray();
  outer.RawValue(inner_json);
  outer.RawValue(inner_json);
  outer.EndArray().EndObject();
  EXPECT_EQ(outer.TakeString(),
            "{\"runs\":[{\"nested\":1},{\"nested\":1}]}");
}

TEST(JsonWriterDeathTest, ValueWithoutKeyInObjectChecks) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject().Int(1);
      },
      "Key");
}

TEST(JsonWriterDeathTest, TakeStringWithOpenContainerChecks) {
  EXPECT_DEATH(
      {
        JsonWriter w;
        w.BeginObject();
        w.TakeString();
      },
      "unclosed");
}

}  // namespace
}  // namespace spammass::util
