// Tests of the Figure 4/5 precision computation.

#include "eval/precision.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using core::NodeLabel;
using eval::ComputePrecisionCurve;
using eval::EvaluationSample;
using eval::JudgedHost;

JudgedHost Host(double mass, NodeLabel judged, bool anomalous = false) {
  JudgedHost h;
  h.relative_mass = mass;
  h.judged = judged;
  h.anomalous = anomalous;
  return h;
}

TEST(PrecisionTest, BasicCounts) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.99, NodeLabel::kSpam));
  sample.hosts.push_back(Host(0.95, NodeLabel::kSpam));
  sample.hosts.push_back(Host(0.92, NodeLabel::kGood));
  sample.hosts.push_back(Host(0.40, NodeLabel::kSpam));
  sample.hosts.push_back(Host(0.10, NodeLabel::kGood));
  auto curve = ComputePrecisionCurve(sample, {0.9, 0.0});
  ASSERT_EQ(curve.size(), 2u);
  EXPECT_EQ(curve[0].sample_spam, 2u);
  EXPECT_EQ(curve[0].sample_good, 1u);
  EXPECT_NEAR(curve[0].precision_including_anomalous, 2.0 / 3, 1e-12);
  EXPECT_EQ(curve[1].sample_spam, 3u);
  EXPECT_NEAR(curve[1].precision_including_anomalous, 3.0 / 5, 1e-12);
}

TEST(PrecisionTest, AnomalousVariants) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.99, NodeLabel::kSpam));
  sample.hosts.push_back(Host(0.98, NodeLabel::kGood, /*anomalous=*/true));
  auto curve = ComputePrecisionCurve(sample, {0.9});
  ASSERT_EQ(curve.size(), 1u);
  // Included: the anomalous good host is a false positive -> 1/2.
  EXPECT_NEAR(curve[0].precision_including_anomalous, 0.5, 1e-12);
  // Excluded: it is dropped -> 1/1.
  EXPECT_NEAR(curve[0].precision_excluding_anomalous, 1.0, 1e-12);
}

TEST(PrecisionTest, ExcludedHostsIgnored) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.99, NodeLabel::kUnknown));
  sample.hosts.push_back(Host(0.99, NodeLabel::kNonExistent));
  sample.hosts.push_back(Host(0.99, NodeLabel::kSpam));
  auto curve = ComputePrecisionCurve(sample, {0.5});
  EXPECT_EQ(curve[0].sample_spam, 1u);
  EXPECT_EQ(curve[0].sample_good, 0u);
  EXPECT_NEAR(curve[0].precision_including_anomalous, 1.0, 1e-12);
}

TEST(PrecisionTest, EmptyAboveThresholdGivesZero) {
  EvaluationSample sample;
  sample.hosts.push_back(Host(0.2, NodeLabel::kSpam));
  auto curve = ComputePrecisionCurve(sample, {0.9});
  EXPECT_EQ(curve[0].precision_including_anomalous, 0.0);
}

TEST(PrecisionTest, HostsAboveUsesFullEstimates) {
  core::MassEstimates est;
  est.damping = 0.85;
  // 4 nodes; scaled PR = p * n/(1-c) = p * 4/0.15.
  double unit = 0.15 / 4;             // scaled PR exactly 1
  est.pagerank = {20 * unit, 20 * unit, 20 * unit, 2 * unit};
  est.relative_mass = {0.95, 0.5, 0.99, 0.99};
  est.absolute_mass = {0, 0, 0, 0};
  est.core_pagerank = {0, 0, 0, 0};

  EvaluationSample sample;
  sample.hosts.push_back(Host(0.95, NodeLabel::kSpam));
  auto curve = ComputePrecisionCurve(sample, {0.9}, &est, 10.0);
  // Node 3 fails ρ; node 1 fails τ; nodes 0 and 2 count.
  EXPECT_EQ(curve[0].hosts_above, 2u);
}

TEST(PrecisionTest, MonotoneSpamCountsAsThresholdDrops) {
  EvaluationSample sample;
  for (int i = 0; i < 100; ++i) {
    sample.hosts.push_back(Host(i / 100.0, i % 3 == 0 ? NodeLabel::kSpam
                                                      : NodeLabel::kGood));
  }
  auto curve = ComputePrecisionCurve(sample, {0.8, 0.5, 0.2, 0.0});
  for (size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].sample_spam, curve[i - 1].sample_spam);
    EXPECT_GE(curve[i].sample_good, curve[i - 1].sample_good);
  }
}

}  // namespace
}  // namespace spammass
