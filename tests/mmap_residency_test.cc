// mincore-backed residency probes: util::MmapFile::ResidentBytes[InRange]
// on a raw temp file (touched pages become resident, ranges clamp at EOF,
// section sums never exceed the whole), WebGraph::MappedSectionResidency
// on a real v2.2 mapped graph, and the clean zero/empty behaviour of the
// non-mapped (heap) path that `spammass_cli stats` and manifest v3 rely
// on to distinguish "absent" from "zero".
//
// Residency is advisory — pages can be reclaimed between a touch and the
// probe — so assertions are one-sided: touched data may exceed a floor,
// totals respect ceilings, but no test demands an exact page count.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/web_graph.h"
#include "util/mmap_file.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

/// Writes a file of `bytes` incompressible-ish bytes and returns its path.
std::string WriteBlob(const std::string& name, uint64_t bytes) {
  const std::string path = TempPath(name);
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  EXPECT_TRUE(f.is_open()) << path;
  std::string chunk(4096, '\0');
  for (size_t i = 0; i < chunk.size(); ++i) {
    chunk[i] = static_cast<char>(i * 131 + 17);
  }
  for (uint64_t written = 0; written < bytes; written += chunk.size()) {
    const uint64_t take = std::min<uint64_t>(chunk.size(), bytes - written);
    f.write(chunk.data(), static_cast<std::streamsize>(take));
  }
  return path;
}

WebGraph SampleGraph() {
  util::Rng rng(/*seed=*/41);
  constexpr uint32_t n = 800;
  GraphBuilder b(n);
  for (uint32_t e = 0; e < 6000; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n / 2));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

TEST(MmapResidencyTest, TouchedPagesAreResident) {
  const std::string path = WriteBlob("residency_blob.bin", 64 * 4096);
  auto mapped = util::MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const util::MmapFile& file = mapped.value();
  ASSERT_EQ(file.size(), 64u * 4096);

  // Touch the first 16 pages; those bytes must show as resident (reclaim
  // of just-touched pages under no memory pressure would be bizarre, but
  // keep the assertion one-sided anyway: >= one page, not == 16 pages).
  uint64_t sink = 0;
  for (uint64_t i = 0; i < 16 * 4096; i += 512) sink += file.data()[i];
  ASSERT_NE(sink, uint64_t{0});  // also defeats dead-read elimination
  EXPECT_GE(file.ResidentBytesInRange(0, 16 * 4096), uint64_t{4096});
  EXPECT_GE(file.ResidentBytes(), file.ResidentBytesInRange(0, 16 * 4096));
  EXPECT_LE(file.ResidentBytes(), file.size());
}

TEST(MmapResidencyTest, RangeQueriesClampAndBound) {
  const std::string path = WriteBlob("residency_clamp.bin", 3 * 4096 + 100);
  auto mapped = util::MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  const util::MmapFile& file = mapped.value();

  uint64_t sink = 0;
  for (uint64_t i = 0; i < file.size(); i += 64) sink += file.data()[i];
  ASSERT_NE(sink, uint64_t{0});

  // A range can never report more resident bytes than its own length.
  EXPECT_LE(file.ResidentBytesInRange(100, 200), uint64_t{200});
  // Past-EOF ranges clamp instead of faulting; fully-out ranges are 0.
  EXPECT_LE(file.ResidentBytesInRange(3 * 4096, 4096), file.size() - 3 * 4096);
  EXPECT_EQ(file.ResidentBytesInRange(file.size(), 4096), uint64_t{0});
  EXPECT_EQ(file.ResidentBytesInRange(file.size() + 4096, 1), uint64_t{0});
  EXPECT_EQ(file.ResidentBytesInRange(0, 0), uint64_t{0});

  // Disjoint sub-ranges covering the file sum to at most the whole (the
  // overlap-counting contract: boundary pages are split, not duplicated).
  const uint64_t split = 4096 + 123;
  const uint64_t a = file.ResidentBytesInRange(0, split);
  const uint64_t b = file.ResidentBytesInRange(split, file.size() - split);
  EXPECT_LE(a + b, file.size());
  EXPECT_GE(a + b, file.ResidentBytes() == file.size() ? file.size() : 0u);
}

TEST(MmapResidencyTest, EmptyMappingReportsZero) {
  const std::string path = WriteBlob("residency_empty.bin", 0);
  auto mapped = util::MmapFile::Open(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_EQ(mapped.value().ResidentBytes(), uint64_t{0});
  EXPECT_EQ(mapped.value().ResidentBytesInRange(0, 4096), uint64_t{0});
}

TEST(MmapResidencyTest, MappedGraphSectionResidency) {
  WebGraph g = SampleGraph();
  const std::string path = TempPath("residency_graph.smwg");
  auto status = graph::WriteBinaryV22(g, path);
  ASSERT_TRUE(status.ok()) << status.ToString();
  auto loaded = graph::ReadBinaryMmap(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const WebGraph& m = loaded.value();
  ASSERT_TRUE(m.is_mapped());

  // Walk every adjacency so the CSR sections are faulted in.
  uint64_t sink = 0;
  for (NodeId u = 0; u < m.num_nodes(); ++u) {
    for (NodeId v : m.OutNeighbors(u)) sink += v;
    for (NodeId v : m.InNeighbors(u)) sink += v;
  }
  ASSERT_NE(sink, uint64_t{0});

  const auto sections = m.MappedSectionResidency();
  ASSERT_EQ(sections.size(), 6u);
  const char* const kNames[] = {"out_offsets",    "targets", "in_offsets",
                                "sources",        "inv_out_degree",
                                "dangling"};
  uint64_t mapped_sum = 0, resident_sum = 0;
  for (size_t i = 0; i < sections.size(); ++i) {
    EXPECT_STREQ(sections[i].name, kNames[i]);
    EXPECT_LE(sections[i].resident_bytes, sections[i].mapped_bytes);
    mapped_sum += sections[i].mapped_bytes;
    resident_sum += sections[i].resident_bytes;
  }
  // Sections live inside the mapping (which also holds the header page),
  // so their sizes sum to strictly less than the whole file.
  EXPECT_LT(mapped_sum, m.mapped_bytes());
  EXPECT_LE(resident_sum, m.resident_bytes());
  // The CSR arrays were just walked: both directions must be resident.
  EXPECT_GT(sections[0].resident_bytes, uint64_t{0});  // out_offsets
  EXPECT_GT(sections[1].resident_bytes, uint64_t{0});  // targets
  EXPECT_GT(sections[3].resident_bytes, uint64_t{0});  // sources
}

TEST(MmapResidencyTest, HeapGraphHasNoSections) {
  // A heap-built graph is not mapped: the probe reports nothing (absent,
  // not six zero rows) and the publisher is a clean no-op.
  WebGraph g = SampleGraph();
  ASSERT_FALSE(g.is_mapped());
  EXPECT_TRUE(g.MappedSectionResidency().empty());
  graph::PublishMappedResidency(g);  // must not crash or publish gauges
}

}  // namespace
}  // namespace spammass
