// Tests of site-level aggregation (Section 2.1's granularity abstraction).

#include "graph/site_aggregation.h"

#include <gtest/gtest.h>

#include "core/spam_mass.h"
#include "graph/graph_builder.h"
#include "synth/generator.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

using graph::AggregateToSites;
using graph::GraphBuilder;
using graph::NodeId;
using graph::RegisteredDomain;
using graph::WebGraph;

TEST(RegisteredDomainTest, GenericTlds) {
  EXPECT_EQ(RegisteredDomain("www.example.com"), "example.com");
  EXPECT_EQ(RegisteredDomain("a.b.c.example.com"), "example.com");
  EXPECT_EQ(RegisteredDomain("example.com"), "example.com");
  EXPECT_EQ(RegisteredDomain("cs.stanford.edu"), "stanford.edu");
}

TEST(RegisteredDomainTest, SecondLevelRegistries) {
  EXPECT_EQ(RegisteredDomain("www.example.co.uk"), "example.co.uk");
  EXPECT_EQ(RegisteredDomain("blog.shop.example.com.br"), "example.com.br");
  EXPECT_EQ(RegisteredDomain("example.co.uk"), "example.co.uk");
  // The registry suffix itself has no registrable part.
  EXPECT_EQ(RegisteredDomain("co.uk"), "co.uk");
}

TEST(RegisteredDomainTest, DegenerateNames) {
  EXPECT_EQ(RegisteredDomain("localhost"), "localhost");
  EXPECT_EQ(RegisteredDomain("x.y"), "x.y");
}

TEST(SiteAggregationTest, CollapsesHostsOfOneDomain) {
  GraphBuilder b;
  NodeId a = b.AddNode("www.shop.example");
  NodeId c = b.AddNode("blog.shop.example");
  NodeId d = b.AddNode("other.org");
  b.AddEdge(a, d);
  b.AddEdge(c, d);
  b.AddEdge(a, c);  // intra-site: must vanish
  WebGraph g = b.Build();
  auto sites = AggregateToSites(g);
  ASSERT_TRUE(sites.ok()) << sites.status().ToString();
  EXPECT_EQ(sites.value().graph.num_nodes(), 2u);
  EXPECT_EQ(sites.value().graph.num_edges(), 1u);  // shop.example -> other.org
  EXPECT_EQ(sites.value().to_site[a], sites.value().to_site[c]);
  EXPECT_EQ(sites.value().site_sizes[sites.value().to_site[a]], 2u);
  EXPECT_EQ(sites.value().graph.HostName(sites.value().to_site[a]),
            "shop.example");
}

TEST(SiteAggregationTest, RequiresHostNames) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  EXPECT_FALSE(AggregateToSites(g).ok());
}

TEST(SiteAggregationTest, EmptyGraph) {
  WebGraph g;
  auto sites = AggregateToSites(g);
  ASSERT_TRUE(sites.ok());
  EXPECT_EQ(sites.value().graph.num_nodes(), 0u);
}

TEST(SiteAggregationTest, SpamMassRunsUnchangedOnSiteGraph) {
  // Section 2.1's point: the method is granularity-agnostic. Aggregate a
  // synthetic host web to sites, map the good core through, and verify the
  // estimator still separates: spam sites get higher mean relative mass
  // than good sites.
  auto web = synth::GenerateWeb(synth::TinyScenario(31));
  CHECK_OK(web.status());
  auto sites = AggregateToSites(web.value().graph);
  ASSERT_TRUE(sites.ok());

  // A site is spam if any member host is spam; the site core contains
  // sites all of whose members are listed good hosts.
  const auto& s = sites.value();
  std::vector<bool> site_spam(s.graph.num_nodes(), false);
  std::vector<bool> site_core(s.graph.num_nodes(), true);
  for (NodeId h = 0; h < web.value().graph.num_nodes(); ++h) {
    if (web.value().labels.IsSpam(h)) site_spam[s.to_site[h]] = true;
    if (!web.value().listed[h]) site_core[s.to_site[h]] = false;
  }
  std::vector<NodeId> core;
  for (NodeId x = 0; x < s.graph.num_nodes(); ++x) {
    if (site_core[x] && !site_spam[x]) core.push_back(x);
  }
  ASSERT_FALSE(core.empty());

  core::SpamMassOptions options;
  options.solver.method = pagerank::Method::kGaussSeidel;
  options.solver.tolerance = 1e-10;
  options.gamma = 0.9;
  auto est = core::EstimateSpamMass(s.graph, core, options);
  ASSERT_TRUE(est.ok());
  const double scale = static_cast<double>(s.graph.num_nodes()) /
                       (1.0 - est.value().damping);
  double spam_sum = 0, good_sum = 0;
  uint64_t spam_n = 0, good_n = 0;
  for (NodeId x = 0; x < s.graph.num_nodes(); ++x) {
    if (est.value().pagerank[x] * scale < 10) continue;
    if (site_spam[x]) {
      spam_sum += est.value().relative_mass[x];
      ++spam_n;
    } else {
      good_sum += est.value().relative_mass[x];
      ++good_n;
    }
  }
  ASSERT_GT(spam_n, 0u);
  ASSERT_GT(good_n, 0u);
  EXPECT_GT(spam_sum / spam_n, good_sum / good_n + 0.2);
}

}  // namespace
}  // namespace spammass
