// Multi-vector (multi-RHS) solves: ComputePageRankMulti advances several
// jump vectors through one CSR traversal per sweep. The contract under test
// is exact — each fused lane must be bit-identical to a standalone
// ComputePageRank with the same jump vector, including iteration counts,
// residuals, and residual histories, even when the lanes converge after
// different numbers of sweeps (a converged lane freezes and copies through
// unchanged while the others keep iterating).

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/kernel.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;
using pagerank::JumpVector;
using pagerank::PageRankResult;
using pagerank::SolverOptions;

WebGraph MakeSyntheticGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(n * 3 / 4));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

void ExpectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t abits, bbits;
    std::memcpy(&abits, &a[i], sizeof(abits));
    std::memcpy(&bbits, &b[i], sizeof(bbits));
    ASSERT_EQ(abits, bbits) << "diverge at " << i << ": " << a[i] << " vs "
                            << b[i];
  }
}

void ExpectResultIdentical(const PageRankResult& fused,
                           const PageRankResult& standalone) {
  EXPECT_EQ(fused.iterations, standalone.iterations);
  EXPECT_EQ(fused.converged, standalone.converged);
  uint64_t a, b;
  std::memcpy(&a, &fused.residual, sizeof(a));
  std::memcpy(&b, &standalone.residual, sizeof(b));
  EXPECT_EQ(a, b) << "residuals diverge";
  ExpectBitIdentical(fused.residual_history, standalone.residual_history);
  ExpectBitIdentical(fused.scores, standalone.scores);
}

TEST(MultiVectorTest, SpamMassPairMatchesStandaloneSolves) {
  WebGraph g = MakeSyntheticGraph(700, 3500, /*seed=*/19);
  std::vector<NodeId> core = {2, 9, 40, 180, 333, 512};
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(
      JumpVector::ScaledCore(g.num_nodes(), core, /*gamma=*/0.85));

  SolverOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 2000;
  opt.track_residuals = true;

  for (auto policy : {pagerank::DanglingPolicy::kLeak,
                      pagerank::DanglingPolicy::kRedistributeToJump}) {
    opt.dangling = policy;
    auto fused = pagerank::ComputePageRankMulti(g, jumps, opt);
    ASSERT_TRUE(fused.ok());
    ASSERT_EQ(fused.value().size(), 2u);
    for (size_t j = 0; j < jumps.size(); ++j) {
      auto standalone = pagerank::ComputePageRank(g, jumps[j], opt);
      ASSERT_TRUE(standalone.ok());
      ExpectResultIdentical(fused.value()[j], standalone.value());
    }
  }
}

TEST(MultiVectorTest, LanesConvergingAtDifferentTimesStayIndependent) {
  WebGraph g = MakeSyntheticGraph(500, 2500, /*seed=*/23);
  // A single-node jump concentrates mass and converges on a very different
  // schedule than the uniform jump; the fused solve must keep iterating the
  // slow lane after the fast one froze without perturbing either.
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(JumpVector::SingleNode(g.num_nodes(), 3,
                                         1.0 / g.num_nodes()));
  jumps.push_back(JumpVector::Core(g.num_nodes(), {1, 2, 3, 4, 5}));

  SolverOptions opt;
  opt.tolerance = 1e-11;
  opt.max_iterations = 2000;
  opt.track_residuals = true;

  auto fused = pagerank::ComputePageRankMulti(g, jumps, opt);
  ASSERT_TRUE(fused.ok());
  std::vector<int> iterations;
  for (size_t j = 0; j < jumps.size(); ++j) {
    auto standalone = pagerank::ComputePageRank(g, jumps[j], opt);
    ASSERT_TRUE(standalone.ok());
    ASSERT_TRUE(standalone.value().converged);
    ExpectResultIdentical(fused.value()[j], standalone.value());
    iterations.push_back(fused.value()[j].iterations);
  }
  // The premise of the test: the lanes genuinely converge at different
  // sweeps (otherwise freezing was never exercised).
  EXPECT_NE(iterations[0], iterations[1]);
}

TEST(MultiVectorTest, BatchLargerThanSweepCapSplitsTransparently) {
  WebGraph g = MakeSyntheticGraph(200, 900, /*seed=*/31);
  std::vector<JumpVector> jumps;
  for (uint32_t j = 0; j < pagerank::kernel::kMaxVectorsPerSweep + 3; ++j) {
    jumps.push_back(JumpVector::SingleNode(g.num_nodes(), j % g.num_nodes(),
                                           1.0 / g.num_nodes()));
  }
  SolverOptions opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 1000;

  auto fused = pagerank::ComputePageRankMulti(g, jumps, opt);
  ASSERT_TRUE(fused.ok());
  ASSERT_EQ(fused.value().size(), jumps.size());
  for (size_t j = 0; j < jumps.size(); ++j) {
    auto standalone = pagerank::ComputePageRank(g, jumps[j], opt);
    ASSERT_TRUE(standalone.ok());
    ExpectBitIdentical(fused.value()[j].scores, standalone.value().scores);
  }
}

TEST(MultiVectorTest, NonJacobiMethodsSolveSequentially) {
  WebGraph g = MakeSyntheticGraph(300, 1500, /*seed=*/37);
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(JumpVector::Core(g.num_nodes(), {7, 8, 9}));

  for (auto method : {pagerank::Method::kGaussSeidel, pagerank::Method::kSor,
                      pagerank::Method::kPowerIteration}) {
    SolverOptions opt;
    opt.method = method;
    opt.tolerance = 1e-11;
    opt.max_iterations = 2000;
    opt.dangling = pagerank::DanglingPolicy::kRedistributeToJump;
    auto multi = pagerank::ComputePageRankMulti(g, jumps, opt);
    ASSERT_TRUE(multi.ok());
    ASSERT_EQ(multi.value().size(), jumps.size());
    for (size_t j = 0; j < jumps.size(); ++j) {
      auto standalone = pagerank::ComputePageRank(g, jumps[j], opt);
      ASSERT_TRUE(standalone.ok());
      ExpectBitIdentical(multi.value()[j].scores, standalone.value().scores);
    }
  }
}

TEST(MultiVectorTest, RejectsEmptyBatch) {
  WebGraph g = MakeSyntheticGraph(50, 200, /*seed=*/43);
  auto r = pagerank::ComputePageRankMulti(g, {}, SolverOptions{});
  EXPECT_FALSE(r.ok());
}

TEST(MultiVectorTest, RejectsDimensionMismatchAnywhereInBatch) {
  WebGraph g = MakeSyntheticGraph(50, 200, /*seed=*/47);
  std::vector<JumpVector> jumps;
  jumps.push_back(JumpVector::Uniform(g.num_nodes()));
  jumps.push_back(JumpVector::Uniform(g.num_nodes() + 1));  // wrong n
  auto r = pagerank::ComputePageRankMulti(g, jumps, SolverOptions{});
  EXPECT_FALSE(r.ok());
}

}  // namespace
}  // namespace spammass
