// Tests of host-name normalization and alias merging.

#include "graph/host_normalize.h"

#include <gtest/gtest.h>

#include "graph/graph_builder.h"

namespace spammass {
namespace {

using graph::AliasMergeResult;
using graph::GraphBuilder;
using graph::HostNormalizeOptions;
using graph::MergeHostAliases;
using graph::NodeId;
using graph::NormalizeHostName;
using graph::WebGraph;

TEST(NormalizeHostNameTest, CaseFolding) {
  HostNormalizeOptions opt;
  EXPECT_EQ(NormalizeHostName("WWW.Example.COM", opt), "example.com");
  opt.case_fold = false;
  opt.fold_www = false;
  EXPECT_EQ(NormalizeHostName("EXAMPLE.com", opt), "EXAMPLE.com");
}

TEST(NormalizeHostNameTest, TrailingDotAndPort) {
  HostNormalizeOptions opt;
  EXPECT_EQ(NormalizeHostName("example.com.", opt), "example.com");
  EXPECT_EQ(NormalizeHostName("example.com:8080", opt), "example.com");
  EXPECT_EQ(NormalizeHostName("example.com:8080.", opt), "example.com");
  // A colon without digits is left alone.
  EXPECT_EQ(NormalizeHostName("weird:host", opt), "weird:host");
}

TEST(NormalizeHostNameTest, WwwFolding) {
  HostNormalizeOptions opt;
  EXPECT_EQ(NormalizeHostName("www.example.com", opt), "example.com");
  // Never folds down to a single label.
  EXPECT_EQ(NormalizeHostName("www.com", opt), "www.com");
  opt.fold_www = false;
  EXPECT_EQ(NormalizeHostName("www.example.com", opt), "www.example.com");
}

TEST(NormalizeHostNameTest, WwwVariants) {
  HostNormalizeOptions opt;
  opt.fold_www_variants = true;
  EXPECT_EQ(NormalizeHostName("www3.example.com", opt), "example.com");
  EXPECT_EQ(NormalizeHostName("www-cs.stanford.edu", opt), "cs.stanford.edu");
  // Plain words starting with www are not mangled.
  EXPECT_EQ(NormalizeHostName("wwwhat.example.com", opt),
            "wwwhat.example.com");
}

TEST(MergeHostAliasesTest, MergesAndRedirectsEdges) {
  GraphBuilder b;
  NodeId a1 = b.AddNode("www.example.com");
  NodeId a2 = b.AddNode("Example.COM");
  NodeId c = b.AddNode("other.org");
  b.AddEdge(a1, c);
  b.AddEdge(c, a2);
  WebGraph g = b.Build();

  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  const AliasMergeResult& r = merged.value();
  EXPECT_EQ(r.graph.num_nodes(), 2u);
  EXPECT_EQ(r.merged_groups, 1u);
  EXPECT_EQ(r.to_merged[a1], r.to_merged[a2]);
  NodeId example = r.to_merged[a1];
  NodeId other = r.to_merged[c];
  EXPECT_TRUE(r.graph.HasEdge(example, other));
  EXPECT_TRUE(r.graph.HasEdge(other, example));
  EXPECT_EQ(r.graph.HostName(example), "example.com");
}

TEST(MergeHostAliasesTest, SelfLinksFromMergingDisappear) {
  GraphBuilder b;
  NodeId a1 = b.AddNode("www.example.com");
  NodeId a2 = b.AddNode("example.com");
  b.AddEdge(a1, a2);  // Becomes a self-link after merging.
  WebGraph g = b.Build();
  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().graph.num_nodes(), 1u);
  EXPECT_EQ(merged.value().graph.num_edges(), 0u);
}

TEST(MergeHostAliasesTest, NoAliasesIsStructurePreserving) {
  GraphBuilder b;
  NodeId x = b.AddNode("a.example.com");
  NodeId y = b.AddNode("b.example.com");
  b.AddEdge(x, y);
  WebGraph g = b.Build();
  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().graph.num_nodes(), 2u);
  EXPECT_EQ(merged.value().graph.num_edges(), 1u);
  EXPECT_EQ(merged.value().merged_groups, 0u);
}

TEST(MergeHostAliasesTest, RequiresHostNames) {
  GraphBuilder b(2);
  b.AddEdge(0, 1);
  WebGraph g = b.Build();
  // "node0"/"node1" fallbacks are synthetic, not real host names;
  // require explicit names.
  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  EXPECT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(MergeHostAliasesTest, EmptyGraph) {
  WebGraph g;
  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value().graph.num_nodes(), 0u);
}

}  // namespace
}  // namespace spammass
