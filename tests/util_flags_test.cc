// Tests of the CLI flag parser.

#include "util/flags.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using util::FlagParser;

TEST(FlagParserTest, DefaultsWhenUnset) {
  FlagParser flags;
  flags.Define("scale", "0.5", "scenario scale");
  ASSERT_TRUE(flags.Parse(0, nullptr).ok());
  EXPECT_EQ(flags.GetString("scale"), "0.5");
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale"), 0.5);
  EXPECT_FALSE(flags.WasSet("scale"));
}

TEST(FlagParserTest, SpaceSeparatedValue) {
  FlagParser flags;
  flags.Define("edges", "", "path");
  const char* argv[] = {"--edges", "web.edges"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetString("edges"), "web.edges");
  EXPECT_TRUE(flags.WasSet("edges"));
}

TEST(FlagParserTest, EqualsSeparatedValue) {
  FlagParser flags;
  flags.Define("tau", "0.98", "threshold");
  const char* argv[] = {"--tau=0.5"};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_DOUBLE_EQ(flags.GetDouble("tau"), 0.5);
}

TEST(FlagParserTest, BoolFlagForms) {
  FlagParser flags;
  flags.DefineBool("verbose", "talk more");
  flags.DefineBool("quiet", "talk less");
  const char* argv[] = {"--verbose", "--quiet=false"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("verbose"));
  EXPECT_FALSE(flags.GetBool("quiet"));
}

TEST(FlagParserTest, IntParsing) {
  FlagParser flags;
  flags.Define("seed", "42", "rng seed");
  const char* argv[] = {"--seed", "123456789"};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_EQ(flags.GetInt("seed"), 123456789);
}

TEST(FlagParserTest, PositionalsCollected) {
  FlagParser flags;
  flags.Define("x", "", "");
  const char* argv[] = {"first", "--x", "v", "second"};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.positional(),
            (std::vector<std::string>{"first", "second"}));
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser flags;
  const char* argv[] = {"--nope"};
  EXPECT_FALSE(flags.Parse(1, argv).ok());
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser flags;
  flags.Define("edges", "", "path");
  const char* argv[] = {"--edges"};
  EXPECT_FALSE(flags.Parse(1, argv).ok());
}

TEST(FlagParserTest, HelpMentionsEveryFlag) {
  FlagParser flags;
  flags.Define("alpha", "1", "the alpha knob");
  flags.DefineBool("beta", "the beta switch");
  std::string help = flags.Help();
  EXPECT_NE(help.find("--alpha"), std::string::npos);
  EXPECT_NE(help.find("--beta"), std::string::npos);
  EXPECT_NE(help.find("alpha knob"), std::string::npos);
}

}  // namespace
}  // namespace spammass
