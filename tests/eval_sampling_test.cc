// Tests of evaluation sampling and simulated judging.

#include "eval/sampling.h"

#include <gtest/gtest.h>

#include "core/detector.h"
#include "synth/scenario.h"
#include "util/logging.h"

namespace spammass {
namespace {

using core::NodeLabel;
using eval::DrawEvaluationSample;
using eval::EstimateGoodFraction;
using eval::EvaluationSample;
using eval::WithEstimates;
using graph::NodeId;

class SamplingTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto r = synth::GenerateWeb(synth::TinyScenario(11));
    CHECK_OK(r.status());
    web_ = new synth::SyntheticWeb(std::move(r.value()));
    core::SpamMassOptions opt;
    opt.solver.method = pagerank::Method::kGaussSeidel;
    opt.solver.tolerance = 1e-10;
    auto est = core::EstimateSpamMass(web_->graph, web_->AssembledGoodCore(),
                                      opt);
    CHECK_OK(est.status());
    estimates_ = new core::MassEstimates(std::move(est.value()));
  }

  static synth::SyntheticWeb* web_;
  static core::MassEstimates* estimates_;
};

synth::SyntheticWeb* SamplingTest::web_ = nullptr;
core::MassEstimates* SamplingTest::estimates_ = nullptr;

TEST_F(SamplingTest, SampleSizeAndMembership) {
  auto filtered = core::PageRankFilteredNodes(*estimates_, 5.0);
  ASSERT_GT(filtered.size(), 30u);
  util::Rng rng(3);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, filtered, 30, 0.0, 0.0, &rng);
  EXPECT_EQ(sample.hosts.size(), 30u);
  for (const auto& h : sample.hosts) {
    EXPECT_TRUE(std::binary_search(filtered.begin(), filtered.end(), h.node));
    EXPECT_GE(h.scaled_pagerank, 5.0);
    EXPECT_FALSE(h.Excluded());
  }
}

TEST_F(SamplingTest, SampleClampedToCandidates) {
  std::vector<NodeId> candidates = {0, 1, 2};
  util::Rng rng(4);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, candidates, 100, 0.0, 0.0, &rng);
  EXPECT_EQ(sample.hosts.size(), 3u);
}

TEST_F(SamplingTest, EmptyCandidates) {
  util::Rng rng(5);
  EvaluationSample sample =
      DrawEvaluationSample(*web_, *estimates_, {}, 10, 0.0, 0.0, &rng);
  EXPECT_TRUE(sample.hosts.empty());
}

TEST_F(SamplingTest, UnknownAndNonexistentFractions) {
  auto filtered = core::PageRankFilteredNodes(*estimates_, 2.0);
  util::Rng rng(6);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, filtered, filtered.size(), 0.3, 0.2, &rng);
  double unknown =
      static_cast<double>(sample.CountJudged(NodeLabel::kUnknown)) /
      sample.hosts.size();
  double nonexistent =
      static_cast<double>(sample.CountJudged(NodeLabel::kNonExistent)) /
      sample.hosts.size();
  EXPECT_NEAR(unknown, 0.3, 0.08);
  EXPECT_NEAR(nonexistent, 0.2, 0.08);
}

TEST_F(SamplingTest, JudgedLabelsMatchGroundTruthWhenNotExcluded) {
  auto filtered = core::PageRankFilteredNodes(*estimates_, 5.0);
  util::Rng rng(7);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, filtered, 200, 0.0, 0.0, &rng);
  for (const auto& h : sample.hosts) {
    EXPECT_EQ(h.judged, web_->labels.Get(h.node));
  }
}

TEST_F(SamplingTest, AnomalousOnlyForGoodAnomalyRegions) {
  auto filtered = core::PageRankFilteredNodes(*estimates_, 2.0);
  util::Rng rng(8);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, filtered, filtered.size(), 0.0, 0.0, &rng);
  for (const auto& h : sample.hosts) {
    EXPECT_EQ(h.anomalous, web_->IsAnomalousGoodNode(h.node));
    if (h.anomalous) {
      EXPECT_TRUE(web_->labels.IsGood(h.node));
    }
  }
}

TEST_F(SamplingTest, WithEstimatesRemapsMasses) {
  auto filtered = core::PageRankFilteredNodes(*estimates_, 5.0);
  util::Rng rng(9);
  EvaluationSample sample = DrawEvaluationSample(
      *web_, *estimates_, filtered, 30, 0.1, 0.1, &rng);
  EvaluationSample remapped = WithEstimates(sample, *estimates_);
  ASSERT_EQ(remapped.hosts.size(), sample.hosts.size());
  for (size_t i = 0; i < sample.hosts.size(); ++i) {
    EXPECT_EQ(remapped.hosts[i].node, sample.hosts[i].node);
    EXPECT_EQ(remapped.hosts[i].judged, sample.hosts[i].judged);
    EXPECT_NEAR(remapped.hosts[i].relative_mass,
                sample.hosts[i].relative_mass, 1e-12);
  }
}

TEST_F(SamplingTest, EstimateGoodFractionTracksTruth) {
  util::Rng rng(10);
  double truth = web_->labels.GoodFraction();
  double estimated = EstimateGoodFraction(web_->labels, 2000, &rng);
  EXPECT_NEAR(estimated, truth, 0.05);
}

TEST(EstimateGoodFractionTest, AllGood) {
  core::LabelStore labels(50);
  util::Rng rng(1);
  EXPECT_NEAR(EstimateGoodFraction(labels, 25, &rng), 1.0, 1e-12);
}

}  // namespace
}  // namespace spammass
