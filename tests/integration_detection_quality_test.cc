// Detection-quality integration tests: the qualitative claims of Section 4
// must hold on the synthetic web — high precision at high τ, farm targets
// detected, expired-domain spam missed (documented false negatives),
// isolated cliques and anomalous-region hosts as documented false
// positives, and core members receiving large negative mass.

#include <gtest/gtest.h>

#include "core/detector.h"
#include "eval/experiment.h"
#include "eval/precision.h"
#include "util/logging.h"

namespace spammass {
namespace {

using core::DetectorConfig;
using core::DetectSpamCandidates;
using eval::PipelineOptions;
using eval::PipelineResult;
using eval::RunPipeline;
using graph::NodeId;

class DetectionQualityTest : public ::testing::Test {
 protected:
  static const PipelineResult& Result() {
    static PipelineResult* result = [] {
      PipelineOptions options;
      options.scale = 0.08;
      options.seed = 5;
      options.sample_size = 892;
      auto r = RunPipeline(options);
      CHECK_OK(r.status());
      return new PipelineResult(std::move(r.value()));
    }();
    return *result;
  }
};

TEST_F(DetectionQualityTest, HighThresholdGivesHighPrecision) {
  const PipelineResult& r = Result();
  auto curve = eval::ComputePrecisionCurve(r.sample, {0.98});
  ASSERT_EQ(curve.size(), 1u);
  ASSERT_GT(curve[0].sample_spam + curve[0].sample_good, 10u);
  // The paper reports ~100% excluding anomalies at τ = 0.98.
  EXPECT_GT(curve[0].precision_excluding_anomalous, 0.9);
}

TEST_F(DetectionQualityTest, DetectorFindsManyFarmTargets) {
  const PipelineResult& r = Result();
  DetectorConfig config;  // τ = 0.98, ρ = 10
  auto candidates = DetectSpamCandidates(r.estimates, config);
  ASSERT_FALSE(candidates.empty());
  uint64_t true_positives = 0;
  for (const auto& c : candidates) {
    if (r.web.labels.IsSpam(c.node)) ++true_positives;
  }
  // Strong majority of detections are real spam.
  EXPECT_GT(static_cast<double>(true_positives) / candidates.size(), 0.75);

  // And a sizable share of the big farms' targets is caught: count farm
  // targets above the PageRank threshold and check recall among them.
  const double scale = static_cast<double>(r.estimates.pagerank.size()) /
                       (1.0 - r.estimates.damping);
  std::vector<bool> detected(r.web.graph.num_nodes(), false);
  for (const auto& c : candidates) detected[c.node] = true;
  uint64_t eligible = 0, caught = 0;
  for (const auto& farm : r.web.farms) {
    if (r.estimates.pagerank[farm.target] * scale >= 10.0) {
      ++eligible;
      caught += detected[farm.target];
    }
  }
  ASSERT_GT(eligible, 10u);
  EXPECT_GT(static_cast<double>(caught) / eligible, 0.6);
}

TEST_F(DetectionQualityTest, ExpiredDomainSpamEscapes) {
  // Section 4.4.3 observation 2: spam whose PageRank comes from good hosts
  // has small (often negative) mass and is *not* detected.
  const PipelineResult& r = Result();
  DetectorConfig config;
  auto candidates = DetectSpamCandidates(r.estimates, config);
  std::vector<bool> detected(r.web.graph.num_nodes(), false);
  for (const auto& c : candidates) detected[c.node] = true;
  uint64_t caught = 0;
  for (NodeId t : r.web.expired_domain_targets) caught += detected[t];
  EXPECT_EQ(caught, 0u);
  // Their relative mass sits well below the farm targets'.
  double expired_mean = 0;
  for (NodeId t : r.web.expired_domain_targets) {
    expired_mean += r.estimates.relative_mass[t];
  }
  expired_mean /= r.web.expired_domain_targets.size();
  EXPECT_LT(expired_mean, 0.5);
}

TEST_F(DetectionQualityTest, CoreMembersGetLargeNegativeMass) {
  // Section 4.4.3 observation 3.
  const PipelineResult& r = Result();
  uint64_t negative = 0;
  for (NodeId x : r.good_core) {
    if (r.estimates.absolute_mass[x] < 0) ++negative;
  }
  EXPECT_GT(static_cast<double>(negative) / r.good_core.size(), 0.95);
}

TEST_F(DetectionQualityTest, AnomalousRegionsProduceHighMassGoodHosts) {
  // Section 4.4.1: good hosts from badly covered regions show up with high
  // relative mass (the gray bars of Figure 3).
  const PipelineResult& r = Result();
  uint64_t anomalous_high = 0;
  for (NodeId x : r.filtered) {
    if (r.web.IsAnomalousGoodNode(x) && r.estimates.relative_mass[x] > 0.9) {
      ++anomalous_high;
    }
  }
  EXPECT_GT(anomalous_high, 0u);
}

TEST_F(DetectionQualityTest, IsolatedCliqueCentersAreFalsePositives) {
  // Section 4.4.3 observation 1: good hosts in cliques weakly connected to
  // the core carry positive relative mass.
  const PipelineResult& r = Result();
  uint64_t positive_mass_centers = 0;
  for (const auto& clique : r.web.isolated_cliques) {
    NodeId center = clique[0];
    if (r.estimates.relative_mass[center] > 0.4) ++positive_mass_centers;
  }
  EXPECT_GT(static_cast<double>(positive_mass_centers) /
                r.web.isolated_cliques.size(),
            0.7);
}

TEST_F(DetectionQualityTest, LoweringTauTradesPrecisionForVolume) {
  const PipelineResult& r = Result();
  auto curve = eval::ComputePrecisionCurve(r.sample, {0.98, 0.5, 0.0},
                                           &r.estimates, 10.0);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_LT(curve[0].hosts_above, curve[2].hosts_above);
  // The top threshold concentrates spam; allow a small sampling-noise
  // margin on the precision comparison.
  EXPECT_GE(curve[0].precision_excluding_anomalous,
            curve[2].precision_excluding_anomalous - 0.03);
  EXPECT_GT(curve[0].precision_excluding_anomalous, 0.85);
}

}  // namespace
}  // namespace spammass
