// util::WriteTextFile / CreateDirectories: missing parent directories are
// created, contents round-trip, and failures name the offending path so
// CLI users see which file could not be written.

#include "util/file_util.h"

#include <gtest/gtest.h>

#include <fstream>
#include <string>

namespace spammass::util {
namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream f(path);
  return std::string((std::istreambuf_iterator<char>(f)),
                     std::istreambuf_iterator<char>());
}

TEST(UtilFileUtilTest, WriteTextFileCreatesMissingParents) {
  const std::string path =
      testing::TempDir() + "/file_util_test/a/b/c/out.txt";
  ASSERT_TRUE(WriteTextFile(path, "hello\n").ok());
  EXPECT_EQ(ReadAll(path), "hello\n");
}

TEST(UtilFileUtilTest, WriteTextFileOverwrites) {
  const std::string path = testing::TempDir() + "/file_util_test/over.txt";
  ASSERT_TRUE(WriteTextFile(path, "first").ok());
  ASSERT_TRUE(WriteTextFile(path, "second").ok());
  EXPECT_EQ(ReadAll(path), "second");
}

TEST(UtilFileUtilTest, WriteTextFileHandlesEmptyContent) {
  const std::string path = testing::TempDir() + "/file_util_test/empty.txt";
  ASSERT_TRUE(WriteTextFile(path, "").ok());
  EXPECT_EQ(ReadAll(path), "");
}

TEST(UtilFileUtilTest, WriteTextFileErrorNamesThePath) {
  // A regular file used as a directory component makes the write fail.
  const std::string blocker = testing::TempDir() + "/file_util_blocker";
  ASSERT_TRUE(WriteTextFile(blocker, "not a directory").ok());
  const std::string path = blocker + "/nested/out.txt";
  const Status status = WriteTextFile(path, "x");
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.ToString().find(blocker), std::string::npos)
      << status.ToString();
}

TEST(UtilFileUtilTest, CreateDirectoriesIsIdempotent) {
  const std::string dir = testing::TempDir() + "/file_util_test/idem/x/y";
  ASSERT_TRUE(CreateDirectories(dir).ok());
  EXPECT_TRUE(CreateDirectories(dir).ok());
}

TEST(UtilFileUtilTest, CreateDirectoriesEmptyPathIsOk) {
  EXPECT_TRUE(CreateDirectories("").ok());
}

}  // namespace
}  // namespace spammass::util
