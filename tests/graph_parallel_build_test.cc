// Determinism tests for the parallel ingest pipeline: the ThreadPool-driven
// GraphBuilder::Build, transpose, and derived-array construction must
// produce CSR arrays bit-identical to the serial build at every thread
// count. Registered under the TSan CI suite (name matches the
// 'ParallelGraphBuild' filter) so the scatter phases are also race-checked.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "graph/graph_builder.h"
#include "graph/graph_validate.h"
#include "graph/web_graph.h"
#include "util/random.h"
#include "util/thread_pool.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::WebGraph;

// Large enough to clear the serial-fallback thresholds in both the builder
// (pending edges) and the transpose/derived passes (nodes and edges).
constexpr NodeId kNodes = 20000;
constexpr uint64_t kEdges = 90000;

// Fills `b` with a deterministic duplicate-heavy edge stream.
void FillRandomEdges(GraphBuilder* b, uint64_t seed) {
  util::Rng rng(seed);
  for (uint64_t e = 0; e < kEdges; ++e) {
    auto u = static_cast<NodeId>(rng.UniformIndex(kNodes));
    auto v = static_cast<NodeId>(rng.UniformIndex(kNodes));
    b->AddEdge(u, v);
    if (e % 7 == 0) b->AddEdge(u, v);  // Exact duplicates must collapse.
  }
}

template <typename T>
void ExpectBitIdentical(std::span<const T> a, std::span<const T> b,
                        const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  if (a.empty()) return;
  EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size_bytes()), 0) << what;
}

void ExpectGraphsBitIdentical(const WebGraph& a, const WebGraph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ExpectBitIdentical(a.OutOffsets(), b.OutOffsets(), "out_offsets");
  ExpectBitIdentical(a.Targets(), b.Targets(), "targets");
  ExpectBitIdentical(a.InOffsets(), b.InOffsets(), "in_offsets");
  ExpectBitIdentical(a.Sources(), b.Sources(), "sources");
  // Doubles compared as raw bits: 1.0/d must round identically everywhere.
  ExpectBitIdentical(a.InvOutDegrees(), b.InvOutDegrees(),
                     "inv_out_degrees");
  ExpectBitIdentical(a.DanglingNodes(), b.DanglingNodes(), "dangling");
}

TEST(ParallelGraphBuildTest, BitIdenticalAcrossThreadCounts) {
  GraphBuilder serial_builder(kNodes);
  FillRandomEdges(&serial_builder, 42);
  WebGraph serial = serial_builder.Build();
  ASSERT_TRUE(graph::ValidateGraph(serial).ok());

  for (uint32_t threads : {1u, 2u, 4u, 8u}) {
    util::ThreadPool pool(threads);
    GraphBuilder builder(kNodes);
    FillRandomEdges(&builder, 42);
    WebGraph parallel = builder.Build(&pool);
    ASSERT_TRUE(graph::ValidateGraph(parallel).ok()) << threads << " threads";
    ExpectGraphsBitIdentical(serial, parallel);
  }
}

TEST(ParallelGraphBuildTest, IsolatedTailNodesSurvive) {
  // Trailing nodes past the last edge endpoint produce empty shards; the
  // prefix sums must still cover them.
  GraphBuilder serial_builder(kNodes);
  FillRandomEdges(&serial_builder, 7);
  serial_builder.EnsureNodes(kNodes + 1000);
  WebGraph serial = serial_builder.Build();

  util::ThreadPool pool(4);
  GraphBuilder builder(kNodes);
  FillRandomEdges(&builder, 7);
  builder.EnsureNodes(kNodes + 1000);
  WebGraph parallel = builder.Build(&pool);
  ASSERT_EQ(parallel.num_nodes(), kNodes + 1000);
  ExpectGraphsBitIdentical(serial, parallel);
}

TEST(ParallelGraphBuildTest, SkewedSourcesBitIdentical) {
  // A power-law-ish worst case: most edges leave a handful of hub sources,
  // so nearly all work lands in one shard.
  auto fill = [](GraphBuilder* b) {
    util::Rng rng(11);
    for (uint64_t e = 0; e < kEdges; ++e) {
      auto u = static_cast<NodeId>(rng.UniformIndex(8));
      auto v = static_cast<NodeId>(rng.UniformIndex(kNodes));
      b->AddEdge(u, v);
    }
  };
  GraphBuilder serial_builder(kNodes);
  fill(&serial_builder);
  WebGraph serial = serial_builder.Build();

  util::ThreadPool pool(4);
  GraphBuilder builder(kNodes);
  fill(&builder);
  WebGraph parallel = builder.Build(&pool);
  ExpectGraphsBitIdentical(serial, parallel);
}

TEST(ParallelGraphBuildTest, HostNamesPreserved) {
  auto fill = [](GraphBuilder* b) {
    for (NodeId x = 0; x < kNodes; ++x) {
      b->AddNode("host" + std::to_string(x) + ".example.com");
    }
    util::Rng rng(3);
    for (uint64_t e = 0; e < kEdges; ++e) {
      b->AddEdge(static_cast<NodeId>(rng.UniformIndex(kNodes)),
                 static_cast<NodeId>(rng.UniformIndex(kNodes)));
    }
  };
  GraphBuilder serial_builder;
  fill(&serial_builder);
  WebGraph serial = serial_builder.Build();

  util::ThreadPool pool(4);
  GraphBuilder builder;
  fill(&builder);
  WebGraph parallel = builder.Build(&pool);
  ExpectGraphsBitIdentical(serial, parallel);
  ASSERT_EQ(parallel.host_names().size(), serial.host_names().size());
  EXPECT_EQ(parallel.HostName(123), serial.HostName(123));
}

TEST(ParallelGraphBuildTest, FromCsrParallelMatchesSerial) {
  GraphBuilder b(kNodes);
  FillRandomEdges(&b, 99);
  WebGraph g = b.Build();
  std::vector<uint64_t> offsets(g.OutOffsets().begin(), g.OutOffsets().end());
  std::vector<NodeId> targets(g.Targets().begin(), g.Targets().end());

  WebGraph serial = WebGraph::FromCsr(g.num_nodes(), offsets, targets);
  for (uint32_t threads : {2u, 8u}) {
    util::ThreadPool pool(threads);
    WebGraph parallel =
        WebGraph::FromCsr(g.num_nodes(), offsets, targets, &pool);
    ExpectGraphsBitIdentical(serial, parallel);
  }
}

TEST(ParallelGraphBuildTest, SmallGraphsTakeSerialPathAndMatch) {
  util::ThreadPool pool(4);
  GraphBuilder a(10);
  GraphBuilder b(10);
  for (NodeId u = 0; u < 10; ++u) {
    for (NodeId v = 0; v < 10; ++v) {
      if (u != v && (u + v) % 3 == 0) {
        a.AddEdge(u, v);
        b.AddEdge(u, v);
      }
    }
  }
  ExpectGraphsBitIdentical(a.Build(), b.Build(&pool));
}

}  // namespace
}  // namespace spammass
