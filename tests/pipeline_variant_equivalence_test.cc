// End-to-end variant equivalence: the Figure-4-style detection outcome —
// who is flagged, which candidates surface, their ordering — must be
// identical across every sweep variant (SIMD, mixed precision, compressed
// gather) and every vertex reordering, because those are storage/traversal
// choices, not model changes. Also the permutation-invariance property
// test: spam mass, relative mass and verdicts are invariant under random,
// degree and BFS node permutations for Jacobi and Gauss-Seidel at 1 and 4
// threads.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "core/spam_mass.h"
#include "graph/reorder.h"
#include "pagerank/simd.h"
#include "pagerank/solver.h"
#include "pipeline/context.h"
#include "pipeline/graph_source.h"
#include "pipeline/pipeline.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::NodeId;
using graph::Reordering;
using graph::ReorderKind;
using graph::WebGraph;
using pagerank::SimdPolicy;
using pagerank::SweepPrecision;
namespace simd = pagerank::simd;

pipeline::PipelineConfig BaseConfig() {
  pipeline::PipelineConfig config;
  config.solver.method = pagerank::Method::kJacobi;
  config.solver.tolerance = 1e-12;
  config.solver.max_iterations = 500;
  return config;
}

util::Result<pipeline::PipelineRun> RunScenario(
    const pipeline::PipelineConfig& config) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.03, 17);
  // spam_mass only: its verdicts are threshold tests with a margin this
  // suite asserts, so exact equality across variants is well-defined.
  // Rank-cutoff detectors (TrustRank demotion) can legitimately flip on
  // tolerance-level score differences and are out of scope here.
  return pipeline::RunDetectors(source, config, {"spam_mass"});
}

void ExpectSameVerdicts(const pipeline::PipelineRun& want,
                        const pipeline::PipelineRun& got,
                        const std::string& label) {
  ASSERT_EQ(want.detectors.size(), got.detectors.size()) << label;
  for (size_t d = 0; d < want.detectors.size(); ++d) {
    const pipeline::DetectorOutput& a = want.detectors[d];
    const pipeline::DetectorOutput& b = got.detectors[d];
    EXPECT_EQ(a.detector, b.detector) << label;
    EXPECT_EQ(a.flagged_count, b.flagged_count) << label;
    ASSERT_EQ(a.flagged.size(), b.flagged.size()) << label;
    for (size_t x = 0; x < a.flagged.size(); ++x) {
      EXPECT_EQ(a.flagged[x], b.flagged[x])
          << label << " detector " << a.detector << " node " << x;
    }
    ASSERT_EQ(a.candidates.size(), b.candidates.size()) << label;
    for (size_t i = 0; i < a.candidates.size(); ++i) {
      EXPECT_EQ(a.candidates[i].node, b.candidates[i].node)
          << label << " candidate " << i;
      EXPECT_NEAR(a.candidates[i].relative_mass,
                  b.candidates[i].relative_mass, 1e-6)
          << label << " candidate " << i;
    }
  }
}

TEST(PipelineVariantEquivalenceTest, BaselineVerdictMarginsAreRobust) {
  // Guard for this whole suite: every candidate's relative mass must sit a
  // safe distance from the τ threshold, so tolerance-level perturbations
  // (FMA contraction, f32 pre-phases, traversal reordering) cannot flip a
  // verdict and the exact-equality assertions below are meaningful.
  pipeline::PipelineConfig config = BaseConfig();
  auto run = RunScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const double tau = config.detection.relative_mass_threshold;
  const double rho = config.detection.scaled_pagerank_threshold;
  double min_tau_margin = 1.0;
  double min_rho_margin = 1.0;
  size_t counted = 0;
  for (const auto& detector : run.value().detectors) {
    for (const auto& candidate : detector.candidates) {
      min_tau_margin = std::min(min_tau_margin,
                                std::abs(candidate.relative_mass - tau));
      min_rho_margin = std::min(
          min_rho_margin, std::abs(candidate.scaled_pagerank - rho));
      ++counted;
    }
  }
  ASSERT_GT(counted, 0u);
  EXPECT_GT(min_tau_margin, 1e-6) << "verdicts too close to tau for the "
                                     "variant-equality assertions to be "
                                     "sound";
  EXPECT_GT(min_rho_margin, 1e-5) << "candidates too close to rho";
}

TEST(PipelineVariantEquivalenceTest, SweepVariantsPreserveDetection) {
  auto baseline = RunScenario(BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  struct Case {
    const char* label;
    SimdPolicy simd;
    SweepPrecision precision;
    bool compressed;
  };
  std::vector<Case> cases = {
      {"compressed", SimdPolicy::kScalar, SweepPrecision::kFloat64, true},
      {"mixed_f32", SimdPolicy::kScalar, SweepPrecision::kMixedF32, false},
  };
  if (simd::Best() != simd::Level::kScalar) {
    cases.push_back(
        {"simd", SimdPolicy::kAuto, SweepPrecision::kFloat64, false});
    cases.push_back({"simd_f32_compressed", SimdPolicy::kAuto,
                     SweepPrecision::kMixedF32, true});
  }
  for (const Case& c : cases) {
    pipeline::PipelineConfig config = BaseConfig();
    config.solver.simd = c.simd;
    config.solver.precision = c.precision;
    config.solver.compressed_gather = c.compressed;
    auto run = RunScenario(config);
    ASSERT_TRUE(run.ok()) << c.label << ": " << run.status().ToString();
    ExpectSameVerdicts(baseline.value(), run.value(), c.label);
  }
}

TEST(PipelineVariantEquivalenceTest, ReorderingsPreserveDetection) {
  auto baseline = RunScenario(BaseConfig());
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

  for (ReorderKind kind : {ReorderKind::kDegreeDesc, ReorderKind::kBfs}) {
    pipeline::PipelineConfig config = BaseConfig();
    config.reorder = kind;
    auto run = RunScenario(config);
    const std::string label = graph::ReorderKindToString(kind);
    ASSERT_TRUE(run.ok()) << label << ": " << run.status().ToString();
    ExpectSameVerdicts(baseline.value(), run.value(), label);
    // The returned source graph is the ORIGINAL, not the permuted copy.
    pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.03, 17);
    auto reference = source.Load();
    ASSERT_TRUE(reference.ok());
    ASSERT_EQ(run.value().source.graph().num_nodes(),
              reference.value().graph().num_nodes());
    for (NodeId x = 0; x < reference.value().graph().num_nodes(); ++x) {
      auto a = run.value().source.graph().OutNeighbors(x);
      auto b = reference.value().graph().OutNeighbors(x);
      ASSERT_EQ(a.size(), b.size()) << label << " node " << x;
      EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
          << label << " node " << x;
    }
  }
}

TEST(PipelineVariantEquivalenceTest, ReorderingWithVariantsCombined) {
  auto baseline = RunScenario(BaseConfig());
  ASSERT_TRUE(baseline.ok());

  pipeline::PipelineConfig config = BaseConfig();
  config.reorder = ReorderKind::kDegreeDesc;
  config.solver.compressed_gather = true;
  if (simd::Best() != simd::Level::kScalar) {
    config.solver.simd = SimdPolicy::kAuto;
  }
  config.solver.precision = SweepPrecision::kMixedF32;
  config.solver.num_threads = 4;
  auto run = RunScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  ExpectSameVerdicts(baseline.value(), run.value(), "combined");
}

TEST(PipelineVariantEquivalenceTest, TrustRankRunsUnderCompressedGather) {
  // Regression: TrustRank's seed selection solves inverse PageRank on a
  // throwaway transposed graph, which has no compressed in-adjacency; the
  // seed solve must drop compressed_gather rather than fail the whole run.
  // Scalar f64 compressed gather reads the identical sources in the
  // identical order, so the full run stays bit-identical to plain.
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.03, 17);
  auto plain = pipeline::RunDetectors(source, BaseConfig(),
                                      {"spam_mass", "trustrank"});
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  pipeline::PipelineConfig config = BaseConfig();
  config.solver.compressed_gather = true;
  auto compressed =
      pipeline::RunDetectors(source, config, {"spam_mass", "trustrank"});
  ASSERT_TRUE(compressed.ok()) << compressed.status().ToString();
  ExpectSameVerdicts(plain.value(), compressed.value(), "trustrank");
}

TEST(PipelineVariantEquivalenceTest, ManifestEchoesVariantConfig) {
  pipeline::PipelineConfig config = BaseConfig();
  config.solver.simd = SimdPolicy::kAuto;
  config.solver.precision = SweepPrecision::kMixedF32;
  config.solver.compressed_gather = true;
  config.reorder = ReorderKind::kBfs;
  auto run = RunScenario(config);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const std::string& json = run.value().manifest_json;
  for (const char* needle :
       {"\"simd\":\"auto\"", "\"precision\":\"mixed-f32\"",
        "\"compressed_gather\":true", "\"reorder\":\"bfs\"",
        "\"name\":\"reorder\""}) {
    EXPECT_NE(json.find(needle), std::string::npos)
        << "manifest missing " << needle << "\n" << json;
  }
}

// ---- Permutation-invariance property test (core level) ------------------

struct PermCase {
  pagerank::Method method;
  uint32_t threads;
};

class MassPermutationInvarianceTest
    : public ::testing::TestWithParam<PermCase> {};

TEST_P(MassPermutationInvarianceTest, MassAndVerdictsInvariant) {
  pipeline::GraphSource source = pipeline::GraphSource::Scenario(0.03, 23);
  auto loaded = source.Load();
  ASSERT_TRUE(loaded.ok());
  const WebGraph& g = loaded.value().graph();
  const uint32_t n = g.num_nodes();

  core::SpamMassOptions options;
  options.solver.method = GetParam().method;
  options.solver.num_threads = GetParam().threads;
  options.solver.tolerance = 1e-12;
  options.solver.max_iterations = 500;
  options.gamma = 0.8;
  auto base =
      core::EstimateSpamMass(g, loaded.value().good_core, options);
  ASSERT_TRUE(base.ok()) << base.status().ToString();

  // Three permutations: the two locality orders plus a seeded random one.
  std::vector<std::pair<std::string, Reordering>> permutations;
  permutations.emplace_back(
      "degree", graph::ComputeReordering(g, ReorderKind::kDegreeDesc));
  permutations.emplace_back("bfs",
                            graph::ComputeReordering(g, ReorderKind::kBfs));
  Reordering random;
  random.perm.resize(n);
  std::iota(random.perm.begin(), random.perm.end(), 0u);
  util::Rng rng(99);
  for (uint32_t x = n; x > 1; --x) {
    std::swap(random.perm[x - 1], random.perm[rng.UniformIndex(x)]);
  }
  random.inverse.resize(n);
  for (NodeId x = 0; x < n; ++x) random.inverse[random.perm[x]] = x;
  permutations.emplace_back("random", std::move(random));

  for (const auto& [label, reordering] : permutations) {
    WebGraph permuted = graph::ApplyReordering(g, reordering);
    std::vector<NodeId> permuted_core =
        graph::MapNodeIds(loaded.value().good_core, reordering.perm);
    std::sort(permuted_core.begin(), permuted_core.end());
    auto got = core::EstimateSpamMass(permuted, permuted_core, options);
    ASSERT_TRUE(got.ok()) << label << ": " << got.status().ToString();
    for (NodeId x = 0; x < n; ++x) {
      const NodeId y = reordering.perm[x];
      EXPECT_NEAR(base.value().relative_mass[x],
                  got.value().relative_mass[y], 1e-6)
          << label << " node " << x;
      EXPECT_NEAR(base.value().absolute_mass[x],
                  got.value().absolute_mass[y], 1e-10)
          << label << " node " << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    MethodsAndThreads, MassPermutationInvarianceTest,
    ::testing::Values(PermCase{pagerank::Method::kJacobi, 1},
                      PermCase{pagerank::Method::kJacobi, 4},
                      PermCase{pagerank::Method::kGaussSeidel, 1},
                      PermCase{pagerank::Method::kGaussSeidel, 4}),
    [](const ::testing::TestParamInfo<PermCase>& info) {
      return std::string(info.param.method == pagerank::Method::kJacobi
                             ? "Jacobi"
                             : "GaussSeidel") +
             std::to_string(info.param.threads) + "Threads";
    });

}  // namespace
}  // namespace spammass
