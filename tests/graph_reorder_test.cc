// Vertex reordering: permutation/inverse consistency for every kind,
// structural equivalence of the reordered graph (edges relabeled, nothing
// created or lost), host-name and compressed-adjacency carry-over, and the
// property the whole feature rests on — PageRank scores are
// permutation-equivariant, so solving on the reordered graph and mapping
// back through the inverse changes nothing.

#include "graph/reorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/web_graph.h"
#include "pagerank/jump_vector.h"
#include "pagerank/solver.h"
#include "util/random.h"

namespace spammass {
namespace {

using graph::GraphBuilder;
using graph::NodeId;
using graph::Reordering;
using graph::ReorderKind;
using graph::WebGraph;

WebGraph MakeGraph(uint32_t n, uint32_t edges, uint64_t seed) {
  util::Rng rng(seed);
  GraphBuilder b(n);
  for (uint32_t e = 0; e < edges; ++e) {
    // Skewed sources so the degree ordering has real work to do.
    auto u = static_cast<NodeId>(rng.UniformIndex(n / 2));
    auto v = static_cast<NodeId>(rng.UniformIndex(n));
    if (u != v) b.AddEdge(u, v);
  }
  return b.Build();
}

void ExpectValidPermutation(const Reordering& r, uint32_t n) {
  ASSERT_EQ(r.perm.size(), n);
  ASSERT_EQ(r.inverse.size(), n);
  std::vector<bool> seen(n, false);
  for (NodeId x = 0; x < n; ++x) {
    ASSERT_LT(r.perm[x], n);
    EXPECT_FALSE(seen[r.perm[x]]) << "duplicate image " << r.perm[x];
    seen[r.perm[x]] = true;
    EXPECT_EQ(r.inverse[r.perm[x]], x) << "inverse mismatch at " << x;
  }
}

/// The edge set as (old-id, old-id) pairs, from a graph whose IDs are
/// translated through `to_old` (identity for the original graph).
std::set<std::pair<NodeId, NodeId>> EdgeSet(const WebGraph& g,
                                            const std::vector<NodeId>& to_old) {
  std::set<std::pair<NodeId, NodeId>> edges;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    for (NodeId y : g.OutNeighbors(x)) {
      edges.insert({to_old[x], to_old[y]});
    }
  }
  return edges;
}

TEST(ReorderTest, KindStringsRoundTrip) {
  for (ReorderKind kind : {ReorderKind::kNone, ReorderKind::kDegreeDesc,
                           ReorderKind::kBfs, ReorderKind::kRcm}) {
    auto parsed =
        graph::ReorderKindFromString(graph::ReorderKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), kind);
  }
  EXPECT_FALSE(graph::ReorderKindFromString("hilbert").ok());
}

TEST(ReorderTest, ComputesValidPermutations) {
  WebGraph g = MakeGraph(400, 2500, /*seed=*/7);
  for (ReorderKind kind : {ReorderKind::kNone, ReorderKind::kDegreeDesc,
                           ReorderKind::kBfs, ReorderKind::kRcm}) {
    Reordering r = graph::ComputeReordering(g, kind);
    ExpectValidPermutation(r, g.num_nodes());
  }
  // kNone is the identity.
  Reordering identity = graph::ComputeReordering(g, ReorderKind::kNone);
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    EXPECT_EQ(identity.perm[x], x);
  }
}

TEST(ReorderTest, DegreeDescSortsByTotalDegree) {
  WebGraph g = MakeGraph(300, 1800, /*seed=*/11);
  Reordering r = graph::ComputeReordering(g, ReorderKind::kDegreeDesc);
  auto total_degree = [&g](NodeId x) {
    return g.OutDegree(x) + g.InDegree(x);
  };
  // inverse is the degree-sorted order: new id 0 holds the hottest node.
  for (NodeId x = 0; x + 1 < g.num_nodes(); ++x) {
    const uint64_t a = total_degree(r.inverse[x]);
    const uint64_t b = total_degree(r.inverse[x + 1]);
    EXPECT_GE(a, b) << "positions " << x << ", " << x + 1;
    if (a == b) {
      // Equal degrees keep ascending original-ID order (determinism).
      EXPECT_LT(r.inverse[x], r.inverse[x + 1]);
    }
  }
}

TEST(ReorderTest, ApplyPreservesStructure) {
  WebGraph g = MakeGraph(350, 2000, /*seed=*/13);
  std::vector<std::string> names(g.num_nodes());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    names[x] = "host-" + std::to_string(x);
  }
  g.set_host_names(std::move(names));
  g.BuildCompressedInAdjacency();

  std::vector<NodeId> identity(g.num_nodes());
  for (NodeId x = 0; x < g.num_nodes(); ++x) identity[x] = x;

  for (ReorderKind kind :
       {ReorderKind::kDegreeDesc, ReorderKind::kBfs, ReorderKind::kRcm}) {
    Reordering r = graph::ComputeReordering(g, kind);
    WebGraph permuted = graph::ApplyReordering(g, r);
    ASSERT_EQ(permuted.num_nodes(), g.num_nodes());
    ASSERT_EQ(permuted.num_edges(), g.num_edges());
    EXPECT_EQ(EdgeSet(permuted, r.inverse), EdgeSet(g, identity));
    // Names travel with their nodes; the compressed adjacency is rebuilt.
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      EXPECT_EQ(permuted.HostName(x), g.HostName(r.inverse[x]));
    }
    ASSERT_TRUE(permuted.has_compressed_in());
    EXPECT_TRUE(graph::ValidateCompressedAdjacency(
                    permuted.compressed_in(), permuted.num_nodes(),
                    permuted.InOffsets(), permuted.Sources())
                    .ok());
  }
}

TEST(ReorderTest, MapNodeIdsTranslatesBothWays) {
  WebGraph g = MakeGraph(100, 500, /*seed=*/17);
  Reordering r = graph::ComputeReordering(g, ReorderKind::kDegreeDesc);
  std::vector<NodeId> nodes = {0, 13, 50, 99};
  std::vector<NodeId> mapped = graph::MapNodeIds(nodes, r.perm);
  std::vector<NodeId> back = graph::MapNodeIds(mapped, r.inverse);
  EXPECT_EQ(back, nodes);
}

TEST(ReorderTest, PageRankIsPermutationEquivariant) {
  WebGraph g = MakeGraph(500, 3000, /*seed=*/19);
  pagerank::SolverOptions opt;
  opt.method = pagerank::Method::kJacobi;
  opt.tolerance = 1e-12;

  auto base = pagerank::ComputeUniformPageRank(g, opt);
  ASSERT_TRUE(base.ok());

  for (ReorderKind kind :
       {ReorderKind::kDegreeDesc, ReorderKind::kBfs, ReorderKind::kRcm}) {
    Reordering r = graph::ComputeReordering(g, kind);
    WebGraph permuted = graph::ApplyReordering(g, r);
    auto reordered = pagerank::ComputeUniformPageRank(permuted, opt);
    ASSERT_TRUE(reordered.ok());
    for (NodeId x = 0; x < g.num_nodes(); ++x) {
      // Same mathematical system under relabeling; only the CSR traversal
      // order (and hence fp addition order) changes, so near-equality.
      EXPECT_NEAR(base.value().scores[x],
                  reordered.value().scores[r.perm[x]], 1e-10)
          << "node " << x << " kind " << graph::ReorderKindToString(kind);
    }
  }
}

TEST(ReorderTest, BfsKeepsNeighborsClose) {
  // A long path: BFS from the highest-degree node must label the path in
  // contiguous runs, far tighter than crawl order reversed.
  GraphBuilder b(64);
  for (NodeId x = 0; x + 1 < 64; ++x) {
    b.AddEdge(63 - x, 62 - x);  // reversed path, worst-case locality
    b.AddEdge(62 - x, 63 - x);
  }
  WebGraph g = b.Build();
  Reordering r = graph::ComputeReordering(g, ReorderKind::kBfs);
  ExpectValidPermutation(r, g.num_nodes());
  uint64_t total_jump = 0;
  uint64_t edges = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    for (NodeId y : g.OutNeighbors(x)) {
      const auto a = static_cast<int64_t>(r.perm[x]);
      const auto bb = static_cast<int64_t>(r.perm[y]);
      total_jump += static_cast<uint64_t>(a > bb ? a - bb : bb - a);
      ++edges;
    }
  }
  // A BFS order of a path keeps every edge within distance 2.
  EXPECT_LE(total_jump, edges * 2);
}

/// Max |perm[x] − perm[y]| over the (undirected) edges — the bandwidth
/// RCM exists to minimize.
uint64_t Bandwidth(const WebGraph& g, const Reordering& r) {
  uint64_t bandwidth = 0;
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    for (NodeId y : g.OutNeighbors(x)) {
      const auto a = static_cast<int64_t>(r.perm[x]);
      const auto b = static_cast<int64_t>(r.perm[y]);
      bandwidth = std::max(
          bandwidth, static_cast<uint64_t>(a > b ? a - b : b - a));
    }
  }
  return bandwidth;
}

TEST(ReorderTest, RcmMinimizesPathBandwidth) {
  // The classic RCM showcase: a path graph presented in scrambled order.
  // Crawl order leaves edges spanning nearly the whole id range; RCM must
  // recover a contiguous labeling (bandwidth 1).
  constexpr NodeId kN = 128;
  GraphBuilder b(kN);
  for (NodeId x = 0; x + 1 < kN; ++x) {
    // Interleave low/high ids along the path for worst-case crawl order.
    const NodeId u = (x % 2 == 0) ? x / 2 : kN - 1 - x / 2;
    const NodeId v = (x % 2 == 0) ? kN - 1 - x / 2 : x / 2 + 1;
    b.AddEdge(u, v);
    b.AddEdge(v, u);
  }
  WebGraph g = b.Build();
  Reordering identity;
  identity.perm.resize(kN);
  identity.inverse.resize(kN);
  for (NodeId x = 0; x < kN; ++x) identity.perm[x] = identity.inverse[x] = x;
  ASSERT_GT(Bandwidth(g, identity), kN / 2);

  Reordering r = graph::ComputeReordering(g, ReorderKind::kRcm);
  ExpectValidPermutation(r, kN);
  EXPECT_EQ(Bandwidth(g, r), 1u);
}

TEST(ReorderTest, RcmImprovesBandwidthOnRandomGraphs) {
  WebGraph g = MakeGraph(500, 1500, /*seed=*/23);
  Reordering identity;
  identity.perm.resize(g.num_nodes());
  identity.inverse.resize(g.num_nodes());
  for (NodeId x = 0; x < g.num_nodes(); ++x) {
    identity.perm[x] = identity.inverse[x] = x;
  }
  Reordering r = graph::ComputeReordering(g, ReorderKind::kRcm);
  ExpectValidPermutation(r, g.num_nodes());
  // Sparse random graphs are not band matrices, but RCM should never make
  // the envelope wider than the raw crawl order.
  EXPECT_LE(Bandwidth(g, r), Bandwidth(g, identity));
}

TEST(ReorderTest, RcmIsDeterministicAndCoversAllComponents) {
  // Several disconnected components plus isolated nodes: every node gets
  // exactly one slot, and rebuilding yields the identical permutation.
  GraphBuilder b(60);
  for (NodeId x = 0; x + 1 < 20; ++x) b.AddEdge(x, x + 1);
  for (NodeId x = 25; x + 1 < 40; ++x) b.AddEdge(x + 1, x);
  // Nodes 40..59 isolated.
  WebGraph g = b.Build();
  Reordering a = graph::ComputeReordering(g, ReorderKind::kRcm);
  Reordering b2 = graph::ComputeReordering(g, ReorderKind::kRcm);
  ExpectValidPermutation(a, g.num_nodes());
  EXPECT_EQ(a.perm, b2.perm);
  EXPECT_EQ(a.inverse, b2.inverse);
}

}  // namespace
}  // namespace spammass
