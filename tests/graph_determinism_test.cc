// Determinism regression tests for the two graph transforms that hold
// std::unordered_map state (site_aggregation.cc, host_normalize.cc). Both
// maps are point-lookup tables only — output node ids must follow
// first-encounter order over the input node ids, never hash-bucket order —
// and the spammass_lint `unordered-iteration` rule keeps it that way. These
// tests pin the observable contract so a rewrite that starts iterating the
// maps fails here, not just in the linter.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/graph_builder.h"
#include "graph/host_normalize.h"
#include "graph/site_aggregation.h"
#include "graph/web_graph.h"

namespace spammass {
namespace {

using graph::AggregateToSites;
using graph::GraphBuilder;
using graph::HostNormalizeOptions;
using graph::MergeHostAliases;
using graph::NodeId;
using graph::WebGraph;

// Enough distinct keys that a hash-bucket traversal of the intermediate
// map would almost surely visit them in some order other than insertion.
constexpr int kDomains = 64;

WebGraph BuildTwoHostsPerDomainGraph() {
  GraphBuilder b;
  // Interleave the two hosts of each domain: a.d0, b.d0, a.d1, b.d1, ...
  for (int i = 0; i < kDomains; ++i) {
    NodeId a = b.AddNode("a.d" + std::to_string(i) + ".com");
    NodeId c = b.AddNode("b.d" + std::to_string(i) + ".com");
    if (i > 0) b.AddEdge(a, 0);
    b.AddEdge(c, a);  // intra-site: vanishes in the site graph
  }
  return b.Build();
}

TEST(SiteAggregationDeterminismTest, SiteIdsFollowFirstEncounterOrder) {
  WebGraph g = BuildTwoHostsPerDomainGraph();
  auto sites = AggregateToSites(g);
  ASSERT_TRUE(sites.ok()) << sites.status().ToString();
  ASSERT_EQ(sites.value().graph.num_nodes(),
            static_cast<uint64_t>(kDomains));
  for (int i = 0; i < kDomains; ++i) {
    // Domain d<i>.com is first encountered at host node 2*i, so it must
    // become site node i regardless of where it hashes.
    EXPECT_EQ(sites.value().to_site[2 * i], static_cast<NodeId>(i));
    EXPECT_EQ(sites.value().to_site[2 * i + 1], static_cast<NodeId>(i));
    EXPECT_EQ(sites.value().graph.HostName(i),
              "d" + std::to_string(i) + ".com");
  }
}

TEST(SiteAggregationDeterminismTest, RepeatedRunsAreBitIdentical) {
  WebGraph g = BuildTwoHostsPerDomainGraph();
  auto first = AggregateToSites(g);
  auto second = AggregateToSites(g);
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().to_site, second.value().to_site);
  EXPECT_EQ(first.value().site_sizes, second.value().site_sizes);
  ASSERT_EQ(first.value().graph.num_nodes(), second.value().graph.num_nodes());
  ASSERT_EQ(first.value().graph.num_edges(), second.value().graph.num_edges());
  for (NodeId u = 0; u < first.value().graph.num_nodes(); ++u) {
    EXPECT_EQ(first.value().graph.HostName(u),
              second.value().graph.HostName(u));
    auto a = first.value().graph.OutNeighbors(u);
    auto b = second.value().graph.OutNeighbors(u);
    ASSERT_EQ(a.size(), b.size());
    for (size_t k = 0; k < a.size(); ++k) EXPECT_EQ(a[k], b[k]);
  }
}

TEST(HostNormalizeDeterminismTest, MergedIdsFollowFirstEncounterOrder) {
  GraphBuilder b;
  // www.h<i>.com followed by h<i>.com: each pair merges into one node whose
  // canonical name is first encountered at input node 2*i.
  for (int i = 0; i < kDomains; ++i) {
    b.AddNode("www.h" + std::to_string(i) + ".com");
    b.AddNode("h" + std::to_string(i) + ".com");
  }
  WebGraph g = b.Build();
  auto merged = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  ASSERT_EQ(merged.value().graph.num_nodes(),
            static_cast<uint64_t>(kDomains));
  EXPECT_EQ(merged.value().merged_groups, static_cast<uint64_t>(kDomains));
  for (int i = 0; i < kDomains; ++i) {
    EXPECT_EQ(merged.value().to_merged[2 * i], static_cast<NodeId>(i));
    EXPECT_EQ(merged.value().to_merged[2 * i + 1], static_cast<NodeId>(i));
    EXPECT_EQ(merged.value().graph.HostName(i),
              "h" + std::to_string(i) + ".com");
  }
}

TEST(HostNormalizeDeterminismTest, RepeatedRunsAreBitIdentical) {
  GraphBuilder b;
  for (int i = 0; i < kDomains; ++i) {
    b.AddNode("WWW.Mixed" + std::to_string(i) + ".Org:80");
    b.AddNode("mixed" + std::to_string(i) + ".org");
  }
  WebGraph g = b.Build();
  auto first = MergeHostAliases(g, HostNormalizeOptions{});
  auto second = MergeHostAliases(g, HostNormalizeOptions{});
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_EQ(first.value().to_merged, second.value().to_merged);
  EXPECT_EQ(first.value().merged_groups, second.value().merged_groups);
  ASSERT_EQ(first.value().graph.num_nodes(), second.value().graph.num_nodes());
  for (NodeId u = 0; u < first.value().graph.num_nodes(); ++u) {
    EXPECT_EQ(first.value().graph.HostName(u),
              second.value().graph.HostName(u));
  }
}

}  // namespace
}  // namespace spammass
