// Tests of the jump-vector factories (Sections 2.2, 3.4, 3.5).

#include "pagerank/jump_vector.h"

#include <gtest/gtest.h>

namespace spammass {
namespace {

using pagerank::JumpVector;

TEST(JumpVectorTest, UniformHasUnitNorm) {
  JumpVector v = JumpVector::Uniform(8);
  EXPECT_EQ(v.n(), 8u);
  EXPECT_NEAR(v.Norm(), 1.0, 1e-12);
  for (uint32_t i = 0; i < 8; ++i) EXPECT_NEAR(v[i], 0.125, 1e-12);
}

TEST(JumpVectorTest, CoreNormIsCoreFractionOfN) {
  // ‖v^Ṽ⁺‖ = |Ṽ⁺|/n — the inequality driving Section 3.5.
  JumpVector v = JumpVector::Core(10, {1, 3, 5});
  EXPECT_NEAR(v.Norm(), 0.3, 1e-12);
  EXPECT_EQ(v.NumNonZero(), 3u);
  EXPECT_NEAR(v[1], 0.1, 1e-12);
  EXPECT_EQ(v[0], 0.0);
}

TEST(JumpVectorTest, ScaledCoreNormIsGamma) {
  // ‖w‖ = γ regardless of core size (Section 3.5).
  JumpVector w = JumpVector::ScaledCore(1000, {7, 8}, 0.85);
  EXPECT_NEAR(w.Norm(), 0.85, 1e-12);
  EXPECT_NEAR(w[7], 0.425, 1e-12);
  EXPECT_NEAR(w[8], 0.425, 1e-12);
}

TEST(JumpVectorTest, ScaledCoreMembersGetMoreThanUniform) {
  // Section 3.5: core members receive γ/|Ṽ⁺| ≫ 1/n — the source of
  // negative mass estimates for core members.
  JumpVector w = JumpVector::ScaledCore(1000, {1, 2, 3, 4}, 0.85);
  EXPECT_GT(w[1], 1.0 / 1000);
}

TEST(JumpVectorTest, SingleNode) {
  JumpVector v = JumpVector::SingleNode(5, 2, 0.2);
  EXPECT_NEAR(v.Norm(), 0.2, 1e-12);
  EXPECT_EQ(v.NumNonZero(), 1u);
  EXPECT_NEAR(v[2], 0.2, 1e-12);
}

TEST(JumpVectorTest, PlusAndScaled) {
  JumpVector a = JumpVector::SingleNode(4, 0, 0.25);
  JumpVector b = JumpVector::SingleNode(4, 1, 0.25);
  JumpVector sum = a.Plus(b);
  EXPECT_NEAR(sum.Norm(), 0.5, 1e-12);
  JumpVector half = sum.Scaled(0.5);
  EXPECT_NEAR(half.Norm(), 0.25, 1e-12);
  EXPECT_NEAR(half[0], 0.125, 1e-12);
}

TEST(JumpVectorTest, CoreDecomposesIntoSingleNodes) {
  // v^U = Σ_{x∈U} vˣ — the linearity used to prove q^U = Σ q^x.
  JumpVector core = JumpVector::Core(6, {2, 4});
  JumpVector sum = JumpVector::SingleNode(6, 2, 1.0 / 6)
                       .Plus(JumpVector::SingleNode(6, 4, 1.0 / 6));
  for (uint32_t i = 0; i < 6; ++i) EXPECT_NEAR(core[i], sum[i], 1e-12);
}

}  // namespace
}  // namespace spammass
